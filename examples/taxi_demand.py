"""Example 2 from the paper: finding features for a taxi-demand model.

A data scientist holds an hourly taxi-pickups table and wants external
features that correlate with demand. The example demonstrates two things
beyond the basic query flow:

1. **aggregation semantics** — the candidate tables record *events* with
   repeated timestamps (one row per weather reading / per scheduled
   event), so the sketches aggregate values per key during construction,
   exactly as Section 3.1's streaming-aggregate machinery prescribes;
2. **model improvement** — after the search, the top-ranked features are
   actually joined and a least-squares demand model is refit, showing the
   RMSE drop that motivated the search in the first place.

Run with:  python examples/taxi_demand.py
"""

from __future__ import annotations

import numpy as np

from repro import CorrelationSketch, JoinCorrelationEngine, SketchCatalog
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.join import join_columns
from repro.table.table import Table


def hourly_keys(n_hours: int) -> list[str]:
    days = n_hours // 24 + 1
    return [
        f"2021-{1 + (d // 28) % 12:02d}-{1 + d % 28:02d}T{h:02d}"
        for d in range(days)
        for h in range(24)
    ][:n_hours]


def repeated_readings_table(
    name: str,
    column: str,
    hours: list[str],
    signal: np.ndarray,
    readings: int,
    noise: float,
    rng: np.random.Generator,
) -> Table:
    """A table with several noisy readings per hour (repeated keys)."""
    rep_keys: list[str] = []
    rep_vals: list[float] = []
    for i, h in enumerate(hours):
        for _ in range(readings):
            rep_keys.append(h)
            rep_vals.append(float(signal[i] + noise * rng.standard_normal()))
    return Table(
        name,
        [
            CategoricalColumn("hour", rep_keys),
            NumericColumn(column, np.asarray(rep_vals)),
        ],
    )


def main() -> None:
    rng = np.random.default_rng(21)
    n_hours = 4000
    hours = hourly_keys(n_hours)

    # Latent hourly factors.
    weather = rng.standard_normal(n_hours)
    events = rng.standard_normal(n_hours)

    demand = 500 + 120 * weather + 80 * events + 60 * rng.standard_normal(n_hours)
    query_table = Table(
        "taxi_pickups",
        [CategoricalColumn("hour", hours), NumericColumn("pickups", demand)],
    )

    candidates = [
        repeated_readings_table(
            "weather_station", "temperature_like", hours, weather, 3, 0.4, rng
        ),
        repeated_readings_table(
            "event_feed", "event_intensity", hours, events, 2, 0.5, rng
        ),
        repeated_readings_table(
            "unrelated_sensor", "reading", hours, rng.standard_normal(n_hours), 2, 0.3, rng
        ),
    ]
    tables_by_name = {t.name: t for t in candidates}

    catalog = SketchCatalog(sketch_size=512, aggregate="mean")
    for table in candidates:
        catalog.add_table(table)
    print(f"indexed {len(catalog)} candidate column pairs (mean aggregation)")

    pair = query_table.column_pairs()[0]
    query_sketch = CorrelationSketch(512, hasher=catalog.hasher)
    query_sketch.update_all(query_table.pair_rows(pair))

    result = JoinCorrelationEngine(catalog).query(query_sketch, k=3, scorer="rp_sez")
    print("\ntop candidates by risk-penalized estimated correlation:")
    for entry in result.ranked:
        print(
            f"  {entry.candidate_id:<45} est r = {entry.stats.r_pearson:+.3f} "
            f"(n = {entry.stats.sample_size})"
        )

    # Join the winning features for real and refit the demand model.
    print("\nrefitting the demand model with discovered features:")
    base_rmse = float(np.std(demand))
    print(f"  baseline (mean predictor) RMSE : {base_rmse:8.2f}")

    features = [np.ones(n_hours)]
    labels: list[str] = []
    index = {h: i for i, h in enumerate(hours)}
    for entry in result.ranked[:2]:
        table_name, rest = entry.candidate_id.split("::")
        key_name, value_name = rest.split("->")
        cand_table = tables_by_name[table_name]
        join = join_columns(
            hours,
            demand,
            cand_table.categorical(key_name).values,
            cand_table.numeric(value_name).values,
        )
        aligned = np.full(n_hours, np.nan)
        for k, v in zip(join.keys, join.y):
            aligned[index[k]] = v
        aligned = np.nan_to_num(aligned, nan=float(np.nanmean(aligned)))
        features.append(aligned)
        labels.append(entry.candidate_id)

    design = np.vstack(features).T
    coef, *_ = np.linalg.lstsq(design, demand, rcond=None)
    residual = demand - design @ coef
    model_rmse = float(np.sqrt(np.mean(residual**2)))
    print(f"  with discovered features RMSE : {model_rmse:8.2f}")
    print(f"  improvement                    : {100 * (1 - model_rmse / base_rmse):.1f}%")
    print(f"  features used: {labels}")


if __name__ == "__main__":
    main()
