"""Quickstart: estimate an after-join correlation without joining.

Builds correlation sketches for two key/value column pairs that share a
key universe, joins the *sketches* (not the tables), and compares the
estimated correlation — plus its error bounds — against the exact value
computed from the full join.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import CorrelationSketch, estimate
from repro.correlation import pearson
from repro.table.join import join_columns


def main() -> None:
    rng = np.random.default_rng(7)

    # Two tables, 50,000 rows each, sharing ~70% of their keys. In real
    # use these would come from different files / systems — the whole
    # point is that the sketches are built independently per table.
    n = 50_000
    keys = [f"row-{i}" for i in range(n)]
    x = rng.standard_normal(n)
    y = 0.75 * x + np.sqrt(1 - 0.75**2) * rng.standard_normal(n)
    keep = rng.uniform(size=n) < 0.7
    y_keys = [k for k, m in zip(keys, keep) if m]
    y_vals = y[keep]

    print("building sketches (one pass per column pair, size n = 256)...")
    sketch_x = CorrelationSketch.from_columns(keys, x, 256, name="T_X")
    sketch_y = CorrelationSketch.from_columns(y_keys, y_vals, 256, name="T_Y")

    result = estimate(sketch_x, sketch_y)
    print(f"\nsketch-join sample size : {result.sample_size}")
    print(f"estimated correlation   : {result.correlation:+.4f}")
    print(f"Fisher z standard error : {result.fisher_se:.4f}")
    print(
        "HFD dispersion interval : "
        f"[{result.hfd.low:+.3f}, {result.hfd.high:+.3f}]"
    )
    print(f"estimated join size     : {result.join_size_est:,.0f}")
    print(f"estimated containment   : {result.containment_est:.3f}")

    # Ground truth, the expensive way.
    join = join_columns(keys, x, y_keys, y_vals)
    true_r = pearson(join.x, join.y)
    print(f"\nfull join size          : {join.size:,}")
    print(f"actual correlation      : {true_r:+.4f}")
    print(f"estimation error        : {abs(result.correlation - true_r):.4f}")


if __name__ == "__main__":
    main()
