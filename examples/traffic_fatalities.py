"""Example 1 from the paper: what correlates with traffic fatalities?

Simulates the Vision Zero scenario: an analyst holds a daily traffic-
fatalities table and searches an open-data portal for datasets that (a)
join on date and (b) contain a column correlated with fatalities. The
portal is simulated as a set of CSV files — active CitiBike rides and
precipitation are planted as genuinely correlated signals, buried among
unrelated datasets (restaurant inspections, film permits, ...).

The example runs the full production path: CSV → type detection →
sketch catalog (offline indexing) → top-k join-correlation query.

Run with:  python examples/traffic_fatalities.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import CorrelationSketch, JoinCorrelationEngine, SketchCatalog, read_csv
from repro.data.keygen import date_keys


def build_portal(portal_dir: Path, rng: np.random.Generator) -> Path:
    """Write the simulated open-data portal (CSV files) to disk."""
    n_days = 1096  # three years of daily data
    dates = date_keys(n_days, start_year=2018)

    # Latent daily factors driving the correlated signals.
    weather = rng.standard_normal(n_days)       # wet / dry days
    activity = rng.standard_normal(n_days)      # how busy the streets are

    def write(name: str, column: str, values: np.ndarray) -> None:
        lines = [f"date,{column}"]
        lines += [f"{d},{v:.4f}" for d, v in zip(dates, values)]
        (portal_dir / name).write_text("\n".join(lines) + "\n")

    # The analyst's own dataset: fatalities respond to both factors.
    fatalities = (
        3.0
        + 1.2 * activity
        + 0.9 * weather
        + 0.8 * rng.standard_normal(n_days)
    )
    write("traffic_fatalities.csv", "daily_fatalities", fatalities)

    # Planted correlated datasets.
    write(
        "citibike_rides.csv",
        "active_bikes",
        20_000 + 4_000 * activity + 1_500 * rng.standard_normal(n_days),
    )
    write(
        "precipitation.csv",
        "rain_mm",
        np.maximum(0.0, 4.0 + 3.0 * weather + 1.0 * rng.standard_normal(n_days)),
    )
    # Unrelated datasets (joinable on date, not correlated).
    write("restaurant_inspections.csv", "inspections", rng.poisson(40, n_days).astype(float))
    write("film_permits.csv", "permits", rng.poisson(12, n_days).astype(float))
    write("311_noise_complaints.csv", "complaints", rng.poisson(300, n_days).astype(float))
    # Not even joinable: different key universe entirely.
    zip_lines = ["zipcode,population"] + [
        f"{10000 + i},{rng.integers(5_000, 90_000)}" for i in range(150)
    ]
    (portal_dir / "census_population.csv").write_text("\n".join(zip_lines) + "\n")
    return portal_dir / "traffic_fatalities.csv"


def main() -> None:
    rng = np.random.default_rng(0)
    with tempfile.TemporaryDirectory() as tmp:
        portal_dir = Path(tmp)
        query_csv = build_portal(portal_dir, rng)

        print("indexing the portal (offline, one pass per column pair)...")
        catalog = SketchCatalog(sketch_size=256)
        for csv_path in sorted(portal_dir.glob("*.csv")):
            if csv_path == query_csv:
                continue
            catalog.add_table(read_csv(csv_path))
        print(f"  indexed {len(catalog)} column-pair sketches")

        # Build the query sketch from the analyst's table.
        query_table = read_csv(query_csv)
        pair = query_table.column_pairs()[0]
        query_sketch = CorrelationSketch(
            256, hasher=catalog.hasher, name=pair.pair_id
        )
        query_sketch.update_all(query_table.pair_rows(pair))

        print(
            "\nquery: tables joinable with traffic_fatalities.csv on date, "
            "ranked by correlation with daily_fatalities\n"
        )
        engine = JoinCorrelationEngine(catalog)
        # rp_sez (Fisher-z penalty) rather than rp_cih here: the Hoeffding
        # CI length depends on the *combined* value range of both columns
        # (Section 4.3), so with candidates on wildly different scales
        # (rain in mm vs bike counts in the tens of thousands) and only a
        # handful of candidates, the cih min-max normalization would zero
        # out large-scale columns. With ~100 candidates of comparable
        # scale — the paper's regime — rp_cih is the best ranker (see
        # benchmarks/bench_table1.py).
        result = engine.query(query_sketch, k=6, scorer="rp_sez")

        header = f"{'rank':<5}{'column pair':<50}{'score':>8}{'est r':>8}{'n':>6}"
        print(header)
        print("-" * len(header))
        for rank, entry in enumerate(result.ranked, start=1):
            print(
                f"{rank:<5}{entry.candidate_id:<50}{entry.score:>8.3f}"
                f"{entry.stats.r_pearson:>8.3f}{entry.stats.sample_size:>6}"
            )
        print(
            f"\nquery latency: {result.total_seconds * 1000:.1f} ms "
            f"({result.candidates_considered} joinable candidates considered; "
            "census_population.csv was never considered — wrong join key)"
        )


if __name__ == "__main__":
    main()
