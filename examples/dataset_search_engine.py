"""A miniature dataset search engine over a synthetic open-data portal.

Demonstrates the production deployment pattern the paper targets:

1. **offline**: generate an NYC-Open-Data-shaped collection, sketch every
   ⟨key, numeric⟩ column pair, persist the catalog to disk;
2. **online**: load the catalog, answer top-k join-correlation queries
   with different scoring functions, and report per-query latency;
3. **verification**: for the top hit of each query, compute the true
   after-join correlation on the full data to show the estimates are
   trustworthy.

Run with:  python examples/dataset_search_engine.py

With ``--http``, step 2 serves the catalog through the long-lived HTTP
query service instead of in-process calls: queries go over the wire as
JSON ``POST /query`` requests against a coalescing
:class:`repro.serving.QueryService`, and responses are bit-identical to
the in-process path (the example asserts it on the estimates shown).
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
import urllib.request
from pathlib import Path

from repro import JoinCorrelationEngine, SketchCatalog
from repro.correlation import pearson
from repro.data.opendata import make_nyc_like_collection
from repro.data.workloads import collection_column_pairs, split_query_workload
from repro.table.join import join_tables, true_correlation

SKETCH_SIZE = 512


def _query_http(service_url: str, query_ref, k: int, scorer: str) -> dict:
    """One ranked query over the wire: the service sketches the posted
    raw columns exactly like the in-process path does."""
    keys, values = query_ref.table.pair_arrays(query_ref.pair)
    request = urllib.request.Request(
        service_url + "/query",
        data=json.dumps(
            {
                "keys": keys.tolist(),
                "values": values.tolist(),
                "k": k,
                "scorer": scorer,
            }
        ).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--http",
        action="store_true",
        help="serve queries through the HTTP query service instead of "
        "in-process engine calls (same results, over the wire)",
    )
    args = parser.parse_args()

    print("generating a synthetic open-data portal (60 tables)...")
    collection = make_nyc_like_collection(
        n_tables=60, seed=3, key_universe=1200, key_fraction_range=(0.1, 0.9)
    )
    refs = collection_column_pairs(collection)
    workload = split_query_workload(refs, query_fraction=0.2, max_queries=5, seed=1)
    by_id = {r.pair_id: r for r in refs}

    with tempfile.TemporaryDirectory() as tmp:
        catalog_path = Path(tmp) / "catalog.json"

        # ---- offline indexing --------------------------------------------
        t0 = time.perf_counter()
        catalog = SketchCatalog(sketch_size=SKETCH_SIZE)
        for ref in workload.corpus:
            catalog.add_column_pair(ref.table, ref.pair)
        catalog.save(catalog_path)
        t1 = time.perf_counter()
        size_kb = catalog_path.stat().st_size / 1024
        print(
            f"  indexed {len(catalog)} column pairs in {t1 - t0:.2f}s; "
            f"catalog file: {size_kb:,.0f} KiB"
        )

        # ---- online serving ----------------------------------------------
        served = SketchCatalog.load(catalog_path)
        engine = JoinCorrelationEngine(served, retrieval_depth=100)

        service = None
        if args.http:
            from repro.serving import QueryService, QuerySession

            service = QueryService(
                QuerySession.open(catalog_path)
            ).start()
            print(f"  query service listening on {service.url}")

        from repro.core.sketch import CorrelationSketch

        try:
            for query_ref in workload.queries:
                query_sketch = CorrelationSketch(SKETCH_SIZE, hasher=served.hasher)
                query_sketch.update_all(query_ref.table.pair_rows(query_ref.pair))

                print(f"\nquery: {query_ref.pair_id}")
                for scorer in ("rp", "rp_cih"):
                    t0 = time.perf_counter()
                    result = engine.query(query_sketch, k=3, scorer=scorer)
                    if service is not None:
                        body = _query_http(service.url, query_ref, 3, scorer)
                        wire_ms = (time.perf_counter() - t0) * 1000
                        # The wire answer IS the in-process answer.
                        assert [e["candidate_id"] for e in body["ranked"]] == [
                            e.candidate_id for e in result.ranked
                        ]
                        assert [e["score"] for e in body["ranked"]] == [
                            e.score for e in result.ranked
                        ]
                        latency = f"{wire_ms:6.1f} ms over HTTP"
                    else:
                        latency = f"{result.total_seconds * 1000:6.1f} ms"
                    print(
                        f"  scorer {scorer:<7} "
                        f"({latency}, "
                        f"{result.candidates_considered} candidates):"
                    )
                    for entry in result.ranked:
                        truth_str = ""
                        cand_ref = by_id.get(entry.candidate_id)
                        if cand_ref is not None:
                            join = join_tables(
                                query_ref.table, query_ref.pair,
                                cand_ref.table, cand_ref.pair,
                            )
                            truth = true_correlation(join, pearson)
                            truth_str = f"  true r = {truth:+.3f}"
                        print(
                            f"    {entry.candidate_id:<42} "
                            f"est r = {entry.stats.r_pearson:+.3f} "
                            f"(n = {entry.stats.sample_size}){truth_str}"
                        )
        finally:
            if service is not None:
                service.stop()
                print("\nquery service drained and stopped")


if __name__ == "__main__":
    main()
