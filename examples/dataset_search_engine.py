"""A miniature dataset search engine over a synthetic open-data portal.

Demonstrates the production deployment pattern the paper targets:

1. **offline**: generate an NYC-Open-Data-shaped collection, sketch every
   ⟨key, numeric⟩ column pair, persist the catalog to disk;
2. **online**: load the catalog, answer top-k join-correlation queries
   with different scoring functions, and report per-query latency;
3. **verification**: for the top hit of each query, compute the true
   after-join correlation on the full data to show the estimates are
   trustworthy.

Run with:  python examples/dataset_search_engine.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro import JoinCorrelationEngine, SketchCatalog
from repro.correlation import pearson
from repro.data.opendata import make_nyc_like_collection
from repro.data.workloads import collection_column_pairs, split_query_workload
from repro.table.join import join_tables, true_correlation

SKETCH_SIZE = 512


def main() -> None:
    print("generating a synthetic open-data portal (60 tables)...")
    collection = make_nyc_like_collection(
        n_tables=60, seed=3, key_universe=1200, key_fraction_range=(0.1, 0.9)
    )
    refs = collection_column_pairs(collection)
    workload = split_query_workload(refs, query_fraction=0.2, max_queries=5, seed=1)
    by_id = {r.pair_id: r for r in refs}

    with tempfile.TemporaryDirectory() as tmp:
        catalog_path = Path(tmp) / "catalog.json"

        # ---- offline indexing --------------------------------------------
        t0 = time.perf_counter()
        catalog = SketchCatalog(sketch_size=SKETCH_SIZE)
        for ref in workload.corpus:
            catalog.add_column_pair(ref.table, ref.pair)
        catalog.save(catalog_path)
        t1 = time.perf_counter()
        size_kb = catalog_path.stat().st_size / 1024
        print(
            f"  indexed {len(catalog)} column pairs in {t1 - t0:.2f}s; "
            f"catalog file: {size_kb:,.0f} KiB"
        )

        # ---- online serving ----------------------------------------------
        served = SketchCatalog.load(catalog_path)
        engine = JoinCorrelationEngine(served, retrieval_depth=100)

        from repro.core.sketch import CorrelationSketch

        for query_ref in workload.queries:
            query_sketch = CorrelationSketch(SKETCH_SIZE, hasher=served.hasher)
            query_sketch.update_all(query_ref.table.pair_rows(query_ref.pair))

            print(f"\nquery: {query_ref.pair_id}")
            for scorer in ("rp", "rp_cih"):
                result = engine.query(query_sketch, k=3, scorer=scorer)
                print(
                    f"  scorer {scorer:<7} "
                    f"({result.total_seconds * 1000:6.1f} ms, "
                    f"{result.candidates_considered} candidates):"
                )
                for entry in result.ranked:
                    truth_str = ""
                    cand_ref = by_id.get(entry.candidate_id)
                    if cand_ref is not None:
                        join = join_tables(
                            query_ref.table, query_ref.pair,
                            cand_ref.table, cand_ref.pair,
                        )
                        truth = true_correlation(join, pearson)
                        truth_str = f"  true r = {truth:+.3f}"
                    print(
                        f"    {entry.candidate_id:<42} "
                        f"est r = {entry.stats.r_pearson:+.3f} "
                        f"(n = {entry.stats.sample_size}){truth_str}"
                    )


if __name__ == "__main__":
    main()
