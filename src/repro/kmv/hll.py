"""HyperLogLog — the cardinality-only comparison point (Section 6).

The paper's related-work discussion contrasts the KMV family with
"count leading 0s" sketches such as HyperLogLog (Flajolet et al. 2007):
HLL achieves better cardinality accuracy per bit, but **cannot** support
join-correlation estimation because it retains no sample identifiers —
there is nothing to align numeric values on. We implement HLL from
scratch so the ablation benchmark can quantify both sides of that
trade-off on the same data (see ``benchmarks/bench_ablation_hll.py``).

Implementation: the standard HLL with ``m = 2**p`` registers, the
``alpha_m`` bias constant, linear counting for the small range, and the
large-range correction for 32-bit hash saturation. Registers hold the
maximum leading-zero rank of the hashed values routed to them.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.hashing import KeyHasher, default_hasher


def _alpha(m: int) -> float:
    """The bias-correction constant α_m from Flajolet et al. (2007)."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """HLL cardinality sketch with ``2**precision`` 1-byte registers.

    Args:
        precision: register-index bit width ``p`` (4 ≤ p ≤ 16). Standard
            error is ``1.04 / sqrt(2**p)``.
        hasher: hashing scheme (shared with the KMV sketches so the
            ablation compares like for like).
    """

    HASH_BITS = 32

    def __init__(self, precision: int = 12, hasher: KeyHasher | None = None) -> None:
        if not 4 <= precision <= 16:
            raise ValueError(f"precision must be in [4, 16], got {precision}")
        self.precision = precision
        self.m = 1 << precision
        self.hasher = hasher if hasher is not None else default_hasher()
        self._registers = bytearray(self.m)

    def update(self, key: object) -> None:
        """Offer one key occurrence."""
        h = self.hasher.key_hash(key) & 0xFFFFFFFF
        index = h >> (self.HASH_BITS - self.precision)
        remaining = h & ((1 << (self.HASH_BITS - self.precision)) - 1)
        # Rank = position of the leftmost 1-bit in the remaining bits,
        # counting from 1; all-zero remainder gets the maximum rank.
        width = self.HASH_BITS - self.precision
        if remaining == 0:
            rank = width + 1
        else:
            rank = width - remaining.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def update_all(self, keys: Iterable[object]) -> None:
        for key in keys:
            self.update(key)

    @classmethod
    def from_keys(
        cls, keys: Iterable[object], precision: int = 12, hasher: KeyHasher | None = None
    ) -> "HyperLogLog":
        hll = cls(precision, hasher)
        hll.update_all(keys)
        return hll

    def cardinality(self) -> float:
        """Estimate the number of distinct keys offered so far."""
        m = self.m
        inv_sum = 0.0
        zeros = 0
        for r in self._registers:
            inv_sum += 2.0 ** (-r)
            if r == 0:
                zeros += 1
        raw = _alpha(m) * m * m / inv_sum

        if raw <= 2.5 * m and zeros > 0:
            # Small-range correction: linear counting.
            return m * math.log(m / zeros)
        two32 = 2.0**self.HASH_BITS
        if raw > two32 / 30.0:
            # Large-range correction for 32-bit hash saturation.
            return -two32 * math.log(1.0 - raw / two32)
        return raw

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Union of two HLLs (register-wise maximum).

        Raises:
            ValueError: on precision or hashing-scheme mismatch.
        """
        if self.precision != other.precision:
            raise ValueError(
                f"precision mismatch: {self.precision} vs {other.precision}"
            )
        if self.hasher.scheme_id != other.hasher.scheme_id:
            raise ValueError("cannot merge HLLs built with different hashers")
        merged = HyperLogLog(self.precision, self.hasher)
        merged._registers = bytearray(
            max(a, b) for a, b in zip(self._registers, other._registers)
        )
        return merged

    def storage_bytes(self) -> int:
        """Register storage (1 byte per register)."""
        return self.m

    @property
    def standard_error(self) -> float:
        """Theoretical relative standard error ``1.04 / sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)

    def __repr__(self) -> str:
        return f"HyperLogLog(precision={self.precision}, m={self.m})"
