"""Bounded ordered structure keeping the ``k`` entries with smallest rank.

The paper's implementation note (Section 3.4) describes "a tree-based
algorithm similar to the one described in [Beyer et al. 2007]": one pass
over the data while maintaining the ``n`` tuples with minimum ``h_u``
values. CPython has no built-in balanced BST, so we realize the same
*interface* (insert-if-smaller, eject current maximum, membership by key)
with the textbook equivalent: a max-heap on the rank, paired with a
hash map from key to entry for O(1) membership and in-place value updates.
All operations are O(log k) amortized, matching the tree the paper uses.

Entries are ``(rank, key, payload)``. For correlation sketches ``rank`` is
``h_u(h(k))``, ``key`` is ``h(k)`` and ``payload`` holds the aggregator
state for the numeric values. The structure is deliberately generic so the
plain KMV synopsis (payload ``None``) and the correlation sketch share it.

Lazy deletion: when a key's entry is displaced we mark the heap slot stale
instead of rebuilding; stale tops are popped on demand. ``len`` and
iteration always reflect only live entries.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Sequence

import numpy as np


class _Entry:
    """Mutable heap slot; ``stale`` marks lazily deleted entries."""

    __slots__ = ("rank", "key", "payload", "stale")

    def __init__(self, rank: float, key: int, payload: Any) -> None:
        self.rank = rank
        self.key = key
        self.payload = payload
        self.stale = False

    def __lt__(self, other: "_Entry") -> bool:
        # heapq is a min-heap; invert the comparison to get a max-heap on
        # rank so the largest rank sits at the top, ready for ejection.
        if self.rank != other.rank:
            return self.rank > other.rank
        return self.key > other.key


class BottomK:
    """Keep the ``k`` distinct keys with smallest rank, with payloads.

    Args:
        k: capacity (the paper's sketch size ``n``). Must be positive.

    The structure de-duplicates by key: offering an existing key never
    consumes extra capacity; instead the optional ``update`` callback folds
    the new payload into the stored one (this is how repeated join keys are
    aggregated during sketch construction, Section 3.1).
    """

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self._heap: list[_Entry] = []
        self._by_key: dict[int, _Entry] = {}

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, key: int) -> bool:
        return key in self._by_key

    def _prune(self) -> None:
        while self._heap and self._heap[0].stale:
            heapq.heappop(self._heap)

    @property
    def max_rank(self) -> float:
        """Rank of the current k-th smallest entry (``inf`` if not full)."""
        if len(self._by_key) < self.k:
            return float("inf")
        self._prune()
        return self._heap[0].rank

    def kth_rank(self) -> float:
        """The paper's ``U(k)``: the largest rank currently retained.

        Raises:
            ValueError: if the structure is empty.
        """
        if not self._by_key:
            raise ValueError("empty BottomK has no kth rank")
        self._prune()
        return self._heap[0].rank

    def get(self, key: int) -> Any:
        """Return the payload stored for ``key`` (KeyError if absent)."""
        return self._by_key[key].payload

    def offer(
        self,
        rank: float,
        key: int,
        payload: Any = None,
        update: Callable[[Any, Any], Any] | None = None,
    ) -> bool:
        """Offer an item; returns True if it is retained afterwards.

        If ``key`` is already present, ``update(old_payload, payload)`` is
        applied (defaults to replacing the payload) and the entry stays —
        the rank of an existing key never changes because ``rank`` is a
        deterministic function of ``key``.

        If ``key`` is new and the structure is full, it is admitted only
        when its rank beats the current maximum, which then gets ejected.
        """
        entry = self._by_key.get(key)
        if entry is not None:
            if update is not None:
                entry.payload = update(entry.payload, payload)
            else:
                entry.payload = payload
            return True

        if len(self._by_key) >= self.k:
            self._prune()
            top = self._heap[0]
            if rank >= top.rank:
                return False
            heapq.heappop(self._heap)
            del self._by_key[top.key]

        entry = _Entry(rank, key, payload)
        heapq.heappush(self._heap, entry)
        self._by_key[key] = entry
        return True

    def update_batch(
        self,
        ranks: np.ndarray,
        keys: np.ndarray,
        payloads: Sequence[Any],
    ) -> np.ndarray:
        """Batch-merge new candidates, keeping the bottom-``k`` by rank.

        The vectorized counterpart of one :meth:`offer` call per element:
        instead of ``m`` heap pushes (each O(log k)), the live entries and
        the candidates are concatenated and the ``k`` smallest selected
        with one ``np.argpartition`` pass, then the heap is rebuilt once.

        Args:
            ranks: float array of candidate ranks.
            keys: parallel integer array; every key must be **distinct**,
                **absent** from the structure, and fit in ``uint64``
                (callers de-duplicate first — the sketch construction path
                groups rows by key hash before offering).
            payloads: parallel payload sequence.

        Returns:
            Boolean array; element ``i`` is True when ``keys[i]`` is
            retained after the merge.

        Exact rank ties on the admission boundary are broken like the
        scalar path where possible: live entries beat candidates (one
        :meth:`offer` rejects a newcomer whose rank *equals* the current
        maximum), and among tied entries of the same kind the smaller key
        wins (``_Entry.__lt__`` ejects the larger ``(rank, key)`` first).
        Two tied *candidates* on the boundary are resolved by key, whereas
        the scalar path would keep whichever arrived first — the one
        divergence. With the 32-bit hasher it cannot occur at all (ranks
        are ``fib(h(k)) / 2**32`` with a bijective ``fib``, hence
        injective over key hashes); with the 64-bit hasher the float64
        rounding of ``fib(h(k)) / 2**64`` could in principle collide two
        key hashes onto one rank, but the collision must also land
        exactly on the admission boundary to be observable.
        """
        ranks = np.asarray(ranks, dtype=np.float64)
        keys_arr = np.asarray(keys, dtype=np.uint64)
        m = ranks.shape[0]
        if keys_arr.shape[0] != m or len(payloads) != m:
            raise ValueError(
                f"ranks ({m}), keys ({keys_arr.shape[0]}) and payloads "
                f"({len(payloads)}) must have equal length"
            )
        if m == 0:
            return np.zeros(0, dtype=bool)

        n_live = len(self._by_key)
        if n_live + m <= self.k:
            # Everything fits: plain pushes, no selection needed.
            for i in range(m):
                entry = _Entry(float(ranks[i]), int(keys_arr[i]), payloads[i])
                heapq.heappush(self._heap, entry)
                self._by_key[entry.key] = entry
            return np.ones(m, dtype=bool)

        live = list(self._by_key.values())
        all_ranks = np.concatenate(
            [np.fromiter((e.rank for e in live), np.float64, n_live), ranks]
        )
        all_keys = np.concatenate(
            [np.fromiter((e.key for e in live), np.uint64, n_live), keys_arr]
        )

        # Bottom-k by (rank, key): one argpartition on rank, with boundary
        # ties resolved by key.
        part = np.argpartition(all_ranks, self.k - 1)
        kth_rank = all_ranks[part[self.k - 1]]
        sure = np.nonzero(all_ranks < kth_rank)[0]
        tied = np.nonzero(all_ranks == kth_rank)[0]
        need = self.k - sure.size
        if tied.size > need:
            # Boundary ties: live entries first (a scalar offer rejects a
            # newcomer whose rank equals the current max), then smaller key.
            order = np.lexsort((all_keys[tied], tied >= n_live))
            tied = tied[order[:need]]
        keep = np.concatenate([sure, tied])

        admitted = np.zeros(m, dtype=bool)
        entries: list[_Entry] = []
        for pos in keep.tolist():
            if pos < n_live:
                entries.append(live[pos])
            else:
                i = pos - n_live
                admitted[i] = True
                entries.append(
                    _Entry(float(ranks[i]), int(keys_arr[i]), payloads[i])
                )
        heapq.heapify(entries)
        self._heap = entries
        self._by_key = {e.key: e for e in entries}
        return admitted

    def items(self) -> Iterator[tuple[float, int, Any]]:
        """Yield live ``(rank, key, payload)`` tuples in arbitrary order."""
        for key, entry in self._by_key.items():
            yield entry.rank, key, entry.payload

    def sorted_items(self) -> list[tuple[float, int, Any]]:
        """Return live entries sorted by ascending rank (ties by key)."""
        return sorted(self.items(), key=lambda t: (t[0], t[1]))

    def keys(self) -> Iterator[int]:
        """Yield the retained keys in arbitrary order."""
        return iter(self._by_key)
