"""The KMV (k-minimum-values / bottom-k) synopsis.

A :class:`KMVSynopsis` of a key set ``K`` retains the ``k`` keys with the
smallest values of ``g(k) = h_u(h(k))`` together with those hash values.
It supports distinct-value estimation (Section 2.1) and, paired with a
second synopsis built with the same hashing scheme, estimation of union,
intersection, Jaccard and containment (see :mod:`repro.kmv.setops`).

The correlation sketch (:mod:`repro.core.sketch`) is a strict superset of
this structure — it additionally carries an aggregated numeric value per
key — so everything estimable from a KMV synopsis remains estimable from a
correlation sketch (Section 3.3 of the paper).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.hashing import KeyHasher, default_hasher
from repro.kmv.bottomk import BottomK
from repro.kmv.estimators import basic_dv_estimate, unbiased_dv_estimate


class KMVSynopsis:
    """Bottom-``k`` synopsis of a stream of (possibly repeated) keys.

    Args:
        k: synopsis capacity.
        hasher: hashing scheme; defaults to the paper's 32-bit MurmurHash3
            + Fibonacci composition.
    """

    def __init__(self, k: int, hasher: KeyHasher | None = None) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.hasher = hasher if hasher is not None else default_hasher()
        self._bottom = BottomK(k)
        self._overflowed = False

    # -- construction ------------------------------------------------------

    def update(self, key: object) -> None:
        """Offer one key occurrence to the synopsis."""
        pair = self.hasher.hash(key)
        if pair.key_hash in self._bottom:
            return
        was_full = len(self._bottom) >= self.k
        admitted = self._bottom.offer(pair.unit_hash, pair.key_hash)
        if not admitted or was_full:
            # Either this key was rejected, or it displaced another: in
            # both cases at least one distinct key is no longer retained.
            self._overflowed = True

    def update_all(self, keys: Iterable[object]) -> None:
        """Offer every key in ``keys``."""
        for key in keys:
            self.update(key)

    @classmethod
    def from_keys(
        cls, keys: Iterable[object], k: int, hasher: KeyHasher | None = None
    ) -> "KMVSynopsis":
        """Build a synopsis from an iterable of keys in one pass."""
        synopsis = cls(k, hasher)
        synopsis.update_all(keys)
        return synopsis

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        """Number of retained (hash, rank) pairs, at most ``k``."""
        return len(self._bottom)

    @property
    def saw_all_keys(self) -> bool:
        """True when no key was ever rejected — retained keys are exact.

        Note displacement cannot occur before rejection for deterministic
        ranks: an entry is displaced only when the structure is full and a
        smaller rank arrives, which also means future offers of the
        displaced key would be rejected. We track rejection/displacement
        together via ``_overflowed``.
        """
        return not self._overflowed

    def key_hashes(self) -> set[int]:
        """Set of retained tuple identifiers ``h(k)``."""
        return set(self._bottom.keys())

    def unit_values(self) -> list[float]:
        """Retained unit-interval hash values, ascending."""
        return [rank for rank, _key, _payload in self._bottom.sorted_items()]

    def kth_unit_value(self) -> float:
        """``U(k)``: the largest retained unit-interval value."""
        return self._bottom.kth_rank()

    def __iter__(self) -> Iterator[tuple[int, float]]:
        """Yield retained ``(key_hash, unit_value)`` by ascending rank."""
        for rank, key, _payload in self._bottom.sorted_items():
            yield key, rank

    # -- estimation --------------------------------------------------------

    def distinct_values(self, *, estimator: str = "unbiased") -> float:
        """Estimate the number of distinct keys offered so far.

        Args:
            estimator: ``"unbiased"`` for ``(k-1)/U(k)`` (default, Beyer et
                al. 2007) or ``"basic"`` for ``k/U(k)``.
        """
        size = len(self._bottom)
        if size == 0:
            return 0.0
        saw_all = self.saw_all_keys
        ukth = self._bottom.kth_rank() if not saw_all else 1.0
        if estimator == "unbiased":
            return unbiased_dv_estimate(size, ukth, saw_all=saw_all)
        if estimator == "basic":
            return basic_dv_estimate(size, ukth, saw_all=saw_all)
        raise ValueError(f"unknown estimator {estimator!r}")
