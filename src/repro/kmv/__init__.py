"""K-Minimum-Values (bottom-k) synopses and distinct-value estimation.

This subpackage implements the cardinality-estimation substrate the paper
builds on (Section 2.1):

* :class:`~repro.kmv.synopsis.KMVSynopsis` — the classic bottom-``k``
  synopsis of Bar-Yossef et al. (2002) maintained with a single pass and a
  bounded-size ordered structure (:mod:`repro.kmv.bottomk`).
* Distinct-value estimators (:mod:`repro.kmv.estimators`): the basic
  estimator ``k / U(k)`` and the unbiased estimator ``(k-1) / U(k)`` of
  Beyer et al. (2007).
* Multiset-operation estimators (:mod:`repro.kmv.setops`): union,
  intersection (Eq. 1 in the paper), Jaccard similarity, containment and
  join-size estimation from two independently built synopses.
"""

from repro.kmv.bottomk import BottomK
from repro.kmv.hll import HyperLogLog
from repro.kmv.estimators import (
    basic_dv_estimate,
    unbiased_dv_estimate,
    unbiased_dv_variance,
)
from repro.kmv.setops import (
    estimate_containment,
    estimate_intersection,
    estimate_jaccard,
    estimate_join_size,
    estimate_union,
    merge_synopses,
)
from repro.kmv.synopsis import KMVSynopsis

__all__ = [
    "BottomK",
    "HyperLogLog",
    "KMVSynopsis",
    "basic_dv_estimate",
    "estimate_containment",
    "estimate_intersection",
    "estimate_jaccard",
    "estimate_join_size",
    "estimate_union",
    "merge_synopses",
    "unbiased_dv_estimate",
    "unbiased_dv_variance",
]
