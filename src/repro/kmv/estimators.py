"""Distinct-value (DV) estimators for bottom-k synopses.

Section 2.1 of the paper reviews two estimators, both functions of the
``k``-th smallest unit-interval hash value ``U(k)``:

* the *basic* estimator ``D_BE = k / U(k)`` — the method-of-moments
  estimator obtained from ``E[U(k)] ≈ k / D``;
* the *unbiased* estimator ``D_UB = (k - 1) / U(k)`` of Beyer et al.
  (SIGMOD 2007), which is unbiased and has minimal variance among DV
  estimators when ``D`` is large.

When a synopsis saw fewer distinct keys than its capacity, every key was
retained and the exact count is returned (this matches Beyer et al.'s
treatment of the "small set" case).

:func:`unbiased_dv_estimate_batch` is the vectorized form the columnar
query executor uses to estimate all candidates' intersection
cardinalities in one call; it is elementwise bit-identical to
:func:`unbiased_dv_estimate` (same IEEE divisions, same small-``k``
fallbacks).
"""

from __future__ import annotations

import numpy as np


def basic_dv_estimate(k: int, kth_unit_value: float, *, saw_all: bool = False) -> float:
    """Basic DV estimator ``k / U(k)``.

    Args:
        k: number of retained minimum hash values.
        kth_unit_value: ``U(k)``, the k-th smallest unit-interval hash.
        saw_all: True when the synopsis never overflowed — the retained
            keys *are* the distinct keys and ``k`` is returned exactly.
    """
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return 0.0
    if saw_all:
        return float(k)
    if not 0.0 < kth_unit_value <= 1.0:
        raise ValueError(f"U(k) must lie in (0, 1], got {kth_unit_value}")
    return k / kth_unit_value


def unbiased_dv_estimate(k: int, kth_unit_value: float, *, saw_all: bool = False) -> float:
    """Unbiased DV estimator ``(k - 1) / U(k)`` (Beyer et al. 2007)."""
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if k == 0:
        return 0.0
    if saw_all:
        return float(k)
    if not 0.0 < kth_unit_value <= 1.0:
        raise ValueError(f"U(k) must lie in (0, 1], got {kth_unit_value}")
    if k == 1:
        # (k-1)/U(k) degenerates to 0; fall back to the basic estimator.
        return 1.0 / kth_unit_value
    return (k - 1) / kth_unit_value


def unbiased_dv_estimate_batch(
    k: np.ndarray, kth_unit_values: np.ndarray, saw_all: np.ndarray
) -> np.ndarray:
    """Vectorized :func:`unbiased_dv_estimate` over parallel arrays.

    Args:
        k: integer array of retained-hash counts (non-negative).
        kth_unit_values: parallel ``U(k)`` array; entries are only read
            where ``k > 0`` and ``saw_all`` is False, and must lie in
            ``(0, 1]`` there.
        saw_all: parallel boolean array — True where the synopsis never
            overflowed (the exact count ``k`` is returned).

    Returns:
        float64 array; element ``i`` equals
        ``unbiased_dv_estimate(k[i], kth_unit_values[i], saw_all=saw_all[i])``
        bit for bit.
    """
    k = np.asarray(k, dtype=np.int64)
    kth = np.asarray(kth_unit_values, dtype=np.float64)
    saw_all = np.asarray(saw_all, dtype=bool)
    if k.shape != kth.shape or k.shape != saw_all.shape:
        raise ValueError(
            f"shape mismatch: k {k.shape}, U(k) {kth.shape}, saw_all {saw_all.shape}"
        )
    if (k < 0).any():
        raise ValueError("k must be non-negative")
    needs_kth = (k > 0) & ~saw_all
    if np.any(needs_kth & ~((kth > 0.0) & (kth <= 1.0))):
        raise ValueError("U(k) must lie in (0, 1] wherever it is used")

    safe_kth = np.where(needs_kth, kth, 1.0)
    # k == 1 degenerates to 0 under (k-1)/U(k); fall back to 1/U(k).
    numerator = np.where(k == 1, 1.0, (k - 1).astype(np.float64))
    estimates = numerator / safe_kth
    out = np.where(saw_all, k.astype(np.float64), estimates)
    return np.where(k == 0, 0.0, out)


def unbiased_dv_variance(k: int, distinct: float) -> float:
    """Approximate variance of the unbiased estimator.

    Beyer et al. (2007) give ``Var[D_UB] ≈ D * (D - k + 1) / (k - 2)`` for
    ``k > 2``; we expose it so callers can attach error bars to cardinality
    estimates (used by the ablation benchmarks).
    """
    if k <= 2:
        return float("inf")
    return distinct * (distinct - k + 1) / (k - 2)
