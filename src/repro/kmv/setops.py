"""Cardinality estimation under multiset operations (Section 2.1).

Given two KMV synopses built *with the same hashing scheme* over key sets
``K_X`` and ``K_Y``, Beyer et al. (2007) show how to estimate the
cardinality of unions and intersections:

* combine the synopses into ``L = L_X ⊕ L_Y`` — the ``k`` smallest hash
  values of ``L_X ∪ L_Y`` where ``k = min(k_X, k_Y)`` — and apply the
  unbiased DV estimator for ``|K_X ∪ K_Y|``;
* count the common hashes ``K∩ = |{v ∈ L : v ∈ L_X ∩ L_Y}|`` and estimate
  ``|K_X ∩ K_Y| ≈ (K∩ / k) * (k - 1) / U(k)`` (Eq. 1 in the paper).

From those two primitives we derive Jaccard similarity, containment (the
``ĵc`` ranking baseline of Section 5.4) and the size of the joined table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kmv.estimators import unbiased_dv_estimate
from repro.kmv.synopsis import KMVSynopsis


@dataclass(frozen=True, slots=True)
class CombinedSynopsis:
    """The ``⊕`` combination of two synopses.

    Attributes:
        k: combined synopsis size, ``min(k_X, k_Y)`` (capped by the number
            of available hashes when the inputs are small).
        kth_unit_value: ``U(k)`` over the union of retained hashes.
        intersection_count: ``K∩`` — how many of the ``k`` smallest hashes
            appear in both input synopses.
        saw_all: True when both inputs retained all of their keys, making
            set operations exact.
    """

    k: int
    kth_unit_value: float
    intersection_count: int
    saw_all: bool


def _check_compatible(a: KMVSynopsis, b: KMVSynopsis) -> None:
    if a.hasher.scheme_id != b.hasher.scheme_id:
        raise ValueError(
            "synopses built with different hashing schemes are not "
            f"comparable: {a.hasher!r} vs {b.hasher!r}"
        )


def merge_synopses(a: KMVSynopsis, b: KMVSynopsis) -> CombinedSynopsis:
    """Compute ``L = L_A ⊕ L_B`` and the intersection count ``K∩``."""
    _check_compatible(a, b)
    hashes_a = dict(iter(a))  # key_hash -> unit value, ascending omitted
    hashes_b = dict(iter(b))
    union: dict[int, float] = dict(hashes_a)
    union.update(hashes_b)

    k = min(a.k, b.k)
    ordered = sorted(union.items(), key=lambda kv: (kv[1], kv[0]))[:k]
    if not ordered:
        return CombinedSynopsis(0, 1.0, 0, saw_all=True)

    k_eff = len(ordered)
    kth = ordered[-1][1]
    inter = sum(1 for kh, _u in ordered if kh in hashes_a and kh in hashes_b)
    saw_all = a.saw_all_keys and b.saw_all_keys
    return CombinedSynopsis(k_eff, kth, inter, saw_all)


def estimate_union(a: KMVSynopsis, b: KMVSynopsis) -> float:
    """Estimate ``|K_A ∪ K_B|`` from two synopses."""
    combined = merge_synopses(a, b)
    if combined.k == 0:
        return 0.0
    if combined.saw_all:
        return float(len(a.key_hashes() | b.key_hashes()))
    return unbiased_dv_estimate(combined.k, combined.kth_unit_value)


def estimate_intersection(a: KMVSynopsis, b: KMVSynopsis) -> float:
    """Estimate ``|K_A ∩ K_B|`` (Eq. 1): ``(K∩/k) * (k-1)/U(k)``."""
    combined = merge_synopses(a, b)
    if combined.k == 0:
        return 0.0
    if combined.saw_all:
        return float(len(a.key_hashes() & b.key_hashes()))
    d_union = unbiased_dv_estimate(combined.k, combined.kth_unit_value)
    return (combined.intersection_count / combined.k) * d_union


def estimate_jaccard(a: KMVSynopsis, b: KMVSynopsis) -> float:
    """Estimate the Jaccard similarity ``|A ∩ B| / |A ∪ B|``.

    The ratio estimator ``K∩ / k`` is used directly (the union-cardinality
    factors cancel), which is the standard KMV Jaccard estimate.
    """
    combined = merge_synopses(a, b)
    if combined.k == 0:
        return 0.0
    if combined.saw_all:
        union = len(a.key_hashes() | b.key_hashes())
        if union == 0:
            return 0.0
        return len(a.key_hashes() & b.key_hashes()) / union
    return combined.intersection_count / combined.k


def estimate_containment(query: KMVSynopsis, candidate: KMVSynopsis) -> float:
    """Estimate the Jaccard containment ``|Q ∩ C| / |Q|``.

    This is the joinability measure used by joinable-table search systems
    (JOSIE, Lazo, GB-KMV) and serves as the ``ĵc`` baseline in Table 1.
    """
    d_query = query.distinct_values()
    if d_query <= 0:
        return 0.0
    inter = estimate_intersection(query, candidate)
    return max(0.0, min(1.0, inter / d_query))


def estimate_join_size(a: KMVSynopsis, b: KMVSynopsis) -> float:
    """Estimate the row count of the key-equi-join after aggregation.

    With per-key aggregation (Section 3 reduces one-many and many-many
    joins to one-one), the joined table has exactly one row per key in
    ``K_A ∩ K_B``, so the join size equals the intersection cardinality.
    """
    return estimate_intersection(a, b)
