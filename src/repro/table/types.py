"""Column type inference (the Tablesaw stand-in).

The paper parses open-data CSV files with the Tablesaw Java library to
"automatically parse and detect the basic data types for each column"
(Section 5.1). Join-correlation queries only care about two roles:
*categorical* columns (join-key candidates) and *numeric* columns
(correlation candidates), so the detector classifies each column into
``NUMERIC``, ``CATEGORICAL`` or ``UNSUPPORTED`` (e.g. empty / all-missing).

Rules, applied to a sample of non-missing cell strings:

* every cell parses as a float → ``NUMERIC``;
* otherwise → ``CATEGORICAL`` (dates, zip codes with letters, free text —
  all are legitimate join keys; no need to distinguish);
* integer-looking columns with *very few* distinct values relative to the
  row count can be forced categorical via ``categorical_threshold`` — this
  mirrors how id-like numeric codes (zip codes, precinct numbers) act as
  join keys in open data.
"""

from __future__ import annotations

import enum
import math
from typing import Iterable, Sequence

#: Strings treated as missing cells, lower-cased.
MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "-", "--"})


class ColumnType(enum.Enum):
    """The column roles the query model distinguishes."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"
    UNSUPPORTED = "unsupported"


def is_missing(cell: str) -> bool:
    """True when a raw cell string denotes a missing value."""
    return cell.strip().lower() in MISSING_TOKENS


def try_parse_float(cell: str) -> float | None:
    """Parse a cell as a float, tolerating thousands separators and $.

    Returns None when the cell is not numeric. Currency symbols and comma
    grouping appear throughout the World Bank Finances data, so ``$1,234.50``
    parses as 1234.5.
    """
    text = cell.strip()
    if not text:
        return None
    if text.startswith("$"):
        text = text[1:]
    if "," in text:
        text = text.replace(",", "")
    try:
        value = float(text)
    except ValueError:
        return None
    if math.isinf(value):
        return None
    return value


def infer_column_type(
    cells: Sequence[str] | Iterable[str],
    *,
    sample_limit: int = 1000,
    categorical_threshold: float = 0.0,
) -> ColumnType:
    """Infer the type of a column from its raw cell strings.

    Args:
        cells: raw cell strings (header excluded).
        sample_limit: inspect at most this many non-missing cells.
        categorical_threshold: when > 0, a numeric column whose distinct
            ratio (distinct / inspected) is at or below the threshold is
            classified categorical (id-code heuristic). 0 disables it.
    """
    inspected = 0
    numeric = 0
    distinct: set[str] = set()
    for cell in cells:
        if inspected >= sample_limit:
            break
        if is_missing(cell):
            continue
        inspected += 1
        distinct.add(cell.strip())
        if try_parse_float(cell) is not None:
            numeric += 1

    if inspected == 0:
        return ColumnType.UNSUPPORTED
    if numeric == inspected:
        if (
            categorical_threshold > 0
            and len(distinct) / inspected <= categorical_threshold
        ):
            return ColumnType.CATEGORICAL
        return ColumnType.NUMERIC
    return ColumnType.CATEGORICAL
