"""Streaming sketch construction from CSV files.

The motivating setting of the paper is data too large to download and
join; the sketches themselves only ever need one pass and O(sketch size)
memory. This module closes the loop for CSV sources: build every
⟨categorical, numeric⟩ column-pair sketch of a file *without
materializing the table* — type inference runs on a buffered prefix,
then rows stream through the sketches one at a time.

For files smaller than the prefix buffer the result is identical to
``read_csv`` + ``SketchCatalog.add_table``; for larger files memory stays
constant where the eager path grows linearly.
"""

from __future__ import annotations

import csv
import math
from pathlib import Path
from typing import Iterator, Sequence

from repro.core.sketch import CorrelationSketch
from repro.hashing import KeyHasher
from repro.table.types import ColumnType, infer_column_type, is_missing, try_parse_float


def _sniff_types(
    header: Sequence[str],
    prefix_rows: list[list[str]],
    categorical_threshold: float,
) -> list[ColumnType]:
    types = []
    for i, _name in enumerate(header):
        cells = [row[i] for row in prefix_rows]
        types.append(
            infer_column_type(cells, categorical_threshold=categorical_threshold)
        )
    return types


def stream_sketch_csv(
    path: str | Path,
    sketch_size: int,
    *,
    aggregate: str = "mean",
    hasher: KeyHasher | None = None,
    delimiter: str = ",",
    type_inference_rows: int = 1000,
    categorical_threshold: float = 0.0,
    encoding: str = "utf-8",
) -> dict[str, CorrelationSketch]:
    """Build all column-pair sketches of a CSV file in one streaming pass.

    Args:
        path: CSV file with a header row.
        sketch_size: bottom-``n`` size for every sketch.
        aggregate: streaming aggregate for repeated keys.
        hasher: hashing scheme (catalog-wide).
        delimiter: field separator.
        type_inference_rows: rows buffered for type sniffing before
            streaming begins. Memory usage is O(buffer + sketches).
        categorical_threshold: id-code heuristic for type inference.
        encoding: file encoding.

    Returns:
        ``{pair_id: sketch}`` with ids of the form
        ``"<file>::<key>-><value>"`` matching ``ColumnPair.pair_id``.

    Raises:
        ValueError: on empty files or rows with the wrong width.
    """
    path = Path(path)
    if hasher is None:
        hasher = KeyHasher()

    with open(path, encoding=encoding, newline="") as f:
        reader = csv.reader(f, delimiter=delimiter)
        try:
            header = [h.strip() for h in next(reader)]
        except StopIteration:
            raise ValueError(f"CSV {path.name!r} is empty") from None
        width = len(header)

        prefix: list[list[str]] = []
        for row in reader:
            if not row:
                continue  # blank line — common in hand-edited CSV files
            if len(row) != width:
                raise ValueError(
                    f"CSV {path.name!r} line {reader.line_num}: expected "
                    f"{width} fields, got {len(row)}"
                )
            prefix.append(row)
            if len(prefix) >= type_inference_rows:
                break

        types = _sniff_types(header, prefix, categorical_threshold)
        key_cols = [i for i, t in enumerate(types) if t is ColumnType.CATEGORICAL]
        value_cols = [i for i, t in enumerate(types) if t is ColumnType.NUMERIC]

        sketches: dict[str, CorrelationSketch] = {}
        layout: list[tuple[int, int, CorrelationSketch]] = []
        for ki in key_cols:
            for vi in value_cols:
                pair_id = f"{path.name}::{header[ki]}->{header[vi]}"
                sketch = CorrelationSketch(
                    sketch_size, aggregate=aggregate, hasher=hasher, name=pair_id
                )
                sketches[pair_id] = sketch
                layout.append((ki, vi, sketch))

        if not layout:
            return {}

        def feed(row: list[str]) -> None:
            for ki, vi, sketch in layout:
                key_cell = row[ki]
                if is_missing(key_cell):
                    continue
                value = try_parse_float(row[vi])
                if value is None:
                    value = math.nan
                sketch.update(key_cell.strip(), value)

        for row in prefix:
            feed(row)
        # Error positions come from reader.line_num — the *physical* line
        # of the last row parsed. Deriving them from the logical row count
        # (enumerate over the reader seeded with len(prefix)) undercounts
        # whenever blank lines were skipped inside the prefix region
        # (blank rows never enter `prefix` but do advance the file), and
        # whenever a quoted field spans multiple lines.
        for row in reader:
            if not row:
                continue
            if len(row) != width:
                raise ValueError(
                    f"CSV {path.name!r} line {reader.line_num}: expected "
                    f"{width} fields, got {len(row)}"
                )
            feed(row)
    return sketches


def iter_csv_rows(
    path: str | Path, *, delimiter: str = ",", encoding: str = "utf-8"
) -> Iterator[list[str]]:
    """Yield raw CSV body rows one at a time (header skipped)."""
    with open(Path(path), encoding=encoding, newline="") as f:
        reader = csv.reader(f, delimiter=delimiter)
        next(reader, None)
        yield from reader
