"""Typed column containers for the in-memory table substrate."""

from __future__ import annotations

import math
from typing import Iterator, Sequence

import numpy as np

from repro.table.types import ColumnType


class NumericColumn:
    """A numeric column stored as a float64 array (NaN = missing)."""

    type = ColumnType.NUMERIC

    def __init__(self, name: str, values: Sequence[float] | np.ndarray) -> None:
        self.name = name
        self.values = np.asarray(values, dtype=np.float64)
        if self.values.ndim != 1:
            raise ValueError(f"column {name!r} must be 1-D, got {self.values.ndim}-D")

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __iter__(self) -> Iterator[float]:
        return iter(self.values)

    def missing_count(self) -> int:
        """Number of NaN cells."""
        return int(np.isnan(self.values).sum())

    def as_array(self) -> np.ndarray:
        """The backing float64 array (a view, not a copy)."""
        return self.values

    def min(self) -> float:
        """Minimum over non-missing cells (NaN if all missing)."""
        finite = self.values[~np.isnan(self.values)]
        return float(finite.min()) if finite.size else math.nan

    def max(self) -> float:
        """Maximum over non-missing cells (NaN if all missing)."""
        finite = self.values[~np.isnan(self.values)]
        return float(finite.max()) if finite.size else math.nan

    def __repr__(self) -> str:
        return f"NumericColumn({self.name!r}, rows={len(self)})"


class CategoricalColumn:
    """A categorical (string-keyed) column; None = missing."""

    type = ColumnType.CATEGORICAL

    def __init__(self, name: str, values: Sequence[str | None]) -> None:
        self.name = name
        self.values: list[str | None] = list(values)
        self._array: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[str | None]:
        return iter(self.values)

    def missing_count(self) -> int:
        """Number of missing (None) cells."""
        return sum(1 for v in self.values if v is None)

    def distinct_count(self) -> int:
        """Exact number of distinct non-missing values."""
        return len({v for v in self.values if v is not None})

    def as_array(self) -> np.ndarray:
        """Object-dtype NumPy view of the values (None = missing).

        Built lazily and cached — columns are treated as immutable once
        inside a :class:`repro.table.table.Table`. The array feeds the
        vectorized sketch-construction path
        (:meth:`repro.core.sketch.CorrelationSketch.update_array`).
        """
        if self._array is None or self._array.shape[0] != len(self.values):
            self._array = np.asarray(self.values, dtype=object)
        return self._array

    def __repr__(self) -> str:
        return f"CategoricalColumn({self.name!r}, rows={len(self)})"


Column = NumericColumn | CategoricalColumn
