"""The in-memory Table: an ordered collection of typed columns.

A table is deliberately minimal — the query model (Definitions 1–3) only
needs: typed column access, extraction of ``⟨categorical, numeric⟩`` column
pairs (the unit the sketches summarize), and row count. Joins live in
:mod:`repro.table.join`; parsing in :mod:`repro.table.csv_io`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.table.column import CategoricalColumn, Column, NumericColumn
from repro.table.types import ColumnType


@dataclass(frozen=True, slots=True)
class ColumnPair:
    """A ``⟨K, X⟩`` key/value column pair — the unit a sketch summarizes.

    Attributes:
        table_name: owning table's name.
        key: categorical column name.
        value: numeric column name.
    """

    table_name: str
    key: str
    value: str

    @property
    def pair_id(self) -> str:
        """Stable identifier, e.g. ``"taxi.csv::zipcode->pickups"``."""
        return f"{self.table_name}::{self.key}->{self.value}"


class Table:
    """A named, column-ordered table with uniform column lengths.

    Args:
        name: table identifier (file name, dataset id, …).
        columns: columns in order; all must share one length.
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        self.name = name
        self._columns: dict[str, Column] = {}
        length: int | None = None
        for col in columns:
            if col.name in self._columns:
                raise ValueError(f"duplicate column name {col.name!r} in {name!r}")
            if length is None:
                length = len(col)
            elif len(col) != length:
                raise ValueError(
                    f"column {col.name!r} has {len(col)} rows, expected {length}"
                )
            self._columns[col.name] = col
        self._length = length or 0

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        """Row count."""
        return self._length

    @property
    def column_names(self) -> list[str]:
        return list(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def column(self, name: str) -> Column:
        """Return the column named ``name`` (KeyError with context)."""
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"table {self.name!r} has no column {name!r}; "
                f"available: {self.column_names}"
            ) from None

    def categorical(self, name: str) -> CategoricalColumn:
        """Return a column, asserting it is categorical."""
        col = self.column(name)
        if not isinstance(col, CategoricalColumn):
            raise TypeError(f"column {name!r} of {self.name!r} is not categorical")
        return col

    def numeric(self, name: str) -> NumericColumn:
        """Return a column, asserting it is numeric."""
        col = self.column(name)
        if not isinstance(col, NumericColumn):
            raise TypeError(f"column {name!r} of {self.name!r} is not numeric")
        return col

    def categorical_names(self) -> list[str]:
        return [
            c.name
            for c in self._columns.values()
            if c.type is ColumnType.CATEGORICAL
        ]

    def numeric_names(self) -> list[str]:
        return [
            c.name for c in self._columns.values() if c.type is ColumnType.NUMERIC
        ]

    # -- the query model's unit of work -------------------------------------

    def column_pairs(self) -> list[ColumnPair]:
        """All ``⟨categorical, numeric⟩`` pairs, as Section 5.1 extracts.

        The paper generates "all possible pairs of categorical and numerical
        data columns ⟨K_X, X⟩" from each table; sketches are then built per
        pair.
        """
        return [
            ColumnPair(self.name, key, value)
            for key in self.categorical_names()
            for value in self.numeric_names()
        ]

    def pair_rows(self, pair: ColumnPair) -> Iterator[tuple[str, float]]:
        """Yield ``(key, value)`` rows for a pair, skipping missing keys.

        Missing numeric cells are yielded as NaN (the sketch counts the
        key for joinability but stores no value); missing keys are skipped
        entirely — a row without a join key can never participate in a
        join.
        """
        keys = self.categorical(pair.key).values
        values = self.numeric(pair.value).values
        for k, v in zip(keys, values):
            if k is None:
                continue
            yield k, float(v)

    def pair_arrays(self, pair: ColumnPair) -> tuple[np.ndarray, np.ndarray]:
        """Columnar view of :meth:`pair_rows`: ``(keys, values)`` arrays.

        Rows with a missing key are dropped (same policy as
        :meth:`pair_rows`); missing numeric cells stay as NaN. The arrays
        feed :meth:`repro.core.sketch.CorrelationSketch.update_array`,
        which builds a sketch identical to streaming the rows but at
        columnar speed.
        """
        keys = self.categorical(pair.key).as_array()
        values = self.numeric(pair.value).as_array()
        # Comparison on an object array yields object-dtype bools; cast so
        # the result is usable as a boolean mask.
        present = np.not_equal(keys, None).astype(bool)
        if present.all():
            return keys, values
        return keys[present], values[present]

    def __repr__(self) -> str:
        return (
            f"Table({self.name!r}, rows={len(self)}, "
            f"columns={self.column_names})"
        )


def table_from_arrays(
    name: str,
    keys: Sequence[str],
    values: Sequence[float] | np.ndarray,
    key_name: str = "key",
    value_name: str = "value",
) -> Table:
    """Convenience constructor for the ubiquitous two-column table."""
    return Table(
        name,
        [
            CategoricalColumn(key_name, list(keys)),
            NumericColumn(value_name, np.asarray(values, dtype=np.float64)),
        ],
    )
