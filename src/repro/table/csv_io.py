"""CSV reading with automatic column-type detection.

Stand-in for the Tablesaw parsing step of Section 5.1: datasets arrive as
"plain CSV text files" and column types are detected automatically. Uses
the stdlib ``csv`` module for parsing and :mod:`repro.table.types` for
type sniffing, producing a :class:`~repro.table.table.Table`.
"""

from __future__ import annotations

import csv
import io
import math
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.table.column import CategoricalColumn, Column, NumericColumn
from repro.table.table import Table
from repro.table.types import ColumnType, infer_column_type, is_missing, try_parse_float


def _build_column(name: str, cells: Sequence[str], ctype: ColumnType) -> Column | None:
    if ctype is ColumnType.UNSUPPORTED:
        return None
    if ctype is ColumnType.NUMERIC:
        values = np.empty(len(cells), dtype=np.float64)
        for i, cell in enumerate(cells):
            if is_missing(cell):
                values[i] = math.nan
            else:
                parsed = try_parse_float(cell)
                values[i] = math.nan if parsed is None else parsed
        return NumericColumn(name, values)
    return CategoricalColumn(
        name, [None if is_missing(c) else c.strip() for c in cells]
    )


def read_csv_text(
    text: str,
    name: str,
    *,
    delimiter: str = ",",
    categorical_threshold: float = 0.0,
) -> Table:
    """Parse CSV text into a typed :class:`Table`.

    Args:
        text: full CSV content including the header row.
        name: name for the resulting table.
        delimiter: field separator.
        categorical_threshold: forwarded to type inference — numeric-looking
            columns with at most this distinct ratio become categorical
            (id-code heuristic; 0 disables).

    Raises:
        ValueError: on empty input or rows with inconsistent width.
    """
    reader = csv.reader(io.StringIO(text), delimiter=delimiter)
    rows = list(reader)
    if not rows:
        raise ValueError(f"CSV {name!r} is empty")
    header = [h.strip() for h in rows[0]]
    if len(set(header)) != len(header):
        # Disambiguate duplicate headers the way spreadsheet tools do.
        seen: dict[str, int] = {}
        unique = []
        for h in header:
            count = seen.get(h, 0)
            unique.append(h if count == 0 else f"{h}.{count}")
            seen[h] = count + 1
        header = unique

    body = rows[1:]
    width = len(header)
    columns_cells: list[list[str]] = [[] for _ in range(width)]
    for line_no, row in enumerate(body, start=2):
        if not row:
            continue  # blank line — common in hand-edited CSV files
        if len(row) != width:
            raise ValueError(
                f"CSV {name!r} line {line_no}: expected {width} fields, "
                f"got {len(row)}"
            )
        for i, cell in enumerate(row):
            columns_cells[i].append(cell)

    columns: list[Column] = []
    for col_name, cells in zip(header, columns_cells):
        ctype = infer_column_type(
            cells, categorical_threshold=categorical_threshold
        )
        built = _build_column(col_name, cells, ctype)
        if built is not None:
            columns.append(built)
    return Table(name, columns)


def read_csv(
    path: str | Path,
    *,
    delimiter: str = ",",
    categorical_threshold: float = 0.0,
    encoding: str = "utf-8",
) -> Table:
    """Read a CSV file from disk into a typed :class:`Table`."""
    path = Path(path)
    with open(path, encoding=encoding, newline="") as f:
        text = f.read()
    return read_csv_text(
        text,
        path.name,
        delimiter=delimiter,
        categorical_threshold=categorical_threshold,
    )


def write_csv(table: Table, path: str | Path, *, delimiter: str = ",") -> None:
    """Write a :class:`Table` to disk (NaN / None serialize as empty)."""
    path = Path(path)
    names = table.column_names
    cols = [table.column(n) for n in names]
    with open(path, "w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow(names)
        for i in range(len(table)):
            row = []
            for col in cols:
                if isinstance(col, NumericColumn):
                    v = col.values[i]
                    row.append("" if math.isnan(v) else repr(float(v)))
                else:
                    v = col.values[i]
                    row.append("" if v is None else v)
            writer.writerow(row)
