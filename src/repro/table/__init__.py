"""In-memory table substrate: typed columns, CSV IO, ground-truth joins.

Plays the role Tablesaw + ad-hoc join code play in the paper's evaluation
pipeline: parse CSV datasets, detect column types, extract the
``⟨categorical, numeric⟩`` column pairs that sketches summarize, and
compute exact joins/correlations as ground truth.
"""

from repro.table.column import CategoricalColumn, Column, NumericColumn
from repro.table.csv_io import read_csv, read_csv_text, write_csv
from repro.table.join import (
    JoinResult,
    aggregate_pairs,
    jaccard_containment,
    join_columns,
    join_tables,
    true_correlation,
)
from repro.table.table import ColumnPair, Table, table_from_arrays
from repro.table.types import (
    MISSING_TOKENS,
    ColumnType,
    infer_column_type,
    is_missing,
    try_parse_float,
)

__all__ = [
    "CategoricalColumn",
    "Column",
    "ColumnPair",
    "ColumnType",
    "JoinResult",
    "MISSING_TOKENS",
    "NumericColumn",
    "Table",
    "aggregate_pairs",
    "infer_column_type",
    "is_missing",
    "jaccard_containment",
    "join_columns",
    "join_tables",
    "read_csv",
    "read_csv_text",
    "table_from_arrays",
    "true_correlation",
    "try_parse_float",
    "write_csv",
]
