"""Ground-truth joins: the expensive computation the sketches avoid.

Evaluating sketch accuracy (Section 5.2) requires the *actual* after-join
correlation, computed "using the (complete) join of columns". This module
implements that reference path: a hash equi-join of two ``⟨K, X⟩`` column
pairs with per-key streaming aggregation (the same aggregate functions the
sketches use), producing aligned numeric arrays.

Because both sides aggregate to one value per key, one-many and many-many
relationships reduce to one-one joins (Section 3, "Handling Repeated
Keys") — the joined table has exactly one row per key in ``K_X ∩ K_Y``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.aggregators import make_aggregator
from repro.table.table import ColumnPair, Table


@dataclass(frozen=True)
class JoinResult:
    """The aggregated equi-join of two column pairs.

    Attributes:
        keys: the joint key values (sorted for determinism).
        x: aggregated left values aligned with ``keys``.
        y: aggregated right values aligned with ``keys``.
    """

    keys: list[str]
    x: np.ndarray
    y: np.ndarray

    @property
    def size(self) -> int:
        return len(self.keys)

    def drop_nan(self) -> "JoinResult":
        """Remove rows where either aggregated value is missing."""
        mask = ~(np.isnan(self.x) | np.isnan(self.y))
        if mask.all():
            return self
        keys = [k for k, keep in zip(self.keys, mask) if keep]
        return JoinResult(keys=keys, x=self.x[mask], y=self.y[mask])


def aggregate_pairs(
    rows: "list[tuple[str, float]] | zip", aggregate: str
) -> dict[str, float]:
    """Collapse ``(key, value)`` rows to one aggregated value per key."""
    states: dict[str, object] = {}
    for key, value in rows:
        agg = states.get(key)
        if agg is None:
            agg = make_aggregator(aggregate)
            states[key] = agg
        agg.observe(float(value))
    return {k: agg.value() for k, agg in states.items()}  # type: ignore[attr-defined]


def join_columns(
    left_keys: list[str],
    left_values: np.ndarray,
    right_keys: list[str],
    right_values: np.ndarray,
    aggregate: str = "mean",
) -> JoinResult:
    """Join two raw key/value column pairs with per-key aggregation."""
    left_rows = [
        (k, float(v)) for k, v in zip(left_keys, left_values) if k is not None
    ]
    right_rows = [
        (k, float(v)) for k, v in zip(right_keys, right_values) if k is not None
    ]
    left_agg = aggregate_pairs(left_rows, aggregate)
    right_agg = aggregate_pairs(right_rows, aggregate)

    if len(left_agg) > len(right_agg):
        common = [k for k in right_agg if k in left_agg]
    else:
        common = [k for k in left_agg if k in right_agg]
    common.sort()

    x = np.asarray([left_agg[k] for k in common], dtype=np.float64)
    y = np.asarray([right_agg[k] for k in common], dtype=np.float64)
    return JoinResult(keys=common, x=x, y=y)


def join_tables(
    left: Table,
    left_pair: ColumnPair,
    right: Table,
    right_pair: ColumnPair,
    aggregate: str = "mean",
) -> JoinResult:
    """Join two tables on the key columns of the given column pairs."""
    return join_columns(
        left.categorical(left_pair.key).values,
        left.numeric(left_pair.value).values,
        right.categorical(right_pair.key).values,
        right.numeric(right_pair.value).values,
        aggregate=aggregate,
    )


def true_correlation(
    join: JoinResult, estimator_fn, *, min_size: int = 2
) -> float:
    """Apply ``estimator_fn`` to the NaN-filtered join (NaN if too small)."""
    clean = join.drop_nan()
    if clean.size < min_size:
        return math.nan
    return float(estimator_fn(clean.x, clean.y))


def jaccard_containment(
    left_keys: list[str], right_keys: list[str]
) -> float:
    """Exact Jaccard containment ``|K_L ∩ K_R| / |K_L|`` of key columns.

    The ``jc`` ranking baseline of Section 5.4, computed on complete data.
    """
    lset = {k for k in left_keys if k is not None}
    rset = {k for k in right_keys if k is not None}
    if not lset:
        return 0.0
    return len(lset & rset) / len(lset)
