"""Experiment workload construction (Section 5.1's pairing protocol).

The paper extracts all ``⟨K, X⟩`` column pairs from each collection and
evaluates on 2-combinations of those pairs (≈10M combinations for NYC).
At laptop scale we sample combinations instead of enumerating all of
them; sampling is seeded and joinability-aware (a uniform sample of all
combinations would be dominated by non-joinable pairs that contribute
nothing but zeros).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.opendata import OpenDataCollection
from repro.table.table import ColumnPair, Table


@dataclass(frozen=True)
class PairRef:
    """A column pair together with its owning table object."""

    table: Table
    pair: ColumnPair

    @property
    def pair_id(self) -> str:
        return self.pair.pair_id


def collection_column_pairs(collection: OpenDataCollection) -> list[PairRef]:
    """All ``⟨categorical, numeric⟩`` column pairs in a collection."""
    refs = []
    for table in collection.tables:
        for pair in table.column_pairs():
            refs.append(PairRef(table, pair))
    return refs


def _key_set(ref: PairRef) -> frozenset[str]:
    return frozenset(
        k for k in ref.table.categorical(ref.pair.key).values if k is not None
    )


def sample_combinations(
    refs: list[PairRef],
    count: int,
    seed: int = 0,
    *,
    min_key_overlap: int = 1,
    max_attempts_factor: int = 50,
) -> list[tuple[PairRef, PairRef]]:
    """Sample distinct 2-combinations of column pairs with joinable keys.

    Args:
        refs: the column-pair pool.
        count: combinations to return (fewer if the pool is exhausted).
        seed: sampling seed.
        min_key_overlap: required exact key overlap for a combination to
            count (the paper's all-pairs enumeration implicitly includes
            non-joinable pairs, but they produce empty joins and undefined
            correlations; accuracy experiments filter them the same way).
        max_attempts_factor: rejection-sampling budget multiplier.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if len(refs) < 2:
        return []
    rng = np.random.default_rng(seed)
    key_sets = [_key_set(r) for r in refs]

    seen: set[tuple[int, int]] = set()
    out: list[tuple[PairRef, PairRef]] = []
    attempts = 0
    budget = count * max_attempts_factor
    while len(out) < count and attempts < budget:
        attempts += 1
        i = int(rng.integers(0, len(refs)))
        j = int(rng.integers(0, len(refs)))
        if i == j:
            continue
        if i > j:
            i, j = j, i
        if (i, j) in seen:
            continue
        seen.add((i, j))
        # Cheap joinability screen on exact key sets.
        small, large = (
            (key_sets[i], key_sets[j])
            if len(key_sets[i]) <= len(key_sets[j])
            else (key_sets[j], key_sets[i])
        )
        overlap = sum(1 for k in small if k in large)
        if overlap < min_key_overlap:
            continue
        out.append((refs[i], refs[j]))
    return out


@dataclass(frozen=True)
class QueryWorkload:
    """A corpus/query split for ranking experiments (Section 5.4-5.5).

    Attributes:
        corpus: column pairs to be indexed.
        queries: column pairs used as queries against the corpus.
    """

    corpus: list[PairRef]
    queries: list[PairRef]


def split_query_workload(
    refs: list[PairRef],
    *,
    query_fraction: float = 0.3,
    max_queries: int | None = None,
    seed: int = 0,
) -> QueryWorkload:
    """Randomly split column pairs into corpus and query sets.

    Mirrors Section 5.5: "extracted all column pairs ... and randomly
    split them into two distinct sets, which we denote as query set and
    corpus set".
    """
    if not 0.0 < query_fraction < 1.0:
        raise ValueError(f"query_fraction must be in (0, 1), got {query_fraction}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(refs))
    n_query = max(1, int(round(len(refs) * query_fraction)))
    if max_queries is not None:
        n_query = min(n_query, max_queries)
    query_idx = set(order[:n_query].tolist())
    queries = [refs[i] for i in sorted(query_idx)]
    corpus = [refs[i] for i in range(len(refs)) if i not in query_idx]
    return QueryWorkload(corpus=corpus, queries=queries)
