"""Join-key universe generators for synthetic datasets.

Open-data join keys come in a few recognizable shapes — dates, zip codes,
borough/agency names, opaque identifiers — and their *distributions*
matter for the experiments: repeated keys exercise aggregation, skewed
multiplicities exercise the sketch's eviction behaviour, and partially
overlapping universes control join sizes. All generators take an explicit
``numpy.random.Generator`` so every dataset in the evaluation is exactly
reproducible from a seed.
"""

from __future__ import annotations

import numpy as np

_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"


def random_string_keys(count: int, rng: np.random.Generator, length: int = 12) -> list[str]:
    """``count`` distinct random identifier strings (the SBN key shape)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    keys: set[str] = set()
    chars = np.array(list(_ALPHABET))
    while len(keys) < count:
        needed = count - len(keys)
        draws = rng.integers(0, len(chars), size=(needed, length))
        for row in draws:
            keys.add("".join(chars[row]))
    return sorted(keys)[:count]


def date_keys(count: int, start_year: int = 2015) -> list[str]:
    """``count`` consecutive ISO dates starting Jan 1 of ``start_year``.

    Dates are the most common join key in the paper's motivating examples
    (daily fatalities, hourly pickups). A simple proleptic calendar with
    fixed month lengths is sufficient — keys only need to be distinct and
    shared across tables, not calendar-accurate.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    days_in_month = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)
    out: list[str] = []
    year, month, day = start_year, 1, 1
    for _ in range(count):
        out.append(f"{year:04d}-{month:02d}-{day:02d}")
        day += 1
        if day > days_in_month[month - 1]:
            day = 1
            month += 1
            if month > 12:
                month = 1
                year += 1
    return out


def zipcode_keys(count: int, rng: np.random.Generator) -> list[str]:
    """``count`` distinct NYC-flavoured 5-digit zip code strings."""
    if count > 2000:
        raise ValueError(f"at most 2000 zip keys available, requested {count}")
    codes = rng.choice(np.arange(10000, 12000), size=count, replace=False)
    return [f"{c:05d}" for c in sorted(codes)]


def entity_keys(count: int, rng: np.random.Generator) -> list[str]:
    """``count`` agency/organization-style names (WBF key shape)."""
    prefixes = [
        "dept", "office", "bureau", "agency", "board", "council",
        "commission", "authority", "fund", "program",
    ]
    suffixes = [
        "finance", "health", "transport", "education", "parks", "housing",
        "water", "energy", "sanitation", "planning", "safety", "records",
    ]
    combos = [f"{p}-{s}" for p in prefixes for s in suffixes]
    extra = 0
    while len(combos) < count:
        extra += 1
        combos.extend(f"{c}-{extra}" for c in combos[: count - len(combos)])
    idx = rng.choice(len(combos), size=count, replace=False)
    return [combos[i] for i in sorted(idx)]


def zipf_multiplicities(
    count: int, rng: np.random.Generator, *, exponent: float = 1.5, max_repeat: int = 50
) -> np.ndarray:
    """Per-key occurrence counts with a Zipf-like tail.

    Real categorical columns repeat a few keys very often; a truncated
    Zipf(``exponent``) reproduces that skew while keeping table sizes
    bounded.
    """
    if exponent <= 1.0:
        raise ValueError(f"zipf exponent must exceed 1, got {exponent}")
    draws = rng.zipf(exponent, size=count)
    return np.minimum(draws, max_repeat).astype(np.int64)


def subsample_keys(
    keys: list[str], fraction: float, rng: np.random.Generator
) -> list[str]:
    """Uniform random subset of ``keys`` with the given inclusion fraction.

    Used to control join probability between two tables sharing a key
    universe (the SBN generator's ``c`` parameter).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    n = int(round(len(keys) * fraction))
    if n == 0:
        return []
    idx = rng.choice(len(keys), size=n, replace=False)
    return [keys[i] for i in sorted(idx)]
