"""Synthetic datasets and experiment workloads (Section 5.1).

* :mod:`repro.data.sbn` — the Synthetic Bivariate Normal table pairs.
* :mod:`repro.data.opendata` — NYC-Open-Data- and World-Bank-Finances-
  shaped collections (the offline substitution for the paper's snapshots).
* :mod:`repro.data.workloads` — column-pair extraction, combination
  sampling, corpus/query splits.
* :mod:`repro.data.keygen` — join-key universes and multiplicity models.
"""

from repro.data.keygen import (
    date_keys,
    entity_keys,
    random_string_keys,
    subsample_keys,
    zipcode_keys,
    zipf_multiplicities,
)
from repro.data.opendata import (
    KeyDomain,
    OpenDataCollection,
    make_collection,
    make_nyc_like_collection,
    make_wbf_like_collection,
)
from repro.data.sbn import SBNPair, generate_sbn_collection, generate_sbn_pair
from repro.data.workloads import (
    PairRef,
    QueryWorkload,
    collection_column_pairs,
    sample_combinations,
    split_query_workload,
)

__all__ = [
    "KeyDomain",
    "OpenDataCollection",
    "PairRef",
    "QueryWorkload",
    "SBNPair",
    "collection_column_pairs",
    "date_keys",
    "entity_keys",
    "generate_sbn_collection",
    "generate_sbn_pair",
    "make_collection",
    "make_nyc_like_collection",
    "make_wbf_like_collection",
    "random_string_keys",
    "sample_combinations",
    "split_query_workload",
    "subsample_keys",
    "zipcode_keys",
    "zipf_multiplicities",
]
