"""Synthetic Bivariate Normal (SBN) dataset generator (Section 5.1).

The paper's controlled dataset: ``t`` pairs of tables ``T_X = ⟨K_X, X⟩``
and ``T_Y = ⟨K_Y, Y⟩`` where

* the keys are random unique strings shared by both tables,
* ``(x_k, y_k)`` are drawn from a bivariate normal with mean 0 and
  covariance chosen so the population Pearson correlation is a target
  ``r_XY`` drawn uniformly from (−1, 1),
* ``T_Y`` is then thinned to ``n' = n · c`` rows with ``c`` uniform in
  (0, 1) — the join probability.

The paper uses ``t = 3000`` table pairs with row counts up to 500,000;
:func:`generate_sbn_pair` exposes all knobs so the benchmarks can run a
faithfully shaped but laptop-sized configuration (documented per
benchmark in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.data.keygen import random_string_keys, subsample_keys
from repro.table.table import Table, table_from_arrays


@dataclass(frozen=True)
class SBNPair:
    """One generated SBN table pair plus its generation parameters.

    Attributes:
        table_x: the query-side table ``⟨K_X, X⟩`` with ``n`` rows.
        table_y: the candidate-side table ``⟨K_Y, Y⟩`` with ``n·c`` rows.
        target_correlation: the population correlation the bivariate
            normal was configured with.
        join_fraction: the thinning fraction ``c`` applied to ``T_Y``.
    """

    table_x: Table
    table_y: Table
    target_correlation: float
    join_fraction: float


def generate_sbn_pair(
    rng: np.random.Generator,
    *,
    rows: int,
    correlation: float,
    join_fraction: float,
    pair_id: int = 0,
) -> SBNPair:
    """Generate one SBN table pair with explicit parameters.

    Args:
        rng: the source of all randomness.
        rows: number of distinct keys / rows of ``T_X``.
        correlation: target population Pearson correlation in [−1, 1].
        join_fraction: fraction of keys kept in ``T_Y`` (join probability).
        pair_id: used in table names for traceability.

    Raises:
        ValueError: for out-of-range parameters.
    """
    if rows < 2:
        raise ValueError(f"rows must be at least 2, got {rows}")
    if not -1.0 <= correlation <= 1.0:
        raise ValueError(f"correlation must be in [-1, 1], got {correlation}")
    if not 0.0 <= join_fraction <= 1.0:
        raise ValueError(f"join_fraction must be in [0, 1], got {join_fraction}")

    keys = random_string_keys(rows, rng)
    cov = np.array([[1.0, correlation], [correlation, 1.0]])
    xy = rng.multivariate_normal(mean=[0.0, 0.0], cov=cov, size=rows)

    table_x = table_from_arrays(
        f"sbn_{pair_id}_x", keys, xy[:, 0], key_name="k", value_name="x"
    )

    keep = set(subsample_keys(keys, join_fraction, rng))
    mask = np.array([k in keep for k in keys], dtype=bool)
    y_keys = [k for k, m in zip(keys, mask) if m]
    table_y = table_from_arrays(
        f"sbn_{pair_id}_y", y_keys, xy[mask, 1], key_name="k", value_name="y"
    )
    return SBNPair(table_x, table_y, correlation, join_fraction)


def generate_sbn_collection(
    *,
    pairs: int,
    max_rows: int,
    seed: int = 0,
    min_rows: int = 8,
    min_join_fraction: float = 0.0,
) -> Iterator[SBNPair]:
    """Generate the paper's SBN collection, lazily.

    For each of ``pairs`` table pairs: row count uniform in
    ``[min_rows, max_rows]``, target correlation uniform in (−1, 1), join
    fraction uniform in (``min_join_fraction``, 1). The paper uses
    ``pairs = 3000`` and ``max_rows = 500000``.
    """
    if pairs <= 0:
        raise ValueError(f"pairs must be positive, got {pairs}")
    if max_rows < min_rows:
        raise ValueError(f"max_rows {max_rows} below min_rows {min_rows}")
    rng = np.random.default_rng(seed)
    for i in range(pairs):
        rows = int(rng.integers(min_rows, max_rows + 1))
        correlation = float(rng.uniform(-1.0, 1.0))
        join_fraction = float(rng.uniform(min_join_fraction, 1.0))
        yield generate_sbn_pair(
            rng,
            rows=rows,
            correlation=correlation,
            join_fraction=join_fraction,
            pair_id=i,
        )
