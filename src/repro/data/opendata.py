"""Synthetic open-data collections emulating NYC Open Data and WBF.

The paper evaluates on snapshots of NYC Open Data (1,505 tables) and the
World Bank Finances portal (64 tables). Those snapshots are not shippable,
so this module generates collections with the *distributional shape* the
experiments depend on (see DESIGN.md, substitutions):

* a handful of shared key domains (dates, zip codes, entity names) so
  tables are joinable in clusters, with partially overlapping key subsets
  controlling join sizes;
* a **latent-factor value model**: every key carries a vector of latent
  factors ``z_k``; a numeric column loads on one factor with strength
  ``loading`` plus independent noise, so two columns loading on the same
  factor are correlated after a join (≈ loading₁·loading₂) while columns
  on different factors are near-independent. This reproduces the paper's
  "needle in a haystack": most pairs weakly correlated, a planted few
  strongly correlated;
* heavy-tailed value transforms (exponentiation → lognormal-like
  monetary columns for WBF), skewed key multiplicities (repeated keys),
  and missing-cell injection.

Ground truth is *not* taken from the generator — the evaluation harness
always computes actual after-join correlations with the full-data join,
exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.keygen import (
    date_keys,
    entity_keys,
    random_string_keys,
    subsample_keys,
    zipcode_keys,
    zipf_multiplicities,
)
from repro.table.column import CategoricalColumn, NumericColumn
from repro.table.table import Table


@dataclass
class KeyDomain:
    """A shared key universe plus its latent factor matrix.

    Attributes:
        name: domain label (``"dates"``, ``"zips"``, ...).
        keys: the full key universe.
        factors: ``(len(keys), n_factors)`` latent values, standard normal.
    """

    name: str
    keys: list[str]
    factors: np.ndarray

    @property
    def n_factors(self) -> int:
        return int(self.factors.shape[1])


@dataclass
class OpenDataCollection:
    """A generated table collection plus generation metadata.

    Attributes:
        name: collection label (``"nyc-like"`` / ``"wbf-like"``).
        tables: the generated tables.
        domains: the key domains used (exposed for diagnostics/tests).
    """

    name: str
    tables: list[Table]
    domains: list[KeyDomain] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.tables)


def _make_domain(
    name: str, kind: str, size: int, n_factors: int, rng: np.random.Generator
) -> KeyDomain:
    if kind == "dates":
        keys = date_keys(size)
    elif kind == "zips":
        keys = zipcode_keys(size, rng)
    elif kind == "entities":
        keys = entity_keys(size, rng)
    else:
        keys = random_string_keys(size, rng)
    factors = rng.standard_normal((len(keys), n_factors))
    return KeyDomain(name=name, keys=keys, factors=factors)


def _column_values(
    domain: KeyDomain,
    key_indices: np.ndarray,
    rng: np.random.Generator,
    *,
    loading: float,
    factor: int,
    heavy_tail: bool,
    missing_rate: float,
) -> np.ndarray:
    """Generate one numeric column under the latent-factor model."""
    latent = domain.factors[key_indices, factor]
    noise = rng.standard_normal(len(key_indices))
    values = loading * latent + np.sqrt(max(0.0, 1.0 - loading**2)) * noise
    if heavy_tail:
        # Lognormal-style monetary values: heavy right tail, all positive.
        values = np.exp(1.5 * values) * 1e4
    if missing_rate > 0:
        mask = rng.uniform(size=len(values)) < missing_rate
        values = values.copy()
        values[mask] = np.nan
    return values


def _make_table(
    table_id: int,
    domain: KeyDomain,
    rng: np.random.Generator,
    *,
    prefix: str,
    key_fraction_range: tuple[float, float],
    numeric_columns_range: tuple[int, int],
    loading_choices: np.ndarray,
    heavy_tail_prob: float,
    missing_rate_max: float,
    repeat_keys_prob: float,
) -> Table:
    lo, hi = key_fraction_range
    fraction = float(rng.uniform(lo, hi))
    keys = subsample_keys(domain.keys, fraction, rng)
    if len(keys) < 4:
        keys = domain.keys[:4]
    key_to_idx = {k: i for i, k in enumerate(domain.keys)}

    # Optionally repeat keys with skewed multiplicities (exercises the
    # aggregate-on-insert path of sketch construction).
    if rng.uniform() < repeat_keys_prob:
        mult = zipf_multiplicities(len(keys), rng)
        expanded: list[str] = []
        for k, m in zip(keys, mult):
            expanded.extend([k] * int(m))
        row_keys = expanded
    else:
        row_keys = list(keys)
    rng.shuffle(row_keys)
    key_indices = np.array([key_to_idx[k] for k in row_keys], dtype=np.int64)

    n_cols = int(rng.integers(numeric_columns_range[0], numeric_columns_range[1] + 1))
    columns: list[NumericColumn | CategoricalColumn] = [
        CategoricalColumn(f"{domain.name}_key", row_keys)
    ]
    for c in range(n_cols):
        loading = float(rng.choice(loading_choices))
        factor = int(rng.integers(0, domain.n_factors))
        heavy = bool(rng.uniform() < heavy_tail_prob)
        missing = float(rng.uniform(0.0, missing_rate_max))
        values = _column_values(
            domain,
            key_indices,
            rng,
            loading=loading,
            factor=factor,
            heavy_tail=heavy,
            missing_rate=missing,
        )
        columns.append(NumericColumn(f"num_{c}", values))
    return Table(f"{prefix}_{table_id:04d}", columns)


def make_collection(
    *,
    name: str,
    n_tables: int,
    seed: int,
    domain_specs: list[tuple[str, str, int, int]],
    key_fraction_range: tuple[float, float] = (0.2, 1.0),
    numeric_columns_range: tuple[int, int] = (1, 3),
    loading_choices: tuple[float, ...] = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.98),
    heavy_tail_prob: float = 0.15,
    missing_rate_max: float = 0.1,
    repeat_keys_prob: float = 0.3,
) -> OpenDataCollection:
    """Generate a synthetic open-data collection.

    Args:
        name: collection label.
        n_tables: number of tables to generate.
        seed: master seed; the collection is fully reproducible from it.
        domain_specs: ``(name, kind, universe_size, n_factors)`` per key
            domain; tables are assigned to domains round-robin-with-jitter
            so every domain hosts a joinable cluster.
        key_fraction_range: per-table range of the key-subset fraction.
        numeric_columns_range: inclusive range of numeric columns per table.
        loading_choices: factor loadings sampled per column — the planted
            correlation spectrum (many weak, few strong).
        heavy_tail_prob: probability a column gets the lognormal transform.
        missing_rate_max: per-column missing-cell rate upper bound.
        repeat_keys_prob: probability a table repeats keys (Zipf counts).
    """
    if n_tables <= 0:
        raise ValueError(f"n_tables must be positive, got {n_tables}")
    rng = np.random.default_rng(seed)
    domains = [
        _make_domain(dname, kind, size, nf, rng)
        for dname, kind, size, nf in domain_specs
    ]
    tables = []
    for i in range(n_tables):
        domain = domains[int(rng.integers(0, len(domains)))]
        tables.append(
            _make_table(
                i,
                domain,
                rng,
                prefix=name.replace("-", "_"),
                key_fraction_range=key_fraction_range,
                numeric_columns_range=numeric_columns_range,
                loading_choices=np.asarray(loading_choices),
                heavy_tail_prob=heavy_tail_prob,
                missing_rate_max=missing_rate_max,
                repeat_keys_prob=repeat_keys_prob,
            )
        )
    return OpenDataCollection(name=name, tables=tables, domains=domains)


def make_nyc_like_collection(
    n_tables: int = 120,
    seed: int = 42,
    key_universe: int = 600,
    key_fraction_range: tuple[float, float] = (0.2, 1.0),
) -> OpenDataCollection:
    """NYC-Open-Data-shaped collection: many tables, date/zip keys.

    The real snapshot has 1,505 tables; the default here is laptop-sized
    but keeps the shape (several joinable clusters, mostly-weak planted
    correlations, repeated keys, some missing data). Scale ``n_tables`` up
    for larger runs; widen ``key_fraction_range`` downward (e.g. ``(0.02,
    0.8)``) to produce many small-join pairs, the regime where Figure 3's
    false positives live.
    """
    return make_collection(
        name="nyc-like",
        n_tables=n_tables,
        seed=seed,
        domain_specs=[
            ("dates", "dates", key_universe, 6),
            ("zips", "zips", min(2000, key_universe), 6),
            ("entities", "entities", max(60, key_universe // 4), 4),
        ],
        key_fraction_range=key_fraction_range,
        heavy_tail_prob=0.15,
        missing_rate_max=0.08,
    )


def make_wbf_like_collection(
    n_tables: int = 64,
    seed: int = 7,
    key_universe: int = 400,
    key_fraction_range: tuple[float, float] = (0.2, 1.0),
) -> OpenDataCollection:
    """World-Bank-Finances-shaped collection: fewer tables, monetary tails.

    Matches the paper's description: 64 tables, missing data in several
    columns, columns with large monetary values (heavy right tails).
    """
    return make_collection(
        name="wbf-like",
        n_tables=n_tables,
        seed=seed,
        domain_specs=[
            ("entities", "entities", key_universe, 5),
            ("dates", "dates", key_universe, 5),
        ],
        key_fraction_range=key_fraction_range,
        heavy_tail_prob=0.45,
        missing_rate_max=0.2,
        repeat_keys_prob=0.4,
    )
