"""Command-line interface: ``repro-sketch``.

The operations of a join-correlation deployment, as subcommands:

* ``index``    — sketch every ⟨categorical, numeric⟩ column pair of every
  CSV file in a directory and persist the catalog (offline). The output
  extension picks the format: ``.npz`` writes the binary columnar
  snapshot (fast cold starts), anything else the portable JSON.
  ``--lsh`` additionally builds the MinHash-LSH retrieval index so an
  ``.npz`` snapshot ships it warm.
* ``query``    — run a top-k join-correlation query against a saved
  catalog, using one column pair of a query CSV (online). ``--retrieval
  lsh`` serves the candidate phase from the approximate MinHash-LSH
  backend (``--bands``/``--rows`` tune it); ``--queries-dir`` evaluates
  every column pair of every CSV in a directory as one batched
  multi-query round trip (:meth:`JoinCorrelationEngine.query_batch`).
* ``serve``    — a long-lived HTTP query service over a warm catalog
  (monolithic or ``--catalog-dir`` sharded): ``POST /query`` sketches a
  client-supplied column pair and answers through a request-coalescing
  window (``--max-batch``/``--max-wait-ms``) with responses
  bit-identical to per-request evaluation; ``POST /estimate``,
  ``GET /catalog/info`` and ``GET /healthz`` ride along. SIGTERM/SIGINT
  drain gracefully. Shares the ``query`` verb's tuning flags — one
  options-building helper feeds both, so they cannot diverge.
* ``estimate`` — one-off: estimate the after-join correlation between two
  CSV column pairs directly from freshly built sketches.
* ``catalog``  — catalog management; ``catalog info <path>`` reports
  statistics, format, on-disk size and pending delta/tombstone state
  (``info <path>`` is the shorthand); ``catalog compact <path>`` folds
  the delta layer into fresh frozen structures and re-saves;
  ``catalog verify <path>`` checksums a snapshot's payload without
  loading it (exit 1 on mismatch).
* ``shard``    — sharded-catalog management: ``shard build`` partitions a
  CSV collection across N shards into a manifest directory
  (:mod:`repro.serving`); ``shard info`` reports the layout and per-shard
  delta state from the manifest alone, without materializing any shard;
  ``shard compact`` compacts every shard in place; ``shard verify``
  checksums every shard snapshot and lists quarantine candidates.
  ``query --catalog-dir <dir>`` serves queries from such a directory
  scatter-gather (``--workers`` fans the shard probes out on threads),
  with results bit-identical to a monolithic catalog;
  ``--deadline-ms``/``--on-shard-error partial`` trade that exactness
  for availability, serving surviving shards when one is slow or broken.

Missing or corrupt catalog/CSV inputs print a one-line ``error:`` and
exit with status 2 instead of a traceback.

Examples::

    repro-sketch index data/portal/ -o catalog.npz --sketch-size 256
    repro-sketch query catalog.npz taxi.csv --key date --value pickups -k 10
    repro-sketch query catalog.npz taxi.csv --scorer rb_cib --profile
    repro-sketch query catalog.npz --queries-dir my_tables/ -k 5
    repro-sketch query catalog.npz taxi.csv --retrieval lsh --bands 32 --rows 2
    repro-sketch serve catalog.npz --port 8765 --max-batch 16
    repro-sketch serve --catalog-dir catalog-dir/ --workers 4
    repro-sketch estimate left.csv right.csv --left-key date --right-key day
    repro-sketch catalog info catalog.npz
    repro-sketch shard build data/portal/ -o catalog-dir/ --shards 4
    repro-sketch shard info catalog-dir/
    repro-sketch query --catalog-dir catalog-dir/ taxi.csv --workers 4
"""

from __future__ import annotations

import argparse
import sys
import time
import zipfile
from pathlib import Path

from repro.core.estimation import estimate as estimate_pair
from repro.core.sketch import CorrelationSketch
from repro.index.catalog import SketchCatalog
from repro.index.engine import RETRIEVAL_BACKENDS, JoinCorrelationEngine
from repro.index.lsh import DEFAULT_BANDS, DEFAULT_ROWS
from repro.index.options import QueryOptions
from repro.index.snapshot import detect_format
from repro.ranking.scoring import RNG_MODES, SCORER_NAMES
from repro.table.csv_io import read_csv
from repro.table.table import ColumnPair, Table


class _CliError(Exception):
    """One-line operational failure: printed to stderr, exit status 2.

    Distinct from argparse usage errors (SystemExit) — this is the "your
    inputs were well-formed but the files they name are missing or
    corrupt" path the serving scripts match on.
    """


def _fail(message: str) -> "_CliError":
    return _CliError(message)


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer, clear message otherwise."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _positive_float(text: str) -> float:
    """argparse type: a strictly positive float, clear message otherwise."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {text}")
    return value


def _non_negative_float(text: str) -> float:
    """argparse type: a float >= 0, clear message otherwise."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be non-negative, got {text}")
    return value


#: Mirrors repro.serving.ON_SHARD_ERROR_POLICIES; kept literal so building
#: the parser never imports the serving stack (parity is pinned in tests).
_ON_SHARD_ERROR_CHOICES = ("raise", "partial")


def _add_query_tuning_args(parser: argparse.ArgumentParser) -> None:
    """The query-tuning flags, shared verbatim by ``query`` and ``serve``.

    One helper (feeding one :func:`_options_from_args`) so the two verbs
    cannot drift: a knob added here reaches both, with the same name,
    type, default and help text.
    """
    parser.add_argument(
        "-k", type=_positive_int, default=10, help="result-list size"
    )
    parser.add_argument("--scorer", default="rp_cih", choices=SCORER_NAMES)
    parser.add_argument(
        "--depth", type=_positive_int, default=100, help="overlap retrieval depth"
    )
    parser.add_argument(
        "--retrieval",
        default="inverted",
        choices=RETRIEVAL_BACKENDS,
        help="candidate-retrieval backend: 'inverted' probes the exact "
        "inverted index (default); 'lsh' the approximate MinHash-LSH "
        "index — sub-linear probes, recall < 1 on low-overlap candidates",
    )
    parser.add_argument(
        "--bands",
        type=_positive_int,
        default=None,
        help="LSH bands (with --retrieval lsh); collision threshold is "
        "roughly (1/bands)**(1/rows) Jaccard. Default: the banding of a "
        f"warm snapshot index if present, else {DEFAULT_BANDS}",
    )
    parser.add_argument(
        "--rows",
        type=_positive_int,
        default=None,
        help="LSH rows per band (with --retrieval lsh); default: the warm "
        f"snapshot index's if present, else {DEFAULT_ROWS}",
    )
    parser.add_argument(
        "--min-overlap",
        type=int,
        default=1,
        help="minimum shared key hashes for a candidate to be considered "
        "joinable (default 1)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed for the stochastic scorers (random, rb_cib bootstrap); "
        "default: the engine's fixed seed, so repeated queries match",
    )
    parser.add_argument(
        "--no-vectorized-query",
        action="store_true",
        help="evaluate the query with the row-at-a-time reference executor "
        "instead of the (identical-ranking, much faster) columnar one",
    )
    parser.add_argument(
        "--rng-mode",
        default="batched",
        choices=RNG_MODES,
        help="how rb_cib runs the PM1 bootstrap over the candidate page: "
        "'batched' resamples all candidates through the cross-candidate "
        "engine (default, a multiple faster); 'compat' reproduces the "
        "per-candidate rng stream bit-for-bit",
    )
    parser.add_argument(
        "--deadline-ms",
        type=_positive_float,
        default=None,
        help="per-query wall-clock budget for the shard probe scatter "
        "(with --catalog-dir); shards that miss it are dropped under "
        "--on-shard-error partial, or fail the query under raise",
    )
    parser.add_argument(
        "--on-shard-error",
        default=None,
        choices=_ON_SHARD_ERROR_CHOICES,
        help="what a failed/late shard does to the query (with "
        "--catalog-dir): 'raise' fails it (default), 'partial' serves "
        "the surviving shards and flags the result degraded",
    )


def _load_catalog(path: str | Path) -> SketchCatalog:
    """Load a single-file catalog, mapping failures to one-line errors."""
    path = Path(path)
    if path.is_dir():
        raise _fail(
            f"{path} is a directory — sharded catalogs are served with "
            "--catalog-dir (or inspected with `shard info`)"
        )
    try:
        return SketchCatalog.load(path)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        raise _fail(f"cannot load catalog {path}: {exc}") from exc


def _load_sharded(directory: str | Path):
    """Load a sharded-catalog manifest directory (lazy shards)."""
    from repro.serving import ShardedCatalog

    try:
        return ShardedCatalog.load(directory)
    except (OSError, ValueError, KeyError) as exc:
        raise _fail(f"cannot load sharded catalog {directory}: {exc}") from exc


def _read_csv_table(path: str | Path) -> Table:
    """Read one CSV, mapping missing/corrupt files to one-line errors."""
    try:
        return read_csv(path)
    except (OSError, ValueError) as exc:
        raise _fail(f"cannot read {path}: {exc}") from exc


def _resolve_pair(table: Table, key: str | None, value: str | None) -> ColumnPair:
    """Pick a ⟨key, value⟩ pair from a table, defaulting to the first."""
    pairs = table.column_pairs()
    if not pairs:
        raise SystemExit(
            f"error: {table.name!r} has no categorical/numeric column pair "
            f"(categorical: {table.categorical_names()}, "
            f"numeric: {table.numeric_names()})"
        )
    if key is None and value is None:
        return pairs[0]
    for pair in pairs:
        if (key is None or pair.key == key) and (value is None or pair.value == value):
            return pair
    raise SystemExit(
        f"error: no pair key={key!r} value={value!r} in {table.name!r}; "
        f"available: {[p.pair_id for p in pairs]}"
    )


def _build_query_sketch(
    table: Table, pair: ColumnPair, catalog: SketchCatalog
) -> CorrelationSketch:
    sketch = CorrelationSketch(
        catalog.sketch_size,
        aggregate=catalog.aggregate,
        hasher=catalog.hasher,
        name=pair.pair_id,
    )
    keys, values = table.pair_arrays(pair)
    sketch.update_array(keys, values)
    return sketch


def _ingest_csvs(catalog, csv_files, verbose: bool) -> int:
    """Sketch every CSV into ``catalog`` (monolithic or sharded —
    ``add_table`` is the shared ingest surface); returns the pair count.
    Unparseable files are skipped with a warning, as a portal crawl
    must tolerate junk files."""
    n_pairs = 0
    for path in csv_files:
        try:
            table = read_csv(path)
        except ValueError as exc:
            print(f"skipping {path.name}: {exc}", file=sys.stderr)
            continue
        ids = catalog.add_table(table)
        n_pairs += len(ids)
        if verbose:
            print(f"  {path.name}: {len(ids)} column pair(s)")
    return n_pairs


def cmd_index(args: argparse.Namespace) -> int:
    directory = Path(args.directory)
    csv_files = sorted(directory.glob("*.csv"))
    if not csv_files:
        print(f"error: no CSV files under {directory}", file=sys.stderr)
        return 1
    catalog = SketchCatalog(
        sketch_size=args.sketch_size,
        aggregate=args.aggregate,
        vectorized=not args.no_vectorized,
    )
    t0 = time.perf_counter()
    n_pairs = _ingest_csvs(catalog, csv_files, args.verbose)
    if args.lsh:
        if Path(args.output).suffix == ".npz":
            # Build the LSH index now so the snapshot ships it warm — the
            # serving process then probes --retrieval lsh without a rebuild.
            catalog.lsh_index(bands=args.lsh_bands, rows=args.lsh_rows)
        else:
            # JSON persists no LSH members; building one here would be
            # silently thrown away.
            print(
                "warning: --lsh ignored — only .npz snapshots persist the "
                "LSH index (JSON catalogs rebuild it lazily)",
                file=sys.stderr,
            )
    catalog.save(args.output)
    elapsed = time.perf_counter() - t0
    print(
        f"indexed {n_pairs} column pairs from {len(csv_files)} files "
        f"in {elapsed:.2f}s -> {args.output}"
    )
    return 0


def _print_ranked(ranked) -> None:
    header = f"{'rank':<5}{'column pair':<55}{'score':>8}{'est r':>8}{'n':>6}"
    print(header)
    print("-" * len(header))
    for rank, entry in enumerate(ranked, start=1):
        print(
            f"{rank:<5}{entry.candidate_id:<55}{entry.score:>8.3f}"
            f"{entry.stats.r_pearson:>8.3f}{entry.stats.sample_size:>6}"
        )


def _options_from_args(args: argparse.Namespace) -> QueryOptions:
    """The one place CLI flags become a :class:`QueryOptions` record.

    Shared by ``query`` and ``serve`` (whose flags come from the same
    :func:`_add_query_tuning_args`), so the two verbs cannot silently
    diverge on what ``--deadline-ms``/``--on-shard-error``/
    ``--retrieval``/``--rng-mode`` and friends mean.
    """
    return QueryOptions(
        k=args.k,
        depth=args.depth,
        scorer=args.scorer,
        min_overlap=args.min_overlap,
        vectorized=not args.no_vectorized_query,
        rng_mode=args.rng_mode,
        retrieval_backend=args.retrieval,
        lsh_bands=args.bands,
        lsh_rows=args.rows,
        seed=args.seed,
        deadline_ms=args.deadline_ms,
        on_shard_error=(
            "raise" if args.on_shard_error is None else args.on_shard_error
        ),
    )


def _build_session(catalog_path, catalog_dir, options, workers):
    """Load a catalog (file or manifest dir) and wrap it in a warm
    :class:`~repro.serving.session.QuerySession`; returns
    ``(session, catalog, executor_label)``."""
    from repro.serving import QuerySession, ShardRouter

    if catalog_dir is not None:
        catalog = _load_sharded(catalog_dir)
        session = QuerySession(
            ShardRouter.from_options(catalog, options, workers=workers),
            options,
        )
        label = (
            f"sharded ({catalog.n_shards} shards, "
            f"workers={workers if workers is not None else 1})"
        )
    else:
        catalog = _load_catalog(catalog_path)
        session = QuerySession(
            JoinCorrelationEngine.from_options(catalog, options), options
        )
        label = "scalar" if not options.vectorized else "columnar"
    return session, catalog, label


def _run_resilient(run, args: argparse.Namespace):
    """Run a query callable, mapping a missed deadline under the default
    ``raise`` policy to the one-line-error/exit-2 discipline."""
    from repro.serving import DeadlineExceeded

    try:
        return run()
    except DeadlineExceeded as exc:
        raise _fail(
            f"deadline of {args.deadline_ms:g} ms exceeded ({exc}); "
            "--on-shard-error partial serves the surviving shards instead"
        ) from exc


def _print_degraded(result) -> None:
    """One line whenever a partial-policy answer lost shards."""
    if getattr(result, "degraded", False):
        survived = result.shards_probed - result.shards_failed
        print(
            f"degraded   : {survived}/{result.shards_probed} shard(s) "
            f"answered, {result.shards_failed} dropped"
        )


def _print_profile(results) -> None:
    """Per-phase table from the results' trace spans.

    Shared batch-wide spans (retrieval/score stacked across the whole
    window) carry identical ``(name, start, duration)`` in every
    query's trace and are counted once; per-query spans sum. Falls back
    to the legacy two-line retrieval/re-rank split when no trace was
    recorded (a backend that predates tracing).
    """
    totals: dict[str, float] = {}
    seen_shared: set[tuple] = set()
    for result in results:
        block = getattr(result, "trace", None)
        if not block:
            continue
        for span in block["spans"]:
            if "parent" in span:
                continue
            if span.get("meta", {}).get("shared"):
                key = (
                    span["name"], span["start_ms"], span["duration_ms"]
                )
                if key in seen_shared:
                    continue
                seen_shared.add(key)
            totals[span["name"]] = (
                totals.get(span["name"], 0.0) + span["duration_ms"]
            )
    if not totals:
        retrieval_ms = sum(r.retrieval_seconds for r in results) * 1000
        rerank_ms = sum(r.rerank_seconds for r in results) * 1000
        wall = max(retrieval_ms + rerank_ms, 1e-9)
        print(
            f"profile    : retrieval  {retrieval_ms:8.2f} ms "
            f"({100 * retrieval_ms / wall:5.1f}%)"
        )
        print(
            f"             re-rank    {rerank_ms:8.2f} ms "
            f"({100 * rerank_ms / wall:5.1f}%)"
        )
        return
    wall = max(sum(totals.values()), 1e-9)
    label = "profile    :"
    for name, ms in totals.items():
        print(
            f"{label} {name:<10} {ms:8.2f} ms ({100 * ms / wall:5.1f}%)"
        )
        label = "            "


def cmd_query(args: argparse.Namespace) -> int:
    if args.catalog_dir is not None and args.catalog is not None:
        # `query --catalog-dir DIR some.csv` parses the CSV into the
        # catalog positional; reinterpret it as the query CSV.
        if args.query_csv is None:
            args.query_csv = args.catalog
            args.catalog = None
        else:
            raise SystemExit(
                "error: provide either a catalog file or --catalog-dir, "
                "not both"
            )
    if args.catalog is None and args.catalog_dir is None:
        raise SystemExit(
            "error: provide a catalog file or --catalog-dir"
        )
    if args.workers is not None and args.catalog_dir is None:
        raise SystemExit(
            "error: --workers fans shard probes out and needs --catalog-dir"
        )
    if args.no_vectorized_query and args.catalog_dir is not None:
        raise SystemExit(
            "error: --no-vectorized-query selects the single-catalog "
            "reference executor; the sharded router is columnar-only"
        )
    if args.query_csv is not None and args.queries_dir is not None:
        raise SystemExit(
            "error: provide either a query CSV or --queries-dir, not both"
        )
    if args.query_csv is None and args.queries_dir is None:
        raise SystemExit(
            "error: provide a query CSV (single query) or --queries-dir "
            "(batched multi-query round)"
        )
    if args.queries_dir is not None and (args.key or args.value):
        raise SystemExit(
            "error: --key/--value select one pair of a single query CSV; "
            "--queries-dir always evaluates every column pair"
        )
    if (
        args.deadline_ms is not None or args.on_shard_error is not None
    ) and args.catalog_dir is None:
        raise SystemExit(
            "error: --deadline-ms/--on-shard-error bound the sharded "
            "scatter-gather and need --catalog-dir"
        )
    options = _options_from_args(args)
    session, catalog, executor_label = _build_session(
        args.catalog, args.catalog_dir, options, args.workers
    )
    if args.queries_dir is not None:
        return _run_query_batch(catalog, session, executor_label, args)

    table = _read_csv_table(args.query_csv)
    pair = _resolve_pair(table, args.key, args.value)
    sketch = _build_query_sketch(table, pair, catalog)

    result = _run_resilient(
        lambda: session.submit_one(
            sketch, exclude_id=pair.pair_id, trace=args.profile
        ),
        args,
    )

    print(f"query pair : {pair.pair_id}")
    print(f"scorer     : {args.scorer}")
    print(f"executor   : {executor_label}")
    print(f"retrieval  : {args.retrieval}")
    print(
        f"candidates : {result.candidates_considered} joinable "
        f"({result.total_seconds * 1000:.1f} ms)"
    )
    _print_degraded(result)
    if args.profile:
        _print_profile([result])
    print()
    if not result.ranked:
        print("no joinable candidates found")
        return 0
    _print_ranked(result.ranked)
    return 0


def _run_query_batch(
    catalog, session, executor_label: str, args: argparse.Namespace
) -> int:
    """``query --queries-dir``: every column pair of every CSV in the
    directory becomes one query of a single ``query_batch`` round."""
    directory = Path(args.queries_dir)
    csv_files = sorted(directory.glob("*.csv"))
    if not csv_files:
        print(f"error: no CSV files under {directory}", file=sys.stderr)
        return 1
    sketches = []
    pair_ids = []
    for path in csv_files:
        try:
            table = read_csv(path)
        except ValueError as exc:
            print(f"skipping {path.name}: {exc}", file=sys.stderr)
            continue
        for pair in table.column_pairs():
            sketches.append(_build_query_sketch(table, pair, catalog))
            pair_ids.append(pair.pair_id)
    if not sketches:
        print(f"error: no sketchable column pairs under {directory}", file=sys.stderr)
        return 1

    t0 = time.perf_counter()
    results = _run_resilient(
        lambda: session.submit(
            sketches, exclude_ids=pair_ids, trace=args.profile
        ),
        args,
    )
    elapsed = time.perf_counter() - t0

    print(f"queries    : {len(sketches)} column pair(s) from {len(csv_files)} file(s)")
    print(f"scorer     : {args.scorer}")
    print(f"executor   : {executor_label}")
    print(f"retrieval  : {args.retrieval}")
    print(
        f"batch time : {elapsed * 1000:.1f} ms "
        f"({elapsed * 1000 / len(sketches):.2f} ms/query)"
    )
    if args.profile and results:
        # Phase timings come from the per-query trace spans: shared
        # batch passes counted once, per-query slices summed — not the
        # old equal-share split of the aggregate timing fields.
        _print_profile(results)
    for pair_id, result in zip(pair_ids, results):
        print()
        print(
            f"query pair : {pair_id} "
            f"({result.candidates_considered} joinable candidates)"
        )
        _print_degraded(result)
        if not result.ranked:
            print("no joinable candidates found")
            continue
        _print_ranked(result.ranked)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro-sketch serve``: a long-lived coalescing HTTP query service.

    The catalog loads once and stays warm; concurrent ``/query``
    requests coalesce into batched execution with responses
    bit-identical to per-request evaluation. SIGTERM/SIGINT drain
    gracefully: accepted requests finish, then the process exits.
    """
    if args.catalog_dir is not None and args.catalog is not None:
        raise SystemExit(
            "error: provide either a catalog file or --catalog-dir, "
            "not both"
        )
    if args.catalog is None and args.catalog_dir is None:
        raise SystemExit(
            "error: provide a catalog file or --catalog-dir"
        )
    if args.workers is not None and args.catalog_dir is None:
        raise SystemExit(
            "error: --workers fans shard probes out and needs --catalog-dir"
        )
    if args.no_vectorized_query and args.catalog_dir is not None:
        raise SystemExit(
            "error: --no-vectorized-query selects the single-catalog "
            "reference executor; the sharded router is columnar-only"
        )
    if (
        args.deadline_ms is not None or args.on_shard_error is not None
    ) and args.catalog_dir is None:
        raise SystemExit(
            "error: --deadline-ms/--on-shard-error bound the sharded "
            "scatter-gather and need --catalog-dir"
        )
    if args.seed is not None:
        raise SystemExit(
            "error: --seed pins one shared rng stream, which would make "
            "coalesced responses depend on window composition; the "
            "service always uses the per-query fixed-seed default"
        )
    if args.slow_query_log is not None and args.slow_query_ms is None:
        raise SystemExit(
            "error: --slow-query-log names a sink for the slow-query "
            "log; enable it with --slow-query-ms"
        )
    from repro.serving import QueryService

    options = _options_from_args(args)
    session, catalog, executor_label = _build_session(
        args.catalog, args.catalog_dir, options, args.workers
    )
    service = QueryService(
        session,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        slow_query_ms=args.slow_query_ms,
        slow_query_log=args.slow_query_log,
    )
    source = args.catalog_dir if args.catalog_dir is not None else args.catalog
    print(f"serving    : {source} ({len(catalog)} sketches, {executor_label})")
    print(f"scorer     : {options.scorer} (k={options.k})")
    print(f"retrieval  : {options.retrieval_backend}")
    print(
        f"window     : max_batch={args.max_batch} "
        f"max_wait_ms={args.max_wait_ms:g}"
    )
    if args.slow_query_ms is not None:
        sink = args.slow_query_log or "stderr"
        print(
            f"slow log   : queries over {args.slow_query_ms:g} ms "
            f"-> {sink}"
        )
    service.start()
    host, port = service.address
    print(f"listening  : http://{host}:{port}", flush=True)
    print(f"metrics    : http://{host}:{port}/metrics", flush=True)
    service.wait_for_shutdown()
    print("drained    : all accepted requests served", flush=True)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    """``repro-sketch stats URL``: one-shot operational summary of a
    running service, rendered from ``/healthz`` and ``/metrics``."""
    import json
    import urllib.error
    import urllib.request

    from repro.obs import parse_prometheus_text, quantiles_from_buckets

    base = args.url.rstrip("/")
    if "://" not in base:
        base = "http://" + base

    def fetch(path: str) -> str:
        try:
            with urllib.request.urlopen(
                base + path, timeout=args.timeout
            ) as resp:
                return resp.read().decode()
        except (urllib.error.URLError, OSError) as exc:
            raise _fail(f"cannot fetch {base}{path}: {exc}") from exc

    try:
        health = json.loads(fetch("/healthz"))
    except json.JSONDecodeError as exc:
        raise _fail(f"/healthz returned invalid JSON: {exc}") from exc
    try:
        families = parse_prometheus_text(fetch("/metrics"))
    except ValueError as exc:
        raise _fail(f"/metrics is not valid Prometheus text: {exc}") from exc

    coalescer = health.get("coalescer", {})
    shards = health.get("shards", {})
    workers = health.get("workers", {})
    print(f"service    : {base}")
    print(
        f"status     : {health.get('status', '?')} "
        f"(version {health.get('version', '?')}, "
        f"up {health.get('uptime_seconds', 0.0):g} s)"
    )
    print(
        f"coalescer  : {coalescer.get('submitted', 0)} submitted, "
        f"{coalescer.get('batches', 0)} batches, "
        f"{coalescer.get('coalesced', 0)} coalesced "
        f"(largest window {coalescer.get('largest_batch', 0)})"
    )
    print(
        f"shards     : {shards.get('count', '?')} "
        f"({shards.get('errors', 0)} probe/assemble errors)"
    )
    if workers.get("count"):
        fallback = (
            ", sequential fallback"
            if workers.get("sequential_fallback")
            else ""
        )
        print(
            f"workers    : {workers['count']} "
            f"({workers.get('respawns', 0)} respawns{fallback})"
        )

    def served(family: str) -> float:
        return sum(
            value
            for suffix, _, value in families.get(family, {}).get(
                "samples", []
            )
            if suffix == ""
        )

    print(f"queries    : {served('repro_queries_total'):g} served")
    latency = families.get("repro_query_seconds")
    if latency is not None:
        count = sum(
            v
            for suffix, _, v in latency["samples"]
            if suffix == "_count"
        )
        if count:
            qs = quantiles_from_buckets(latency)
            rendered = "  ".join(
                f"p{int(q * 100)} {value * 1000.0:.2f} ms"
                for q, value in sorted(qs.items())
            )
            print(f"latency    : {rendered} (from bucket counts)")
    phases = families.get("repro_phase_seconds")
    if phases is not None:
        by_phase: dict[str, tuple[float, float]] = {}
        for suffix, labels, value in phases["samples"]:
            phase = labels.get("phase")
            if phase is None:
                continue
            total, count = by_phase.get(phase, (0.0, 0.0))
            if suffix == "_sum":
                total += value
            elif suffix == "_count":
                count += value
            by_phase[phase] = (total, count)
        for phase, (total, count) in by_phase.items():
            if count:
                print(
                    f"phase      : {phase:<12} "
                    f"{total * 1000.0 / count:8.2f} ms/query mean "
                    f"({int(count)} samples)"
                )
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    left_table = _read_csv_table(args.left_csv)
    right_table = _read_csv_table(args.right_csv)
    left_pair = _resolve_pair(left_table, args.left_key, args.left_value)
    right_pair = _resolve_pair(right_table, args.right_key, args.right_value)

    left = CorrelationSketch(args.sketch_size, aggregate=args.aggregate, name=left_pair.pair_id)
    left.update_array(*left_table.pair_arrays(left_pair))
    right = CorrelationSketch(
        args.sketch_size, aggregate=args.aggregate, hasher=left.hasher,
        name=right_pair.pair_id,
    )
    right.update_array(*right_table.pair_arrays(right_pair))

    result = estimate_pair(left, right, estimator=args.estimator)
    print(f"left pair            : {left_pair.pair_id}")
    print(f"right pair           : {right_pair.pair_id}")
    print(f"sketch-join sample   : {result.sample_size}")
    print(f"estimated correlation: {result.correlation:+.4f} ({args.estimator})")
    print(f"Fisher z SE          : {result.fisher_se:.4f}")
    print(f"HFD interval         : [{result.hfd.low:+.3f}, {result.hfd.high:+.3f}]")
    print(f"est. join size       : {result.join_size_est:,.0f}")
    print(f"est. containment     : {result.containment_est:.3f}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    path = Path(args.catalog)
    if path.is_dir():
        # A manifest directory: report the sharded layout instead of
        # failing on a directory read.
        return _print_shard_info(path)
    catalog = _load_catalog(path)
    # sketch_columns serves snapshot-loaded sketches from their stored
    # array views, so info on a binary catalog materializes nothing.
    sizes = [catalog.sketch_columns(sid).size for sid in catalog]
    storage = catalog.storage_info()
    print(f"catalog      : {path}")
    print(f"format       : {detect_format(path)}")
    print(f"on-disk bytes: {path.stat().st_size:,}")
    print(f"storage      : {storage['backend']}")
    print(
        f"array bytes  : {storage['mapped_bytes']:,} mapped, "
        f"{storage['materialized_bytes']:,} materialized"
    )
    if storage["arena"] is not None:
        arena = storage["arena"]
        print(
            f"arena        : {arena['arrays']} arrays, "
            f"{arena['header_bytes']:,} header bytes"
        )
    print(f"sketches     : {len(catalog)}")
    print(f"sketch size  : {catalog.sketch_size} (aggregate: {catalog.aggregate})")
    print(f"hash scheme  : bits={catalog.hasher.bits} seed={catalog.hasher.seed}")
    if sizes:
        print(f"entries      : min={min(sizes)} max={max(sizes)} total={sum(sizes)}")
    print(f"posting keys : {catalog.vocabulary_size}")
    print(
        f"delta layer  : {catalog.delta_size} pending sketch(es), "
        f"{catalog.tombstone_count} tombstone(s)"
    )
    print(f"index version: {catalog.index_version} (compactions folded in)")
    lsh = catalog.lsh_params
    if lsh is not None:
        print(f"lsh index    : warm (bands={lsh[0]} rows={lsh[1]})")
    else:
        print(
            "lsh index    : none (index --lsh persists one; otherwise each "
            "--retrieval lsh process rebuilds it)"
        )
    return 0


def cmd_compact(args: argparse.Namespace) -> int:
    """``catalog compact``: fold the delta layer into fresh frozen
    structures and persist the result (in place unless ``-o``)."""
    path = Path(args.catalog)
    catalog = _load_catalog(path)
    delta, tombstones = catalog.delta_size, catalog.tombstone_count
    t0 = time.perf_counter()
    version = catalog.compact()
    output = Path(args.output) if args.output is not None else path
    try:
        catalog.save(output)
    except OSError as exc:
        raise _fail(f"cannot write catalog {output}: {exc}") from exc
    elapsed = time.perf_counter() - t0
    print(
        f"compacted {path}: folded {delta} delta sketch(es) and "
        f"{tombstones} tombstone(s) in {elapsed:.2f}s -> {output} "
        f"(index version {version})"
    )
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    """``catalog convert``: rewrite a catalog in another format/layout.

    The output format follows the output extension exactly as
    ``catalog.save`` dispatches it: ``.npz`` the binary snapshot,
    ``.arena`` the zero-copy mmap arena, anything else portable JSON.
    The write is atomic, so converting onto an existing file (including
    the input itself) either fully succeeds or leaves it untouched.
    """
    path = Path(args.catalog)
    output = Path(args.output)
    catalog = _load_catalog(path)
    t0 = time.perf_counter()
    try:
        catalog.save(output)
    except OSError as exc:
        raise _fail(f"cannot write catalog {output}: {exc}") from exc
    elapsed = time.perf_counter() - t0
    print(
        f"converted {path} ({detect_format(path)}) -> {output} "
        f"({detect_format(output)}) in {elapsed:.2f}s "
        f"[{output.stat().st_size:,} bytes, {len(catalog)} sketches]"
    )
    return 0


def _verify_status(path: Path) -> tuple[str, bool]:
    """Checksum one snapshot file: (human status, is_failure).

    ``verify_snapshot`` answers True (payload matches), False (bit rot),
    or None (a format with no checksum: JSON, or a pre-checksum binary);
    an unreadable/truncated container is itself a failure.
    """
    from repro.index.snapshot import verify_snapshot

    try:
        verdict = verify_snapshot(path)
    except (OSError, ValueError, KeyError, zipfile.BadZipFile) as exc:
        return f"FAILED (unreadable: {exc})", True
    if verdict is True:
        return "ok", False
    if verdict is False:
        return "FAILED (checksum mismatch)", True
    return f"unchecked (no checksum: {detect_format(path)})", False


def cmd_catalog_verify(args: argparse.Namespace) -> int:
    """``catalog verify``: checksum one snapshot without loading it."""
    path = Path(args.catalog)
    if path.is_dir():
        raise _fail(
            f"{path} is a directory — sharded catalogs are verified with "
            "`shard verify`"
        )
    if not path.is_file():
        raise _fail(f"cannot verify catalog {path}: no such file")
    status, failed = _verify_status(path)
    print(f"{path}: {status}")
    if failed:
        print(
            "1 file failed verification — loading with "
            "on_corruption='quarantine' sets the damaged file aside",
            file=sys.stderr,
        )
    return 1 if failed else 0


def cmd_shard_verify(args: argparse.Namespace) -> int:
    """``shard verify``: checksum every shard snapshot a manifest names,
    reporting quarantine candidates without materializing any shard."""
    from repro.serving import read_manifest

    directory = Path(args.catalog_dir)
    try:
        manifest = read_manifest(directory)
        files = [entry["file"] for entry in manifest["shards"]]
    except (OSError, ValueError, KeyError, TypeError) as exc:
        raise _fail(f"cannot read sharded catalog {directory}: {exc}") from exc
    bad = []
    for index, name in enumerate(files):
        shard_path = directory / name
        if not shard_path.is_file():
            status, failed = "FAILED (missing file)", True
        else:
            status, failed = _verify_status(shard_path)
        if failed:
            bad.append(name)
        print(f"  shard {index:>4} : {status}  {name}")
    if bad:
        print(
            f"{len(bad)} of {len(files)} shard(s) failed verification — "
            f"quarantine candidates: {', '.join(bad)}; serving with "
            "on_corruption='quarantine' sets them aside and degrades "
            "gracefully",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(files)} shard(s) verified")
    return 0


def cmd_shard_compact(args: argparse.Namespace) -> int:
    """``shard compact``: compact every shard of a manifest directory and
    rewrite its snapshots + manifest."""
    from repro.serving import read_manifest

    directory = Path(args.catalog_dir)
    # Rewrite in whatever layout the directory already uses — compacting
    # an arena-layout catalog must not silently convert it to npz.
    layout = read_manifest(directory).get("layout", "npz")
    catalog = _load_sharded(directory)
    # Materialize every shard up front so the pre-compaction delta and
    # tombstone totals count loaded state, not cold-shard zeros.
    deltas = sum(
        catalog.shard(i).delta_size for i in range(catalog.n_shards)
    )
    tombstones = sum(catalog.tombstone_counts())
    t0 = time.perf_counter()
    versions = catalog.compact()
    try:
        catalog.save(directory, layout=layout)
    except OSError as exc:
        raise _fail(f"cannot write sharded catalog {directory}: {exc}") from exc
    elapsed = time.perf_counter() - t0
    print(
        f"compacted {catalog.n_shards} shard(s): folded {deltas} delta "
        f"sketch(es) and {tombstones} tombstone(s) in {elapsed:.2f}s "
        f"-> {directory} (index versions "
        f"{'/'.join(str(v) for v in versions)})"
    )
    return 0


def cmd_shard_build(args: argparse.Namespace) -> int:
    from repro.serving import ShardedCatalog

    directory = Path(args.directory)
    csv_files = sorted(directory.glob("*.csv"))
    if not csv_files:
        print(f"error: no CSV files under {directory}", file=sys.stderr)
        return 1
    catalog = ShardedCatalog(
        args.shards,
        sketch_size=args.sketch_size,
        aggregate=args.aggregate,
        vectorized=not args.no_vectorized,
    )
    t0 = time.perf_counter()
    n_pairs = _ingest_csvs(catalog, csv_files, args.verbose)
    if args.lsh:
        # Build every shard's LSH index now so the snapshots ship warm
        # for `query --catalog-dir --retrieval lsh`.
        for index in range(catalog.n_shards):
            catalog.shard(index).lsh_index(
                bands=args.lsh_bands, rows=args.lsh_rows
            )
    catalog.save(args.output, layout=args.layout)
    elapsed = time.perf_counter() - t0
    sizes = "/".join(str(n) for n in catalog.shard_sizes())
    print(
        f"sharded {n_pairs} column pairs from {len(csv_files)} files across "
        f"{catalog.n_shards} shards ({sizes}) in {elapsed:.2f}s "
        f"-> {args.output}"
    )
    return 0


def _print_shard_info(directory: Path) -> int:
    """Report a sharded catalog's layout from the manifest alone."""
    from repro.serving import MANIFEST_NAME, read_manifest

    try:
        manifest = read_manifest(directory)
    except (OSError, ValueError, KeyError) as exc:
        raise _fail(f"cannot read sharded catalog {directory}: {exc}") from exc
    try:
        shard_entries = manifest["shards"]
        bits, seed = manifest["scheme"]
        header = [
            f"catalog dir  : {directory}",
            f"manifest     : version {manifest['version']}",
            # v3 manifests record the shard snapshot layout; older ones
            # predate the arena and are npz by construction.
            f"shard layout : {manifest.get('layout', 'npz')}",
            f"shards       : {manifest['n_shards']}",
            f"sketches     : {sum(e['sketches'] for e in shard_entries)}",
            f"sketch size  : {manifest['sketch_size']} "
            f"(aggregate: {manifest['aggregate']})",
            f"hash scheme  : bits={bits} seed={seed}",
        ]
        files = [entry["file"] for entry in shard_entries]
        counts = [entry["sketches"] for entry in shard_entries]
        # v2 manifests carry per-shard maintenance state; v1 has none.
        maintenance = [
            (
                entry.get("index_version"),
                entry.get("delta", 0),
                entry.get("tombstones", 0),
            )
            for entry in shard_entries
        ]
    except (KeyError, TypeError, ValueError) as exc:
        raise _fail(
            f"cannot read sharded catalog {directory}: corrupt manifest "
            f"({exc!r})"
        ) from exc
    disk = (directory / MANIFEST_NAME).stat().st_size
    missing = []
    for name in files:
        shard_path = directory / name
        if shard_path.is_file():
            disk += shard_path.stat().st_size
        else:
            missing.append(name)
    for line in header:
        print(line)
    print(f"on-disk bytes: {disk:,}")
    deltas = sum(delta for _, delta, _ in maintenance)
    tombstones = sum(tombs for _, _, tombs in maintenance)
    print(
        f"delta layer  : {deltas} pending sketch(es), "
        f"{tombstones} tombstone(s) across shards"
    )
    for index, (count, name, (version, delta, tombs)) in enumerate(
        zip(counts, files, maintenance)
    ):
        state = ""
        if version is not None:
            state = f"  [v{version} delta={delta} tombstones={tombs}]"
        print(f"  shard {index:>4} : {count:>6} sketches  {name}{state}")
    if missing:
        raise _fail(
            f"manifest references missing shard file(s): {', '.join(missing)}"
        )
    return 0


def cmd_shard_info(args: argparse.Namespace) -> int:
    return _print_shard_info(Path(args.catalog_dir))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sketch",
        description="Correlation Sketches: index CSV collections and run "
        "approximate join-correlation queries.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_index = sub.add_parser("index", help="sketch every CSV in a directory")
    p_index.add_argument("directory", help="directory containing CSV files")
    p_index.add_argument(
        "-o",
        "--output",
        required=True,
        help="catalog path; a .npz extension writes the binary columnar "
        "snapshot (fast cold starts), .arena the zero-copy mmap arena "
        "(O(metadata) cold starts, pages shared across processes), "
        "anything else portable JSON",
    )
    p_index.add_argument("--sketch-size", type=_positive_int, default=256)
    p_index.add_argument("--aggregate", default="mean")
    p_index.add_argument(
        "--no-vectorized",
        action="store_true",
        help="build sketches row-at-a-time instead of the (identical but "
        "much faster) columnar fast path",
    )
    p_index.add_argument(
        "--lsh",
        action="store_true",
        help="also build the MinHash-LSH retrieval index before saving; "
        "a .npz output then ships it warm for `query --retrieval lsh`",
    )
    p_index.add_argument(
        "--lsh-bands",
        type=_positive_int,
        default=DEFAULT_BANDS,
        help="LSH bands for --lsh (collision threshold is roughly "
        "(1/bands)**(1/rows) Jaccard)",
    )
    p_index.add_argument(
        "--lsh-rows",
        type=_positive_int,
        default=DEFAULT_ROWS,
        help="LSH rows per band for --lsh",
    )
    p_index.add_argument("-v", "--verbose", action="store_true")
    p_index.set_defaults(func=cmd_index)

    p_query = sub.add_parser("query", help="top-k join-correlation query")
    p_query.add_argument(
        "catalog",
        nargs="?",
        default=None,
        help="catalog file from `index` (JSON or .npz); omit with "
        "--catalog-dir",
    )
    p_query.add_argument(
        "--catalog-dir",
        default=None,
        help="sharded catalog directory from `shard build`; queries are "
        "served scatter-gather with results bit-identical to a monolithic "
        "catalog",
    )
    p_query.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="thread workers for the per-shard fan-out (with --catalog-dir; "
        "default: sequential scatter)",
    )
    p_query.add_argument(
        "query_csv",
        nargs="?",
        default=None,
        help="CSV holding the query column pair (omit with --queries-dir)",
    )
    p_query.add_argument(
        "--queries-dir",
        default=None,
        help="evaluate every column pair of every CSV in this directory as "
        "one batched multi-query round (amortized retrieval + scoring)",
    )
    p_query.add_argument("--key", help="join-key column (default: first categorical)")
    p_query.add_argument("--value", help="numeric column (default: first numeric)")
    _add_query_tuning_args(p_query)
    p_query.add_argument(
        "--profile",
        action="store_true",
        help="print the retrieval / re-rank phase split the engine measures",
    )
    p_query.set_defaults(func=cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived HTTP query service with request coalescing",
        description="Serve a catalog over HTTP (POST /query, "
        "POST /estimate, GET /catalog/info, GET /healthz). The catalog "
        "loads once and stays warm; concurrent queries coalesce into "
        "batched execution with responses bit-identical to per-request "
        "evaluation. SIGTERM/SIGINT drain gracefully.",
    )
    p_serve.add_argument(
        "catalog",
        nargs="?",
        default=None,
        help="catalog file from `index` (JSON or .npz); omit with "
        "--catalog-dir",
    )
    p_serve.add_argument(
        "--catalog-dir",
        default=None,
        help="sharded catalog directory from `shard build`, served "
        "scatter-gather",
    )
    p_serve.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="thread workers for the per-shard fan-out (with --catalog-dir; "
        "default: sequential scatter)",
    )
    _add_query_tuning_args(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port (0 picks a free one, printed on startup)",
    )
    p_serve.add_argument(
        "--max-batch",
        type=_positive_int,
        default=16,
        help="coalescing window size: flush as soon as this many requests "
        "are pending (default 16)",
    )
    p_serve.add_argument(
        "--max-wait-ms",
        type=_non_negative_float,
        default=0.0,
        help="coalescing window time: flush once the oldest pending "
        "request has waited this long. Default 0: idle requests execute "
        "immediately and batches form only under load",
    )
    p_serve.add_argument(
        "--slow-query-ms",
        type=_non_negative_float,
        default=None,
        help="log queries whose server-side wall time breaches this "
        "threshold as single-line JSON records with the per-phase "
        "breakdown (default: disabled)",
    )
    p_serve.add_argument(
        "--slow-query-log",
        default=None,
        metavar="PATH",
        help="append slow-query records to this file instead of stderr "
        "(needs --slow-query-ms)",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_stats = sub.add_parser(
        "stats",
        help="operational summary of a running service",
        description="Fetch /healthz and /metrics from a running "
        "`repro-sketch serve` instance and print a one-shot summary: "
        "liveness, coalescer window behaviour, shard errors, query "
        "latency quantiles and per-phase means reconstructed from the "
        "Prometheus histogram buckets.",
    )
    p_stats.add_argument(
        "url",
        help="service base URL (e.g. http://127.0.0.1:8765; the scheme "
        "may be omitted)",
    )
    p_stats.add_argument(
        "--timeout",
        type=_positive_float,
        default=5.0,
        help="per-request timeout in seconds (default 5)",
    )
    p_stats.set_defaults(func=cmd_stats)

    p_est = sub.add_parser("estimate", help="estimate one after-join correlation")
    p_est.add_argument("left_csv")
    p_est.add_argument("right_csv")
    p_est.add_argument("--left-key")
    p_est.add_argument("--left-value")
    p_est.add_argument("--right-key")
    p_est.add_argument("--right-value")
    p_est.add_argument("--sketch-size", type=_positive_int, default=256)
    p_est.add_argument("--aggregate", default="mean")
    p_est.add_argument(
        "--estimator",
        default="pearson",
        choices=("pearson", "spearman", "rin", "qn", "pm1"),
    )
    p_est.set_defaults(func=cmd_estimate)

    p_catalog = sub.add_parser("catalog", help="catalog management")
    catalog_sub = p_catalog.add_subparsers(dest="catalog_command", required=True)
    p_catalog_info = catalog_sub.add_parser(
        "info", help="sketch count, scheme, size, format, on-disk bytes"
    )
    p_catalog_info.add_argument("catalog", help="catalog file (JSON or .npz)")
    p_catalog_info.set_defaults(func=cmd_info)
    p_catalog_compact = catalog_sub.add_parser(
        "compact",
        help="fold the pending delta layer (appended sketches + "
        "tombstones) into fresh frozen structures and re-save",
    )
    p_catalog_compact.add_argument("catalog", help="catalog file (JSON or .npz)")
    p_catalog_compact.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the compacted catalog here instead of in place",
    )
    p_catalog_compact.set_defaults(func=cmd_compact)
    p_catalog_convert = catalog_sub.add_parser(
        "convert",
        help="rewrite a catalog in another format: .npz snapshot, "
        ".arena mmap arena, or JSON (chosen by the output extension)",
    )
    p_catalog_convert.add_argument(
        "catalog", help="input catalog file (JSON, .npz or .arena)"
    )
    p_catalog_convert.add_argument(
        "-o",
        "--output",
        required=True,
        help="output catalog path; the extension picks the format",
    )
    p_catalog_convert.set_defaults(func=cmd_convert)
    p_catalog_verify = catalog_sub.add_parser(
        "verify",
        help="checksum a snapshot's payload without loading it; exit 1 "
        "on mismatch",
    )
    p_catalog_verify.add_argument(
        "catalog", help="catalog file (.npz, .arena or JSON)"
    )
    p_catalog_verify.set_defaults(func=cmd_catalog_verify)

    # Shorthand kept for compatibility with earlier releases.
    p_info = sub.add_parser("info", help="catalog statistics (alias of `catalog info`)")
    p_info.add_argument("catalog")
    p_info.set_defaults(func=cmd_info)

    p_shard = sub.add_parser("shard", help="sharded catalog management")
    shard_sub = p_shard.add_subparsers(dest="shard_command", required=True)
    p_shard_build = shard_sub.add_parser(
        "build",
        help="shard-index every CSV in a directory into a manifest dir",
    )
    p_shard_build.add_argument("directory", help="directory containing CSV files")
    p_shard_build.add_argument(
        "-o",
        "--output",
        required=True,
        help="output catalog directory (manifest.json + per-shard "
        "snapshots); serve it with `query --catalog-dir`",
    )
    p_shard_build.add_argument(
        "--layout",
        choices=("npz", "arena"),
        default="npz",
        help="shard snapshot layout: npz (default) or the zero-copy "
        "mmap arena (O(metadata) shard loads; forked query workers "
        "share one set of physical pages)",
    )
    p_shard_build.add_argument(
        "--shards",
        type=_positive_int,
        default=4,
        help="number of shards (default 4); each table routes to the "
        "least-loaded shard",
    )
    p_shard_build.add_argument("--sketch-size", type=_positive_int, default=256)
    p_shard_build.add_argument("--aggregate", default="mean")
    p_shard_build.add_argument(
        "--no-vectorized",
        action="store_true",
        help="build sketches row-at-a-time instead of the (identical but "
        "much faster) columnar fast path",
    )
    p_shard_build.add_argument(
        "--lsh",
        action="store_true",
        help="also build every shard's MinHash-LSH index before saving, so "
        "the snapshots ship warm for `query --catalog-dir --retrieval lsh`",
    )
    p_shard_build.add_argument(
        "--lsh-bands", type=_positive_int, default=DEFAULT_BANDS,
        help="LSH bands for --lsh",
    )
    p_shard_build.add_argument(
        "--lsh-rows", type=_positive_int, default=DEFAULT_ROWS,
        help="LSH rows per band for --lsh",
    )
    p_shard_build.add_argument("-v", "--verbose", action="store_true")
    p_shard_build.set_defaults(func=cmd_shard_build)

    p_shard_info = shard_sub.add_parser(
        "info",
        help="layout, per-shard sizes and on-disk bytes, from the manifest "
        "alone (no shard is materialized)",
    )
    p_shard_info.add_argument("catalog_dir", help="catalog directory from `shard build`")
    p_shard_info.set_defaults(func=cmd_shard_info)

    p_shard_compact = shard_sub.add_parser(
        "compact",
        help="compact every shard's delta layer and rewrite the manifest "
        "directory in place",
    )
    p_shard_compact.add_argument(
        "catalog_dir", help="catalog directory from `shard build`"
    )
    p_shard_compact.set_defaults(func=cmd_shard_compact)

    p_shard_verify = shard_sub.add_parser(
        "verify",
        help="checksum every shard snapshot the manifest names and list "
        "quarantine candidates; exit 1 if any fails",
    )
    p_shard_verify.add_argument(
        "catalog_dir", help="catalog directory from `shard build`"
    )
    p_shard_verify.set_defaults(func=cmd_shard_verify)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except _CliError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
