"""Per-query phase tracing for the serving stack.

A :class:`Trace` is a request-scoped recorder of *named phases*: the
session creates one per query (with a ``trace_id`` minted from
:func:`new_trace_id`), the execution layers add spans as they run —
``queue_wait``, ``retrieval``, ``assemble``, ``score``, ``merge``,
``wire_encode``, plus per-shard ``shard_probe``/``shard_assemble``
children under the scatter phases — and the finished record travels in
``QueryResult.trace`` as a plain strict-JSON dict.

Design constraints, in order of importance:

* **Never touches the query's rng.** ``trace_id`` comes from
  :func:`os.urandom` and timestamps from :func:`time.perf_counter`, so
  tracing cannot perturb any scored result — the bit-parity suites run
  with tracing on and off and compare rankings bit for bit.
* **Fork-safe timestamps.** Spans are recorded relative to the trace's
  ``origin`` (a ``perf_counter`` reading captured at creation).
  ``CLOCK_MONOTONIC`` is system-wide on Linux, so a :class:`Trace`
  pickled into a forked :class:`~repro.serving.workers.QueryWorkerPool`
  worker records spans on the *same* clock as its parent — the span
  dicts serialized back inside ``QueryResult.trace`` line up with
  parent-side spans without any clock translation.
* **Cheap.** A span is one dict append bracketed by two
  ``perf_counter`` calls; layers skip even that when no trace was
  requested (``trace is None`` is the no-op path).

Span schema (one flat list, parent links by name)::

    {"name": str, "start_ms": float, "duration_ms": float,
     "parent": str (absent for top-level), "meta": dict (absent if empty)}

``start_ms`` is relative to the trace origin and may be negative for
work that predates it (the coalescer's ``queue_wait`` happens before
the session mints the trace). Top-level spans partition the query's
wall time; children (``parent`` set) refine a phase and are excluded
from phase-latency metrics to avoid double counting.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

__all__ = ["Trace", "new_trace_id"]


def new_trace_id() -> str:
    """A 16-hex-char request id from the OS entropy pool.

    Deliberately not ``numpy`` randomness: the query path's rng streams
    are part of the bit-parity contract and must not be consumed by
    instrumentation.
    """
    return os.urandom(8).hex()


class Trace:
    """An append-only span recorder for one query.

    Args:
        trace_id: explicit id (propagated from an upstream system);
            minted via :func:`new_trace_id` when omitted.
        origin: ``perf_counter`` zero point for ``start_ms``; defaults
            to *now* (trace creation in ``QuerySession.submit``).
    """

    __slots__ = ("trace_id", "origin", "spans")

    def __init__(
        self, trace_id: str | None = None, *, origin: float | None = None
    ) -> None:
        self.trace_id = trace_id if trace_id is not None else new_trace_id()
        self.origin = time.perf_counter() if origin is None else origin
        self.spans: list[dict] = []

    def add(
        self,
        name: str,
        start: float,
        end: float,
        *,
        parent: str | None = None,
        **meta,
    ) -> dict:
        """Record one finished span from raw ``perf_counter`` readings."""
        span: dict = {
            "name": name,
            "start_ms": (start - self.origin) * 1000.0,
            "duration_ms": (end - start) * 1000.0,
        }
        if parent is not None:
            span["parent"] = parent
        if meta:
            span["meta"] = meta
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, *, parent: str | None = None, **meta):
        """Time a ``with`` block as one span (records even on raise)."""
        start = time.perf_counter()
        try:
            yield self
        finally:
            self.add(name, start, time.perf_counter(), parent=parent, **meta)

    def to_dict(self) -> dict:
        """The wire form carried in ``QueryResult.trace`` — strict JSON
        (plain floats, no NaN/inf by construction)."""
        return {"trace_id": self.trace_id, "spans": list(self.spans)}

    # -- read-side helpers (used by --profile, the slow-query log, tests) ----

    @staticmethod
    def phase_totals(block: dict) -> dict[str, float]:
        """Top-level phase name -> duration_ms, from a ``to_dict`` block.

        Children are excluded — top-level spans partition the query's
        wall time, children refine a phase they are already inside.
        """
        totals: dict[str, float] = {}
        for span in block.get("spans", ()):
            if "parent" in span:
                continue
            totals[span["name"]] = (
                totals.get(span["name"], 0.0) + span["duration_ms"]
            )
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Trace({self.trace_id!r}, spans={len(self.spans)})"
