"""Observability for the serving stack: metrics, tracing, exposition.

Three pieces, all stdlib-only and rng-neutral (instrumentation never
touches a query's random stream, so results stay bit-identical with
observability on or off):

* :mod:`repro.obs.metrics` — a process-global, thread-safe, fork-aware
  :class:`MetricsRegistry` (counters, gauges, log-bucket latency
  histograms with exact-from-buckets p50/p95/p99). The process default
  is a :class:`NullRegistry` that no-ops everything; the HTTP service
  installs a real one via :func:`set_registry` for its lifetime.
* :mod:`repro.obs.trace` — per-query :class:`Trace`/``span()`` phase
  recording, carried in ``QueryResult.trace`` and across the
  :class:`~repro.serving.workers.QueryWorkerPool` fork boundary.
* :mod:`repro.obs.exposition` / :mod:`repro.obs.slowlog` — Prometheus
  text rendering + parsing for ``GET /metrics`` and the
  ``repro-sketch stats`` verb, and the threshold-gated slow-query log.
"""

from __future__ import annotations

from repro.obs.exposition import (
    parse_prometheus_text,
    quantiles_from_buckets,
    render_prometheus,
)
from repro.obs.metrics import (
    BATCH_SIZE_BUCKETS,
    LATENCY_BUCKETS,
    MetricsRegistry,
    NullRegistry,
)
from repro.obs.slowlog import SlowQueryLog
from repro.obs.trace import Trace, new_trace_id

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "SlowQueryLog",
    "Trace",
    "get_registry",
    "new_trace_id",
    "parse_prometheus_text",
    "quantiles_from_buckets",
    "render_prometheus",
    "set_registry",
]

#: The shared disabled registry — the process default.
NULL_REGISTRY = NullRegistry()

_registry: MetricsRegistry = NULL_REGISTRY


def get_registry() -> MetricsRegistry:
    """The process-global registry (the :data:`NULL_REGISTRY` no-op
    unless a service installed a real one)."""
    return _registry


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` as the process-global sink; ``None``
    restores the disabled default. Returns the installed registry."""
    global _registry
    _registry = NULL_REGISTRY if registry is None else registry
    return _registry
