"""Prometheus text exposition: render a registry, parse a scrape.

The renderer produces the text format scraped at ``GET /metrics``
(``text/plain; version=0.0.4``): ``# HELP`` / ``# TYPE`` comments, then
one sample per line. Histograms render cumulative ``_bucket`` samples
with ``le`` labels — sparse (only buckets whose cumulative count
changes, plus ``+Inf``), which is valid exposition and keeps 91-bucket
latency families readable — followed by ``_sum`` and ``_count``.

The parser is the consumer-side inverse, used by the
``repro-sketch stats`` CLI verb and by CI's live-scrape validation. It
is strict where it matters (malformed sample lines and non-numeric
values raise ``ValueError``) and returns enough structure to rebuild
quantiles from cumulative buckets (:func:`quantiles_from_buckets`).
"""

from __future__ import annotations

import math
import re

from repro.obs.metrics import MetricsRegistry, sample_name

__all__ = [
    "parse_prometheus_text",
    "quantiles_from_buckets",
    "render_prometheus",
]


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _sample_line(name: str, labels: tuple, value: float) -> str:
    if labels:
        inner = ",".join(
            f'{k}="{_escape_label(v)}"' for k, v in labels
        )
        return f"{name}{{{inner}}} {_format_value(value)}"
    return f"{name} {_format_value(value)}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render every family of ``registry`` as Prometheus text."""
    dump = registry.dump()
    lines: list[str] = []
    for name in sorted(dump["families"]):
        kind, help_text = dump["families"][name]
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        if kind == "counter":
            store = dump["counters"]
        elif kind == "gauge":
            store = dump["gauges"]
        else:
            store = dump["histograms"]
        series = sorted(
            (key, value) for key, value in store.items() if key[0] == name
        )
        if kind in ("counter", "gauge"):
            for (_, labels), value in series:
                lines.append(_sample_line(name, labels, value))
            continue
        for (_, labels), data in series:
            cumulative = 0
            bounds = data["bounds"]
            counts = data["counts"]
            for i, bound in enumerate(bounds):
                if counts[i] == 0:
                    continue
                cumulative += counts[i]
                le = (("le", _format_value(bound)),)
                lines.append(
                    _sample_line(name + "_bucket", labels + le, cumulative)
                )
            lines.append(
                _sample_line(
                    name + "_bucket",
                    labels + (("le", "+Inf"),),
                    data["count"],
                )
            )
            lines.append(_sample_line(name + "_sum", labels, data["sum"]))
            lines.append(
                _sample_line(name + "_count", labels, data["count"])
            )
    return "\n".join(lines) + "\n"


_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"      # metric name
    r"(?:\{(.*)\})?"                     # optional label block
    r"\s+(\S+)"                          # value
    r"(?:\s+(-?\d+))?$"                  # optional timestamp (ignored)
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(token: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    return float(token)  # ValueError propagates: malformed exposition


def parse_prometheus_text(text: str) -> dict:
    """Parse exposition text into families.

    Returns ``{family: {"type": str | None, "help": str | None,
    "samples": [(sample_suffix, labels_dict, value), ...]}}`` where
    histogram ``_bucket``/``_sum``/``_count`` samples are grouped under
    their family name with the suffix recorded (empty for plain
    samples). Raises ``ValueError`` on a malformed sample line.
    """
    types: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: list[tuple[str, dict, float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3].strip()
            elif len(parts) >= 4 and parts[1] == "HELP":
                helps[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(
                f"malformed exposition sample on line {lineno}: {raw!r}"
            )
        name, label_block, value_token = match.group(1, 2, 3)
        labels = {
            key: value.replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\\\\", "\\")
            for key, value in _LABEL_RE.findall(label_block or "")
        }
        try:
            value = _parse_value(value_token)
        except ValueError:
            raise ValueError(
                f"non-numeric sample value on line {lineno}: {raw!r}"
            ) from None
        samples.append((name, labels, value))

    families: dict[str, dict] = {}

    def family_of(name: str) -> tuple[str, str]:
        for suffix in ("_bucket", "_sum", "_count"):
            base = name[: -len(suffix)] if name.endswith(suffix) else None
            if base and types.get(base) == "histogram":
                return base, suffix
        return name, ""

    for name in set(types) | set(helps):
        families[name] = {
            "type": types.get(name),
            "help": helps.get(name),
            "samples": [],
        }
    for name, labels, value in samples:
        base, suffix = family_of(name)
        entry = families.setdefault(
            base,
            {"type": types.get(base), "help": helps.get(base), "samples": []},
        )
        entry["samples"].append((suffix, labels, value))
    return families


def quantiles_from_buckets(
    family: dict, qs: tuple[float, ...] = (0.50, 0.95, 0.99), **labels: str
) -> dict[float, float]:
    """Estimate quantiles from a parsed histogram family's cumulative
    ``_bucket`` samples (optionally restricted to a label subset).

    Mirrors :meth:`repro.obs.metrics._Histogram.quantile`: NumPy rank
    convention, geometric-midpoint representative — so a consumer of
    ``/metrics`` reconstructs the same p50/p95/p99 the service itself
    reports in :meth:`MetricsRegistry.snapshot`.
    """
    buckets: list[tuple[float, float]] = []
    for suffix, sample_labels, value in family["samples"]:
        if suffix != "_bucket":
            continue
        if any(sample_labels.get(k) != v for k, v in labels.items()):
            continue
        buckets.append((_parse_value(sample_labels["le"]), value))
    buckets.sort()
    if not buckets:
        return {q: math.nan for q in qs}
    count = buckets[-1][1]
    out: dict[float, float] = {}
    for q in qs:
        if count <= 0:
            out[q] = math.nan
            continue
        rank = q * (count - 1)
        target = math.floor(rank)
        previous_bound = None
        previous_cumulative = 0.0
        chosen = buckets[-1][0]
        for bound, cumulative in buckets:
            if cumulative > target and cumulative > previous_cumulative:
                if not math.isfinite(bound):
                    chosen = (
                        previous_bound if previous_bound is not None else 0.0
                    )
                elif previous_bound is None or previous_bound <= 0:
                    chosen = bound
                else:
                    chosen = math.sqrt(previous_bound * bound)
                break
            previous_cumulative = cumulative
            if math.isfinite(bound):
                previous_bound = bound
        out[q] = chosen
    return out


def registry_sample_name(name: str, labels: dict) -> str:
    """Public spelling of the registry's sample naming (for callers
    that correlate parsed samples with :meth:`MetricsRegistry.snapshot`
    keys)."""
    return sample_name(name, tuple(sorted(labels.items())))
