"""Process-global metrics: counters, gauges, log-bucket histograms.

Dependency-free (stdlib only) and built for the serving stack's three
hard requirements:

* **Thread safety without lost updates.** Every read-modify-write holds
  one registry lock, so N handler threads hammering the same counter or
  histogram account for every increment (pinned by
  ``tests/test_obs_metrics.py``). The lock is held for a few dict
  operations — far below the cost of the query work being measured.
* **Fork awareness.** A :class:`~repro.serving.workers.QueryWorkerPool`
  worker inherits the parent's registry object at fork time. Its counts
  describe the *parent* process; letting the child keep incrementing
  them would double-count whatever the child reports elsewhere. Every
  public method therefore checks ``os.getpid()`` and resets the
  inherited state the first time a *different* process touches the
  registry — each process owns exactly its own numbers.
* **Zero overhead when disabled.** :class:`NullRegistry` no-ops every
  method; it is the process default (see :func:`repro.obs.get_registry`)
  so library callers pay one attribute call per metric site unless a
  service installed a real registry.

Histograms use **fixed log-scale buckets**: 91 bounds at 10^(k/10) for
k in [-70, 20] — 100 ns to 100 s, ~26% per step — so p50/p95/p99 are
derived exactly from bucket counts (no sample retention) with bounded
relative error of one bucket width. Non-latency families (batch sizes)
pass explicit ``buckets=`` at first observation.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left

__all__ = [
    "BATCH_SIZE_BUCKETS",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "NullRegistry",
]

#: Default histogram bounds (seconds): 10^(k/10), k in [-70, 20].
LATENCY_BUCKETS: tuple[float, ...] = tuple(
    10.0 ** (k / 10.0) for k in range(-70, 21)
)

#: Bounds for small-integer size distributions (coalescer windows).
BATCH_SIZE_BUCKETS: tuple[float, ...] = (
    1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0,
    96.0, 128.0,
)


class _Histogram:
    """Bucket counts + sum for one labeled series (lock held by owner)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...]) -> None:
        self.bounds = bounds
        # counts[i] = observations in (bounds[i-1], bounds[i]];
        # counts[len(bounds)] is the overflow bucket.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """The q-quantile estimated from bucket counts.

        Uses NumPy's default rank convention (``q * (count - 1)``) and
        returns the geometric midpoint of the bucket holding that rank,
        so the estimate is within one bucket width of the exact sample
        quantile — the oracle test pins this tolerance.
        """
        if self.count == 0:
            return math.nan
        rank = q * (self.count - 1)
        target = int(math.floor(rank))
        cumulative = 0
        for i, n in enumerate(self.counts):
            cumulative += n
            if cumulative > target:
                return self._representative(i)
        return self._representative(len(self.counts) - 1)

    def _representative(self, index: int) -> float:
        if index >= len(self.bounds):  # overflow: best known lower bound
            return self.bounds[-1]
        if index == 0:
            return self.bounds[0]
        return math.sqrt(self.bounds[index - 1] * self.bounds[index])


def _series_key(name: str, labels: dict) -> tuple:
    if not labels:
        return (name, ())
    if len(labels) == 1:  # the common case: skip the sort
        return (name, tuple(labels.items()))
    return (name, tuple(sorted(labels.items())))


def sample_name(name: str, labels: tuple) -> str:
    """Prometheus-style sample name: ``name{a="b",c="d"}`` (or bare)."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Thread-safe, fork-aware metric store (see module docs).

    All mutators take the metric ``name`` plus ``**labels``; a family's
    type (counter/gauge/histogram) is fixed by its first use and a
    conflicting re-use raises — the same name cannot silently mean two
    things on ``/metrics``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, _Histogram] = {}
        #: family name -> (kind, help)
        self._families: dict[str, tuple[str, str | None]] = {}
        #: histogram family name -> bounds (fixed at first declaration)
        self._bounds: dict[str, tuple[float, ...]] = {}

    @property
    def enabled(self) -> bool:
        return True

    # -- internal (lock held) ------------------------------------------------

    def _fork_check(self) -> None:
        pid = os.getpid()
        if pid != self._pid:
            # Forked child: the inherited series describe the parent.
            self._pid = pid
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def _declare(self, name: str, kind: str, help: str | None) -> None:
        known = self._families.get(name)
        if known is None:
            self._families[name] = (kind, help)
        elif known[0] != kind:
            raise ValueError(
                f"metric {name!r} is a {known[0]}, not a {kind}"
            )
        elif help is not None and known[1] is None:
            self._families[name] = (kind, help)

    # -- mutators ------------------------------------------------------------

    def inc(
        self, name: str, value: float = 1.0, *, help: str | None = None,
        **labels: str,
    ) -> None:
        """Add ``value`` to a counter series (creating it at 0)."""
        key = _series_key(name, labels)
        with self._lock:
            self._fork_check()
            self._declare(name, "counter", help)
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set_gauge(
        self, name: str, value: float, *, help: str | None = None,
        **labels: str,
    ) -> None:
        key = _series_key(name, labels)
        with self._lock:
            self._fork_check()
            self._declare(name, "gauge", help)
            self._gauges[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: tuple[float, ...] | None = None,
        help: str | None = None,
        **labels: str,
    ) -> None:
        """Record one observation into a histogram series.

        ``buckets`` fixes the family's bounds on first use (default
        :data:`LATENCY_BUCKETS`); later calls may omit it.
        """
        key = _series_key(name, labels)
        with self._lock:
            self._fork_check()
            self._declare(name, "histogram", help)
            bounds = self._bounds.get(name)
            if bounds is None:
                bounds = (
                    LATENCY_BUCKETS if buckets is None else tuple(buckets)
                )
                self._bounds[name] = bounds
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = _Histogram(bounds)
            histogram.observe(value)

    def observe_many(
        self,
        name: str,
        samples: list[tuple[float, dict]],
        *,
        buckets: tuple[float, ...] | None = None,
        help: str | None = None,
    ) -> None:
        """Record many ``(value, labels)`` observations in one lock
        round-trip — the hot-path form used per served query (one
        fork-check and one acquisition instead of one per phase)."""
        with self._lock:
            self._fork_check()
            self._declare(name, "histogram", help)
            bounds = self._bounds.get(name)
            if bounds is None:
                bounds = (
                    LATENCY_BUCKETS if buckets is None else tuple(buckets)
                )
                self._bounds[name] = bounds
            for value, labels in samples:
                key = _series_key(name, labels)
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = _Histogram(bounds)
                histogram.observe(value)

    def declare(
        self,
        name: str,
        kind: str,
        *,
        help: str | None = None,
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        """Pre-register a family so ``/metrics`` lists it before first
        use (a scrape of a fresh service should already show the schema)."""
        with self._lock:
            self._fork_check()
            self._declare(name, kind, help)
            if kind == "histogram" and name not in self._bounds:
                self._bounds[name] = (
                    LATENCY_BUCKETS if buckets is None else tuple(buckets)
                )

    # -- readers -------------------------------------------------------------

    def counter_value(self, name: str, **labels: str) -> float:
        with self._lock:
            self._fork_check()
            return self._counters.get(_series_key(name, labels), 0.0)

    def counter_samples(self, name: str) -> list[tuple[dict, float]]:
        """Every ``(labels, value)`` series of one counter family."""
        with self._lock:
            self._fork_check()
            return [
                (dict(key[1]), value)
                for key, value in sorted(self._counters.items())
                if key[0] == name
            ]

    def quantile(self, name: str, q: float, **labels: str) -> float:
        with self._lock:
            self._fork_check()
            histogram = self._histograms.get(_series_key(name, labels))
            return math.nan if histogram is None else histogram.quantile(q)

    def snapshot(self) -> dict:
        """One JSON-safe dict of every series — counters and gauges by
        sample name, histograms summarized as count/sum/p50/p95/p99."""
        with self._lock:
            self._fork_check()
            return {
                "counters": {
                    sample_name(*key): value
                    for key, value in sorted(self._counters.items())
                },
                "gauges": {
                    sample_name(*key): value
                    for key, value in sorted(self._gauges.items())
                },
                "histograms": {
                    sample_name(*key): {
                        "count": h.count,
                        "sum": h.sum,
                        "p50": h.quantile(0.50),
                        "p95": h.quantile(0.95),
                        "p99": h.quantile(0.99),
                    }
                    for key, h in sorted(self._histograms.items())
                },
            }

    def dump(self) -> dict:
        """Full raw state (bucket counts included) for the Prometheus
        renderer — one consistent cut taken under the lock."""
        with self._lock:
            self._fork_check()
            return {
                "families": dict(self._families),
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    key: {
                        "bounds": h.bounds,
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for key, h in self._histograms.items()
                },
                "bounds": dict(self._bounds),
            }

    def reset(self) -> None:
        """Drop every series (test isolation helper)."""
        with self._lock:
            self._pid = os.getpid()
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._families.clear()
            self._bounds.clear()


class NullRegistry(MetricsRegistry):
    """The disabled default: same surface, no state, no locking."""

    def __init__(self) -> None:  # noqa: D107 - no state to build
        pass

    @property
    def enabled(self) -> bool:
        return False

    def inc(self, name, value=1.0, *, help=None, **labels) -> None:
        pass

    def set_gauge(self, name, value, *, help=None, **labels) -> None:
        pass

    def observe(
        self, name, value, *, buckets=None, help=None, **labels
    ) -> None:
        pass

    def observe_many(self, name, samples, *, buckets=None, help=None) -> None:
        pass

    def declare(self, name, kind, *, help=None, buckets=None) -> None:
        pass

    def counter_value(self, name, **labels) -> float:
        return 0.0

    def counter_samples(self, name) -> list:
        return []

    def quantile(self, name, q, **labels) -> float:
        return math.nan

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def dump(self) -> dict:
        return {
            "families": {}, "counters": {}, "gauges": {},
            "histograms": {}, "bounds": {},
        }

    def reset(self) -> None:
        pass
