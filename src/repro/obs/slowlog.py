"""Threshold-gated slow-query log: one JSON line per offending query.

A query slower than ``threshold_ms`` end to end emits exactly one
single-line JSON record to the sink (stderr by default, or an append
file), summarizing its trace: per-phase totals, the slowest shard
(from the per-shard child spans) and any failed shards — enough to
answer "where did this one go" without re-running anything. Fault-free
fast traffic emits nothing (the fault-injection regression test pins
both directions).

Record schema::

    {"event": "slow_query", "trace_id": str | None, "endpoint": str,
     "total_ms": float, "threshold_ms": float, "unix_ts": float,
     "phases": {name: ms, ...},
     "slowest_shard": {"shard": int, "phase": str, "duration_ms": float,
                       "status": str} | null,
     "failed_shards": [int, ...]}
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path

from repro.obs.trace import Trace

__all__ = ["SlowQueryLog"]


class SlowQueryLog:
    """Write one JSON line per query slower than the threshold.

    Args:
        threshold_ms: queries at or above this end-to-end wall time are
            logged; everything faster is ignored.
        sink: ``None`` writes to ``sys.stderr``; a path string/Path
            appends to that file (created on first record).
    """

    def __init__(
        self, threshold_ms: float, sink: str | Path | None = None
    ) -> None:
        if threshold_ms < 0:
            raise ValueError(
                f"threshold_ms must be non-negative, got {threshold_ms}"
            )
        self.threshold_ms = float(threshold_ms)
        self.sink = None if sink is None else Path(sink)
        self._lock = threading.Lock()
        #: Records written over this log's life (telemetry).
        self.recorded = 0

    @staticmethod
    def _shard_summary(block: dict | None) -> tuple[dict | None, list[int]]:
        """(slowest shard child span, failed shard indexes) of a trace."""
        slowest: dict | None = None
        failed: set[int] = set()
        if block is None:
            return None, []
        for span in block.get("spans", ()):
            meta = span.get("meta", {})
            if "shard" not in meta:
                continue
            if meta.get("status", "ok") != "ok":
                failed.add(int(meta["shard"]))
            if (
                slowest is None
                or span["duration_ms"] > slowest["duration_ms"]
            ):
                slowest = {
                    "shard": int(meta["shard"]),
                    "phase": span.get("parent", span["name"]),
                    "duration_ms": span["duration_ms"],
                    "status": meta.get("status", "ok"),
                }
        return slowest, sorted(failed)

    def maybe_record(
        self,
        *,
        total_ms: float,
        trace: dict | None,
        endpoint: str = "/query",
    ) -> bool:
        """Log the query if it breached the threshold; returns whether
        a record was written."""
        if total_ms < self.threshold_ms:
            return False
        slowest, failed = self._shard_summary(trace)
        record = {
            "event": "slow_query",
            "trace_id": None if trace is None else trace.get("trace_id"),
            "endpoint": endpoint,
            "total_ms": round(total_ms, 3),
            "threshold_ms": self.threshold_ms,
            "unix_ts": time.time(),
            "phases": {
                name: round(ms, 3)
                for name, ms in (
                    {} if trace is None else Trace.phase_totals(trace)
                ).items()
            },
            "slowest_shard": slowest,
            "failed_shards": failed,
        }
        line = json.dumps(record, allow_nan=False)
        with self._lock:
            if self.sink is None:
                print(line, file=sys.stderr, flush=True)
            else:
                with self.sink.open("a") as handle:
                    handle.write(line + "\n")
            self.recorded += 1
        return True
