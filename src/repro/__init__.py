"""repro — Correlation Sketches for approximate join-correlation queries.

A full reproduction of "Correlation Sketches for Approximate
Join-Correlation Queries" (Santos, Bessa, Chirigati, Musco, Freire —
SIGMOD 2021). The package answers the question: *given a query column and
its join key, which tables in a large collection join with mine AND
contain a column correlated with mine after the join?* — without ever
computing the joins.

Quickstart::

    from repro import CorrelationSketch, estimate

    left = CorrelationSketch.from_columns(dates, fatalities, n=256)
    right = CorrelationSketch.from_columns(other_dates, precipitation, n=256)
    result = estimate(left, right)           # no join of the full tables
    print(result.correlation, result.hoeffding)

Subpackages
-----------
``repro.core``
    Correlation Sketches, sketch joins, the estimation pipeline.
``repro.hashing``
    MurmurHash3 + Fibonacci hashing (the ``h`` / ``h_u`` of the paper).
``repro.kmv``
    KMV synopses, DV estimation, set-operation estimates.
``repro.correlation``
    Pearson / Spearman / RIN / Qn / PM1-bootstrap estimators, Fisher z.
``repro.bounds``
    Distribution-free Hoeffding confidence intervals (Section 4.3).
``repro.ranking``
    Risk-averse scoring functions and IR metrics (Section 4.4 / 5.4).
``repro.table``
    Typed tables, CSV with type detection, ground-truth joins.
``repro.index``
    Inverted index, sketch catalog, the top-k query engine.
``repro.serving``
    Sharded catalogs and scatter-gather query routing (horizontal scale).
``repro.data``
    Synthetic data generators (SBN, NYC-like, WBF-like).
``repro.evalharness``
    Experiment runners behind the benchmark suite.
"""

from repro.bounds import ConfidenceInterval, hfd_interval, hoeffding_interval
from repro.core import (
    CorrelationSketch,
    EstimateResult,
    JoinedSample,
    MultiColumnSketch,
    estimate,
    join_sketches,
)
from repro.correlation import (
    ESTIMATORS,
    fisher_interval,
    pearson,
    pm1_bootstrap,
    qn_correlation,
    rin,
    spearman,
)
from repro.index import (
    InvertedIndex,
    JoinCorrelationEngine,
    QueryOptions,
    QueryResult,
    SketchCatalog,
)
from repro.kmv import KMVSynopsis
from repro.ranking import SCORER_NAMES, rank_candidates
from repro.serving import QuerySession, ShardRouter, ShardedCatalog
from repro.table import Table, read_csv, read_csv_text

__version__ = "1.0.0"

__all__ = [
    "ConfidenceInterval",
    "CorrelationSketch",
    "ESTIMATORS",
    "EstimateResult",
    "InvertedIndex",
    "JoinCorrelationEngine",
    "JoinedSample",
    "KMVSynopsis",
    "MultiColumnSketch",
    "QueryOptions",
    "QueryResult",
    "QuerySession",
    "SCORER_NAMES",
    "ShardRouter",
    "ShardedCatalog",
    "SketchCatalog",
    "Table",
    "estimate",
    "fisher_interval",
    "hfd_interval",
    "hoeffding_interval",
    "join_sketches",
    "pearson",
    "pm1_bootstrap",
    "qn_correlation",
    "rank_candidates",
    "read_csv",
    "read_csv_text",
    "rin",
    "spearman",
    "__version__",
]
