"""Distribution-free Hoeffding confidence bounds for correlation (§4.3).

The paper's analysis shifts both joined columns by ``C_low`` so they lie in
``[0, C]`` with ``C = C_high − C_low``, decomposes Pearson's ρ into five
bounded averages —

    ρ = (ν_AB − μ_A μ_B) / (sqrt(ν_A − μ_A²) · sqrt(ν_B − μ_B²))

— bounds each parameter with Hoeffding's inequality for sampling *without
replacement* at level ``α/5``, and combines them with a union bound and
interval arithmetic (Eqs. 6–7) into a ``1 − α`` interval for ρ.

Two deviation radii cover all five parameters:

    t  = sqrt(ln(10/α) · C² / (2n))   for μ_A, μ_B   (values in [0, C])
    t' = sqrt(ln(10/α) · C⁴ / (2n))   for ν_A, ν_B, ν_AB (in [0, C²])

Small samples can drive the variance lower bounds ``ν_low − μ_high²``
negative, collapsing the denominator to zero and yielding the vacuous
interval. The paper's remedy (the **HFD** variant) replaces both
denominator bounds by the *sample* standard-deviation product — no longer
a probabilistic bound, but its length is still a meaningful dispersion
measure, and it is what the ``cih`` ranking factor uses (Section 4.4).
"""

from __future__ import annotations

import math

import numpy as np

from repro.bounds.intervals import ConfidenceInterval
from repro.correlation.pearson import pearson_moments


def hoeffding_radii(n: int, value_range: float, alpha: float) -> tuple[float, float]:
    """Return the deviation radii ``(t, t')`` for the five parameters.

    Args:
        n: sketch-join sample size.
        value_range: ``C = C_high − C_low`` over both columns.
        alpha: total miscoverage; each parameter gets ``alpha / 5``.
    """
    if n <= 0:
        return math.inf, math.inf
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    log_term = math.log(10.0 / alpha)
    c2 = value_range * value_range
    t = math.sqrt(log_term * c2 / (2.0 * n))
    t_prime = math.sqrt(log_term * c2 * c2 / (2.0 * n))
    return t, t_prime


def _clamp(center: float, radius: float, lo: float, hi: float) -> tuple[float, float]:
    """Intersect ``[center − radius, center + radius]`` with ``[lo, hi]``."""
    return max(lo, center - radius), min(hi, center + radius)


def _interval_quotient(
    num_low: float, num_high: float, den_low: float, den_high: float
) -> tuple[float, float]:
    """Apply the paper's Eq. 6–7 sign-aware interval division.

    ``den_low ≤ den_high`` are non-negative; a zero denominator yields
    ±inf, which the caller clips to [-1, 1] (the vacuous interval).
    """

    def _div(num: float, den: float) -> float:
        if den <= 0.0:
            if num == 0.0:
                return 0.0
            return math.inf if num > 0 else -math.inf
        return num / den

    low = _div(num_low, den_high) if num_low >= 0 else _div(num_low, den_low)
    high = _div(num_high, den_low) if num_high >= 0 else _div(num_high, den_high)
    return low, high


def hoeffding_interval(
    x: np.ndarray,
    y: np.ndarray,
    c_low: float,
    c_high: float,
    alpha: float = 0.05,
) -> ConfidenceInterval:
    """True ``1 − α`` Hoeffding interval for ρ (Eqs. 6–7).

    Args:
        x, y: the sketch-join sample (NaN-free, equal length).
        c_low, c_high: global value bounds over *both* original columns
            (Section 4.3: since the joined columns are subsets of the
            originals, single-pass column min/max are valid bounds).
        alpha: total miscoverage level.

    Returns:
        An interval clipped to ``[-1, 1]``; vacuous (``[-1, 1]``) when the
        sample is too small for the variance lower bounds to stay positive.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    n = x.shape[0]
    if n == 0 or math.isnan(c_low) or math.isnan(c_high) or c_high < c_low:
        return ConfidenceInterval(-1.0, 1.0, alpha, "hoeffding")

    c = c_high - c_low
    if c == 0.0:
        # Both columns constant: correlation undefined; vacuous interval.
        return ConfidenceInterval(-1.0, 1.0, alpha, "hoeffding")

    moments = pearson_moments(x - c_low, y - c_low)
    t, t_prime = hoeffding_radii(n, c, alpha)

    # The shifted columns live in [0, C], so every population parameter is
    # confined to a known domain (means in [0, C], second moments in
    # [0, C²]). Intersecting the Hoeffding intervals with those domains
    # preserves coverage and is *required* for the numerator bounds below:
    # -μ_Aμ_B is only monotone in (μ_A, μ_B) on the non-negative orthant.
    mu_a_low, mu_a_high = _clamp(moments["mu_a"], t, 0.0, c)
    mu_b_low, mu_b_high = _clamp(moments["mu_b"], t, 0.0, c)
    nu_a_low, nu_a_high = _clamp(moments["nu_a"], t_prime, 0.0, c * c)
    nu_b_low, nu_b_high = _clamp(moments["nu_b"], t_prime, 0.0, c * c)
    nu_ab_low, nu_ab_high = _clamp(moments["nu_ab"], t_prime, 0.0, c * c)

    num_low = nu_ab_low - mu_a_high * mu_b_high
    num_high = nu_ab_high - mu_a_low * mu_b_low

    den_low = math.sqrt(
        max(0.0, nu_a_low - mu_a_high**2) * max(0.0, nu_b_low - mu_b_high**2)
    )
    den_high = math.sqrt(
        max(0.0, nu_a_high - mu_a_low**2) * max(0.0, nu_b_high - mu_b_low**2)
    )
    if den_high <= 0.0:
        # Even the optimistic variance bound is zero: the data carries no
        # scale information and the quotient is unconstrained.
        return ConfidenceInterval(-1.0, 1.0, alpha, "hoeffding")

    low, high = _interval_quotient(num_low, num_high, den_low, den_high)
    return ConfidenceInterval(
        low=max(-1.0, low), high=min(1.0, high), alpha=alpha, method="hoeffding"
    )


def hfd_interval(
    x: np.ndarray,
    y: np.ndarray,
    c_low: float,
    c_high: float,
    alpha: float = 0.05,
) -> ConfidenceInterval:
    """The paper's small-sample HFD variant (ρ^low_HFD, ρ^high_HFD).

    Identical to :func:`hoeffding_interval` in the numerator but with both
    denominator bounds replaced by the product of the *sample* standard
    deviations of the sketch-join sample. Not a true probabilistic bound;
    its length is the dispersion measure behind the ``cih`` ranking factor.
    The endpoints are not clipped (they can exceed ±1).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    n = x.shape[0]
    if n == 0 or math.isnan(c_low) or math.isnan(c_high) or c_high < c_low:
        return ConfidenceInterval(-1.0, 1.0, math.nan, "hfd")

    c = c_high - c_low
    if c == 0.0:
        return ConfidenceInterval(-1.0, 1.0, math.nan, "hfd")

    a = x - c_low
    b = y - c_low
    moments = pearson_moments(a, b)
    t, t_prime = hoeffding_radii(n, c, alpha)

    # Same domain clamping as hoeffding_interval (see comment there).
    mu_a_low, mu_a_high = _clamp(moments["mu_a"], t, 0.0, c)
    mu_b_low, mu_b_high = _clamp(moments["mu_b"], t, 0.0, c)
    nu_ab_low, nu_ab_high = _clamp(moments["nu_ab"], t_prime, 0.0, c * c)

    num_low = nu_ab_low - mu_a_high * mu_b_high
    num_high = nu_ab_high - mu_a_low * mu_b_low

    var_a = max(0.0, moments["nu_a"] - moments["mu_a"] ** 2)
    var_b = max(0.0, moments["nu_b"] - moments["mu_b"] ** 2)
    den = math.sqrt(var_a) * math.sqrt(var_b)
    if den <= 0.0:
        # Zero sample variance: the normalization is void; fall back to
        # the vacuous correlation range so the CI length stays finite.
        return ConfidenceInterval(-1.0, 1.0, math.nan, "hfd")

    low, high = _interval_quotient(num_low, num_high, den, den)
    return ConfidenceInterval(low=low, high=high, alpha=math.nan, method="hfd")
