"""Confidence-interval bounds for sketch-based correlation estimates.

Three families, trading assumptions against cost (Sections 4.2–4.3):

* **Fisher z** (:mod:`repro.correlation.fisher`) — assumes bivariate
  normality; costs O(1); only needs the sample size.
* **Hoeffding** (:mod:`repro.bounds.hoeffding`) — distribution-free; costs
  O(n); needs the column value ranges (collected during sketch
  construction). The ``hfd`` variant stays informative at small samples.
* **PM1 bootstrap** (:mod:`repro.correlation.bootstrap`) — distribution-
  free; costs hundreds of resamples; the accuracy yardstick.
"""

from repro.bounds.hoeffding import hfd_interval, hoeffding_interval, hoeffding_radii
from repro.bounds.intervals import ConfidenceInterval

__all__ = [
    "ConfidenceInterval",
    "hfd_interval",
    "hoeffding_interval",
    "hoeffding_radii",
]
