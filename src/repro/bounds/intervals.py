"""Common confidence-interval value type used across bound methods."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A two-sided interval for a population correlation ρ.

    Attributes:
        low, high: endpoints, clipped by construction to ``[-1, 1]`` for
            probabilistic bounds (the HFD variant may exceed this range —
            it is a heuristic dispersion measure, not a true bound).
        alpha: nominal miscoverage level (e.g. 0.05), NaN for heuristics.
        method: short identifier (``"hoeffding"``, ``"hfd"``, ``"fisher"``,
            ``"pm1"``).
    """

    low: float
    high: float
    alpha: float
    method: str

    @property
    def length(self) -> float:
        """Interval length; the risk measure Section 4.4 penalizes by."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval (inclusive)."""
        if math.isnan(value) or math.isnan(self.low) or math.isnan(self.high):
            return False
        return self.low <= value <= self.high

    def clipped(self) -> "ConfidenceInterval":
        """Return a copy with endpoints clipped to ``[-1, 1]``."""
        return ConfidenceInterval(
            low=max(-1.0, self.low),
            high=min(1.0, self.high),
            alpha=self.alpha,
            method=self.method,
        )
