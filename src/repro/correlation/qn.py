"""Robust Qn correlation (Section 5.3, estimator 4).

Combines two classical robust-statistics ingredients (see Shevlyakov & Oja,
*Robust Correlation*, 2016):

* the **Qn scale estimator** of Rousseeuw & Croux (1993): the k-th order
  statistic of all pairwise absolute differences, ``k = C(h, 2)`` with
  ``h = ⌊n/2⌋ + 1``, scaled by the Gaussian-consistency constant 2.2219
  and a small-sample correction factor. It has a 50% breakdown point and
  82% Gaussian efficiency.
* the **scale-based correlation identity**: for standardized variables,
  ``ρ = (var(u) − var(v)) / (var(u) + var(v))`` where
  ``u = (x̃ + ỹ)/√2`` and ``v = (x̃ − ỹ)/√2``. Substituting a robust scale
  for the standard deviation yields a robust correlation estimator:

  ``r_Qn = (Qn(u)² − Qn(v)²) / (Qn(u)² + Qn(v)²)``.

The estimator is more outlier-resistant than Pearson but needs larger
samples — Figure 4 of the paper shows it as the spiky, least-stable line,
a behaviour our reproduction should (and does) exhibit.

The Qn computation here is the straightforward O(n²) formulation, which is
appropriate for sketch-sized samples (n ≤ a few thousand); the
O(n log n) algorithm of Croux & Rousseeuw exists but is not needed at this
scale.
"""

from __future__ import annotations

import math

import numpy as np

#: Gaussian consistency constant for Qn (Croux & Rousseeuw 1992).
QN_CONSISTENCY = 2.2219

#: Small-sample correction factors d_n for n = 2..9 (Croux & Rousseeuw).
_SMALL_SAMPLE_D = {
    2: 0.399,
    3: 0.994,
    4: 0.512,
    5: 0.844,
    6: 0.611,
    7: 0.857,
    8: 0.669,
    9: 0.872,
}


def _small_sample_factor(n: int) -> float:
    if n <= 9:
        return _SMALL_SAMPLE_D.get(n, 1.0)
    if n % 2 == 1:
        return n / (n + 1.4)
    return n / (n + 3.8)


def qn_scale(values: np.ndarray) -> float:
    """Return the Qn robust scale estimate of ``values``.

    Returns NaN for fewer than 2 observations; 0.0 when more than half of
    the observations coincide (Qn's breakdown behaviour).
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n < 2:
        return math.nan

    # All pairwise absolute differences |x_i - x_j|, i < j.
    diffs = np.abs(values[:, None] - values[None, :])
    iu = np.triu_indices(n, k=1)
    pairwise = diffs[iu]

    h = n // 2 + 1
    k = h * (h - 1) // 2  # C(h, 2), 1-based order statistic
    kth = float(np.partition(pairwise, k - 1)[k - 1])
    return QN_CONSISTENCY * _small_sample_factor(n) * kth


def qn_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Return the Qn-based robust correlation between ``x`` and ``y``.

    Returns NaN when either column's Qn scale is zero or undefined (the
    standardization would divide by zero). The result is clipped to
    ``[-1, 1]``.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.shape[0] < 2:
        return math.nan

    sx = qn_scale(x)
    sy = qn_scale(y)
    if not (sx > 0.0) or not (sy > 0.0):
        return math.nan

    xs = x / sx
    ys = y / sy
    u = (xs + ys) / math.sqrt(2.0)
    v = (xs - ys) / math.sqrt(2.0)
    qu = qn_scale(u)
    qv = qn_scale(v)
    qu2 = qu * qu
    qv2 = qv * qv
    denom = qu2 + qv2
    if not (denom > 0.0) or math.isnan(denom):
        return math.nan
    r = (qu2 - qv2) / denom
    return max(-1.0, min(1.0, r))
