"""Spearman's rank correlation coefficient (Section 5.3, estimator 2).

Defined as Pearson's correlation applied to the average-tie ranks of each
column. Captures monotone (not just linear) relationships, which is why
the paper evaluates it alongside Pearson on heavy-tailed open data.
"""

from __future__ import annotations

import numpy as np

from repro.correlation.pearson import pearson
from repro.correlation.ranks import average_ranks


def spearman(x: np.ndarray, y: np.ndarray) -> float:
    """Return Spearman's rank correlation between ``x`` and ``y``.

    Returns NaN for samples of fewer than 2 pairs or when either column is
    constant (all ranks tied).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.shape[0] < 2:
        return float("nan")
    return pearson(average_ranks(x), average_ranks(y))
