"""Registry of correlation estimators (Section 5.3).

All estimators share the signature ``(x, y) -> float`` over paired numpy
arrays and return NaN when undefined. The registry lets the evaluation
harness and Figure 4's estimator sweep refer to estimators by name.

The population reference each estimate should be compared against differs
per estimator (Section 5.3's evaluation protocol): Pearson/Qn/PM1 are
compared to the population *Pearson* correlation, while Spearman and RIN
are compared to the population value of their own transformed correlation.
:func:`population_reference` encodes that mapping.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.correlation.bootstrap import pm1_bootstrap
from repro.correlation.pearson import pearson
from repro.correlation.qn import qn_correlation
from repro.correlation.rin import rin
from repro.correlation.spearman import spearman


class CorrelationEstimator(Protocol):
    """Callable estimating a correlation from paired samples."""

    def __call__(self, x: np.ndarray, y: np.ndarray) -> float: ...


def _pm1_seeded(x: np.ndarray, y: np.ndarray) -> float:
    """PM1 bootstrap with a deterministic per-sample seed.

    Seeding from the data makes estimates reproducible across runs without
    threading a generator through every call site; the evaluation harness
    overrides this when it wants explicit control.
    """
    seed = (x.shape[0] * 1_000_003 + int(abs(float(x.sum() + y.sum())) * 97) % 65_536) % (
        2**32
    )
    return pm1_bootstrap(x, y, rng=np.random.default_rng(seed))


ESTIMATORS: dict[str, CorrelationEstimator] = {
    "pearson": pearson,
    "spearman": spearman,
    "rin": rin,
    "qn": qn_correlation,
    "pm1": _pm1_seeded,
}


def get_estimator(name: str) -> CorrelationEstimator:
    """Look up an estimator by name.

    Raises:
        ValueError: for unknown names (with the list of valid ones).
    """
    try:
        return ESTIMATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown correlation estimator {name!r}; expected one of "
            f"{sorted(ESTIMATORS)}"
        ) from None


def population_reference(name: str) -> Callable[[np.ndarray, np.ndarray], float]:
    """Return the population-level function estimator ``name`` targets.

    Spearman estimates the population Spearman correlation; RIN estimates
    the population RIN correlation; Pearson, Qn and PM1 all target the
    population Pearson correlation.
    """
    if name == "spearman":
        return spearman
    if name == "rin":
        return rin
    if name in ("pearson", "qn", "pm1"):
        return pearson
    raise ValueError(f"unknown correlation estimator {name!r}")
