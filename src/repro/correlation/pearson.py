"""Pearson's sample correlation coefficient (Eq. 3 of the paper).

Implemented directly on numpy arrays rather than delegating to
``np.corrcoef`` so the degenerate cases the sketches routinely produce
(tiny samples, constant columns from low-variance joins) are handled with
explicit, documented semantics:

* fewer than 2 pairs → NaN (correlation undefined);
* zero variance in either column → NaN (denominator is zero);
* result clipped to ``[-1, 1]`` to absorb floating-point drift.
"""

from __future__ import annotations

import math

import numpy as np


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Return Pearson's sample correlation ``r`` between ``x`` and ``y``.

    Args:
        x, y: equal-length 1-D arrays of paired samples. NaN pairs must be
            removed by the caller (see ``JoinedSample.drop_nan``).

    Returns:
        ``r`` in ``[-1, 1]``, or NaN when undefined.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    n = x.shape[0]
    if n < 2:
        return math.nan

    dx = x - x.mean()
    dy = y - y.mean()
    sxx = float(np.dot(dx, dx))
    syy = float(np.dot(dy, dy))

    # Columns whose spread is within a few ulps of their magnitude are
    # numerically constant: the centered residuals are pure rounding noise
    # and the quotient below would return an arbitrary value in [-1, 1].
    eps = np.finfo(np.float64).eps
    tol_x = (8.0 * eps * float(np.abs(x).max(initial=0.0))) ** 2 * n
    tol_y = (8.0 * eps * float(np.abs(y).max(initial=0.0))) ** 2 * n
    if sxx <= tol_x or syy <= tol_y:
        return math.nan

    denom = math.sqrt(sxx) * math.sqrt(syy)
    if denom <= 0.0 or math.isinf(denom):
        return math.nan
    r = float(np.dot(dx, dy)) / denom
    return max(-1.0, min(1.0, r))


def pearson_moments(x: np.ndarray, y: np.ndarray) -> dict[str, float]:
    """Return the five moment parameters the Hoeffding CI analysis uses.

    Section 4.3 decomposes ``r`` into ``μ_a, μ_b, ν_a, ν_b, ν_ab`` (first
    and second raw moments plus the cross moment), each an average of ``n``
    bounded terms. Exposing them here keeps the bound code in
    :mod:`repro.bounds.hoeffding` purely algebraic.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.shape[0] == 0:
        nan = math.nan
        return {"mu_a": nan, "mu_b": nan, "nu_a": nan, "nu_b": nan, "nu_ab": nan, "n": 0}
    return {
        "mu_a": float(x.mean()),
        "mu_b": float(y.mean()),
        "nu_a": float(np.mean(x * x)),
        "nu_b": float(np.mean(y * y)),
        "nu_ab": float(np.mean(x * y)),
        "n": int(x.shape[0]),
    }
