"""PM1 bootstrap correlation estimate and confidence interval.

Section 5.3 (estimator 5) uses the *PM1 bootstrap* (Wilcox 1996): resample
the paired data with replacement, recompute Pearson's ``r`` on each
resample, and report the mean of the replicates. Two paper-specific
details are reproduced:

* **Adaptive stopping** — instead of a fixed number of resamples, the
  paper stops "when the probability of changing the mean by more than 0.01
  falls below 0.05%". We implement this with a normal approximation over
  the replicate distribution: after ``B`` replicates with standard
  deviation ``s``, one more replicate moves the running mean by
  ``(r_{B+1} − mean)/(B+1)``, so the stopping criterion is
  ``P(|Z| > 0.01·(B+1)/s) < 0.0005``.

* **Modified percentile CI** — Wilcox's PM1 interval draws ``B = 599``
  replicates and reads the interval from order statistics whose indices
  are adjusted by the sample size ``n`` (the adjustment corrects the
  percentile bootstrap's poor small-``n`` coverage for correlations).
  The index table below is the one from Wilcox's ``pcorb``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.correlation.pearson import pearson

#: z value with P(|Z| > z) = 0.0005 — the paper's 0.05% stopping rule.
_STOP_Z = 3.4808
#: The paper's "changing the mean by more than 0.01" tolerance.
_STOP_TOLERANCE = 0.01

#: Wilcox's ``pcorb`` order-statistic indices (1-based, B = 599, 95% CI):
#: (max n, low index, high index).
_PM1_INDICES: tuple[tuple[int, int, int], ...] = (
    (40, 7, 593),
    (80, 8, 592),
    (180, 11, 588),
    (250, 14, 585),
    (10**9, 15, 584),
)

PM1_REPLICATES = 599


@dataclass(frozen=True, slots=True)
class BootstrapResult:
    """Outcome of a PM1 bootstrap run.

    Attributes:
        estimate: mean of the replicate correlations.
        low, high: modified-percentile interval endpoints.
        replicates: number of resamples actually drawn.
    """

    estimate: float
    low: float
    high: float
    replicates: int


def _resample_correlations(
    x: np.ndarray, y: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` bootstrap replicates of Pearson's r, vectorized.

    All replicates are computed as row-wise correlations of a
    ``(count, n)`` resample matrix — one numpy pass instead of ``count``
    python-level calls. Degenerate replicates (zero variance) are dropped,
    matching the scalar path's NaN semantics.
    """
    n = x.shape[0]
    idx = rng.integers(0, n, size=(count, n))
    xs = x[idx]
    ys = y[idx]
    dx = xs - xs.mean(axis=1, keepdims=True)
    dy = ys - ys.mean(axis=1, keepdims=True)
    sxx = (dx * dx).sum(axis=1)
    syy = (dy * dy).sum(axis=1)
    sxy = (dx * dy).sum(axis=1)
    valid = (sxx > 0) & (syy > 0)
    out = np.full(count, np.nan, dtype=np.float64)
    out[valid] = np.clip(sxy[valid] / np.sqrt(sxx[valid] * syy[valid]), -1.0, 1.0)
    return out[~np.isnan(out)]


def pm1_bootstrap(
    x: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator | None = None,
    *,
    min_replicates: int = 100,
    max_replicates: int = 10_000,
    batch: int = 100,
) -> float:
    """PM1 bootstrap point estimate with the paper's adaptive stopping.

    Returns NaN when Pearson's r is undefined on the input (fewer than 2
    pairs or constant columns).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if math.isnan(pearson(x, y)):
        return math.nan
    if rng is None:
        rng = np.random.default_rng()

    replicates = _resample_correlations(x, y, min_replicates, rng)
    while replicates.shape[0] < max_replicates:
        s = float(replicates.std(ddof=1)) if replicates.shape[0] > 1 else math.inf
        b = replicates.shape[0]
        # One more replicate shifts the mean by (r - mean) / (b + 1);
        # require P(|shift| > tol) < 0.05%.
        if s == 0.0 or (s > 0 and _STOP_TOLERANCE * (b + 1) / s >= _STOP_Z):
            break
        extra = _resample_correlations(x, y, batch, rng)
        replicates = np.concatenate([replicates, extra])

    if replicates.shape[0] == 0:
        return math.nan
    return float(replicates.mean())


def pm1_interval(
    x: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """PM1 modified-percentile 95% CI (Wilcox's ``pcorb`` recipe).

    Draws 599 replicates and reads the interval from size-adjusted order
    statistics; the point estimate is the replicate mean (matching the
    paper's use of PM1 as both estimator and CI).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    n = x.shape[0]
    if math.isnan(pearson(x, y)):
        return BootstrapResult(math.nan, math.nan, math.nan, 0)
    if rng is None:
        rng = np.random.default_rng()

    replicates = _resample_correlations(x, y, PM1_REPLICATES, rng)
    if replicates.shape[0] < 10:
        return BootstrapResult(math.nan, math.nan, math.nan, replicates.shape[0])
    replicates.sort()

    low_idx, high_idx = 15, 584
    for max_n, lo, hi in _PM1_INDICES:
        if n < max_n:
            low_idx, high_idx = lo, hi
            break
    # Scale the 1-based indices if NaN replicates shrank the pool.
    b = replicates.shape[0]
    if b != PM1_REPLICATES:
        low_idx = max(1, round(low_idx * b / PM1_REPLICATES))
        high_idx = min(b, round(high_idx * b / PM1_REPLICATES))

    return BootstrapResult(
        estimate=float(replicates.mean()),
        low=float(replicates[low_idx - 1]),
        high=float(replicates[high_idx - 1]),
        replicates=b,
    )
