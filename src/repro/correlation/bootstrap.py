"""PM1 bootstrap correlation estimate and confidence interval.

Section 5.3 (estimator 5) uses the *PM1 bootstrap* (Wilcox 1996): resample
the paired data with replacement, recompute Pearson's ``r`` on each
resample, and report the mean of the replicates. Two paper-specific
details are reproduced:

* **Adaptive stopping** — instead of a fixed number of resamples, the
  paper stops "when the probability of changing the mean by more than 0.01
  falls below 0.05%". We implement this with a normal approximation over
  the replicate distribution: after ``B`` replicates with standard
  deviation ``s``, one more replicate moves the running mean by
  ``(r_{B+1} − mean)/(B+1)``, so the stopping criterion is
  ``P(|Z| > 0.01·(B+1)/s) < 0.0005``.

* **Modified percentile CI** — Wilcox's PM1 interval draws ``B = 599``
  replicates and reads the interval from order statistics whose indices
  are adjusted by the sample size ``n`` (the adjustment corrects the
  percentile bootstrap's poor small-``n`` coverage for correlations).
  The index table below is the one from Wilcox's ``pcorb``.

Two execution strategies share these semantics:

* the **per-candidate path** (:func:`pm1_bootstrap` / :func:`pm1_interval`)
  resamples one ``(x, y)`` sample at a time, vectorizing internally over
  replicates — the reference implementation and the ``rng_mode="compat"``
  contract of the query engine (bit-reproducible rng stream);
* the **cross-candidate batch engine** (:func:`pm1_interval_batch`)
  resamples *all* candidates of a ranked list together: each stopping
  round draws one shared uniform matrix, scales it into per-candidate
  index draws, and evaluates every active candidate's replicates as one
  chunked ``(C, B, n_max)`` masked tensor pass. Adaptive stopping (the
  paper's 0.01 / 0.05% rule, applied per candidate) deactivates
  converged rows between rounds, so typical candidates draw far fewer
  than the 599 ``pcorb`` replicates. Statistically equivalent to the
  per-candidate path, not bit-identical — the ``rng_mode="batched"``
  contract.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.correlation.pearson import pearson

#: z value with P(|Z| > z) = 0.0005 — the paper's 0.05% stopping rule.
_STOP_Z = 3.4808
#: The paper's "changing the mean by more than 0.01" tolerance.
_STOP_TOLERANCE = 0.01

#: Wilcox's ``pcorb`` order-statistic indices (1-based, B = 599, 95% CI):
#: (max n, low index, high index).
_PM1_INDICES: tuple[tuple[int, int, int], ...] = (
    (40, 7, 593),
    (80, 8, 592),
    (180, 11, 588),
    (250, 14, 585),
    (10**9, 15, 584),
)

PM1_REPLICATES = 599

#: Replicates per adaptive-stopping round of the cross-candidate batch
#: engine (also its minimum pool size — the same floor
#: :func:`pm1_bootstrap` uses). Keeps the scaled ``pcorb`` order
#: statistics meaningful while letting converged candidates stop at ~1/6
#: of the fixed-599 cost.
BATCH_ROUND_REPLICATES = 100


def _pm1_ci_indices(n: int, b: int) -> tuple[int, int]:
    """Wilcox ``pcorb`` order-statistic indices (1-based) for sample size
    ``n``, rescaled from the nominal ``B = 599`` pool to ``b`` replicates
    (degenerate replicates shrink the pool; the batch engine stops early).
    """
    low_idx, high_idx = 15, 584
    for max_n, lo, hi in _PM1_INDICES:
        if n < max_n:
            low_idx, high_idx = lo, hi
            break
    if b != PM1_REPLICATES:
        low_idx = max(1, round(low_idx * b / PM1_REPLICATES))
        high_idx = min(b, round(high_idx * b / PM1_REPLICATES))
    return low_idx, high_idx


@dataclass(frozen=True, slots=True)
class BootstrapResult:
    """Outcome of a PM1 bootstrap run.

    Attributes:
        estimate: mean of the replicate correlations.
        low, high: modified-percentile interval endpoints.
        replicates: number of resamples actually drawn.
    """

    estimate: float
    low: float
    high: float
    replicates: int


def _resample_correlations(
    x: np.ndarray, y: np.ndarray, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` bootstrap replicates of Pearson's r, vectorized.

    All replicates are computed as row-wise correlations of a
    ``(count, n)`` resample matrix — one numpy pass instead of ``count``
    python-level calls. Degenerate replicates (zero variance) are dropped,
    matching the scalar path's NaN semantics.
    """
    n = x.shape[0]
    idx = rng.integers(0, n, size=(count, n))
    xs = x[idx]
    ys = y[idx]
    dx = xs - xs.mean(axis=1, keepdims=True)
    dy = ys - ys.mean(axis=1, keepdims=True)
    sxx = (dx * dx).sum(axis=1)
    syy = (dy * dy).sum(axis=1)
    sxy = (dx * dy).sum(axis=1)
    valid = (sxx > 0) & (syy > 0)
    out = np.full(count, np.nan, dtype=np.float64)
    out[valid] = np.clip(sxy[valid] / np.sqrt(sxx[valid] * syy[valid]), -1.0, 1.0)
    return out[~np.isnan(out)]


def pm1_bootstrap(
    x: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator | None = None,
    *,
    min_replicates: int = 100,
    max_replicates: int = 10_000,
    batch: int = 100,
) -> float:
    """PM1 bootstrap point estimate with the paper's adaptive stopping.

    Returns NaN when Pearson's r is undefined on the input (fewer than 2
    pairs or constant columns).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if math.isnan(pearson(x, y)):
        return math.nan
    if rng is None:
        rng = np.random.default_rng()

    replicates = _resample_correlations(x, y, min_replicates, rng)
    while replicates.shape[0] < max_replicates:
        s = float(replicates.std(ddof=1)) if replicates.shape[0] > 1 else math.inf
        b = replicates.shape[0]
        # One more replicate shifts the mean by (r - mean) / (b + 1);
        # require P(|shift| > tol) < 0.05%.
        if s == 0.0 or (s > 0 and _STOP_TOLERANCE * (b + 1) / s >= _STOP_Z):
            break
        extra = _resample_correlations(x, y, batch, rng)
        replicates = np.concatenate([replicates, extra])

    if replicates.shape[0] == 0:
        return math.nan
    return float(replicates.mean())


def pm1_interval(
    x: np.ndarray,
    y: np.ndarray,
    rng: np.random.Generator | None = None,
) -> BootstrapResult:
    """PM1 modified-percentile 95% CI (Wilcox's ``pcorb`` recipe).

    Draws 599 replicates and reads the interval from size-adjusted order
    statistics; the point estimate is the replicate mean (matching the
    paper's use of PM1 as both estimator and CI).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    n = x.shape[0]
    if math.isnan(pearson(x, y)):
        return BootstrapResult(math.nan, math.nan, math.nan, 0)
    if rng is None:
        rng = np.random.default_rng()

    replicates = _resample_correlations(x, y, PM1_REPLICATES, rng)
    if replicates.shape[0] < 10:
        return BootstrapResult(math.nan, math.nan, math.nan, replicates.shape[0])
    replicates.sort()

    # Scale the 1-based indices if NaN replicates shrank the pool.
    b = replicates.shape[0]
    low_idx, high_idx = _pm1_ci_indices(n, b)

    return BootstrapResult(
        estimate=float(replicates.mean()),
        low=float(replicates[low_idx - 1]),
        high=float(replicates[high_idx - 1]),
        replicates=b,
    )


#: Per-thread scratch tensors for the batch engine's chunk loop. The
#: multi-megabyte (C_chunk, B, n_max) temporaries would otherwise be
#: mmap'd and returned to the OS on every call, paying a page-fault
#: storm per query in long-lived serving processes.
_SCRATCH = threading.local()


def _scratch_views(
    chunk_elements: int, shape: tuple[int, int, int]
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reusable (float32, int32, float32) tensors of ``shape``."""
    size = shape[0] * shape[1] * shape[2]
    buffers = getattr(_SCRATCH, "buffers", None)
    if buffers is None or buffers[0].size < size:
        alloc = max(size, chunk_elements)
        buffers = (
            np.empty(alloc, dtype=np.float32),
            np.empty(alloc, dtype=np.int32),
            np.empty(alloc, dtype=np.float32),
        )
        _SCRATCH.buffers = buffers
    return tuple(buf[:size].reshape(shape) for buf in buffers)


def pm1_interval_batch(
    xs: Sequence[np.ndarray],
    ys: Sequence[np.ndarray],
    rng: np.random.Generator | None = None,
    *,
    active: Sequence[bool] | None = None,
    round_replicates: int = BATCH_ROUND_REPLICATES,
    max_replicates: int = PM1_REPLICATES,
    chunk_elements: int = 1 << 21,
) -> list[BootstrapResult]:
    """PM1 bootstrap intervals for a whole candidate list in one engine run.

    The cross-candidate fast path behind the query engine's
    ``rng_mode="batched"``. Instead of resampling each candidate's sample
    through its own 599-replicate :func:`pm1_interval`, all candidates are
    driven together through adaptive-stopping rounds:

    1. Every round draws **one** uniform matrix ``u ~ U[0,1)^(B, n_max)``
       shared by all still-active candidates; candidate ``i`` (sample size
       ``n_i``) turns it into index draws ``floor(u[:, :n_i] * n_i)``.
    2. Replicate correlations for all active candidates are evaluated as a
       chunked ``(C, B, n_max)`` masked tensor pass: samples are padded
       (and pre-centered, which leaves Pearson's r unchanged but keeps the
       one-pass moment arithmetic well-conditioned) into a dense matrix
       with a zero column at index ``n_max``; out-of-range positions remap
       to that column, so plain axis sums are exact masked sums.
    3. Between rounds the paper's stopping rule — one more replicate moves
       the running mean by more than 0.01 with probability below 0.05% —
       deactivates converged rows; converged candidates stop drawing while
       the rest continue, up to the ``pcorb`` pool size of 599.

    Each candidate's estimate is the mean of its replicate pool and its CI
    comes from the size-rescaled Wilcox order statistics
    (:func:`_pm1_ci_indices`), exactly as :func:`pm1_interval` does when
    degenerate replicates shrink its pool. Results are statistically
    equivalent to the per-candidate path — identical contract, different
    rng stream — and deterministic for a given ``rng``.

    Args:
        xs, ys: per-candidate paired samples (1-D float arrays).
        rng: shared generator; a fixed-seed default is used when None so
            identical calls reproduce identical results.
        active: optional per-candidate eligibility mask. Ineligible
            candidates (and, when None, candidates with fewer than 2 pairs
            or an undefined Pearson correlation — the scalar path's guard)
            get the NaN :class:`BootstrapResult`.
        round_replicates: replicates drawn per stopping round (also the
            minimum pool size before the stopping rule may fire).
        max_replicates: replicate cap per candidate (default: the 599 of
            Wilcox's ``pcorb``).
        chunk_elements: bound on elements per ``(C_chunk, B, n_max)``
            tensor, limiting peak memory for large candidate pages.
    """
    count = len(xs)
    if len(ys) != count:
        raise ValueError(f"{count} x samples but {len(ys)} y samples")
    if not 0 < round_replicates <= max_replicates:
        raise ValueError(
            f"round_replicates must be in (0, {max_replicates}], "
            f"got {round_replicates}"
        )
    results = [
        BootstrapResult(math.nan, math.nan, math.nan, 0) for _ in range(count)
    ]
    if active is None:
        active = [
            xs[i].shape[0] >= 2 and not math.isnan(pearson(xs[i], ys[i]))
            for i in range(count)
        ]
    elif len(active) != count:
        raise ValueError(f"{count} samples but {len(active)} active flags")
    # Zero-length samples keep the NaN result directly (their padded rows
    # would only produce degenerate replicates anyway).
    sel = [i for i in range(count) if active[i] and xs[i].shape[0] > 0]
    if not sel:
        return results
    # Process candidates in ascending sample-size order: each chunk then
    # pads to its own (near-uniform) local maximum instead of the global
    # one, so ragged candidate pages waste almost no tensor work.
    sel.sort(key=lambda i: xs[i].shape[0])
    if rng is None:
        rng = np.random.default_rng(0x5EEDB007)

    n_arr = np.asarray([int(xs[i].shape[0]) for i in sel], dtype=np.int64)
    n_max = int(n_arr.max())
    # Padded dense samples with a dedicated all-zeros column at n_max:
    # masked index positions point there, so unweighted sums are exact.
    # The tensor pass runs in float32: centering plus per-sample scale
    # normalization keep the one-pass moments well-conditioned, and the
    # ~1e-5 r error this costs is orders of magnitude below bootstrap
    # replicate noise — while halving the memory traffic of the hot loop.
    # Prep is itself segment-vectorized (reduceat over the concatenated
    # samples) so large candidate pages pay no per-candidate Python cost.
    padded_x = np.zeros((len(sel), n_max + 1), dtype=np.float32)
    padded_y = np.zeros((len(sel), n_max + 1), dtype=np.float32)
    starts = np.zeros(len(sel), dtype=np.int64)
    np.cumsum(n_arr[:-1], out=starts[1:])
    flat_positions = (
        np.arange(int(n_arr.sum())) - np.repeat(starts, n_arr)
        + np.repeat(np.arange(len(sel)) * (n_max + 1), n_arr)
    )
    for padded, columns in ((padded_x, xs), (padded_y, ys)):
        concat = np.concatenate(
            [np.asarray(columns[i], dtype=np.float64) for i in sel]
        )
        means = np.add.reduceat(concat, starts) / n_arr
        centered = concat - np.repeat(means, n_arr)
        # Pearson's r is scale-invariant; normalizing by the max |value|
        # keeps float32 sums of squares far from overflow/underflow.
        scales = np.maximum.reduceat(np.abs(centered), starts)
        scales[scales <= 0] = 1.0
        centered /= np.repeat(scales, n_arr)
        padded.reshape(-1)[flat_positions] = centered

    # Flat views for the gather: np.take(flat, row * width + idx) is a
    # plain flat gather, which numpy executes far faster than the
    # broadcast take_along_axis path. Flat offsets live in the int32
    # scratch tensor; batches big enough to overflow it fall back to the
    # per-candidate path (unreachable at query-page scale).
    width = n_max + 1
    if len(sel) * width > 2**31 - 1:
        for i in sel:
            results[i] = pm1_interval(xs[i], ys[i], rng=rng)
        return results
    flat_x = padded_x.reshape(-1)
    flat_y = padded_y.reshape(-1)

    pools: list[list[np.ndarray]] = [[] for _ in sel]
    pool_count = np.zeros(len(sel), dtype=np.int64)
    pool_sum = np.zeros(len(sel), dtype=np.float64)
    pool_sumsq = np.zeros(len(sel), dtype=np.float64)

    active_rows = np.arange(len(sel))
    drawn = 0
    while active_rows.size and drawn < max_replicates:
        b_round = min(round_replicates, max_replicates - drawn)
        round_n_max = int(n_arr[active_rows].max())
        # One shared draw per round; per-candidate scaling preserves
        # uniformity over each candidate's own index range.
        u = rng.random((b_round, round_n_max), dtype=np.float32)
        rows_per_chunk = max(1, chunk_elements // (b_round * round_n_max))
        for start in range(0, active_rows.size, rows_per_chunk):
            rows = active_rows[start : start + rows_per_chunk]
            rows_n = n_arr[rows]
            rows_n_col = rows_n[:, None, None]
            chunk_n_max = int(rows_n.max())
            shape = (rows.shape[0], b_round, chunk_n_max)
            scaled, idx, res_y = _scratch_views(chunk_elements, shape)
            # floor(u * n) needs no clamp: u <= 1 - 2^-24 in float32, and
            # u*n rounds to n only if n * 2^-23 < ulp(n)/2 = 2^(e-24) with
            # 2^e <= n — i.e. n < 2^(e-1), impossible. So idx < n always.
            np.multiply(
                u[None, :, :chunk_n_max],
                rows_n_col.astype(np.float32),
                out=scaled,
            )
            np.copyto(idx, scaled, casting="unsafe")  # truncating cast
            np.add(idx, (rows * width).astype(np.int32)[:, None, None], out=idx)
            if int(rows_n.min()) != chunk_n_max:
                # Ragged chunk: remap padding positions (j >= n_i) to the
                # candidate's all-zeros slot so plain sums stay exact.
                positions = np.arange(chunk_n_max)
                zero_slot = (rows * width + n_max).astype(np.int32)
                np.copyto(
                    idx,
                    zero_slot[:, None, None],
                    where=positions[None, None, :] >= rows_n_col,
                )
            res_x = scaled  # the scaled draws are dead; reuse the buffer
            np.take(flat_x, idx, out=res_x, mode="clip")
            np.take(flat_y, idx, out=res_y, mode="clip")
            nf = rows_n[:, None].astype(np.float64)
            sum_x = res_x.sum(axis=2, dtype=np.float64)
            sum_y = res_y.sum(axis=2, dtype=np.float64)
            sxx = np.einsum("cbj,cbj->cb", res_x, res_x).astype(np.float64)
            syy = np.einsum("cbj,cbj->cb", res_y, res_y).astype(np.float64)
            sxy = np.einsum("cbj,cbj->cb", res_x, res_y).astype(np.float64)
            var_x = sxx - sum_x * sum_x / nf
            var_y = syy - sum_y * sum_y / nf
            cov = sxy - sum_x * sum_y / nf
            valid = (var_x > 0) & (var_y > 0)
            r = np.full(cov.shape, np.nan, dtype=np.float64)
            r[valid] = np.clip(
                cov[valid] / np.sqrt(var_x[valid] * var_y[valid]), -1.0, 1.0
            )
            # Degenerate (NaN) replicates are dropped at finalization; the
            # running stopping-rule moments skip them here, vectorized
            # across the chunk instead of one Python pass per candidate.
            pool_count[rows] += valid.sum(axis=1)
            pool_sum[rows] += np.nansum(r, axis=1)
            pool_sumsq[rows] += np.nansum(r * r, axis=1)
            for offset, row in enumerate(rows):
                pools[row].append(r[offset])
        drawn += b_round

        still_active = []
        for row in active_rows:
            b = int(pool_count[row])
            if b <= 1:
                still_active.append(row)
                continue
            var = max(
                0.0, (pool_sumsq[row] - pool_sum[row] ** 2 / b) / (b - 1)
            )
            s = math.sqrt(var)
            # Same rule as pm1_bootstrap: stop when one more replicate is
            # overwhelmingly unlikely to move the mean by the tolerance.
            if s == 0.0 or _STOP_TOLERANCE * (b + 1) / s >= _STOP_Z:
                continue
            still_active.append(row)
        active_rows = np.asarray(still_active, dtype=np.int64)

    for row, i in enumerate(sel):
        pool = (
            np.concatenate(pools[row])
            if pools[row]
            else np.empty(0, dtype=np.float64)
        )
        pool = pool[~np.isnan(pool)]
        b = pool.shape[0]
        if b < 10:
            results[i] = BootstrapResult(math.nan, math.nan, math.nan, b)
            continue
        pool.sort()
        low_idx, high_idx = _pm1_ci_indices(int(n_arr[row]), b)
        results[i] = BootstrapResult(
            estimate=float(pool.mean()),
            low=float(pool[low_idx - 1]),
            high=float(pool[high_idx - 1]),
            replicates=b,
        )
    return results
