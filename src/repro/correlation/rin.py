"""Rank-based Inverse Normal (RIN) correlation (Section 5.3, estimator 3).

Following Bishara & Hittner (2015), each column is transformed with the
*rankit* function ``h(x) = Φ⁻¹((r(x) − 1/2) / n)`` and Pearson's
correlation is computed over the transformed values. The transform maps
any marginal distribution to (approximately) standard normal, which tames
the heavy tails that bias Pearson on open data.
"""

from __future__ import annotations

import numpy as np

from repro.correlation.pearson import pearson
from repro.correlation.ranks import rankit


def rin(x: np.ndarray, y: np.ndarray) -> float:
    """Return the RIN (rankit) correlation between ``x`` and ``y``.

    Returns NaN for fewer than 2 pairs or constant columns.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    if x.shape[0] < 2:
        return float("nan")
    return pearson(rankit(x), rankit(y))
