"""Rank transforms shared by Spearman and RIN correlations.

The paper's Section 5.3 defines Spearman's coefficient as "transform each
column with the rank function ``r(x)``, then compute Pearson over the
transformed values", and the RIN coefficient as the same recipe with the
*rankit* function ``h(x) = Φ⁻¹((r(x) − 1/2) / n)``. Both therefore share
one primitive: average-tie ranking, implemented here without scipy so the
exact tie policy is pinned down and property-testable.
"""

from __future__ import annotations

import numpy as np


def average_ranks(values: np.ndarray) -> np.ndarray:
    """Return 1-based ranks with ties sharing their average rank.

    This matches the "fractional" method of ``scipy.stats.rankdata``:
    ``average_ranks([10, 20, 20, 30]) == [1.0, 2.5, 2.5, 4.0]``.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.float64)

    order = np.argsort(values, kind="mergesort")
    sorted_vals = values[order]

    ranks = np.empty(n, dtype=np.float64)
    i = 0
    while i < n:
        j = i
        while j + 1 < n and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        # Positions i..j (0-based) hold tied values; their 1-based ranks
        # are i+1..j+1 and each receives the average (i + j) / 2 + 1.
        avg = (i + j) / 2.0 + 1.0
        ranks[order[i : j + 1]] = avg
        i = j + 1
    return ranks


def rankit(values: np.ndarray) -> np.ndarray:
    """Apply the rankit Rank-based Inverse Normal transform (Bliss 1967).

    ``h(x) = Φ⁻¹((r(x) − 1/2) / n)`` where ``r`` is the average-tie rank
    and ``Φ⁻¹`` the standard normal quantile function. The ``−1/2`` offset
    keeps arguments strictly inside ``(0, 1)``.
    """
    from scipy.special import ndtri

    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.float64)
    ranks = average_ranks(values)
    return ndtri((ranks - 0.5) / n)
