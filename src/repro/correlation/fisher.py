"""Fisher's z transformation: standard error and confidence intervals.

Section 4.2 uses the standard error of Fisher's z-transformed correlation,
``SE_z = 1 / sqrt(n − 3)``, as the cheapest available dispersion measure:
it only needs the sketch-join sample size ``n``. It assumes bivariate
normality, but is asymptotically of the same ``1/√n`` order as the
distribution-free Hoeffding analysis, so it "works increasingly well as
the sample size increases for any data distribution".
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def fisher_z(r: float) -> float:
    """Fisher's variance-stabilizing transform ``z = atanh(r)``.

    Correlations at ±1 map to ±inf (the transform's true limit).
    """
    if math.isnan(r):
        return math.nan
    if r >= 1.0:
        return math.inf
    if r <= -1.0:
        return -math.inf
    return math.atanh(r)


def inverse_fisher_z(z: float) -> float:
    """Inverse transform ``r = tanh(z)``."""
    if math.isnan(z):
        return math.nan
    return math.tanh(z)


def fisher_se(n: int) -> float:
    """Standard error of z: ``1 / sqrt(n − 3)`` (inf when n ≤ 3)."""
    if n <= 3:
        return math.inf
    return 1.0 / math.sqrt(n - 3)


def clamped_fisher_se(n: int) -> float:
    """The paper's ranking variant: ``1 / sqrt(max(4, n) − 3)``.

    Section 4.4's ``sez`` factor clamps ``n`` at 4 so tiny samples receive
    the maximum (finite) penalty of 1 rather than an infinite one.
    """
    return 1.0 / math.sqrt(max(4, n) - 3)


@dataclass(frozen=True, slots=True)
class FisherInterval:
    """A confidence interval for ρ from Fisher's z.

    Attributes:
        low, high: interval endpoints in correlation space.
        z_low, z_high: endpoints in z space.
    """

    low: float
    high: float
    z_low: float
    z_high: float

    @property
    def length(self) -> float:
        return self.high - self.low


#: Two-sided standard-normal quantiles for common confidence levels.
_Z_QUANTILES = {0.10: 1.6449, 0.05: 1.9600, 0.01: 2.5758}


def _z_quantile(alpha: float) -> float:
    if alpha in _Z_QUANTILES:
        return _Z_QUANTILES[alpha]
    from scipy.special import ndtri

    return float(ndtri(1.0 - alpha / 2.0))


def fisher_interval(r: float, n: int, alpha: float = 0.05) -> FisherInterval:
    """Two-sided ``1 − alpha`` CI for ρ via Fisher's z.

    Returns the degenerate interval ``[-1, 1]`` when ``n ≤ 3`` (the SE is
    infinite) or when ``r`` is NaN.
    """
    if math.isnan(r) or n <= 3:
        return FisherInterval(-1.0, 1.0, -math.inf, math.inf)
    z = fisher_z(r)
    half = _z_quantile(alpha) * fisher_se(n)
    z_low, z_high = z - half, z + half
    return FisherInterval(
        low=inverse_fisher_z(z_low),
        high=inverse_fisher_z(z_high),
        z_low=z_low,
        z_high=z_high,
    )
