"""Correlation estimators and their sampling-error statistics.

Implements the five estimators the paper evaluates (Section 5.3) —
Pearson, Spearman, RIN (rankit), robust Qn and PM1 bootstrap — plus
Fisher's z machinery (Section 4.2). All estimators operate on paired numpy
arrays and return NaN when the correlation is undefined.
"""

from repro.correlation.bootstrap import (
    BATCH_ROUND_REPLICATES,
    PM1_REPLICATES,
    BootstrapResult,
    pm1_bootstrap,
    pm1_interval,
    pm1_interval_batch,
)
from repro.correlation.estimators import (
    ESTIMATORS,
    get_estimator,
    population_reference,
)
from repro.correlation.fisher import (
    FisherInterval,
    clamped_fisher_se,
    fisher_interval,
    fisher_se,
    fisher_z,
    inverse_fisher_z,
)
from repro.correlation.pearson import pearson, pearson_moments
from repro.correlation.qn import qn_correlation, qn_scale
from repro.correlation.ranks import average_ranks, rankit
from repro.correlation.rin import rin
from repro.correlation.spearman import spearman

__all__ = [
    "BATCH_ROUND_REPLICATES",
    "ESTIMATORS",
    "PM1_REPLICATES",
    "BootstrapResult",
    "FisherInterval",
    "average_ranks",
    "clamped_fisher_se",
    "fisher_interval",
    "fisher_se",
    "fisher_z",
    "get_estimator",
    "inverse_fisher_z",
    "pearson",
    "pearson_moments",
    "pm1_bootstrap",
    "pm1_interval",
    "pm1_interval_batch",
    "population_reference",
    "qn_correlation",
    "qn_scale",
    "rankit",
    "rin",
    "spearman",
]
