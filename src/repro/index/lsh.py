"""MinHash-LSH candidate retrieval over correlation sketches.

Section 4 of the paper notes that the candidate-retrieval step — find
sketches whose key sets overlap the query's — can be served by any set
similarity search method (inverted indexes, JOSIE, ppjoin+, Lazo/LSH
Ensemble). :mod:`repro.index.inverted` is the exact ScanCount baseline;
this module adds the sub-linear *approximate* alternative: banded
one-permutation MinHash LSH.

Two facts make this work directly on the sketches:

* a sketch's retained keys are a **coordinated uniform sample** of its
  key set (the bottom-``n`` by ``h_u``), so two sketches of overlapping
  tables retain the *same* shared keys — Jaccard over retained keys
  tracks Jaccard over the full key sets;
* the retained **key hashes** ``h(k)`` spread uniformly over the hash
  space (``h_u`` ordering and ``h`` values decorrelate under the
  golden-ratio scramble), so bucketing the hash space into ``b·r`` slots
  and keeping the minimum hash per slot yields a standard
  one-permutation MinHash signature without touching the original data.

Signatures are split into ``b`` bands of ``r`` rows; two sketches become
candidates when any band matches exactly. Key sets with Jaccard
similarity ``s`` collide with probability ``≈ 1 − (1 − s^r)^b``.

Trade-off vs the exact inverted index: probing costs O(b) dictionary
lookups independent of posting-list lengths, at the price of missing
low-overlap candidates — quantified in
``benchmarks/bench_ablation_retrieval.py``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

#: Sentinel slot value for an empty bucket (no retained hash fell in it).
_EMPTY = -1


class MinHashSignature:
    """One-permutation MinHash signature over retained key hashes."""

    __slots__ = ("slots",)

    def __init__(self, slots: tuple[int, ...]) -> None:
        self.slots = slots

    @classmethod
    def from_key_hashes(
        cls, key_hashes: Iterable[int], n_slots: int, bits: int = 32
    ) -> "MinHashSignature":
        """Bucket the ``2**bits`` hash space into ``n_slots`` ranges and
        keep the minimum hash per range (``_EMPTY`` when none fell in)."""
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots}")
        span = 1 << bits
        slots = [_EMPTY] * n_slots
        for kh in key_hashes:
            idx = min(n_slots - 1, kh * n_slots // span)
            if slots[idx] == _EMPTY or kh < slots[idx]:
                slots[idx] = kh
        return cls(tuple(slots))

    def similarity(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity: fraction of agreeing informative
        slots (slots empty on both sides carry no information)."""
        agree = 0
        informative = 0
        for a, b in zip(self.slots, other.slots):
            if a == _EMPTY and b == _EMPTY:
                continue
            informative += 1
            if a == b:
                agree += 1
        return agree / informative if informative else 0.0


class LshIndex:
    """Banded MinHash-LSH index over sketch key sets.

    Args:
        bands: number of bands ``b``.
        rows: rows per band ``r``. The signature has ``b·r`` slots.
        bits: width of the key-hash space (the catalog hasher's ``bits``).
    """

    def __init__(self, bands: int = 16, rows: int = 4, bits: int = 32) -> None:
        if bands <= 0 or rows <= 0:
            raise ValueError(f"bands and rows must be positive, got {bands}x{rows}")
        self.bands = bands
        self.rows = rows
        self.bits = bits
        self._buckets: list[dict[tuple[int, ...], list[str]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._signatures: dict[str, MinHashSignature] = {}

    @property
    def n_slots(self) -> int:
        return self.bands * self.rows

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, sketch_id: str) -> bool:
        return sketch_id in self._signatures

    def signature_of(self, key_hashes: Iterable[int]) -> MinHashSignature:
        return MinHashSignature.from_key_hashes(key_hashes, self.n_slots, self.bits)

    def _band_keys(self, signature: MinHashSignature):
        for band in range(self.bands):
            start = band * self.rows
            yield band, signature.slots[start : start + self.rows]

    def add(self, sketch_id: str, key_hashes: Iterable[int]) -> None:
        """Index a sketch by its retained key hashes.

        Raises:
            ValueError: if ``sketch_id`` is already indexed.
        """
        if sketch_id in self._signatures:
            raise ValueError(f"sketch id {sketch_id!r} is already indexed")
        signature = self.signature_of(key_hashes)
        self._signatures[sketch_id] = signature
        for band, key in self._band_keys(signature):
            self._buckets[band][key].append(sketch_id)

    def candidates(
        self, key_hashes: Iterable[int], *, exclude: str | None = None
    ) -> dict[str, float]:
        """Return colliding sketch ids with estimated Jaccard similarity."""
        signature = self.signature_of(key_hashes)
        hits: set[str] = set()
        for band, key in self._band_keys(signature):
            hits.update(self._buckets[band].get(key, ()))
        if exclude is not None:
            hits.discard(exclude)
        return {sid: signature.similarity(self._signatures[sid]) for sid in hits}

    def top_candidates(
        self,
        key_hashes: Iterable[int],
        k: int,
        *,
        exclude: str | None = None,
    ) -> list[tuple[str, float]]:
        """Top-``k`` colliding sketches by estimated Jaccard similarity."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        scored = self.candidates(key_hashes, exclude=exclude)
        ranked = sorted(scored.items(), key=lambda t: (-t[1], t[0]))
        return ranked[:k]
