"""MinHash-LSH candidate retrieval over correlation sketches.

Section 4 of the paper notes that the candidate-retrieval step — find
sketches whose key sets overlap the query's — can be served by any set
similarity search method (inverted indexes, JOSIE, ppjoin+, Lazo/LSH
Ensemble). :mod:`repro.index.inverted` is the exact ScanCount baseline;
this module is the sub-linear *approximate* alternative: banded
one-permutation MinHash LSH, pluggable into the query engine as
``JoinCorrelationEngine(..., retrieval_backend="lsh")``.

Two facts make this work directly on the sketches:

* a sketch's retained keys are a **coordinated uniform sample** of its
  key set (the bottom-``n`` by ``h_u``), so two sketches of overlapping
  tables retain the *same* shared keys — Jaccard over retained keys
  tracks Jaccard over the full key sets;
* the retained **key hashes** ``h(k)`` spread uniformly over the hash
  space (``h_u`` ordering and ``h`` values decorrelate under the
  golden-ratio scramble), so bucketing the hash space into ``b·r`` slots
  and keeping the minimum hash per slot yields a standard
  one-permutation MinHash signature without touching the original data.

Signatures are split into ``b`` bands of ``r`` rows; two sketches become
candidates when any band matches exactly. Key sets with Jaccard
similarity ``s`` collide with probability ``≈ 1 − (1 − s^r)^b``. Bands
in which *no* slot is filled are skipped at both index and query time —
an all-empty band says "this sketch is too sparse to populate this hash
range", which every other sparse sketch also says, so bucketing it
would make all sparse sketches spuriously collide (with estimated
similarity 0) regardless of their actual keys.

Signatures are built by the vectorized one-permutation kernels in
:mod:`repro.hashing.vectorized` (one ``np.minimum.at`` scatter for the
whole catalog via :meth:`LshIndex.add_batch`); the scalar
:meth:`MinHashSignature.from_key_hashes` is the bit-parity reference.

Trade-off vs the exact inverted index: probing costs O(b) dictionary
lookups independent of posting-list lengths, at the price of missing
low-overlap candidates — quantified in
``benchmarks/bench_ablation_retrieval.py``.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from repro.hashing.vectorized import (
    one_permutation_signature,
    one_permutation_signatures_batch,
)

#: Sentinel slot value for an empty bucket (no retained hash fell in it).
_EMPTY = -1

#: Default banding used when a caller does not choose one: 16 bands of 4
#: rows (64 slots) — the collision threshold ``(1/b)^(1/r) ≈ 0.5``
#: Jaccard, matching the ">=50% overlap candidates must be found" bar
#: the retrieval ablation enforces.
DEFAULT_BANDS = 16
DEFAULT_ROWS = 4


class MinHashSignature:
    """One-permutation MinHash signature over retained key hashes.

    Scalar reference implementation: the vectorized kernels in
    :mod:`repro.hashing.vectorized` must reproduce these slots exactly
    (pinned by the parity tests).
    """

    __slots__ = ("slots",)

    def __init__(self, slots: tuple[int, ...]) -> None:
        self.slots = slots

    @classmethod
    def from_key_hashes(
        cls, key_hashes: Iterable[int], n_slots: int, bits: int = 32
    ) -> "MinHashSignature":
        """Bucket the ``2**bits`` hash space into ``n_slots`` ranges and
        keep the minimum hash per range (``_EMPTY`` when none fell in)."""
        if n_slots <= 0:
            raise ValueError(f"n_slots must be positive, got {n_slots}")
        span = 1 << bits
        slots = [_EMPTY] * n_slots
        for kh in key_hashes:
            idx = min(n_slots - 1, kh * n_slots // span)
            if slots[idx] == _EMPTY or kh < slots[idx]:
                slots[idx] = kh
        return cls(tuple(slots))

    def similarity(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity: fraction of agreeing slots among
        those filled on *both* sides.

        One-sided empties are excluded, not counted as disagreements: a
        slot empty in only one signature reflects the size skew between
        the two key sets (the sparser one retained nothing in that hash
        range), not evidence about their overlap — counting it as a
        mismatch biased the estimate toward 0 for size-skewed pairs.
        Slots empty on both sides carry no information either way.

        Operating regime: the estimator is accurate when signatures are
        mostly filled — key sets at least as large as the slot count,
        which sketches in this system always are (they retain 256–1024
        keys against the default 64 slots). For key sets much smaller
        than the slot count the both-filled conditioning enriches for
        shared keys and overestimates; the property suite pins the dense
        regime.
        """
        agree = 0
        informative = 0
        for a, b in zip(self.slots, other.slots):
            if a == _EMPTY or b == _EMPTY:
                continue
            informative += 1
            if a == b:
                agree += 1
        return agree / informative if informative else 0.0


class LshIndex:
    """Banded MinHash-LSH index over sketch key sets.

    Signatures are stored columnar (one ``uint64`` slot row plus a
    boolean filled mask per sketch); buckets map a band's byte-packed
    slot values to integer doc positions. Sketch ids are kept in a
    lexicographically *unordered* insertion list — candidate output is
    sorted by id where determinism matters.

    Args:
        bands: number of bands ``b``.
        rows: rows per band ``r``. The signature has ``b·r`` slots.
        bits: width of the key-hash space (the catalog hasher's ``bits``).
    """

    def __init__(
        self,
        bands: int = DEFAULT_BANDS,
        rows: int = DEFAULT_ROWS,
        bits: int = 32,
    ) -> None:
        if bands <= 0 or rows <= 0:
            raise ValueError(f"bands and rows must be positive, got {bands}x{rows}")
        self.bands = bands
        self.rows = rows
        self.bits = bits
        self._buckets: list[dict[bytes, list[int]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._ids: list[str] = []
        self._id_index: dict[str, int] = {}
        self._slots: list[np.ndarray] = []
        self._filled: list[np.ndarray] = []

    @property
    def n_slots(self) -> int:
        return self.bands * self.rows

    @property
    def ids(self) -> list[str]:
        """Indexed sketch ids in insertion order (read-only use)."""
        return self._ids

    def __len__(self) -> int:
        return len(self._ids)

    def __contains__(self, sketch_id: str) -> bool:
        return sketch_id in self._id_index

    @property
    def storage(self) -> str:
        """``"mmap"`` when any signature row is a view into a
        memory-mapped arena snapshot (:mod:`repro.index.arena`), else
        ``"heap"``. Buckets and ids are always heap state."""
        from repro.index.arena import backing_storage

        return backing_storage(*self._slots, *self._filled)

    @property
    def signature_nbytes(self) -> int:
        """Total bytes of the stored slot/filled signature rows."""
        return sum(a.nbytes for a in self._slots) + sum(
            a.nbytes for a in self._filled
        )

    # -- signatures ----------------------------------------------------------

    def _signature_arrays(self, key_hashes) -> tuple[np.ndarray, np.ndarray]:
        """``(slots, filled)`` arrays for one key-hash set (any iterable
        of ints or an integer array; order never matters)."""
        if not isinstance(key_hashes, np.ndarray):
            key_hashes = np.fromiter(key_hashes, dtype=np.uint64)
        return one_permutation_signature(key_hashes, self.n_slots, self.bits)

    def signature_of(self, key_hashes) -> MinHashSignature:
        """Scalar-view signature (``_EMPTY`` sentinel tuple) of a key set."""
        slots, filled = self._signature_arrays(key_hashes)
        return MinHashSignature(
            tuple(
                int(v) if f else _EMPTY
                for v, f in zip(slots.tolist(), filled.tolist())
            )
        )

    def _band_payloads(self, slots: np.ndarray, filled: np.ndarray):
        """Yield ``(band, key_bytes)`` for every band with ≥1 filled slot.

        The byte key packs the band's slot values *and* its filled mask,
        so an empty slot never equals a filled slot holding the
        placeholder value. All-empty bands are skipped — the empty-band
        collision fix described in the module docs.
        """
        r = self.rows
        for band in range(self.bands):
            start = band * r
            filled_band = filled[start : start + r]
            if not filled_band.any():
                continue
            yield band, (
                slots[start : start + r].tobytes() + filled_band.tobytes()
            )

    # -- population ----------------------------------------------------------

    def _append(self, sketch_id: str, slots: np.ndarray, filled: np.ndarray) -> None:
        doc = len(self._ids)
        self._ids.append(sketch_id)
        self._id_index[sketch_id] = doc
        self._slots.append(slots)
        self._filled.append(filled)
        for band, key in self._band_payloads(slots, filled):
            self._buckets[band][key].append(doc)

    def add(self, sketch_id: str, key_hashes) -> None:
        """Index a sketch by its retained key hashes.

        Raises:
            ValueError: if ``sketch_id`` is already indexed.
        """
        if sketch_id in self._id_index:
            raise ValueError(f"sketch id {sketch_id!r} is already indexed")
        slots, filled = self._signature_arrays(key_hashes)
        self._append(sketch_id, slots, filled)

    def add_batch(
        self,
        sketch_ids: Sequence[str],
        concat_hashes: np.ndarray,
        indptr: np.ndarray,
    ) -> None:
        """Bulk :meth:`add` from CSR-concatenated key-hash arrays.

        All signatures are built by one vectorized
        :func:`~repro.hashing.vectorized.one_permutation_signatures_batch`
        scatter — the catalog's lazy LSH build
        (:meth:`repro.index.catalog.SketchCatalog.lsh_index`) feeds the
        concatenated ``SketchColumns.key_hashes`` straight in. Validates
        every id before mutating anything, like the catalog's bulk add.
        """
        indptr = np.asarray(indptr, dtype=np.int64)
        if indptr.shape[0] != len(sketch_ids) + 1:
            raise ValueError(
                f"{len(sketch_ids)} ids need indptr of length "
                f"{len(sketch_ids) + 1}, got {indptr.shape[0]}"
            )
        seen: set[str] = set()
        for sid in sketch_ids:
            if sid in self._id_index:
                raise ValueError(f"sketch id {sid!r} is already indexed")
            if sid in seen:
                raise ValueError(f"duplicate sketch id {sid!r} in batch")
            seen.add(sid)
        slots, filled = one_permutation_signatures_batch(
            concat_hashes, indptr, self.n_slots, self.bits
        )
        for i, sid in enumerate(sketch_ids):
            self._append(sid, slots[i], filled[i])

    # -- probing -------------------------------------------------------------

    def _collect(self, slots: np.ndarray, filled: np.ndarray) -> list[int]:
        docs: set[int] = set()
        for band, key in self._band_payloads(slots, filled):
            docs.update(self._buckets[band].get(key, ()))
        return sorted(docs)

    def candidate_ids(self, key_hashes, *, exclude: str | None = None) -> list[str]:
        """Sketch ids colliding with the query in ≥1 band, sorted by id.

        The retrieval-backend probe: similarity estimates are skipped —
        the engine ranks candidates by exact key overlap downstream, so
        collision membership is all it needs.
        """
        slots, filled = self._signature_arrays(key_hashes)
        ids = [self._ids[d] for d in self._collect(slots, filled)]
        if exclude is not None:
            ids = [sid for sid in ids if sid != exclude]
        return sorted(ids)

    def candidates(
        self, key_hashes, *, exclude: str | None = None
    ) -> dict[str, float]:
        """Return colliding sketch ids with estimated Jaccard similarity.

        Similarities are computed in one vectorized pass over the hit
        set, bit-identical to :meth:`MinHashSignature.similarity` on the
        corresponding scalar signatures (integer counts, one division).
        """
        slots, filled = self._signature_arrays(key_hashes)
        docs = self._collect(slots, filled)
        if exclude is not None:
            excl = self._id_index.get(exclude)
            docs = [d for d in docs if d != excl]
        if not docs:
            return {}
        cand_slots = np.stack([self._slots[d] for d in docs])
        cand_filled = np.stack([self._filled[d] for d in docs])
        informative = cand_filled & filled[None, :]
        agree = informative & (cand_slots == slots[None, :])
        n_inf = informative.sum(axis=1)
        n_agree = agree.sum(axis=1)
        with np.errstate(invalid="ignore"):
            sims = np.where(n_inf > 0, n_agree / np.maximum(n_inf, 1), 0.0)
        return {self._ids[d]: float(s) for d, s in zip(docs, sims)}

    def top_candidates(
        self,
        key_hashes,
        k: int,
        *,
        exclude: str | None = None,
    ) -> list[tuple[str, float]]:
        """Top-``k`` colliding sketches by estimated Jaccard similarity."""
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        scored = self.candidates(key_hashes, exclude=exclude)
        ranked = sorted(scored.items(), key=lambda t: (-t[1], t[0]))
        return ranked[:k]

    # -- persistence (binary catalog snapshots) ------------------------------

    def export_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """``(slots, filled)`` as dense ``(n, n_slots)`` matrices.

        The snapshot representation: together with :attr:`ids` and the
        ``(bands, rows, bits)`` config they rebuild the index exactly
        (:meth:`from_arrays`); buckets are derived state.
        """
        if not self._ids:
            return (
                np.empty((0, self.n_slots), dtype=np.uint64),
                np.empty((0, self.n_slots), dtype=bool),
            )
        return np.stack(self._slots), np.stack(self._filled)

    @classmethod
    def from_arrays(
        cls,
        sketch_ids: Sequence[str],
        slots: np.ndarray,
        filled: np.ndarray,
        *,
        bands: int,
        rows: int,
        bits: int,
    ) -> "LshIndex":
        """Rebuild an index from :meth:`export_arrays` output."""
        index = cls(bands=bands, rows=rows, bits=bits)
        slots = np.asarray(slots, dtype=np.uint64)
        filled = np.asarray(filled, dtype=bool)
        if slots.shape != (len(sketch_ids), index.n_slots) or filled.shape != slots.shape:
            raise ValueError(
                f"signature arrays of shape {slots.shape}/{filled.shape} do not "
                f"match {len(sketch_ids)} ids x {index.n_slots} slots"
            )
        for i, sid in enumerate(sketch_ids):
            if sid in index._id_index:
                raise ValueError(f"duplicate sketch id {sid!r}")
            index._append(str(sid), slots[i], filled[i])
        return index
