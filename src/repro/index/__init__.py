"""Indexing and query evaluation for join-correlation search.

The inverted index (:mod:`repro.index.inverted`) provides set-overlap
candidate retrieval over sketch key hashes; the catalog
(:mod:`repro.index.catalog`) stores sketches per column pair; the engine
(:mod:`repro.index.engine`) composes them into the two-phase top-k
query plan of Section 5.5 (retrieve top-100 by overlap, re-rank by
estimated correlation under a risk-averse scoring function).
"""

from repro.index.arena import (
    ArenaReader,
    atomic_write,
    atomic_write_text,
    backing_storage,
    write_arena,
)
from repro.index.catalog import SketchCatalog, SketchMeta
from repro.index.engine import (
    RETRIEVAL_BACKENDS,
    CandidatePage,
    ColumnarQueryExecutor,
    JoinCorrelationEngine,
    QueryExecutor,
    QueryResult,
    ScalarQueryExecutor,
    retrieve_candidates,
    retrieve_candidates_batch,
)
from repro.index.inverted import ColumnarPostings, InvertedIndex
from repro.index.options import QueryOptions
from repro.index.lsh import LshIndex, MinHashSignature
from repro.index.snapshot import (
    ARENA_VERSION,
    SNAPSHOT_VERSION,
    detect_format,
    load_snapshot,
    save_snapshot,
)

__all__ = [
    "ARENA_VERSION",
    "ArenaReader",
    "CandidatePage",
    "ColumnarPostings",
    "ColumnarQueryExecutor",
    "InvertedIndex",
    "JoinCorrelationEngine",
    "LshIndex",
    "MinHashSignature",
    "QueryExecutor",
    "QueryOptions",
    "QueryResult",
    "RETRIEVAL_BACKENDS",
    "SNAPSHOT_VERSION",
    "ScalarQueryExecutor",
    "SketchCatalog",
    "SketchMeta",
    "atomic_write",
    "atomic_write_text",
    "backing_storage",
    "detect_format",
    "load_snapshot",
    "retrieve_candidates",
    "retrieve_candidates_batch",
    "save_snapshot",
    "write_arena",
]
