"""Sketch catalog: the persistent store behind the query engine.

A :class:`SketchCatalog` maps column-pair identifiers to their correlation
sketches and maintains the inverted index over key hashes. It is the
"index for a large number of tables" the paper's introduction promises:
sketches are built offline per column pair (one pass each), added here,
and queried at interactive latency without touching the original data.

Serialization round-trips the whole catalog through JSON so examples can
demonstrate the offline-build / online-query split.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Iterator

from repro.core.sketch import CorrelationSketch, SketchColumns
from repro.hashing import KeyHasher
from repro.index.inverted import ColumnarPostings, InvertedIndex
from repro.table.table import ColumnPair, Table


class SketchCatalog:
    """Keyed store of correlation sketches plus the overlap index.

    Args:
        sketch_size: bottom-``n`` size for sketches built by this catalog.
        aggregate: aggregate function for repeated keys.
        hasher: hashing scheme shared by every sketch in the catalog
            (sketches from different schemes cannot be joined).
        vectorized: build sketches through the columnar
            :meth:`~repro.core.sketch.CorrelationSketch.update_array` fast
            path (default). The result is identical to the streaming path;
            disable only to benchmark or debug against the row-at-a-time
            reference implementation.
    """

    def __init__(
        self,
        sketch_size: int = 256,
        aggregate: str = "mean",
        hasher: KeyHasher | None = None,
        *,
        vectorized: bool = True,
    ) -> None:
        self.sketch_size = sketch_size
        self.aggregate = aggregate
        self.hasher = hasher if hasher is not None else KeyHasher()
        self.vectorized = vectorized
        self._sketches: dict[str, CorrelationSketch] = {}
        self._index = InvertedIndex()
        self._frozen_postings: ColumnarPostings | None = None

    # -- population ---------------------------------------------------------

    def add_sketch(self, sketch_id: str, sketch: CorrelationSketch) -> None:
        """Register an externally built sketch under ``sketch_id``.

        Raises:
            ValueError: on duplicate ids or hashing-scheme mismatch.
        """
        if sketch_id in self._sketches:
            raise ValueError(f"sketch id {sketch_id!r} already in catalog")
        if sketch.hasher.scheme_id != self.hasher.scheme_id:
            raise ValueError(
                "sketch hashing scheme "
                f"{sketch.hasher!r} differs from catalog scheme {self.hasher!r}"
            )
        self._sketches[sketch_id] = sketch
        self._index.add(sketch_id, sketch.key_hashes())
        # Any mutation invalidates the frozen columnar snapshot; it is
        # rebuilt lazily on the next frozen_postings() call.
        self._frozen_postings = None

    def add_column_pair(
        self, table: Table, pair: ColumnPair, *, sketch_id: str | None = None
    ) -> str:
        """Build and register the sketch for one ``⟨K, X⟩`` column pair."""
        sid = sketch_id if sketch_id is not None else pair.pair_id
        sketch = CorrelationSketch(
            self.sketch_size,
            aggregate=self.aggregate,
            hasher=self.hasher,
            name=sid,
        )
        if self.vectorized:
            keys, values = table.pair_arrays(pair)
            sketch.update_array(keys, values)
        else:
            sketch.update_all(table.pair_rows(pair))
        self.add_sketch(sid, sketch)
        return sid

    def add_table(self, table: Table) -> list[str]:
        """Sketch and register every column pair of ``table``."""
        return [self.add_column_pair(table, pair) for pair in table.column_pairs()]

    def add_tables(self, tables: Iterable[Table]) -> list[str]:
        """Sketch and register every column pair of every table."""
        ids: list[str] = []
        for table in tables:
            ids.extend(self.add_table(table))
        return ids

    def add_csv_streaming(self, path: str | Path, **kwargs) -> list[str]:
        """Sketch a CSV file in one streaming pass and register the result.

        Unlike ``read_csv`` + :meth:`add_table`, the file is never
        materialized in memory — only a type-inference prefix plus the
        sketches themselves are held (see
        :func:`repro.table.streaming.stream_sketch_csv`, which receives
        ``kwargs``).
        """
        from repro.table.streaming import stream_sketch_csv

        sketches = stream_sketch_csv(
            path,
            self.sketch_size,
            aggregate=self.aggregate,
            hasher=self.hasher,
            **kwargs,
        )
        for sid, sketch in sketches.items():
            self.add_sketch(sid, sketch)
        return list(sketches)

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, sketch_id: str) -> bool:
        return sketch_id in self._sketches

    def __iter__(self) -> Iterator[str]:
        return iter(self._sketches)

    def get(self, sketch_id: str) -> CorrelationSketch:
        """Fetch a sketch by id (KeyError with context if absent)."""
        try:
            return self._sketches[sketch_id]
        except KeyError:
            raise KeyError(
                f"no sketch {sketch_id!r} in catalog ({len(self)} sketches)"
            ) from None

    @property
    def index(self) -> InvertedIndex:
        """The inverted index over key hashes (read-only use)."""
        return self._index

    def frozen_postings(self) -> ColumnarPostings:
        """The frozen CSR snapshot of the inverted index.

        Built lazily from the live index and cached; any
        :meth:`add_sketch` invalidates the cache, so a catalog that
        alternates mutation and querying re-freezes automatically while a
        stable catalog (the online-serving case) pays the freeze cost
        exactly once — :meth:`JoinCorrelationEngine.query_table
        <repro.index.engine.JoinCorrelationEngine.query_table>` reuses
        one snapshot across its whole query batch.
        """
        if self._frozen_postings is None:
            self._frozen_postings = self._index.freeze()
        return self._frozen_postings

    def sketch_columns(self, sketch_id: str) -> SketchColumns:
        """Columnar (sorted key-hash / rank / value / range) view of a sketch.

        Views are cached on the sketches themselves
        (:meth:`repro.core.sketch.CorrelationSketch.columnar`); catalog
        sketches are immutable after registration, so each is lowered at
        most once for the life of the catalog.
        """
        return self.get(sketch_id).columnar()

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize the catalog (sketches only; the index is rebuilt)."""
        payload = {
            "sketch_size": self.sketch_size,
            "aggregate": self.aggregate,
            "scheme": list(self.hasher.scheme_id),
            "vectorized": self.vectorized,
            "sketches": {
                sid: sketch.to_dict() for sid, sketch in self._sketches.items()
            },
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "SketchCatalog":
        """Load a catalog written by :meth:`save`, rebuilding the index."""
        payload = json.loads(Path(path).read_text())
        bits, seed = payload["scheme"]
        catalog = cls(
            sketch_size=payload["sketch_size"],
            aggregate=payload["aggregate"],
            hasher=KeyHasher(bits=bits, seed=seed),
            # Catalogs saved before the flag was persisted default to the
            # constructor default (vectorized construction).
            vectorized=payload.get("vectorized", True),
        )
        for sid, sketch_payload in payload["sketches"].items():
            catalog.add_sketch(sid, CorrelationSketch.from_dict(sketch_payload))
        return catalog
