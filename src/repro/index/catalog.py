"""Sketch catalog: the persistent store behind the query engine.

A :class:`SketchCatalog` maps column-pair identifiers to their correlation
sketches and maintains the retrieval indexes over key hashes — the exact
inverted index (always) and the approximate MinHash-LSH index (lazily,
on first :meth:`SketchCatalog.lsh_index` use). It is the
"index for a large number of tables" the paper's introduction promises:
sketches are built offline per column pair (one pass each), added here,
and queried at interactive latency without touching the original data.

Two persistence formats share :meth:`SketchCatalog.save` /
:meth:`SketchCatalog.load` (dispatched on the ``.npz`` extension, with a
content sniff on load):

* **JSON** — the portable, human-inspectable reference format: every
  sketch round-trips through ``to_dict``/``from_dict`` and the inverted
  index is rebuilt from scratch;
* **binary snapshot** (:mod:`repro.index.snapshot`) — the serving format:
  the concatenated columnar sketch arrays plus the frozen CSR postings
  are persisted verbatim, so loading is array reads plus O(1)-per-sketch
  rehydration. Sketches come back as lazy array views
  (:class:`_LazySketch`): the columnar query path
  (:meth:`sketch_columns` / :meth:`frozen_postings`) never materializes
  Python-object sketches at all, while :meth:`get` materializes on first
  access; the live :class:`InvertedIndex` is rebuilt only when something
  actually needs it (scalar retrieval, or a mutation).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.sketch import CorrelationSketch, SketchColumns
from repro.hashing import KeyHasher
from repro.index.inverted import ColumnarPostings, InvertedIndex
from repro.index.lsh import DEFAULT_BANDS, DEFAULT_ROWS, LshIndex
from repro.table.table import ColumnPair, Table


@dataclass(frozen=True)
class SketchMeta:
    """Per-sketch scalars persisted alongside the columnar arrays.

    Uniform view over materialized sketches and lazy snapshot entries,
    consumed by :mod:`repro.index.snapshot` when writing a catalog.
    """

    n: int
    aggregate: str
    name: str | None
    rows_seen: int
    overflowed: bool
    value_min: float
    value_max: float


class _LazySketch:
    """A snapshot sketch not yet materialized into Python objects.

    Holds the zero-copy :class:`SketchColumns` view (slices of the
    snapshot's concatenated arrays) plus the scalars needed to rebuild a
    full :class:`CorrelationSketch` on demand. The columnar query path
    consumes :attr:`columns` directly and never triggers
    :meth:`materialize`.
    """

    __slots__ = ("columns", "meta", "hasher")

    def __init__(
        self, columns: SketchColumns, meta: SketchMeta, hasher: KeyHasher
    ) -> None:
        self.columns = columns
        self.meta = meta
        self.hasher = hasher

    def materialize(self) -> CorrelationSketch:
        """Rebuild the full sketch (bottom-k heap, aggregator objects)."""
        return CorrelationSketch.from_frozen_arrays(
            self.columns.key_hashes,
            self.columns.ranks,
            self.columns.values,
            n=self.meta.n,
            aggregate=self.meta.aggregate,
            hasher=self.hasher,
            name=self.meta.name,
            rows_seen=self.meta.rows_seen,
            overflowed=self.meta.overflowed,
            value_min=self.meta.value_min,
            value_max=self.meta.value_max,
        )


class SketchCatalog:
    """Keyed store of correlation sketches plus the overlap index.

    Args:
        sketch_size: bottom-``n`` size for sketches built by this catalog.
        aggregate: aggregate function for repeated keys.
        hasher: hashing scheme shared by every sketch in the catalog
            (sketches from different schemes cannot be joined).
        vectorized: build sketches through the columnar
            :meth:`~repro.core.sketch.CorrelationSketch.update_array` fast
            path (default). The result is identical to the streaming path;
            disable only to benchmark or debug against the row-at-a-time
            reference implementation.
    """

    def __init__(
        self,
        sketch_size: int = 256,
        aggregate: str = "mean",
        hasher: KeyHasher | None = None,
        *,
        vectorized: bool = True,
    ) -> None:
        self.sketch_size = sketch_size
        self.aggregate = aggregate
        self.hasher = hasher if hasher is not None else KeyHasher()
        self.vectorized = vectorized
        #: id -> CorrelationSketch | _LazySketch (insertion-ordered).
        self._sketches: dict[str, CorrelationSketch | _LazySketch] = {}
        self._index = InvertedIndex()
        #: True after a binary-snapshot load: the live index is empty and
        #: must be rebuilt from the stored arrays before first use.
        self._index_stale = False
        self._frozen_postings: ColumnarPostings | None = None
        self._lsh_index: LshIndex | None = None

    # -- population ---------------------------------------------------------

    def _validate_new(self, sketch_id: str, sketch: CorrelationSketch) -> None:
        if sketch_id in self._sketches:
            raise ValueError(f"sketch id {sketch_id!r} already in catalog")
        if sketch.hasher.scheme_id != self.hasher.scheme_id:
            raise ValueError(
                "sketch hashing scheme "
                f"{sketch.hasher!r} differs from catalog scheme {self.hasher!r}"
            )

    def add_sketch(self, sketch_id: str, sketch: CorrelationSketch) -> None:
        """Register an externally built sketch under ``sketch_id``.

        Raises:
            ValueError: on duplicate ids or hashing-scheme mismatch.
        """
        self._validate_new(sketch_id, sketch)
        self._ensure_index()
        self._sketches[sketch_id] = sketch
        self._index.add(sketch_id, sketch.key_hashes())
        # Any mutation invalidates the frozen columnar snapshot and the
        # LSH index; each is rebuilt lazily on its next accessor call.
        self._frozen_postings = None
        self._lsh_index = None

    def add_sketches(
        self, sketches: Iterable[tuple[str, CorrelationSketch]]
    ) -> list[str]:
        """Bulk :meth:`add_sketch`: validate everything, then commit once.

        All ``(sketch_id, sketch)`` pairs are validated up front (so a
        bad entry rejects the whole batch before any mutation), the
        inverted-index updates run in one pass, and the frozen-postings
        snapshot is invalidated a single time — instead of per sketch, as
        a loop over :meth:`add_sketch` would. This is the registration
        path of :meth:`add_tables`, :meth:`add_csv_streaming` and the
        JSON loader.
        """
        batch = list(sketches)
        seen: set[str] = set()
        for sid, sketch in batch:
            self._validate_new(sid, sketch)
            if sid in seen:
                raise ValueError(f"duplicate sketch id {sid!r} in batch")
            seen.add(sid)
        if not batch:
            return []
        self._ensure_index()
        for sid, sketch in batch:
            self._sketches[sid] = sketch
            self._index.add(sid, sketch.key_hashes())
        self._frozen_postings = None
        self._lsh_index = None
        return [sid for sid, _ in batch]

    def _build_pair_sketch(
        self, table: Table, pair: ColumnPair, *, sketch_id: str | None = None
    ) -> tuple[str, CorrelationSketch]:
        """Build (but do not register) the sketch for one column pair."""
        sid = sketch_id if sketch_id is not None else pair.pair_id
        sketch = CorrelationSketch(
            self.sketch_size,
            aggregate=self.aggregate,
            hasher=self.hasher,
            name=sid,
        )
        if self.vectorized:
            keys, values = table.pair_arrays(pair)
            sketch.update_array(keys, values)
        else:
            sketch.update_all(table.pair_rows(pair))
        return sid, sketch

    def add_column_pair(
        self, table: Table, pair: ColumnPair, *, sketch_id: str | None = None
    ) -> str:
        """Build and register the sketch for one ``⟨K, X⟩`` column pair."""
        sid, sketch = self._build_pair_sketch(table, pair, sketch_id=sketch_id)
        self.add_sketch(sid, sketch)
        return sid

    def add_table(self, table: Table) -> list[str]:
        """Sketch and register every column pair of ``table``."""
        return self.add_sketches(
            self._build_pair_sketch(table, pair) for pair in table.column_pairs()
        )

    def add_tables(self, tables: Iterable[Table]) -> list[str]:
        """Sketch and register every column pair of every table."""
        return self.add_sketches(
            self._build_pair_sketch(table, pair)
            for table in tables
            for pair in table.column_pairs()
        )

    def add_csv_streaming(self, path: str | Path, **kwargs) -> list[str]:
        """Sketch a CSV file in one streaming pass and register the result.

        Unlike ``read_csv`` + :meth:`add_table`, the file is never
        materialized in memory — only a type-inference prefix plus the
        sketches themselves are held (see
        :func:`repro.table.streaming.stream_sketch_csv`, which receives
        ``kwargs``).
        """
        from repro.table.streaming import stream_sketch_csv

        sketches = stream_sketch_csv(
            path,
            self.sketch_size,
            aggregate=self.aggregate,
            hasher=self.hasher,
            **kwargs,
        )
        return self.add_sketches(sketches.items())

    # -- removal -------------------------------------------------------------

    def _entry_key_hashes(self, entry: CorrelationSketch | _LazySketch):
        """A catalog entry's key hashes, without materializing lazy ones."""
        if isinstance(entry, _LazySketch):
            return entry.columns.key_hashes.tolist()
        return entry.key_hashes()

    def remove_sketch(self, sketch_id: str) -> None:
        """Delete a sketch and every index trace of it.

        The full invalidation chain: the live inverted index drops the
        sketch's postings (unless it is still stale from a snapshot load,
        in which case the eventual lazy rebuild simply never sees the
        entry), and the frozen CSR postings and the LSH index are
        invalidated wholesale — both rebuild lazily on next access, the
        same contract mutation via :meth:`add_sketch` follows. The id is
        free for re-registration immediately.

        Raises:
            KeyError: if ``sketch_id`` is not in the catalog.
        """
        try:
            entry = self._sketches[sketch_id]
        except KeyError:
            raise KeyError(
                f"no sketch {sketch_id!r} in catalog ({len(self)} sketches)"
            ) from None
        if not self._index_stale:
            self._index.remove(sketch_id, self._entry_key_hashes(entry))
        del self._sketches[sketch_id]
        self._frozen_postings = None
        self._lsh_index = None

    def remove_sketches(self, sketch_ids: Iterable[str]) -> list[str]:
        """Bulk :meth:`remove_sketch`: validate everything, then commit.

        All ids are checked up front so an unknown (or duplicated) id
        rejects the whole batch before any mutation; the frozen-postings
        and LSH invalidation happens once, via the per-entry removals.
        """
        ids = list(sketch_ids)
        seen: set[str] = set()
        for sid in ids:
            if sid not in self._sketches:
                raise KeyError(
                    f"no sketch {sid!r} in catalog ({len(self)} sketches)"
                )
            if sid in seen:
                raise ValueError(f"duplicate sketch id {sid!r} in batch")
            seen.add(sid)
        for sid in ids:
            self.remove_sketch(sid)
        return ids

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, sketch_id: str) -> bool:
        return sketch_id in self._sketches

    def __iter__(self) -> Iterator[str]:
        return iter(self._sketches)

    def get(self, sketch_id: str) -> CorrelationSketch:
        """Fetch a sketch by id (KeyError with context if absent).

        Snapshot-loaded sketches materialize on first access and stay
        cached; the columnar arrays they came from are shared with the
        pre-seeded :meth:`~repro.core.sketch.CorrelationSketch.columnar`
        view, not copied.
        """
        try:
            entry = self._sketches[sketch_id]
        except KeyError:
            raise KeyError(
                f"no sketch {sketch_id!r} in catalog ({len(self)} sketches)"
            ) from None
        if isinstance(entry, _LazySketch):
            entry = entry.materialize()
            self._sketches[sketch_id] = entry
        return entry

    @property
    def index(self) -> InvertedIndex:
        """The inverted index over key hashes (read-only use).

        After a binary-snapshot load the live index starts empty and is
        rebuilt from the stored key-hash arrays on first access — the
        columnar query path never needs it (it probes
        :meth:`frozen_postings`), so a pure serving process skips the
        rebuild entirely.
        """
        self._ensure_index()
        return self._index

    def _ensure_index(self) -> None:
        if not self._index_stale:
            return
        index = InvertedIndex()
        for sid, entry in self._sketches.items():
            if isinstance(entry, _LazySketch):
                index.add(sid, entry.columns.key_hashes.tolist())
            else:
                index.add(sid, entry.key_hashes())
        self._index = index
        self._index_stale = False

    @property
    def vocabulary_size(self) -> int:
        """Distinct key hashes with postings, from whichever index
        representation is already built — never forces a freeze or a
        stale-index rebuild (snapshot-loaded catalogs answer from the
        stored postings, JSON-loaded ones from the live index)."""
        if self._frozen_postings is not None:
            return self._frozen_postings.vocabulary_size
        return self.index.vocabulary_size

    def frozen_postings(self) -> ColumnarPostings:
        """The frozen CSR snapshot of the inverted index.

        Built lazily from the live index and cached; any
        :meth:`add_sketch` invalidates the cache, so a catalog that
        alternates mutation and querying re-freezes automatically while a
        stable catalog (the online-serving case) pays the freeze cost
        exactly once — :meth:`JoinCorrelationEngine.query_table
        <repro.index.engine.JoinCorrelationEngine.query_table>` reuses
        one snapshot across its whole query batch. Binary snapshots
        persist the frozen arrays, so a loaded catalog starts with this
        cache already warm.
        """
        if self._frozen_postings is None:
            self._ensure_index()
            self._frozen_postings = self._index.freeze()
        return self._frozen_postings

    def lsh_index(
        self, *, bands: int | None = None, rows: int | None = None
    ) -> LshIndex:
        """The catalog-wide MinHash-LSH index (approximate retrieval).

        Same lifecycle contract as :meth:`frozen_postings`: built lazily
        on first access and cached; any mutation (:meth:`add_sketch` /
        :meth:`add_sketches`) invalidates the cache, so it rebuilds on
        the next call while a stable serving catalog pays the build
        exactly once. Binary snapshots persist the signature arrays, so
        a loaded catalog that had an LSH index starts with this cache
        warm.

        ``bands``/``rows`` semantics: ``None`` (the default) means "use
        whatever index is cached, else build with the module defaults" —
        so a serving process that loaded a warm snapshot keeps its
        persisted banding whatever shape it was built with. Passing
        explicit values pins the shape: a cached index of a different
        ``(bands, rows)`` is discarded and rebuilt (and re-cached).

        The build is fully vectorized: every sketch's columnar
        ``key_hashes`` view is concatenated CSR-style and bucketed by
        one :meth:`LshIndex.add_batch` scatter.
        """
        cached = self._lsh_index
        if cached is not None:
            want = (
                bands if bands is not None else cached.bands,
                rows if rows is not None else cached.rows,
            )
            if (cached.bands, cached.rows) == want:
                return cached
        bands = DEFAULT_BANDS if bands is None else bands
        rows = DEFAULT_ROWS if rows is None else rows
        index = LshIndex(bands=bands, rows=rows, bits=self.hasher.bits)
        ids = list(self)
        columns = [self.sketch_columns(sid) for sid in ids]
        lengths = np.asarray([c.size for c in columns], dtype=np.int64)
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        if columns:
            concat = np.concatenate(
                [c.key_hashes.astype(np.uint64, copy=False) for c in columns]
            )
        else:
            concat = np.empty(0, dtype=np.uint64)
        index.add_batch(ids, concat, indptr)
        self._lsh_index = index
        return index

    @property
    def lsh_params(self) -> tuple[int, int] | None:
        """``(bands, rows)`` of the cached LSH index, or None when the
        index has not been built (or was invalidated by a mutation).
        Never triggers a build — ``catalog info`` uses this to report
        whether a snapshot shipped a warm LSH index."""
        if self._lsh_index is None:
            return None
        return (self._lsh_index.bands, self._lsh_index.rows)

    def sketch_columns(self, sketch_id: str) -> SketchColumns:
        """Columnar (sorted key-hash / rank / value / range) view of a sketch.

        Views are cached on the sketches themselves
        (:meth:`repro.core.sketch.CorrelationSketch.columnar`); catalog
        sketches are immutable after registration, so each is lowered at
        most once for the life of the catalog. Snapshot-loaded sketches
        serve their stored array views directly, without materializing
        the sketch object.
        """
        entry = self._sketches.get(sketch_id)
        if isinstance(entry, _LazySketch):
            return entry.columns
        return self.get(sketch_id).columnar()

    def sketch_meta(self, sketch_id: str) -> SketchMeta:
        """Per-sketch persisted scalars, without materializing lazy entries."""
        try:
            entry = self._sketches[sketch_id]
        except KeyError:
            raise KeyError(
                f"no sketch {sketch_id!r} in catalog ({len(self)} sketches)"
            ) from None
        if isinstance(entry, _LazySketch):
            return entry.meta
        return SketchMeta(
            n=entry.n,
            aggregate=entry.aggregate,
            name=entry.name,
            rows_seen=entry.rows_seen,
            overflowed=not entry.saw_all_keys,
            value_min=entry.value_min,
            value_max=entry.value_max,
        )

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize the catalog; format chosen by extension.

        ``.npz`` writes the binary columnar snapshot
        (:func:`repro.index.snapshot.save_snapshot` — sketch arrays plus
        the frozen postings); anything else writes the portable JSON
        reference format (sketches only; the index is rebuilt on load).
        """
        path = Path(path)
        if path.suffix == ".npz":
            from repro.index.snapshot import save_snapshot

            save_snapshot(self, path)
            return
        payload = {
            "sketch_size": self.sketch_size,
            "aggregate": self.aggregate,
            "scheme": list(self.hasher.scheme_id),
            "vectorized": self.vectorized,
            "sketches": {sid: self.get(sid).to_dict() for sid in self},
        }
        path.write_text(json.dumps(payload))

    @classmethod
    def load(cls, path: str | Path) -> "SketchCatalog":
        """Load a catalog written by :meth:`save`, either format.

        Binary snapshots are detected by the ``.npz`` extension or the
        zip magic bytes; everything else parses as JSON.
        """
        path = Path(path)
        if path.suffix == ".npz" or _has_zip_magic(path):
            from repro.index.snapshot import load_snapshot

            return load_snapshot(path)
        payload = json.loads(path.read_text())
        bits, seed = payload["scheme"]
        catalog = cls(
            sketch_size=payload["sketch_size"],
            aggregate=payload["aggregate"],
            hasher=KeyHasher(bits=bits, seed=seed),
            # Catalogs saved before the flag was persisted default to the
            # constructor default (vectorized construction).
            vectorized=payload.get("vectorized", True),
        )
        catalog.add_sketches(
            (sid, CorrelationSketch.from_dict(sketch_payload))
            for sid, sketch_payload in payload["sketches"].items()
        )
        return catalog


def _has_zip_magic(path: Path) -> bool:
    """True when the file starts with the npz (zip) magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(4) == b"PK\x03\x04"
    except OSError:
        return False
