"""Sketch catalog: the persistent store behind the query engine.

A :class:`SketchCatalog` maps column-pair identifiers to their correlation
sketches and maintains the retrieval indexes over key hashes — the exact
inverted index (always) and the approximate MinHash-LSH index (lazily,
on first :meth:`SketchCatalog.lsh_index` use). It is the
"index for a large number of tables" the paper's introduction promises:
sketches are built offline per column pair (one pass each), added here,
and queried at interactive latency without touching the original data.

Two persistence formats share :meth:`SketchCatalog.save` /
:meth:`SketchCatalog.load` (dispatched on the ``.npz`` extension, with a
content sniff on load):

* **JSON** — the portable, human-inspectable reference format: every
  sketch round-trips through ``to_dict``/``from_dict`` and the inverted
  index is rebuilt from scratch;
* **binary snapshot** (:mod:`repro.index.snapshot`) — the serving format:
  the concatenated columnar sketch arrays plus the frozen CSR postings
  are persisted verbatim, so loading is array reads plus O(1)-per-sketch
  rehydration. Sketches come back as lazy array views
  (:class:`_LazySketch`): the columnar query path
  (:meth:`sketch_columns` / :meth:`frozen_postings`) never materializes
  Python-object sketches at all, while :meth:`get` materializes on first
  access; the live :class:`InvertedIndex` is rebuilt only when something
  actually needs it (scalar retrieval, or a mutation).

Index maintenance is LSM-style. The frozen CSR postings and the
frozen-layer LSH index are immutable between compactions: appends land
in a small mutable **delta** (:class:`InvertedIndex` plus an LSH delta
ring), removals of frozen entries go to a **tombstone** set, and the
layered probes (:meth:`SketchCatalog.probe_top_overlap`,
:meth:`SketchCatalog.probe_top_overlap_batch`,
:meth:`SketchCatalog.lsh_candidate_ids`) answer from
``frozen + delta − tombstones``, merging per-layer hits under the shared
``(−overlap, id)`` total order — bit-identical to a freshly rebuilt
monolithic index. :meth:`SketchCatalog.compact` folds the delta and
tombstones into new frozen structures and bumps
:attr:`SketchCatalog.index_version`; it runs on demand, at the
``compact_threshold`` delta size, or via the CLI's ``catalog compact``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.core.sketch import CorrelationSketch, SketchColumns
from repro.hashing import KeyHasher
from repro.index.inverted import ColumnarPostings, InvertedIndex, merge_hits
from repro.index.lsh import DEFAULT_BANDS, DEFAULT_ROWS, LshIndex
from repro.table.table import ColumnPair, Table


@dataclass(frozen=True)
class SketchMeta:
    """Per-sketch scalars persisted alongside the columnar arrays.

    Uniform view over materialized sketches and lazy snapshot entries,
    consumed by :mod:`repro.index.snapshot` when writing a catalog.
    """

    n: int
    aggregate: str
    name: str | None
    rows_seen: int
    overflowed: bool
    value_min: float
    value_max: float


class _LazySketch:
    """A snapshot sketch not yet materialized into Python objects.

    Holds the zero-copy :class:`SketchColumns` view (slices of the
    snapshot's concatenated arrays) plus the scalars needed to rebuild a
    full :class:`CorrelationSketch` on demand. The columnar query path
    consumes :attr:`columns` directly and never triggers
    :meth:`materialize`.

    Two degrees of laziness: the eager constructor receives its columns
    and meta up front (one slice + one ``SketchMeta`` per entry — the
    npz loader's O(1)-per-sketch rehydration), while :meth:`deferred`
    entries hold only an ``(entry source, position)`` pair and build
    both on first touch — the arena loader's O(metadata) path, where a
    catalog load does *zero* per-entry work and a query builds views for
    exactly the sketches it touches.
    """

    __slots__ = ("_columns", "_meta", "hasher", "_source", "_position")

    def __init__(
        self, columns: SketchColumns, meta: SketchMeta, hasher: KeyHasher
    ) -> None:
        self._columns = columns
        self._meta = meta
        self.hasher = hasher
        self._source = None
        self._position = -1

    @classmethod
    def deferred(cls, source, position: int, hasher: KeyHasher) -> "_LazySketch":
        """An entry that builds its columns/meta from ``source`` (an
        object with ``columns_of(i)`` / ``meta_of(i)``) on first use."""
        entry = cls.__new__(cls)
        entry._columns = None
        entry._meta = None
        entry.hasher = hasher
        entry._source = source
        entry._position = position
        return entry

    @property
    def columns(self) -> SketchColumns:
        if self._columns is None:
            self._columns = self._source.columns_of(self._position)
        return self._columns

    @property
    def meta(self) -> SketchMeta:
        if self._meta is None:
            self._meta = self._source.meta_of(self._position)
        return self._meta

    def detach(self, arena) -> None:
        """Replace arena-backed column views with private heap copies
        (and drop the deferred source, pinning the entry to the heap)."""
        columns = self.columns
        self._meta = self.meta
        if arena.owns(columns.key_hashes):
            self._columns = SketchColumns(
                key_hashes=np.array(columns.key_hashes),
                ranks=np.array(columns.ranks),
                values=np.array(columns.values),
                value_range=columns.value_range,
                saw_all_keys=columns.saw_all_keys,
            )
        self._source = None
        self._position = -1

    def materialize(self) -> CorrelationSketch:
        """Rebuild the full sketch (bottom-k heap, aggregator objects)."""
        return CorrelationSketch.from_frozen_arrays(
            self.columns.key_hashes,
            self.columns.ranks,
            self.columns.values,
            n=self.meta.n,
            aggregate=self.meta.aggregate,
            hasher=self.hasher,
            name=self.meta.name,
            rows_seen=self.meta.rows_seen,
            overflowed=self.meta.overflowed,
            value_min=self.meta.value_min,
            value_max=self.meta.value_max,
        )


class _DeferredEntryDict(dict):
    """Entry map for snapshot-loaded catalogs: values start as integer
    positions into an entry source and wake into :class:`_LazySketch`
    on first access.

    Populating a plain dict with one entry object per sketch is the
    only O(n) step left in an arena load; seeding integer placeholders
    instead is a single C-speed ``dict(zip(...))``, so load cost stays
    O(metadata) and a query allocates entries for exactly the sketches
    it touches. Every value read goes through the overridden accessors
    below, so callers only ever see entry objects; key-only operations
    (``len``/``in``/``iter``/``del``) need no override. Mutations
    (``add_sketch``, ``get``'s materialization cache) assign real
    entries over the placeholders and behave exactly as on a plain
    dict.
    """

    __slots__ = ("_source", "_hasher")

    def __init__(self, ids, source, hasher: KeyHasher) -> None:
        super().__init__(zip(ids, range(len(ids))))
        self._source = source
        self._hasher = hasher

    def _wake(self, sketch_id: str, position: int) -> _LazySketch:
        entry = _LazySketch.deferred(self._source, position, self._hasher)
        dict.__setitem__(self, sketch_id, entry)
        return entry

    def __getitem__(self, sketch_id: str):
        entry = dict.__getitem__(self, sketch_id)
        if type(entry) is int:
            entry = self._wake(sketch_id, entry)
        return entry

    def get(self, sketch_id: str, default=None):
        entry = dict.get(self, sketch_id, default)
        if type(entry) is int:
            entry = self._wake(sketch_id, entry)
        return entry

    def values(self):
        return [self[sid] for sid in self]

    def items(self):
        return [(sid, self[sid]) for sid in self]


class SketchCatalog:
    """Keyed store of correlation sketches plus the overlap index.

    Args:
        sketch_size: bottom-``n`` size for sketches built by this catalog.
        aggregate: aggregate function for repeated keys.
        hasher: hashing scheme shared by every sketch in the catalog
            (sketches from different schemes cannot be joined).
        vectorized: build sketches through the columnar
            :meth:`~repro.core.sketch.CorrelationSketch.update_array` fast
            path (default). The result is identical to the streaming path;
            disable only to benchmark or debug against the row-at-a-time
            reference implementation.
        compact_threshold: fold the delta layer into the frozen
            structures automatically once it holds this many sketches
            (``None``, the default, compacts only on demand — see
            :meth:`compact`).
    """

    def __init__(
        self,
        sketch_size: int = 256,
        aggregate: str = "mean",
        hasher: KeyHasher | None = None,
        *,
        vectorized: bool = True,
        compact_threshold: int | None = None,
    ) -> None:
        if compact_threshold is not None and compact_threshold <= 0:
            raise ValueError(
                f"compact_threshold must be positive, got {compact_threshold}"
            )
        self.sketch_size = sketch_size
        self.aggregate = aggregate
        self.hasher = hasher if hasher is not None else KeyHasher()
        self.vectorized = vectorized
        self.compact_threshold = compact_threshold
        #: id -> CorrelationSketch | _LazySketch (insertion-ordered).
        self._sketches: dict[str, CorrelationSketch | _LazySketch] = {}
        self._index = InvertedIndex()
        #: True after a binary-snapshot load: the live index is empty and
        #: must be rebuilt from the stored arrays before first use.
        self._index_stale = False
        self._frozen_postings: ColumnarPostings | None = None
        self._lsh_index: LshIndex | None = None
        #: Frozen-layer LSH signatures restored by a snapshot load but
        #: not yet expanded into bucket state:
        #: ``(ids, slots, filled, bands, rows, bits)``. The expansion is
        #: O(n·bands) Python work, so it is deferred until something
        #: actually probes the LSH — a cold start of the inverted
        #: backend never pays it. Exactly one of ``_lsh_index`` /
        #: ``_lsh_pending`` is non-None at a time.
        self._lsh_pending: tuple | None = None
        #: The arena mapping backing this catalog's arrays after a
        #: ``layout="arena"`` snapshot load
        #: (:class:`repro.index.arena.ArenaReader`); None for heap
        #: catalogs. Held so the mapping outlives any view handed out.
        self._arena = None
        #: Monotone compaction counter: bumped whenever :meth:`compact`
        #: folds actual work (non-empty delta or tombstones) into the
        #: frozen layer. Persisted by snapshots and manifests; the
        #: sharded-catalog loader uses it for stale-shard detection.
        self.index_version = 0
        #: The mutable delta layer: every append since the last
        #: compaction. Probed alongside the frozen CSR, never instead
        #: of it.
        self._delta_index = InvertedIndex()
        self._delta_frozen: ColumnarPostings | None = None
        self._delta_lsh: LshIndex | None = None
        #: Frozen-layer ids removed since the last compaction. Their
        #: postings stay physically present in the frozen CSR (and
        #: possibly the frozen-layer LSH) until compaction; probes ban
        #: them instead.
        self._tombstones: set[str] = set()
        self._banned_cache: np.ndarray | None = None
        #: Recovery report when this catalog came back through the
        #: ``on_corruption="quarantine"`` fallback chain of :meth:`load`:
        #: ``{"quarantined": [paths], "errors": [messages],
        #: "loaded_from": path}``. ``None`` for a clean load.
        self.load_recovery: dict | None = None

    # -- population ---------------------------------------------------------

    def _validate_new(self, sketch_id: str, sketch: CorrelationSketch) -> None:
        if sketch_id in self._sketches:
            raise ValueError(f"sketch id {sketch_id!r} already in catalog")
        if sketch.hasher.scheme_id != self.hasher.scheme_id:
            raise ValueError(
                "sketch hashing scheme "
                f"{sketch.hasher!r} differs from catalog scheme {self.hasher!r}"
            )

    def add_sketch(self, sketch_id: str, sketch: CorrelationSketch) -> None:
        """Register an externally built sketch under ``sketch_id``.

        Raises:
            ValueError: on duplicate ids or hashing-scheme mismatch.
        """
        self._validate_new(sketch_id, sketch)
        self._sketches[sketch_id] = sketch
        # Appends land in the mutable delta layer; the frozen CSR and the
        # frozen-layer LSH stay warm, and the layered probes merge
        # frozen + delta − tombstones until the next compaction. The live
        # index tracks the mutation too unless it is still stale from a
        # snapshot load (the eventual lazy rebuild sees the new entry in
        # ``_sketches`` anyway).
        if not self._index_stale:
            self._index.add(sketch_id, sketch.key_hashes())
        self._delta_index.add(sketch_id, sketch.key_hashes())
        self._delta_frozen = None
        self._delta_lsh = None
        self._maybe_autocompact()

    def add_sketches(
        self, sketches: Iterable[tuple[str, CorrelationSketch]]
    ) -> list[str]:
        """Bulk :meth:`add_sketch`: validate everything, then commit once.

        All ``(sketch_id, sketch)`` pairs are validated up front (so a
        bad entry rejects the whole batch before any mutation), the
        index updates run in one pass, and the delta caches are
        invalidated (and the compaction threshold consulted) a single
        time — instead of per sketch, as a loop over :meth:`add_sketch`
        would. This is the registration path of :meth:`add_tables`,
        :meth:`add_csv_streaming` and the JSON loader.
        """
        batch = list(sketches)
        seen: set[str] = set()
        for sid, sketch in batch:
            self._validate_new(sid, sketch)
            if sid in seen:
                raise ValueError(f"duplicate sketch id {sid!r} in batch")
            seen.add(sid)
        if not batch:
            return []
        for sid, sketch in batch:
            self._sketches[sid] = sketch
            if not self._index_stale:
                self._index.add(sid, sketch.key_hashes())
            self._delta_index.add(sid, sketch.key_hashes())
        self._delta_frozen = None
        self._delta_lsh = None
        self._maybe_autocompact()
        return [sid for sid, _ in batch]

    def _build_pair_sketch(
        self, table: Table, pair: ColumnPair, *, sketch_id: str | None = None
    ) -> tuple[str, CorrelationSketch]:
        """Build (but do not register) the sketch for one column pair."""
        sid = sketch_id if sketch_id is not None else pair.pair_id
        sketch = CorrelationSketch(
            self.sketch_size,
            aggregate=self.aggregate,
            hasher=self.hasher,
            name=sid,
        )
        if self.vectorized:
            keys, values = table.pair_arrays(pair)
            sketch.update_array(keys, values)
        else:
            sketch.update_all(table.pair_rows(pair))
        return sid, sketch

    def add_column_pair(
        self, table: Table, pair: ColumnPair, *, sketch_id: str | None = None
    ) -> str:
        """Build and register the sketch for one ``⟨K, X⟩`` column pair."""
        sid, sketch = self._build_pair_sketch(table, pair, sketch_id=sketch_id)
        self.add_sketch(sid, sketch)
        return sid

    def add_table(self, table: Table) -> list[str]:
        """Sketch and register every column pair of ``table``."""
        return self.add_sketches(
            self._build_pair_sketch(table, pair) for pair in table.column_pairs()
        )

    def add_tables(self, tables: Iterable[Table]) -> list[str]:
        """Sketch and register every column pair of every table."""
        return self.add_sketches(
            self._build_pair_sketch(table, pair)
            for table in tables
            for pair in table.column_pairs()
        )

    def add_csv_streaming(self, path: str | Path, **kwargs) -> list[str]:
        """Sketch a CSV file in one streaming pass and register the result.

        Unlike ``read_csv`` + :meth:`add_table`, the file is never
        materialized in memory — only a type-inference prefix plus the
        sketches themselves are held (see
        :func:`repro.table.streaming.stream_sketch_csv`, which receives
        ``kwargs``).
        """
        from repro.table.streaming import stream_sketch_csv

        sketches = stream_sketch_csv(
            path,
            self.sketch_size,
            aggregate=self.aggregate,
            hasher=self.hasher,
            **kwargs,
        )
        return self.add_sketches(sketches.items())

    # -- removal -------------------------------------------------------------

    def _entry_key_hashes(self, entry: CorrelationSketch | _LazySketch):
        """A catalog entry's key hashes, without materializing lazy ones."""
        if isinstance(entry, _LazySketch):
            return entry.columns.key_hashes.tolist()
        return entry.key_hashes()

    def remove_sketch(self, sketch_id: str) -> None:
        """Delete a sketch; the frozen structures stay warm.

        The live inverted index drops the sketch's postings immediately
        (unless it is still stale from a snapshot load, in which case the
        eventual lazy rebuild simply never sees the entry). What happens
        to the layered indexes depends on where the sketch lives: an
        entry still in the delta is erased from it outright, while a
        frozen-layer entry is *tombstoned* — its CSR/LSH postings remain
        physically present but every probe bans it, until the next
        :meth:`compact` drops it for real. Either way nothing frozen is
        invalidated, and the id is free for re-registration immediately
        (a re-add lands in the delta; the kept tombstone keeps banning
        the old frozen copy).

        Raises:
            KeyError: if ``sketch_id`` is not in the catalog.
        """
        try:
            entry = self._sketches[sketch_id]
        except KeyError:
            raise KeyError(
                f"no sketch {sketch_id!r} in catalog ({len(self)} sketches)"
            ) from None
        if not self._index_stale:
            self._index.remove(sketch_id, self._entry_key_hashes(entry))
        if sketch_id in self._delta_index:
            self._delta_index.remove(sketch_id, self._entry_key_hashes(entry))
            self._delta_frozen = None
            self._delta_lsh = None
        else:
            self._tombstones.add(sketch_id)
            self._banned_cache = None
        del self._sketches[sketch_id]

    def remove_sketches(self, sketch_ids: Iterable[str]) -> list[str]:
        """Bulk :meth:`remove_sketch`: validate everything, then commit.

        All ids are checked up front so an unknown (or duplicated) id
        rejects the whole batch before any mutation; each entry then
        takes its per-entry delta-erase or tombstone path.
        """
        ids = list(sketch_ids)
        seen: set[str] = set()
        for sid in ids:
            if sid not in self._sketches:
                raise KeyError(
                    f"no sketch {sid!r} in catalog ({len(self)} sketches)"
                )
            if sid in seen:
                raise ValueError(f"duplicate sketch id {sid!r} in batch")
            seen.add(sid)
        for sid in ids:
            self.remove_sketch(sid)
        return ids

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._sketches)

    def __contains__(self, sketch_id: str) -> bool:
        return sketch_id in self._sketches

    def __iter__(self) -> Iterator[str]:
        return iter(self._sketches)

    def get(self, sketch_id: str) -> CorrelationSketch:
        """Fetch a sketch by id (KeyError with context if absent).

        Snapshot-loaded sketches materialize on first access and stay
        cached; the columnar arrays they came from are shared with the
        pre-seeded :meth:`~repro.core.sketch.CorrelationSketch.columnar`
        view, not copied.
        """
        try:
            entry = self._sketches[sketch_id]
        except KeyError:
            raise KeyError(
                f"no sketch {sketch_id!r} in catalog ({len(self)} sketches)"
            ) from None
        if isinstance(entry, _LazySketch):
            entry = entry.materialize()
            self._sketches[sketch_id] = entry
        return entry

    @property
    def index(self) -> InvertedIndex:
        """The inverted index over key hashes (read-only use).

        After a binary-snapshot load the live index starts empty and is
        rebuilt from the stored key-hash arrays on first access — the
        columnar query path never needs it (it probes
        :meth:`frozen_postings`), so a pure serving process skips the
        rebuild entirely.
        """
        self._ensure_index()
        return self._index

    def _ensure_index(self) -> None:
        if not self._index_stale:
            return
        index = InvertedIndex()
        for sid, entry in self._sketches.items():
            if isinstance(entry, _LazySketch):
                index.add(sid, entry.columns.key_hashes.tolist())
            else:
                index.add(sid, entry.key_hashes())
        self._index = index
        self._index_stale = False

    @property
    def vocabulary_size(self) -> int:
        """Distinct key hashes with postings over the *live* sketch set.

        A clean catalog (no pending delta or tombstones) answers from
        the frozen CSR without forcing a freeze; a dirty one falls back
        to the live index (rebuilding it first if a snapshot load left
        it stale), since the frozen vocabulary may count tombstoned-only
        hashes or miss delta-only ones."""
        if (
            self._frozen_postings is not None
            and not self._tombstones
            and len(self._delta_index) == 0
        ):
            return self._frozen_postings.vocabulary_size
        return self.index.vocabulary_size

    def frozen_postings(self) -> ColumnarPostings:
        """The *monolithic* frozen CSR over every live sketch.

        Compacts first (:meth:`compact` is a no-op on a clean catalog),
        so the returned snapshot always covers exactly the live sketch
        set — a stable catalog keeps returning the same cached object
        while a mutated one folds and re-freezes. Binary snapshots
        persist the frozen arrays, so a loaded catalog starts with this
        cache already warm. The serving path never calls this: the
        layered :meth:`probe_top_overlap` / :meth:`probe_top_overlap_batch`
        answer from frozen + delta − tombstones without folding.
        """
        self.compact()
        assert self._frozen_postings is not None
        return self._frozen_postings

    def _build_lsh(self, ids: list[str], *, bands: int, rows: int) -> LshIndex:
        """Vectorized LSH build over ``ids``: every sketch's columnar
        ``key_hashes`` view is concatenated CSR-style and bucketed by one
        :meth:`LshIndex.add_batch` scatter."""
        index = LshIndex(bands=bands, rows=rows, bits=self.hasher.bits)
        columns = [self.sketch_columns(sid) for sid in ids]
        lengths = np.asarray([c.size for c in columns], dtype=np.int64)
        indptr = np.zeros(len(ids) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        if columns:
            concat = np.concatenate(
                [c.key_hashes.astype(np.uint64, copy=False) for c in columns]
            )
        else:
            concat = np.empty(0, dtype=np.uint64)
        index.add_batch(ids, concat, indptr)
        return index

    def lsh_index(
        self, *, bands: int | None = None, rows: int | None = None
    ) -> LshIndex:
        """The *monolithic* MinHash-LSH index over every live sketch.

        Same lifecycle contract as :meth:`frozen_postings`: compacts
        first (a no-op on a clean catalog), so the returned index covers
        exactly the live sketch set — mutations fold into it at the next
        call instead of forcing a from-scratch rebuild. Binary snapshots
        persist the signature arrays, so a loaded catalog that had an
        LSH index starts with this cache warm. The serving path never
        calls this: the layered :meth:`lsh_candidate_ids` probes
        frozen-layer and delta signatures without folding.

        ``bands``/``rows`` semantics: ``None`` (the default) means "use
        whatever index is cached, else build with the module defaults" —
        so a serving process that loaded a warm snapshot keeps its
        persisted banding whatever shape it was built with. Passing
        explicit values pins the shape: a cached index of a different
        ``(bands, rows)`` is discarded and rebuilt (and re-cached).
        """
        self.compact()
        cached_params = self.lsh_params
        if cached_params is not None:
            want = (
                bands if bands is not None else cached_params[0],
                rows if rows is not None else cached_params[1],
            )
            if cached_params == want:
                return self._lsh_cached()
        bands = DEFAULT_BANDS if bands is None else bands
        rows = DEFAULT_ROWS if rows is None else rows
        index = self._build_lsh(list(self), bands=bands, rows=rows)
        self._lsh_index = index
        self._lsh_pending = None
        return index

    def _lsh_cached(self) -> LshIndex | None:
        """The frozen-layer LSH index, expanding deferred snapshot
        signatures into bucket state on first use (see
        :attr:`_lsh_pending`)."""
        if self._lsh_index is None and self._lsh_pending is not None:
            ids, slots, filled, bands, rows, bits = self._lsh_pending
            self._lsh_index = LshIndex.from_arrays(
                ids, slots, filled, bands=bands, rows=rows, bits=bits
            )
            self._lsh_pending = None
        return self._lsh_index

    def _lsh_arrays(self) -> tuple | None:
        """``(ids, slots, filled, bands, rows, bits)`` of the
        frozen-layer LSH without expanding bucket state — what the
        snapshot writer persists and :meth:`_fold_lsh` folds. None when
        no frozen-layer LSH exists in either form."""
        if self._lsh_index is not None:
            lsh = self._lsh_index
            slots, filled = lsh.export_arrays()
            return (
                list(lsh.ids), slots, filled, lsh.bands, lsh.rows, lsh.bits
            )
        return self._lsh_pending

    @property
    def lsh_params(self) -> tuple[int, int] | None:
        """``(bands, rows)`` of the cached frozen-layer LSH index
        (materialized or still deferred from a snapshot load), or None
        when none has been built yet. Never triggers a build or a
        compaction — ``catalog info`` uses this to report whether a
        snapshot shipped a warm LSH index."""
        if self._lsh_index is not None:
            return (self._lsh_index.bands, self._lsh_index.rows)
        if self._lsh_pending is not None:
            return (self._lsh_pending[3], self._lsh_pending[4])
        return None

    def sketch_columns(self, sketch_id: str) -> SketchColumns:
        """Columnar (sorted key-hash / rank / value / range) view of a sketch.

        Views are cached on the sketches themselves
        (:meth:`repro.core.sketch.CorrelationSketch.columnar`); catalog
        sketches are immutable after registration, so each is lowered at
        most once for the life of the catalog. Snapshot-loaded sketches
        serve their stored array views directly, without materializing
        the sketch object.
        """
        entry = self._sketches.get(sketch_id)
        if isinstance(entry, _LazySketch):
            return entry.columns
        return self.get(sketch_id).columnar()

    def sketch_meta(self, sketch_id: str) -> SketchMeta:
        """Per-sketch persisted scalars, without materializing lazy entries."""
        try:
            entry = self._sketches[sketch_id]
        except KeyError:
            raise KeyError(
                f"no sketch {sketch_id!r} in catalog ({len(self)} sketches)"
            ) from None
        if isinstance(entry, _LazySketch):
            return entry.meta
        return SketchMeta(
            n=entry.n,
            aggregate=entry.aggregate,
            name=entry.name,
            rows_seen=entry.rows_seen,
            overflowed=not entry.saw_all_keys,
            value_min=entry.value_min,
            value_max=entry.value_max,
        )

    # -- delta layer (LSM-style incremental maintenance) ----------------------

    @property
    def delta_size(self) -> int:
        """Sketches in the mutable delta layer (appends since the last
        compaction)."""
        return len(self._delta_index)

    @property
    def tombstone_count(self) -> int:
        """Frozen-layer ids banned since the last compaction."""
        return len(self._tombstones)

    def _delta_postings(self) -> ColumnarPostings:
        """Frozen CSR view of the delta layer (cached per delta state)."""
        if self._delta_frozen is None:
            self._delta_frozen = self._delta_index.freeze()
        return self._delta_frozen

    def _banned_doc_indices(self) -> np.ndarray | None:
        """Frozen-layer doc indices of the tombstoned ids (sorted), or
        None when there is nothing to ban — the ``banned`` argument of
        the frozen-layer CSR probes."""
        if not self._tombstones or self._frozen_postings is None:
            return None
        if self._banned_cache is None:
            doc_index = self._frozen_postings._doc_index
            self._banned_cache = np.asarray(
                sorted(
                    doc_index[sid]
                    for sid in self._tombstones
                    if sid in doc_index
                ),
                dtype=np.int64,
            )
        return self._banned_cache

    def probe_top_overlap(
        self,
        key_hashes,
        depth: int,
        *,
        exclude: str | None = None,
        min_overlap: int = 1,
    ) -> list[tuple[str, int]]:
        """Layered top-``depth`` overlap probe: frozen + delta − tombstones.

        Bit-identical to :meth:`frozen_postings`'s
        :meth:`~repro.index.inverted.ColumnarPostings.top_overlap` on a
        freshly rebuilt monolithic index, without folding anything: each
        live sketch lives in exactly one layer (appends in the delta,
        frozen survivors behind the tombstone ban), each layer's probe is
        already sorted under the ``(−overlap, id)`` total order, and any
        candidate in the global top-``depth`` is necessarily in its own
        layer's top-``depth`` — so
        :func:`~repro.index.inverted.merge_hits` over the per-layer
        lists reproduces the monolithic cutoff exactly. This is the
        inverted-backend retrieval probe of
        :func:`repro.index.engine.retrieve_candidates`.
        """
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        if not isinstance(key_hashes, np.ndarray):
            key_hashes = np.fromiter(key_hashes, dtype=np.uint64)
        parts: list[list[tuple[str, int]]] = []
        frozen = self._frozen_postings
        if frozen is not None and len(frozen):
            parts.append(
                frozen.top_overlap(
                    key_hashes,
                    depth,
                    exclude=exclude,
                    min_overlap=min_overlap,
                    banned=self._banned_doc_indices(),
                )
            )
        if len(self._delta_index):
            parts.append(
                self._delta_postings().top_overlap(
                    key_hashes, depth, exclude=exclude, min_overlap=min_overlap
                )
            )
        if not parts:
            return []
        if len(parts) == 1:
            return parts[0]
        return merge_hits(parts, depth)

    def probe_top_overlap_batch(
        self,
        queries,
        depth: int,
        *,
        excludes=None,
        min_overlap: int = 1,
    ) -> list[list[tuple[str, int]]]:
        """:meth:`probe_top_overlap` for many queries at once.

        Each layer answers the whole batch from its own stacked CSR
        probe; the per-query layer lists are then merged under the
        shared total order. Row ``q`` is bit-identical to the
        single-query call, and to the monolithic
        :meth:`~repro.index.inverted.ColumnarPostings.top_overlap_batch`.
        """
        if depth <= 0:
            raise ValueError(f"depth must be positive, got {depth}")
        queries = list(queries)
        if excludes is not None and len(excludes) != len(queries):
            raise ValueError(
                f"{len(queries)} queries but {len(excludes)} excludes"
            )
        frozen = self._frozen_postings
        frozen_part = None
        if frozen is not None and len(frozen):
            frozen_part = frozen.top_overlap_batch(
                queries,
                depth,
                excludes=excludes,
                min_overlap=min_overlap,
                banned=self._banned_doc_indices(),
            )
        delta_part = None
        if len(self._delta_index):
            delta_part = self._delta_postings().top_overlap_batch(
                queries, depth, excludes=excludes, min_overlap=min_overlap
            )
        if frozen_part is None and delta_part is None:
            return [[] for _ in queries]
        if delta_part is None:
            return frozen_part
        if frozen_part is None:
            return delta_part
        return [
            merge_hits([f, d], depth)
            for f, d in zip(frozen_part, delta_part)
        ]

    def lsh_candidate_ids(
        self,
        key_hashes,
        *,
        exclude: str | None = None,
        bands: int | None = None,
        rows: int | None = None,
    ) -> list[str]:
        """Layered LSH probe: frozen-layer ∪ delta collisions − tombstones.

        Identical to :meth:`lsh_index`'s
        :meth:`~repro.index.lsh.LshIndex.candidate_ids` on a monolithic
        rebuild, without folding: band collision is a pairwise predicate
        between the query signature and one sketch signature, so the
        union of per-layer collision sets *is* the monolithic collision
        set, and the sorted-ids output order is recovered by sorting the
        union. Tombstoned ids are filtered from the frozen-layer hits
        only (the frozen signatures may still physically contain them);
        a tombstoned-then-re-added id surfaces from its live delta copy.

        ``bands``/``rows``: same pinning contract as :meth:`lsh_index` —
        ``None`` keeps whichever shape is already built (frozen layer
        first, then delta, then the module defaults); explicit values
        discard mismatching cached layers.
        """
        frozen_params = self.lsh_params
        if frozen_params is not None:
            anchor = frozen_params
        elif self._delta_lsh is not None:
            anchor = (self._delta_lsh.bands, self._delta_lsh.rows)
        else:
            anchor = None
        if anchor is not None:
            want = (
                bands if bands is not None else anchor[0],
                rows if rows is not None else anchor[1],
            )
        else:
            want = (
                DEFAULT_BANDS if bands is None else bands,
                DEFAULT_ROWS if rows is None else rows,
            )
        bands, rows = want
        if frozen_params is not None and frozen_params != want:
            self._lsh_index = None
            self._lsh_pending = None
        delta_lsh = self._delta_lsh
        if delta_lsh is not None and (delta_lsh.bands, delta_lsh.rows) != want:
            self._delta_lsh = None
        hits: set[str] = set()
        frozen = self._frozen_postings
        if frozen is not None and len(frozen):
            if self._lsh_cached() is None:
                # Lazy frozen-layer build covers the frozen survivors
                # only — tombstoned sketches are gone from the catalog,
                # so their signatures cannot be (re)built; later
                # tombstones are handled by the hit filter below.
                self._lsh_index = self._build_lsh(
                    [
                        sid
                        for sid in frozen.docs
                        if sid not in self._tombstones
                    ],
                    bands=bands,
                    rows=rows,
                )
            frozen_hits = self._lsh_index.candidate_ids(
                key_hashes, exclude=exclude
            )
            # Tombstones ban *frozen* hits only: a tombstoned-then-re-added
            # id is live again in the delta, and that copy must surface.
            if self._tombstones:
                frozen_hits = [
                    sid for sid in frozen_hits
                    if sid not in self._tombstones
                ]
            hits.update(frozen_hits)
        if len(self._delta_index):
            if self._delta_lsh is None:
                self._delta_lsh = self._build_lsh(
                    list(self._delta_postings().docs), bands=bands, rows=rows
                )
            hits.update(
                self._delta_lsh.candidate_ids(key_hashes, exclude=exclude)
            )
        return sorted(hits)

    def _maybe_autocompact(self) -> None:
        if (
            self.compact_threshold is not None
            and len(self._delta_index) >= self.compact_threshold
        ):
            self.compact()

    def compact(self) -> int:
        """Fold the delta and tombstones into new frozen structures.

        Three cases:

        * **clean** (warm frozen CSR, empty delta, no tombstones) — a
          no-op; the version does not move;
        * **promotion** (no frozen CSR yet — a fresh or JSON-loaded
          catalog) — the delta freeze *becomes* the frozen layer (this
          is exactly the old lazy full-freeze cost, paid once);
        * **fold** — surviving frozen postings and the delta postings
          are merged array-wise into a fresh canonical CSR (ascending
          vocabulary, ascending doc id per slice — bit-identical to
          freezing a from-scratch rebuild), and the frozen-layer LSH, if
          one is built, absorbs the delta signatures row-wise with the
          tombstoned rows dropped.

        Afterwards the delta and tombstone set are empty and
        :attr:`index_version` has been bumped iff anything was folded.
        Returns the resulting version.
        """
        dirty = len(self._delta_index) > 0 or bool(self._tombstones)
        if self._frozen_postings is None:
            self._frozen_postings = self._delta_postings()
            if self._lsh_index is None:
                self._lsh_index = self._delta_lsh
        elif dirty:
            new_frozen = self._fold_postings()
            if self._lsh_index is not None or self._lsh_pending is not None:
                self._lsh_index = self._fold_lsh()
                self._lsh_pending = None
            self._frozen_postings = new_frozen
        else:
            return self.index_version
        self._delta_index = InvertedIndex()
        self._delta_frozen = None
        self._delta_lsh = None
        self._tombstones.clear()
        self._banned_cache = None
        if dirty:
            self.index_version += 1
        return self.index_version

    def _fold_postings(self) -> ColumnarPostings:
        """Merge the frozen CSR (minus tombstones) with the delta freeze.

        Pure array surgery: both layers expand to ``(hash, doc)`` pairs,
        tombstoned pairs drop, and one lexsort on ``(hash, doc)``
        rebuilds the canonical CSR — the same layout
        :meth:`InvertedIndex.freeze` produces from a from-scratch
        rebuild, so the fold is bit-identical to one.
        """
        old = self._frozen_postings
        delta = self._delta_postings()
        tombs = self._tombstones
        survivors = [sid for sid in old.docs if sid not in tombs]
        new_docs = sorted(survivors + list(delta.docs))
        new_index = {sid: i for i, sid in enumerate(new_docs)}
        old_map = np.full(len(old.docs), -1, dtype=np.int64)
        for i, sid in enumerate(old.docs):
            # A tombstoned id may have been re-added (its live copy is in
            # the delta): the frozen copy still folds to "dropped".
            if sid not in tombs:
                old_map[i] = new_index[sid]
        delta_map = np.asarray(
            [new_index[sid] for sid in delta.docs], dtype=np.int64
        )
        old_rep = np.repeat(
            np.arange(old.vocab.size, dtype=np.int64), np.diff(old.indptr)
        )
        old_docs = old_map[old.doc_ids]
        keep = old_docs >= 0
        d_rep = np.repeat(
            np.arange(delta.vocab.size, dtype=np.int64), np.diff(delta.indptr)
        )
        all_hashes = np.concatenate(
            [old.vocab[old_rep][keep], delta.vocab[d_rep]]
        )
        all_docs = np.concatenate([old_docs[keep], delta_map[delta.doc_ids]])
        order = np.lexsort((all_docs, all_hashes))
        all_hashes = all_hashes[order]
        all_docs = all_docs[order]
        new_vocab, counts = np.unique(all_hashes, return_counts=True)
        indptr = np.zeros(new_vocab.size + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        lengths = np.zeros(len(new_docs), dtype=np.int64)
        lengths[old_map[old_map >= 0]] = old.doc_lengths[old_map >= 0]
        if len(delta.docs):
            lengths[delta_map] = delta.doc_lengths
        return ColumnarPostings(
            new_vocab,
            indptr,
            all_docs.astype(np.int32),
            new_docs,
            lengths,
            new_index,
        )

    def _fold_lsh(self) -> LshIndex:
        """Merge the frozen-layer LSH with the delta signatures.

        Row surgery on the exported signature matrices: tombstoned rows
        drop, delta rows append (reusing the cached delta ring when its
        shape matches, else re-signing the delta), and
        :meth:`LshIndex.from_arrays` rebuilds the buckets. Collision
        sets are unchanged versus a from-scratch build — bucketing is
        per-row and order-free.
        """
        ids, slots, filled, bands, rows, bits = self._lsh_arrays()
        tombs = self._tombstones
        surviving = [i for i, sid in enumerate(ids) if sid not in tombs]
        new_ids = [ids[i] for i in surviving]
        # Fancy indexing copies — the fold's output is always fresh heap
        # arrays, even when the inputs are read-only arena views (the
        # copy-on-mutation rule for the LSH layer).
        new_slots = slots[surviving]
        new_filled = filled[surviving]
        delta_ids = list(self._delta_postings().docs)
        if delta_ids:
            delta_lsh = self._delta_lsh
            if delta_lsh is None or (delta_lsh.bands, delta_lsh.rows) != (
                bands,
                rows,
            ):
                delta_lsh = self._build_lsh(delta_ids, bands=bands, rows=rows)
            d_slots, d_filled = delta_lsh.export_arrays()
            new_ids = new_ids + list(delta_lsh.ids)
            new_slots = np.concatenate([new_slots, d_slots])
            new_filled = np.concatenate([new_filled, d_filled])
        return LshIndex.from_arrays(
            new_ids,
            new_slots,
            new_filled,
            bands=bands,
            rows=rows,
            bits=bits,
        )

    # -- storage backend (heap vs mmap arena) ---------------------------------

    @property
    def storage(self) -> str:
        """``"mmap"`` while this catalog serves off an arena mapping
        (``layout="arena"`` snapshot load), ``"heap"`` otherwise.

        A mapped catalog is fully mutable: the copy-on-mutation rules
        mean appends and removals only ever touch heap-native delta and
        tombstone structures, and :meth:`compact` folds into fresh heap
        arrays — nothing ever writes to the mapping. The flag flips to
        ``"heap"`` only via :meth:`detach`.
        """
        return "mmap" if self._arena is not None else "heap"

    def storage_info(self) -> dict:
        """Storage accounting for ``catalog info`` and the benchmarks.

        Returns a dict with the backend name, ``mapped_bytes`` (the
        arena's packed array payload; 0 for heap catalogs),
        ``materialized_bytes`` (heap-resident numeric array bytes across
        the frozen/delta/LSH structures and every entry whose columnar
        views exist — an estimate: buffers shared between views count
        once per view) and, for mapped catalogs, an ``arena`` summary of
        the header (path, array count, header bytes).
        """
        arena = self._arena
        heap_bytes = 0

        def _add(*arrays) -> None:
            nonlocal heap_bytes
            for array in arrays:
                if array is None or (arena is not None and arena.owns(array)):
                    continue
                heap_bytes += array.nbytes

        for postings in (self._frozen_postings, self._delta_frozen):
            if postings is not None:
                _add(
                    postings.vocab,
                    postings.indptr,
                    postings.doc_ids,
                    postings.doc_lengths,
                )
        for lsh in (self._lsh_index, self._delta_lsh):
            if lsh is not None:
                _add(*lsh._slots, *lsh._filled)
        if self._lsh_pending is not None:
            _add(self._lsh_pending[1], self._lsh_pending[2])
        for entry in self._sketches.values():
            columns = entry._columns
            if columns is not None:
                _add(columns.key_hashes, columns.ranks, columns.values)
        info = {
            "backend": self.storage,
            "mapped_bytes": arena.data_bytes if arena is not None else 0,
            "materialized_bytes": heap_bytes,
            "arena": None,
        }
        if arena is not None:
            info["arena"] = {
                "path": str(arena.path),
                "arrays": len(arena.extents),
                "header_bytes": arena.header_bytes,
            }
        return info

    def detach(self) -> None:
        """Copy every arena-backed array to a private heap copy and
        release the mapping.

        Serving never requires this — queries read the mapping directly
        and mutations are heap-native by construction (appends land in
        the delta, removals in the tombstone set, and :meth:`compact`'s
        folds allocate fresh arrays). Detach exists for processes that
        want to outlive the snapshot file's *contents*: after it, the
        catalog holds no reference into the file and :attr:`storage`
        reports ``"heap"``. Queries are bit-identical before and after.
        """
        arena = self._arena
        if arena is None:
            return
        for entry in self._sketches.values():
            if isinstance(entry, _LazySketch):
                entry.detach(arena)
            elif entry._columns is not None and arena.owns(
                entry._columns.key_hashes
            ):
                columns = entry._columns
                entry._columns = SketchColumns(
                    key_hashes=np.array(columns.key_hashes),
                    ranks=np.array(columns.ranks),
                    values=np.array(columns.values),
                    value_range=columns.value_range,
                    saw_all_keys=columns.saw_all_keys,
                )
        frozen = self._frozen_postings
        if frozen is not None and arena.owns(frozen.vocab):
            self._frozen_postings = ColumnarPostings(
                np.array(frozen.vocab),
                np.array(frozen.indptr),
                np.array(frozen.doc_ids),
                frozen.docs,
                np.array(frozen.doc_lengths),
                frozen._doc_index_cache,
            )
            self._banned_cache = None
        if self._lsh_pending is not None:
            ids, slots, filled, bands, rows, bits = self._lsh_pending
            self._lsh_pending = (
                ids, np.array(slots), np.array(filled), bands, rows, bits
            )
        elif self._lsh_index is not None and self._lsh_index.storage == "mmap":
            lsh = self._lsh_index
            slots, filled = lsh.export_arrays()  # np.stack: already a copy
            self._lsh_index = LshIndex.from_arrays(
                list(lsh.ids),
                slots,
                filled,
                bands=lsh.bands,
                rows=lsh.rows,
                bits=lsh.bits,
            )
        self._arena = None

    # -- persistence ----------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Serialize the catalog; format chosen by extension.

        ``.npz`` writes the binary columnar snapshot
        (:func:`repro.index.snapshot.save_snapshot` — sketch arrays plus
        the frozen postings); ``.arena`` writes the same members as one
        contiguous mmap-able arena (``layout="arena"`` — zero-copy
        loads, see :mod:`repro.index.arena`); anything else writes the
        portable JSON reference format (sketches only; the index is
        rebuilt on load). All three writes are atomic (temp file +
        ``os.replace``).
        """
        path = Path(path)
        if path.suffix in (".npz", ".arena"):
            from repro.index.snapshot import save_snapshot

            save_snapshot(
                self,
                path,
                layout="arena" if path.suffix == ".arena" else "npz",
            )
            return
        payload = {
            "sketch_size": self.sketch_size,
            "aggregate": self.aggregate,
            "scheme": list(self.hasher.scheme_id),
            "vectorized": self.vectorized,
            "sketches": {sid: self.get(sid).to_dict() for sid in self},
        }
        from repro.index.arena import atomic_write_text

        atomic_write_text(path, json.dumps(payload))

    #: Exceptions the quarantine path treats as a corrupt snapshot file
    #: (truncation, mangled headers, checksum-shaped parse errors,
    #: missing members, injected read faults — all surface as one of
    #: these from the loaders).
    _CORRUPTION_ERRORS = (OSError, ValueError, KeyError, EOFError)

    @classmethod
    def load(
        cls, path: str | Path, *, on_corruption: str = "raise"
    ) -> "SketchCatalog":
        """Load a catalog written by :meth:`save`, any format.

        Binary snapshots are detected by the ``.npz``/``.arena``
        extension, the zip magic bytes or the arena magic bytes;
        everything else parses as JSON. Arena snapshots come back
        memory-mapped (``storage == "mmap"``) — read-only views, no
        array data copied.

        Args:
            on_corruption: ``"raise"`` (default) propagates load errors
                unchanged. ``"quarantine"`` renames an unreadable file
                to ``*.quarantined`` and walks the fallback chain —
                sibling ``.arena``, then ``.npz``, then the portable
                ``.json`` source — returning the first that loads, with
                :attr:`load_recovery` on the result describing exactly
                what was skipped. Raises ``ValueError`` only when every
                candidate fails.
        """
        path = Path(path)
        if on_corruption not in ("raise", "quarantine"):
            raise ValueError(
                f"on_corruption must be 'raise' or 'quarantine', "
                f"got {on_corruption!r}"
            )
        import zipfile

        corruption = cls._CORRUPTION_ERRORS + (zipfile.BadZipFile,)
        try:
            return cls._load_file(path)
        except corruption as exc:
            if on_corruption != "quarantine":
                raise
            from repro.index.snapshot import quarantine_file

            quarantined: list[str] = []
            errors = [f"{path.name}: {exc}"]
            try:
                quarantined.append(str(quarantine_file(path)))
            except OSError:
                pass  # e.g. the path never existed — nothing to move
            for ext in (".arena", ".npz", ".json"):
                candidate = path.with_suffix(ext)
                if candidate == path or not candidate.exists():
                    continue
                try:
                    catalog = cls._load_file(candidate)
                except corruption as sibling_exc:
                    errors.append(f"{candidate.name}: {sibling_exc}")
                    try:
                        quarantined.append(str(quarantine_file(candidate)))
                    except OSError:
                        pass
                    continue
                catalog.load_recovery = {
                    "quarantined": quarantined,
                    "errors": errors,
                    "loaded_from": str(candidate),
                }
                return catalog
            raise ValueError(
                f"catalog {path} is corrupt and no fallback candidate "
                f"loaded: " + "; ".join(errors)
            ) from exc

    @classmethod
    def _load_file(cls, path: Path) -> "SketchCatalog":
        """One load attempt against one concrete file (no fallbacks)."""
        from repro.index.arena import has_arena_magic

        if (
            path.suffix in (".npz", ".arena")
            or _has_zip_magic(path)
            or has_arena_magic(path)
        ):
            from repro.index.snapshot import load_snapshot

            return load_snapshot(path)
        payload = json.loads(path.read_text())
        bits, seed = payload["scheme"]
        catalog = cls(
            sketch_size=payload["sketch_size"],
            aggregate=payload["aggregate"],
            hasher=KeyHasher(bits=bits, seed=seed),
            # Catalogs saved before the flag was persisted default to the
            # constructor default (vectorized construction).
            vectorized=payload.get("vectorized", True),
        )
        catalog.add_sketches(
            (sid, CorrelationSketch.from_dict(sketch_payload))
            for sid, sketch_payload in payload["sketches"].items()
        )
        return catalog


def _has_zip_magic(path: Path) -> bool:
    """True when the file starts with the npz (zip) magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(4) == b"PK\x03\x04"
    except OSError:
        return False
