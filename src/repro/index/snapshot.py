"""Binary catalog snapshots: the offline-build / online-serve format.

The JSON catalog format (:meth:`repro.index.catalog.SketchCatalog.save`)
is the portable reference: readable, diffable, and slow — every sketch
round-trips through per-entry Python lists and the inverted index is
rebuilt entry by entry on every cold start. This module is the serving
format: one versioned ``.npz`` file (uncompressed zip of ``.npy``
members) holding

* the **concatenated columnar sketch arrays** — all sketches' sorted
  key hashes, unit-hash ranks and aggregated values laid end to end with
  one CSR-style ``entry_indptr`` delimiting each sketch's slice, plus
  per-sketch scalar columns (capacity, rows seen, overflow flag, value
  min/max, names);
* the **frozen CSR postings** of the inverted index
  (:class:`repro.index.inverted.ColumnarPostings` — vocabulary,
  ``indptr``, doc ids, doc table), persisted verbatim;
* since version 2, the **LSH signature arrays** — the catalog's
  MinHash-LSH index (:class:`repro.index.lsh.LshIndex`), when one was
  built before saving: per-sketch slot/filled matrices plus the
  ``(bands, rows, bits)`` config. Catalogs that never probed the LSH
  backend write no LSH members and rebuild lazily after load, exactly
  like the JSON reference format always does.

Loading therefore does no per-entry work at all: each array is one
contiguous read, every sketch rehydrates as a zero-copy slice view
(:class:`repro.index.catalog._LazySketch` wrapping a
:class:`~repro.core.sketch.SketchColumns`), and the postings snapshot is
reconstructed directly from its stored arrays — the catalog's
``frozen_postings`` cache starts warm, so the first query probes the
index without any freeze or rebuild. Full ``CorrelationSketch`` objects
(bottom-k heap + aggregators) materialize lazily per sketch, only if the
scalar reference path asks for them.

Format contract:

* ``version`` (currently 2) gates compatibility — loading a snapshot
  with an unknown version raises ``ValueError`` rather than guessing.
  Version-1 snapshots (pre-LSH layout) still load: every version-1
  member kept its name and meaning, version 2 only *adds* the optional
  LSH members;
* array-level equality with the JSON round trip: a catalog saved to both
  formats loads back with identical per-sketch entries, columnar views
  and postings (the snapshot test suite pins this);
* mutation after load behaves exactly like a JSON-loaded catalog: the
  first ``add_sketch`` rebuilds the live inverted index from the stored
  arrays and invalidates the frozen postings, which re-freeze lazily.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.sketch import SketchColumns, _value_range_of
from repro.hashing import KeyHasher
from repro.index.catalog import (
    SketchCatalog,
    SketchMeta,
    _has_zip_magic,
    _LazySketch,
)
from repro.index.inverted import ColumnarPostings
from repro.index.lsh import LshIndex

#: Bump on any layout change; load_snapshot refuses unknown versions.
#: v1: sketch arrays + frozen postings. v2: adds optional LSH members.
SNAPSHOT_VERSION = 2

#: Versions this build can read (v2 is a strict superset of v1).
_READABLE_VERSIONS = (1, 2)


def detect_format(path: str | Path) -> str:
    """``"binary"`` for npz snapshots, ``"json"`` otherwise.

    Decided the same way :meth:`SketchCatalog.load` dispatches: the
    ``.npz`` extension or the zip magic bytes.
    """
    path = Path(path)
    if path.suffix == ".npz" or _has_zip_magic(path):
        return "binary"
    return "json"


def save_snapshot(catalog: SketchCatalog, path: str | Path) -> None:
    """Write ``catalog`` as a versioned binary snapshot.

    The frozen postings are built here if not already cached — freezing
    is an offline (save-time) cost in this format, never an online one.
    Works on any catalog, including one that was itself snapshot-loaded
    and never materialized (lazy entries are persisted from their array
    views directly).
    """
    ids = list(catalog)
    metas = [catalog.sketch_meta(sid) for sid in ids]
    columns = [catalog.sketch_columns(sid) for sid in ids]
    postings = catalog.frozen_postings()

    lengths = np.asarray([c.size for c in columns], dtype=np.int64)
    entry_indptr = np.zeros(len(ids) + 1, dtype=np.int64)
    np.cumsum(lengths, out=entry_indptr[1:])

    def _concat(arrays, dtype):
        arrays = [np.asarray(a) for a in arrays if np.asarray(a).size]
        if not arrays:
            return np.empty(0, dtype=dtype)
        return np.concatenate(arrays).astype(dtype, copy=False)

    bits, seed = catalog.hasher.scheme_id
    # The LSH index rides along only when the catalog actually built one
    # (and it still covers exactly the current sketch set — any mutation
    # since the build would have invalidated it to None).
    lsh = catalog._lsh_index
    lsh_members = {}
    if lsh is not None and list(lsh.ids) == ids:
        lsh_slots, lsh_filled = lsh.export_arrays()
        lsh_members = {
            "lsh_config": np.asarray(
                [lsh.bands, lsh.rows, lsh.bits], dtype=np.int64
            ),
            "lsh_slots": lsh_slots,
            "lsh_filled": lsh_filled,
        }
    # A file handle (not a path) keeps np.savez from appending ".npz"
    # behind the caller's back — the snapshot lands exactly where asked,
    # whatever the extension (load sniffs the zip magic anyway).
    with open(path, "wb") as handle:
        np.savez(
            handle,
            version=np.asarray([SNAPSHOT_VERSION], dtype=np.int64),
            catalog_config=np.asarray(
                [catalog.sketch_size, bits, seed, int(catalog.vectorized)],
                dtype=np.int64,
            ),
            catalog_aggregate=np.asarray([catalog.aggregate]),
            ids=np.asarray(ids, dtype=str),
            names=np.asarray([m.name or "" for m in metas], dtype=str),
            has_name=np.asarray([m.name is not None for m in metas], dtype=bool),
            aggregates=np.asarray([m.aggregate for m in metas], dtype=str),
            capacities=np.asarray([m.n for m in metas], dtype=np.int64),
            rows_seen=np.asarray([m.rows_seen for m in metas], dtype=np.int64),
            overflowed=np.asarray([m.overflowed for m in metas], dtype=bool),
            value_min=np.asarray([m.value_min for m in metas], dtype=np.float64),
            value_max=np.asarray([m.value_max for m in metas], dtype=np.float64),
            entry_indptr=entry_indptr,
            key_hashes=_concat([c.key_hashes for c in columns], np.uint64),
            ranks=_concat([c.ranks for c in columns], np.float64),
            values=_concat([c.values for c in columns], np.float64),
            postings_vocab=postings.vocab,
            postings_indptr=postings.indptr,
            postings_doc_ids=postings.doc_ids,
            postings_docs=np.asarray(postings.docs, dtype=str),
            postings_doc_lengths=postings.doc_lengths,
            **lsh_members,
        )


def load_snapshot(path: str | Path) -> SketchCatalog:
    """Load a binary snapshot into a lazily rehydrated catalog.

    Raises:
        ValueError: for snapshots written by an unknown format version.
    """
    with np.load(path, allow_pickle=False) as payload:
        version = int(payload["version"][0])
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported catalog snapshot version {version} "
                f"(this build reads versions {_READABLE_VERSIONS})"
            )
        sketch_size, bits, seed, vectorized = (
            int(v) for v in payload["catalog_config"]
        )
        catalog = SketchCatalog(
            sketch_size=sketch_size,
            aggregate=str(payload["catalog_aggregate"][0]),
            hasher=KeyHasher(bits=bits, seed=seed),
            vectorized=bool(vectorized),
        )

        ids = payload["ids"]
        names = payload["names"]
        has_name = payload["has_name"]
        aggregates = payload["aggregates"]
        capacities = payload["capacities"]
        rows_seen = payload["rows_seen"]
        overflowed = payload["overflowed"]
        value_min = payload["value_min"]
        value_max = payload["value_max"]
        entry_indptr = payload["entry_indptr"]
        key_hashes = payload["key_hashes"]
        ranks = payload["ranks"]
        values = payload["values"]

        for i in range(ids.shape[0]):
            start, end = int(entry_indptr[i]), int(entry_indptr[i + 1])
            vmin = float(value_min[i])
            vmax = float(value_max[i])
            meta = SketchMeta(
                n=int(capacities[i]),
                aggregate=str(aggregates[i]),
                name=str(names[i]) if bool(has_name[i]) else None,
                rows_seen=int(rows_seen[i]),
                overflowed=bool(overflowed[i]),
                value_min=vmin,
                value_max=vmax,
            )
            columns = SketchColumns(
                key_hashes=key_hashes[start:end],
                ranks=ranks[start:end],
                values=values[start:end],
                value_range=_value_range_of(vmin, vmax),
                saw_all_keys=not meta.overflowed,
            )
            catalog._sketches[str(ids[i])] = _LazySketch(
                columns, meta, catalog.hasher
            )

        catalog._index_stale = True
        catalog._frozen_postings = ColumnarPostings(
            payload["postings_vocab"],
            payload["postings_indptr"],
            payload["postings_doc_ids"],
            payload["postings_docs"].tolist(),
            payload["postings_doc_lengths"],
        )
        if "lsh_slots" in payload:
            lsh_bands, lsh_rows, lsh_bits = (
                int(v) for v in payload["lsh_config"]
            )
            catalog._lsh_index = LshIndex.from_arrays(
                [str(sid) for sid in ids],
                payload["lsh_slots"],
                payload["lsh_filled"],
                bands=lsh_bands,
                rows=lsh_rows,
                bits=lsh_bits,
            )
    return catalog
