"""Binary catalog snapshots: the offline-build / online-serve formats.

The JSON catalog format (:meth:`repro.index.catalog.SketchCatalog.save`)
is the portable reference: readable, diffable, and slow — every sketch
round-trips through per-entry Python lists and the inverted index is
rebuilt entry by entry on every cold start. This module holds the two
serving formats, which persist the same members:

* the **concatenated columnar sketch arrays** — all sketches' sorted
  key hashes, unit-hash ranks and aggregated values laid end to end with
  one CSR-style ``entry_indptr`` delimiting each sketch's slice, plus
  per-sketch scalar columns (capacity, rows seen, overflow flag, value
  min/max, names);
* the **frozen CSR postings** of the inverted index
  (:class:`repro.index.inverted.ColumnarPostings` — vocabulary,
  ``indptr``, doc ids, doc table), persisted verbatim;
* the **LSH signature arrays** — the catalog's MinHash-LSH index
  (:class:`repro.index.lsh.LshIndex`), when one was built before
  saving: per-sketch slot/filled matrices plus the ``(bands, rows,
  bits)`` config and the exact id list they cover. Catalogs that never
  probed the LSH backend write no LSH members and rebuild lazily after
  load, exactly like the JSON reference format always does;
* the **delta-layer state** — the catalog's ``index_version``
  compaction counter, the ids still in the mutable delta layer, and the
  tombstone set. The frozen CSR is persisted verbatim, tombstoned
  postings included — a snapshot save is never an implicit compaction;
  the delta inverted index is rebuilt from the stored key-hash slices
  on load (O(delta), not O(catalog)).

**Layouts** (``save_snapshot(..., layout=...)``):

* ``"npz"`` — one versioned ``.npz`` file (uncompressed zip of ``.npy``
  members). Loading copies every array into the process heap: cost
  O(catalog bytes), paid per process.
* ``"arena"`` — one contiguous 64-byte-aligned arena file
  (:mod:`repro.index.arena`): a small JSON header of (name, dtype,
  shape, offset) extents followed by the packed array payloads.
  Loading ``np.memmap``'s the file read-only and rehydrates the
  catalog as **zero-copy views into the mapping**: no decompression,
  no copy, load time O(metadata) — and N processes serving the same
  arena share one set of physical pages through the page cache.

Loading does no per-entry work at all in either layout: sketches
rehydrate as deferred :class:`repro.index.catalog._LazySketch` entries
that build their zero-copy :class:`~repro.core.sketch.SketchColumns`
views on first touch, the postings snapshot is reconstructed directly
from its stored arrays (the catalog's ``frozen_postings`` cache starts
warm), and persisted LSH signatures are kept as a deferred pending
payload that expands into bucket state only if an LSH probe happens.
Full ``CorrelationSketch`` objects (bottom-k heap + aggregators)
materialize lazily per sketch, only if the scalar reference path asks
for them.

Format contract:

* ``version`` gates compatibility — loading a snapshot with an unknown
  version raises ``ValueError`` rather than guessing. The npz layout is
  version 3 (versions 1–2 still load: every older member kept its name
  and meaning, each newer version only *adds* members); the arena
  layout is version 4 (arena files always carry the full v3 member
  set, so there is nothing older to read);
* array-level equality across every format: a catalog saved to JSON,
  npz and arena loads back with identical per-sketch entries, columnar
  views and postings (the snapshot test suites pin this);
* writes are **atomic**: both layouts write a temp file in the target
  directory and ``os.replace`` it into place
  (:func:`repro.index.arena.atomic_write`), so a crash mid-save can
  never corrupt an existing catalog;
* mutation after load behaves exactly like a JSON-loaded catalog:
  appends and removals land in heap-native delta/tombstone structures,
  and a compaction folds into fresh heap arrays — an arena-mapped
  catalog never writes to (and cannot write to — views are read-only)
  the shared mapping.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path

import numpy as np

from repro.core.sketch import SketchColumns, _value_range_of
from repro.hashing import KeyHasher
from repro.index.arena import (
    ArenaReader,
    _fault,
    atomic_write,
    has_arena_magic,
    write_arena,
)
from repro.index.catalog import (
    SketchCatalog,
    SketchMeta,
    _DeferredEntryDict,
    _has_zip_magic,
)
from repro.index.inverted import ColumnarPostings

#: Bump on any npz layout change; load_snapshot refuses unknown versions.
#: v1: sketch arrays + frozen postings. v2: adds optional LSH members.
#: v3: adds delta-layer state (index_version, delta ids, tombstones,
#: lsh_ids).
SNAPSHOT_VERSION = 3

#: npz versions this build can read (each a strict superset of the last).
_READABLE_VERSIONS = (1, 2, 3)

#: The arena layout's format version (the v3 member set, packed
#: mmap-able). Recorded in the arena header; unknown versions refuse.
ARENA_VERSION = 4

#: Arena versions this build can read.
_ARENA_READABLE_VERSIONS = (4,)

#: Layouts save_snapshot accepts.
SNAPSHOT_LAYOUTS = ("npz", "arena")

#: Suffix appended (to the full file name) when a corrupt snapshot is
#: quarantined: ``shard-0001.arena`` → ``shard-0001.arena.quarantined``.
QUARANTINE_SUFFIX = ".quarantined"


def quarantine_file(path: str | Path) -> Path:
    """Move a corrupt snapshot aside as ``<name>.quarantined``.

    The rename keeps the bad bytes around for post-mortem while taking
    the file out of every load/fallback path (no loader matches the
    suffix). An existing quarantined file of the same name is
    overwritten — the freshest corruption is the interesting one.
    Returns the quarantine path.
    """
    path = Path(path)
    target = path.with_name(path.name + QUARANTINE_SUFFIX)
    os.replace(path, target)
    return target


def detect_format(path: str | Path) -> str:
    """``"binary"`` for npz snapshots, ``"arena"`` for arena snapshots,
    ``"json"`` otherwise.

    Decided the same way :meth:`SketchCatalog.load` dispatches: content
    magic first (zip or arena bytes), extension as the fallback for
    paths that cannot be read yet.
    """
    path = Path(path)
    if has_arena_magic(path):
        return "arena"
    if path.suffix == ".npz" or _has_zip_magic(path):
        return "binary"
    if path.suffix == ".arena":
        return "arena"
    return "json"


def _collect_members(catalog: SketchCatalog):
    """Gather the persisted member set, shared by both layouts.

    Returns ``(config, strings, numeric, lsh)``: the scalar config
    values, the string-list members, the numeric-array members, and the
    optional LSH payload ``(ids, slots, filled, bands, rows, bits)``.
    """
    if catalog._frozen_postings is None:
        catalog.compact()
    ids = list(catalog)
    metas = [catalog.sketch_meta(sid) for sid in ids]
    columns = [catalog.sketch_columns(sid) for sid in ids]
    postings = catalog._frozen_postings

    lengths = np.asarray([c.size for c in columns], dtype=np.int64)
    entry_indptr = np.zeros(len(ids) + 1, dtype=np.int64)
    np.cumsum(lengths, out=entry_indptr[1:])

    def _concat(arrays, dtype):
        arrays = [np.asarray(a) for a in arrays if np.asarray(a).size]
        if not arrays:
            return np.empty(0, dtype=dtype)
        return np.concatenate(arrays).astype(dtype, copy=False)

    bits, seed = catalog.hasher.scheme_id
    config = {
        "sketch_size": catalog.sketch_size,
        "bits": bits,
        "seed": seed,
        "vectorized": int(catalog.vectorized),
        "aggregate": catalog.aggregate,
        "index_version": catalog.index_version,
    }
    strings = {
        "ids": ids,
        "names": [m.name or "" for m in metas],
        "aggregates": [m.aggregate for m in metas],
        "postings_docs": list(postings.docs),
        "delta_ids": sorted(
            sid for sid in ids if sid in catalog._delta_index
        ),
        "tombstones": sorted(catalog._tombstones),
    }
    numeric = {
        "has_name": np.asarray([m.name is not None for m in metas], dtype=bool),
        "capacities": np.asarray([m.n for m in metas], dtype=np.int64),
        "rows_seen": np.asarray([m.rows_seen for m in metas], dtype=np.int64),
        "overflowed": np.asarray([m.overflowed for m in metas], dtype=bool),
        "value_min": np.asarray([m.value_min for m in metas], dtype=np.float64),
        "value_max": np.asarray([m.value_max for m in metas], dtype=np.float64),
        "entry_indptr": entry_indptr,
        "key_hashes": _concat([c.key_hashes for c in columns], np.uint64),
        "ranks": _concat([c.ranks for c in columns], np.float64),
        "values": _concat([c.values for c in columns], np.float64),
        "postings_vocab": postings.vocab,
        "postings_indptr": postings.indptr,
        "postings_doc_ids": postings.doc_ids,
        "postings_doc_lengths": postings.doc_lengths,
    }
    # The LSH index rides along whenever the catalog built (or loaded)
    # one. Between compactions it covers the frozen layer rather than
    # the whole catalog (and may still physically contain tombstoned
    # rows), so the exact id list it covers is persisted alongside the
    # signatures. _lsh_arrays never expands deferred bucket state.
    return config, strings, numeric, catalog._lsh_arrays()


def save_snapshot(
    catalog: SketchCatalog, path: str | Path, *, layout: str = "npz"
) -> None:
    """Write ``catalog`` as a versioned binary snapshot (atomically).

    A catalog that has never frozen (fresh or JSON-loaded) is compacted
    here — freezing is an offline (save-time) cost in this format, never
    an online one. A catalog that *has* a frozen layer is persisted
    exactly as layered: the frozen CSR verbatim (tombstoned postings
    included), plus the delta ids and tombstone set — saving never
    forces a fold. Works on any catalog, including one that was itself
    snapshot-loaded and never materialized (lazy entries are persisted
    from their array views directly, mapped or not).

    Args:
        layout: ``"npz"`` (the default) or ``"arena"`` (the zero-copy
            mmap-able layout, see the module docs).
    """
    if layout not in SNAPSHOT_LAYOUTS:
        raise ValueError(
            f"unknown snapshot layout {layout!r} (choose from "
            f"{SNAPSHOT_LAYOUTS})"
        )
    config, strings, numeric, lsh = _collect_members(catalog)
    if layout == "arena":
        _save_arena(path, config, strings, numeric, lsh)
    else:
        _save_npz(path, config, strings, numeric, lsh)


def _save_npz(path, config, strings, numeric, lsh) -> None:
    lsh_members = {}
    if lsh is not None:
        lsh_ids, lsh_slots, lsh_filled, bands, rows, bits = lsh
        lsh_members = {
            "lsh_config": np.asarray([bands, rows, bits], dtype=np.int64),
            "lsh_slots": lsh_slots,
            "lsh_filled": lsh_filled,
            "lsh_ids": np.asarray(lsh_ids, dtype=str),
        }
    members = {
        "version": np.asarray([SNAPSHOT_VERSION], dtype=np.int64),
        "catalog_config": np.asarray(
            [
                config["sketch_size"],
                config["bits"],
                config["seed"],
                config["vectorized"],
            ],
            dtype=np.int64,
        ),
        "catalog_aggregate": np.asarray([config["aggregate"]]),
        "ids": np.asarray(strings["ids"], dtype=str),
        "names": np.asarray(strings["names"], dtype=str),
        "aggregates": np.asarray(strings["aggregates"], dtype=str),
        "postings_docs": np.asarray(strings["postings_docs"], dtype=str),
        "index_version": np.asarray([config["index_version"]], dtype=np.int64),
        "delta_ids": np.asarray(strings["delta_ids"], dtype=str),
        "tombstones": np.asarray(strings["tombstones"], dtype=str),
        **numeric,
        **lsh_members,
    }
    members["payload_crc32"] = np.asarray(
        [_npz_members_crc32(members)], dtype=np.int64
    )
    # A file handle (not a path) keeps np.savez from appending ".npz"
    # behind the caller's back — the snapshot lands exactly where asked,
    # whatever the extension (load sniffs the zip magic anyway). The
    # handle is the atomic-write temp file; os.replace publishes it.
    atomic_write(path, lambda handle: np.savez(handle, **members))


def _npz_members_crc32(members: dict) -> int:
    """CRC32 over every npz member's name + raw bytes, sorted by name.

    ``payload_crc32`` itself is excluded, so the same function computes
    the checksum at save time and recomputes it at verify time from the
    loaded members — .npy round-trips preserve dtype and value bytes
    exactly.
    """
    crc = 0
    for name in sorted(members):
        if name == "payload_crc32":
            continue
        array = np.ascontiguousarray(members[name])
        crc = zlib.crc32(name.encode("utf-8"), crc)
        crc = zlib.crc32(array.tobytes(), crc)
    return crc


def _save_arena(path, config, strings, numeric, lsh) -> None:
    meta = {
        "format": "correlation-sketches-arena",
        "version": ARENA_VERSION,
        "catalog_config": [
            config["sketch_size"],
            config["bits"],
            config["seed"],
            config["vectorized"],
        ],
        "catalog_aggregate": config["aggregate"],
        "index_version": config["index_version"],
        **strings,
        "lsh": None,
    }
    arrays = dict(numeric)
    if lsh is not None:
        lsh_ids, lsh_slots, lsh_filled, bands, rows, bits = lsh
        meta["lsh"] = {
            "bands": bands, "rows": rows, "bits": bits, "ids": list(lsh_ids)
        }
        arrays["lsh_slots"] = lsh_slots
        arrays["lsh_filled"] = lsh_filled
    write_arena(path, meta, arrays)


class _EntrySource:
    """Shared backing store behind deferred snapshot entries.

    One instance per loaded snapshot holds the concatenated arrays (heap
    arrays for npz, read-only mapped views for arenas) plus the
    per-sketch scalar columns; each deferred
    :class:`~repro.index.catalog._LazySketch` keeps only ``(source,
    position)`` and asks for its slice on first touch. This is what
    makes snapshot loads O(metadata): no per-entry objects are built at
    load time at all.
    """

    __slots__ = (
        "entry_indptr", "key_hashes", "ranks", "values",
        "names", "has_name", "aggregates", "capacities",
        "rows_seen", "overflowed", "value_min", "value_max",
    )

    def __init__(self, **members) -> None:
        for name in self.__slots__:
            setattr(self, name, members[name])

    def columns_of(self, position: int) -> SketchColumns:
        start = int(self.entry_indptr[position])
        end = int(self.entry_indptr[position + 1])
        vmin = float(self.value_min[position])
        vmax = float(self.value_max[position])
        return SketchColumns(
            key_hashes=self.key_hashes[start:end],
            ranks=self.ranks[start:end],
            values=self.values[start:end],
            value_range=_value_range_of(vmin, vmax),
            saw_all_keys=not bool(self.overflowed[position]),
        )

    def meta_of(self, position: int) -> SketchMeta:
        return SketchMeta(
            n=int(self.capacities[position]),
            aggregate=str(self.aggregates[position]),
            name=(
                str(self.names[position])
                if bool(self.has_name[position])
                else None
            ),
            rows_seen=int(self.rows_seen[position]),
            overflowed=bool(self.overflowed[position]),
            value_min=float(self.value_min[position]),
            value_max=float(self.value_max[position]),
        )


def _rehydrate(
    catalog: SketchCatalog,
    ids: list[str],
    source: _EntrySource,
    postings: ColumnarPostings,
    *,
    index_version: int,
    delta_ids: list[str],
    tombstones: list[str],
    lsh_pending: tuple | None,
) -> SketchCatalog:
    """Install the loaded members into ``catalog`` (both layouts)."""
    catalog._sketches = _DeferredEntryDict(ids, source, catalog.hasher)
    catalog._index_stale = True
    catalog._frozen_postings = postings
    catalog.index_version = index_version
    catalog._tombstones = set(tombstones)
    if delta_ids:
        # The delta inverted index is derived state: rebuild it from
        # the stored key-hash slices of the delta sketches alone —
        # O(delta size), never O(catalog).
        id_position = {sid: i for i, sid in enumerate(ids)}
        indptr = source.entry_indptr
        for sid in delta_ids:
            i = id_position[sid]
            start, end = int(indptr[i]), int(indptr[i + 1])
            catalog._delta_index.add(
                sid, source.key_hashes[start:end].tolist()
            )
    catalog._lsh_pending = lsh_pending
    return catalog


def verify_snapshot(path: str | Path) -> bool | None:
    """Checksum a snapshot file against its recorded CRC32.

    Returns ``True`` (checksum matches), ``False`` (payload corrupt),
    or ``None`` for files written before checksums existed — those load
    unchecked by contract. Reads every payload byte, so this is the
    explicit verification step behind ``catalog verify`` /
    ``shard verify``, never part of load (arena loads stay O(metadata)).

    Raises:
        ValueError: when the file is too mangled to parse at all (bad
            header, truncated payload, unreadable zip) — structural
            corruption, as opposed to the bit-rot ``False`` reports.
    """
    path = Path(path)
    if has_arena_magic(path):
        return ArenaReader(path).verify_payload()
    if not _has_zip_magic(path):
        if path.suffix in (".npz", ".arena"):
            raise ValueError(
                f"unreadable snapshot {path}: no recognizable snapshot magic"
            )
        return None  # JSON catalogs carry no checksum
    try:
        with np.load(path, allow_pickle=False) as payload:
            members = {name: payload[name] for name in payload.files}
    except Exception as exc:
        raise ValueError(f"unreadable snapshot {path}: {exc}") from exc
    recorded = members.get("payload_crc32")
    if recorded is None:
        return None
    return _npz_members_crc32(members) == int(recorded[0])


def load_snapshot(path: str | Path) -> SketchCatalog:
    """Load a binary snapshot (either layout) into a lazily rehydrated
    catalog.

    npz snapshots copy their arrays to the heap; arena snapshots come
    back memory-mapped (``catalog.storage == "mmap"``) with every array
    a read-only view into the shared mapping.

    Raises:
        ValueError: for snapshots written by an unknown format version.
    """
    _fault("snapshot_read", path=str(path))
    if has_arena_magic(path):
        return _load_arena(path)
    return _load_npz(path)


def _load_npz(path: str | Path) -> SketchCatalog:
    with np.load(path, allow_pickle=False) as payload:
        version = int(payload["version"][0])
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported catalog snapshot version {version} "
                f"(this build reads versions {_READABLE_VERSIONS})"
            )
        sketch_size, bits, seed, vectorized = (
            int(v) for v in payload["catalog_config"]
        )
        catalog = SketchCatalog(
            sketch_size=sketch_size,
            aggregate=str(payload["catalog_aggregate"][0]),
            hasher=KeyHasher(bits=bits, seed=seed),
            vectorized=bool(vectorized),
        )
        ids = [str(sid) for sid in payload["ids"]]
        source = _EntrySource(
            entry_indptr=payload["entry_indptr"],
            key_hashes=payload["key_hashes"],
            ranks=payload["ranks"],
            values=payload["values"],
            names=payload["names"].tolist(),
            has_name=payload["has_name"],
            aggregates=payload["aggregates"].tolist(),
            capacities=payload["capacities"],
            rows_seen=payload["rows_seen"],
            overflowed=payload["overflowed"],
            value_min=payload["value_min"],
            value_max=payload["value_max"],
        )
        postings = ColumnarPostings(
            payload["postings_vocab"],
            payload["postings_indptr"],
            payload["postings_doc_ids"],
            payload["postings_docs"].tolist(),
            payload["postings_doc_lengths"],
        )
        if version >= 3:
            index_version = int(payload["index_version"][0])
            delta_ids = [str(sid) for sid in payload["delta_ids"]]
            tombstones = [str(sid) for sid in payload["tombstones"]]
        else:
            index_version, delta_ids, tombstones = 0, [], []
        lsh_pending = None
        if "lsh_slots" in payload:
            lsh_bands, lsh_rows, lsh_bits = (
                int(v) for v in payload["lsh_config"]
            )
            # v2 snapshots persisted the LSH only when it covered the
            # whole catalog; v3 records the covered ids explicitly (the
            # frozen layer, between compactions). Bucket expansion is
            # deferred until an LSH probe happens.
            if "lsh_ids" in payload:
                lsh_ids = [str(sid) for sid in payload["lsh_ids"]]
            else:
                lsh_ids = list(ids)
            lsh_pending = (
                lsh_ids,
                payload["lsh_slots"],
                payload["lsh_filled"],
                lsh_bands,
                lsh_rows,
                lsh_bits,
            )
    return _rehydrate(
        catalog,
        ids,
        source,
        postings,
        index_version=index_version,
        delta_ids=delta_ids,
        tombstones=tombstones,
        lsh_pending=lsh_pending,
    )


def _load_arena(path: str | Path) -> SketchCatalog:
    arena = ArenaReader(path)
    meta = arena.meta
    version = meta.get("version")
    if version not in _ARENA_READABLE_VERSIONS:
        raise ValueError(
            f"unsupported catalog arena version {version!r} "
            f"(this build reads versions {_ARENA_READABLE_VERSIONS})"
        )
    sketch_size, bits, seed, vectorized = meta["catalog_config"]
    catalog = SketchCatalog(
        sketch_size=int(sketch_size),
        aggregate=str(meta["catalog_aggregate"]),
        hasher=KeyHasher(bits=int(bits), seed=int(seed)),
        vectorized=bool(vectorized),
    )
    ids = list(meta["ids"])
    source = _EntrySource(
        entry_indptr=arena.array("entry_indptr"),
        key_hashes=arena.array("key_hashes"),
        ranks=arena.array("ranks"),
        values=arena.array("values"),
        names=meta["names"],
        has_name=arena.array("has_name"),
        aggregates=meta["aggregates"],
        capacities=arena.array("capacities"),
        rows_seen=arena.array("rows_seen"),
        overflowed=arena.array("overflowed"),
        value_min=arena.array("value_min"),
        value_max=arena.array("value_max"),
    )
    postings = ColumnarPostings(
        arena.array("postings_vocab"),
        arena.array("postings_indptr"),
        arena.array("postings_doc_ids"),
        list(meta["postings_docs"]),
        arena.array("postings_doc_lengths"),
    )
    lsh_pending = None
    lsh_meta = meta.get("lsh")
    if lsh_meta:
        lsh_pending = (
            list(lsh_meta["ids"]),
            arena.array("lsh_slots"),
            arena.array("lsh_filled"),
            int(lsh_meta["bands"]),
            int(lsh_meta["rows"]),
            int(lsh_meta["bits"]),
        )
    _rehydrate(
        catalog,
        ids,
        source,
        postings,
        index_version=int(meta["index_version"]),
        delta_ids=list(meta["delta_ids"]),
        tombstones=list(meta["tombstones"]),
        lsh_pending=lsh_pending,
    )
    # The reader owns the single read-only mapping every view above
    # slices into; pinning it on the catalog keeps the mapping (and the
    # file's inode, even across an os.replace or unlink) alive for the
    # catalog's lifetime.
    catalog._arena = arena
    return catalog
