"""Binary catalog snapshots: the offline-build / online-serve format.

The JSON catalog format (:meth:`repro.index.catalog.SketchCatalog.save`)
is the portable reference: readable, diffable, and slow — every sketch
round-trips through per-entry Python lists and the inverted index is
rebuilt entry by entry on every cold start. This module is the serving
format: one versioned ``.npz`` file (uncompressed zip of ``.npy``
members) holding

* the **concatenated columnar sketch arrays** — all sketches' sorted
  key hashes, unit-hash ranks and aggregated values laid end to end with
  one CSR-style ``entry_indptr`` delimiting each sketch's slice, plus
  per-sketch scalar columns (capacity, rows seen, overflow flag, value
  min/max, names);
* the **frozen CSR postings** of the inverted index
  (:class:`repro.index.inverted.ColumnarPostings` — vocabulary,
  ``indptr``, doc ids, doc table), persisted verbatim;
* since version 2, the **LSH signature arrays** — the catalog's
  MinHash-LSH index (:class:`repro.index.lsh.LshIndex`), when one was
  built before saving: per-sketch slot/filled matrices plus the
  ``(bands, rows, bits)`` config. Catalogs that never probed the LSH
  backend write no LSH members and rebuild lazily after load, exactly
  like the JSON reference format always does;
* since version 3, the **delta-layer state** — the catalog's
  ``index_version`` compaction counter, the ids still in the mutable
  delta layer, the tombstone set, and (``lsh_ids``) the exact id list
  the persisted LSH signatures cover (which, between compactions, is
  the frozen layer rather than the whole catalog). The frozen CSR is
  persisted verbatim, tombstoned postings included — a snapshot save is
  never an implicit compaction; the delta inverted index is rebuilt
  from the stored key-hash slices on load (O(delta), not O(catalog)).

Loading therefore does no per-entry work at all: each array is one
contiguous read, every sketch rehydrates as a zero-copy slice view
(:class:`repro.index.catalog._LazySketch` wrapping a
:class:`~repro.core.sketch.SketchColumns`), and the postings snapshot is
reconstructed directly from its stored arrays — the catalog's
``frozen_postings`` cache starts warm, so the first query probes the
index without any freeze or rebuild. Full ``CorrelationSketch`` objects
(bottom-k heap + aggregators) materialize lazily per sketch, only if the
scalar reference path asks for them.

Format contract:

* ``version`` (currently 3) gates compatibility — loading a snapshot
  with an unknown version raises ``ValueError`` rather than guessing.
  Version-1 (pre-LSH) and version-2 (pre-delta) snapshots still load:
  every older member kept its name and meaning, each newer version only
  *adds* members (older snapshots load with an empty delta, no
  tombstones and ``index_version`` 0);
* array-level equality with the JSON round trip: a catalog saved to both
  formats loads back with identical per-sketch entries, columnar views
  and postings (the snapshot test suite pins this);
* mutation after load behaves exactly like a JSON-loaded catalog: the
  first ``add_sketch`` rebuilds the live inverted index from the stored
  arrays and invalidates the frozen postings, which re-freeze lazily.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.sketch import SketchColumns, _value_range_of
from repro.hashing import KeyHasher
from repro.index.catalog import (
    SketchCatalog,
    SketchMeta,
    _has_zip_magic,
    _LazySketch,
)
from repro.index.inverted import ColumnarPostings
from repro.index.lsh import LshIndex

#: Bump on any layout change; load_snapshot refuses unknown versions.
#: v1: sketch arrays + frozen postings. v2: adds optional LSH members.
#: v3: adds delta-layer state (index_version, delta ids, tombstones,
#: lsh_ids).
SNAPSHOT_VERSION = 3

#: Versions this build can read (each is a strict superset of the last).
_READABLE_VERSIONS = (1, 2, 3)


def detect_format(path: str | Path) -> str:
    """``"binary"`` for npz snapshots, ``"json"`` otherwise.

    Decided the same way :meth:`SketchCatalog.load` dispatches: the
    ``.npz`` extension or the zip magic bytes.
    """
    path = Path(path)
    if path.suffix == ".npz" or _has_zip_magic(path):
        return "binary"
    return "json"


def save_snapshot(catalog: SketchCatalog, path: str | Path) -> None:
    """Write ``catalog`` as a versioned binary snapshot.

    A catalog that has never frozen (fresh or JSON-loaded) is compacted
    here — freezing is an offline (save-time) cost in this format, never
    an online one. A catalog that *has* a frozen layer is persisted
    exactly as layered: the frozen CSR verbatim (tombstoned postings
    included), plus the delta ids and tombstone set — saving never
    forces a fold. Works on any catalog, including one that was itself
    snapshot-loaded and never materialized (lazy entries are persisted
    from their array views directly).
    """
    if catalog._frozen_postings is None:
        catalog.compact()
    ids = list(catalog)
    metas = [catalog.sketch_meta(sid) for sid in ids]
    columns = [catalog.sketch_columns(sid) for sid in ids]
    postings = catalog._frozen_postings

    lengths = np.asarray([c.size for c in columns], dtype=np.int64)
    entry_indptr = np.zeros(len(ids) + 1, dtype=np.int64)
    np.cumsum(lengths, out=entry_indptr[1:])

    def _concat(arrays, dtype):
        arrays = [np.asarray(a) for a in arrays if np.asarray(a).size]
        if not arrays:
            return np.empty(0, dtype=dtype)
        return np.concatenate(arrays).astype(dtype, copy=False)

    bits, seed = catalog.hasher.scheme_id
    # The LSH index rides along whenever the catalog built one. Between
    # compactions it covers the frozen layer rather than the whole
    # catalog (and may still physically contain tombstoned rows), so the
    # exact id list it covers is persisted alongside the signatures.
    lsh = catalog._lsh_index
    lsh_members = {}
    if lsh is not None:
        lsh_slots, lsh_filled = lsh.export_arrays()
        lsh_members = {
            "lsh_config": np.asarray(
                [lsh.bands, lsh.rows, lsh.bits], dtype=np.int64
            ),
            "lsh_slots": lsh_slots,
            "lsh_filled": lsh_filled,
            "lsh_ids": np.asarray(list(lsh.ids), dtype=str),
        }
    delta_ids = sorted(sid for sid in ids if sid in catalog._delta_index)
    # A file handle (not a path) keeps np.savez from appending ".npz"
    # behind the caller's back — the snapshot lands exactly where asked,
    # whatever the extension (load sniffs the zip magic anyway).
    with open(path, "wb") as handle:
        np.savez(
            handle,
            version=np.asarray([SNAPSHOT_VERSION], dtype=np.int64),
            catalog_config=np.asarray(
                [catalog.sketch_size, bits, seed, int(catalog.vectorized)],
                dtype=np.int64,
            ),
            catalog_aggregate=np.asarray([catalog.aggregate]),
            ids=np.asarray(ids, dtype=str),
            names=np.asarray([m.name or "" for m in metas], dtype=str),
            has_name=np.asarray([m.name is not None for m in metas], dtype=bool),
            aggregates=np.asarray([m.aggregate for m in metas], dtype=str),
            capacities=np.asarray([m.n for m in metas], dtype=np.int64),
            rows_seen=np.asarray([m.rows_seen for m in metas], dtype=np.int64),
            overflowed=np.asarray([m.overflowed for m in metas], dtype=bool),
            value_min=np.asarray([m.value_min for m in metas], dtype=np.float64),
            value_max=np.asarray([m.value_max for m in metas], dtype=np.float64),
            entry_indptr=entry_indptr,
            key_hashes=_concat([c.key_hashes for c in columns], np.uint64),
            ranks=_concat([c.ranks for c in columns], np.float64),
            values=_concat([c.values for c in columns], np.float64),
            postings_vocab=postings.vocab,
            postings_indptr=postings.indptr,
            postings_doc_ids=postings.doc_ids,
            postings_docs=np.asarray(postings.docs, dtype=str),
            postings_doc_lengths=postings.doc_lengths,
            index_version=np.asarray([catalog.index_version], dtype=np.int64),
            delta_ids=np.asarray(delta_ids, dtype=str),
            tombstones=np.asarray(sorted(catalog._tombstones), dtype=str),
            **lsh_members,
        )


def load_snapshot(path: str | Path) -> SketchCatalog:
    """Load a binary snapshot into a lazily rehydrated catalog.

    Raises:
        ValueError: for snapshots written by an unknown format version.
    """
    with np.load(path, allow_pickle=False) as payload:
        version = int(payload["version"][0])
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported catalog snapshot version {version} "
                f"(this build reads versions {_READABLE_VERSIONS})"
            )
        sketch_size, bits, seed, vectorized = (
            int(v) for v in payload["catalog_config"]
        )
        catalog = SketchCatalog(
            sketch_size=sketch_size,
            aggregate=str(payload["catalog_aggregate"][0]),
            hasher=KeyHasher(bits=bits, seed=seed),
            vectorized=bool(vectorized),
        )

        ids = payload["ids"]
        names = payload["names"]
        has_name = payload["has_name"]
        aggregates = payload["aggregates"]
        capacities = payload["capacities"]
        rows_seen = payload["rows_seen"]
        overflowed = payload["overflowed"]
        value_min = payload["value_min"]
        value_max = payload["value_max"]
        entry_indptr = payload["entry_indptr"]
        key_hashes = payload["key_hashes"]
        ranks = payload["ranks"]
        values = payload["values"]

        for i in range(ids.shape[0]):
            start, end = int(entry_indptr[i]), int(entry_indptr[i + 1])
            vmin = float(value_min[i])
            vmax = float(value_max[i])
            meta = SketchMeta(
                n=int(capacities[i]),
                aggregate=str(aggregates[i]),
                name=str(names[i]) if bool(has_name[i]) else None,
                rows_seen=int(rows_seen[i]),
                overflowed=bool(overflowed[i]),
                value_min=vmin,
                value_max=vmax,
            )
            columns = SketchColumns(
                key_hashes=key_hashes[start:end],
                ranks=ranks[start:end],
                values=values[start:end],
                value_range=_value_range_of(vmin, vmax),
                saw_all_keys=not meta.overflowed,
            )
            catalog._sketches[str(ids[i])] = _LazySketch(
                columns, meta, catalog.hasher
            )

        catalog._index_stale = True
        catalog._frozen_postings = ColumnarPostings(
            payload["postings_vocab"],
            payload["postings_indptr"],
            payload["postings_doc_ids"],
            payload["postings_docs"].tolist(),
            payload["postings_doc_lengths"],
        )
        if version >= 3:
            catalog.index_version = int(payload["index_version"][0])
            catalog._tombstones = {str(sid) for sid in payload["tombstones"]}
            # The delta inverted index is derived state: rebuild it from
            # the stored key-hash slices of the delta sketches alone —
            # O(delta size), never O(catalog).
            id_pos = {str(ids[i]): i for i in range(ids.shape[0])}
            for sid in payload["delta_ids"]:
                sid = str(sid)
                i = id_pos[sid]
                start, end = int(entry_indptr[i]), int(entry_indptr[i + 1])
                catalog._delta_index.add(sid, key_hashes[start:end].tolist())
        if "lsh_slots" in payload:
            lsh_bands, lsh_rows, lsh_bits = (
                int(v) for v in payload["lsh_config"]
            )
            # v2 snapshots persisted the LSH only when it covered the
            # whole catalog; v3 records the covered ids explicitly (the
            # frozen layer, between compactions).
            if "lsh_ids" in payload:
                lsh_ids = [str(sid) for sid in payload["lsh_ids"]]
            else:
                lsh_ids = [str(sid) for sid in ids]
            catalog._lsh_index = LshIndex.from_arrays(
                lsh_ids,
                payload["lsh_slots"],
                payload["lsh_filled"],
                bands=lsh_bands,
                rows=lsh_rows,
                bits=lsh_bits,
            )
    return catalog
