"""One frozen options record for the whole query path.

Every layer that evaluates top-k join-correlation queries — the
monolithic :class:`~repro.index.engine.JoinCorrelationEngine`, the
scatter-gather :class:`~repro.serving.router.ShardRouter`, the forked
:class:`~repro.serving.workers.QueryWorkerPool`, the CLI's ``query`` and
``serve`` verbs, and the HTTP query service — historically spelled the
same ~10 tuning parameters by hand as positional/keyword arguments.
:class:`QueryOptions` is the single seam: one immutable, validated,
JSON-serializable dataclass that names every knob once, with the
layer-specific constructors (``from_options`` classmethods, the
:class:`~repro.serving.session.QuerySession` facade) consuming it.

The validation error messages are the authoritative ones — the engine
and router constructors delegate here, so an invalid ``rng_mode`` (for
example) produces the identical message at every entry point.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

from repro.ranking.scoring import RNG_MODES, SCORER_NAMES

#: Candidate-retrieval strategies the engine can plug in (Section 4
#: lists the family): ``"inverted"`` — exact ScanCount over the inverted
#: index (the paper's experimental setup); ``"lsh"`` — approximate
#: banded MinHash-LSH (:mod:`repro.index.lsh`), O(bands) probe cost
#: independent of posting lengths, recall < 1 on low-overlap candidates.
#: Re-ranking is shared, so the backends differ only in which candidates
#: enter it.
RETRIEVAL_BACKENDS = ("inverted", "lsh")

#: Shard-failure policies the router's ``query``/``query_batch`` accept.
ON_SHARD_ERROR_POLICIES = ("raise", "partial")


def validate_resilience(
    deadline_ms: float | None, on_shard_error: str
) -> None:
    """Shared validation for the two resilience knobs.

    One function so the router's per-call validation and
    :class:`QueryOptions` construction cannot drift apart.
    """
    if deadline_ms is not None and deadline_ms <= 0:
        raise ValueError(
            f"deadline_ms must be positive, got {deadline_ms}"
        )
    if on_shard_error not in ON_SHARD_ERROR_POLICIES:
        raise ValueError(
            f"unknown on_shard_error {on_shard_error!r}; expected one "
            f"of {ON_SHARD_ERROR_POLICIES}"
        )


@dataclass(frozen=True)
class QueryOptions:
    """Everything that parameterizes one top-k query, in one record.

    Attributes:
        k: result-list size.
        depth: candidates fetched by key overlap before re-ranking
            (the paper's experiments use 100).
        scorer: scoring function name (see
            :data:`repro.ranking.scoring.SCORER_NAMES`).
        min_overlap: minimum shared key hashes for a candidate to be
            considered joinable at all.
        vectorized: evaluate with the columnar executor (default); False
            selects the row-at-a-time reference path (monolithic engine
            only — the sharded router is columnar by construction).
        rng_mode: how ``rb_cib`` runs the PM1 bootstrap across the
            candidate page (see :data:`repro.ranking.scoring.RNG_MODES`).
        retrieval_backend: candidate-retrieval strategy (see
            :data:`RETRIEVAL_BACKENDS`).
        lsh_bands / lsh_rows: LSH banding overrides (``"lsh"`` backend);
            ``None`` keeps a warm snapshot index's shape.
        seed: seed for the stochastic scorers and the bootstrap. ``None``
            (default) gives **every query its own** fixed-seed generator
            — the engine's per-query default, which makes results
            independent of how queries are batched (the property the
            request coalescer relies on). A set seed creates one
            generator per ``submit`` call, consumed in query order
            (exactly the documented ``query_batch`` contract).
        deadline_ms: wall-clock budget for the shard fan-out (sharded
            backends only). ``None`` waits indefinitely.
        on_shard_error: ``"raise"`` (default) propagates the
            lowest-index shard failure; ``"partial"`` serves surviving
            shards and flags the result degraded.
    """

    k: int = 10
    depth: int = 100
    scorer: str = "rp_cih"
    min_overlap: int = 1
    vectorized: bool = True
    rng_mode: str = "batched"
    retrieval_backend: str = "inverted"
    lsh_bands: int | None = None
    lsh_rows: int | None = None
    seed: int | None = None
    deadline_ms: float | None = None
    on_shard_error: str = "raise"

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError(f"k must be positive, got {self.k}")
        if self.depth <= 0:
            raise ValueError(
                f"retrieval_depth must be positive, got {self.depth}"
            )
        if self.scorer not in SCORER_NAMES:
            raise ValueError(
                f"unknown scorer {self.scorer!r}; expected one of "
                f"{SCORER_NAMES}"
            )
        if self.rng_mode not in RNG_MODES:
            raise ValueError(
                f"unknown rng_mode {self.rng_mode!r}; expected one of "
                f"{RNG_MODES}"
            )
        if self.retrieval_backend not in RETRIEVAL_BACKENDS:
            raise ValueError(
                f"unknown retrieval_backend {self.retrieval_backend!r}; "
                f"expected one of {RETRIEVAL_BACKENDS}"
            )
        for name, value in (
            ("lsh_bands", self.lsh_bands),
            ("lsh_rows", self.lsh_rows),
        ):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        validate_resilience(self.deadline_ms, self.on_shard_error)

    def merged(self, **overrides) -> "QueryOptions":
        """A copy with the given fields replaced (and re-validated).

        ``None`` overrides are dropped for the fields where ``None`` is
        not a meaningful value (``k``/``scorer``/...), so callers can
        forward optional per-request overrides without case analysis.
        """
        overrides = {
            name: value
            for name, value in overrides.items()
            if value is not None
            or name in ("lsh_bands", "lsh_rows", "seed", "deadline_ms")
        }
        if not overrides:
            return self
        return replace(self, **overrides)

    def to_dict(self) -> dict:
        """Plain-JSON representation (inverse of :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryOptions":
        """Rebuild (and re-validate) options from :meth:`to_dict` output.

        Unknown keys are rejected — an options payload with a typo'd
        field must not silently fall back to a default.
        """
        known = set(cls.__dataclass_fields__)
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown QueryOptions field(s): {sorted(unknown)}"
            )
        return cls(**payload)
