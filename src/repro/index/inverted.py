"""Inverted index over sketch key hashes (the Lucene stand-in).

Section 4 notes that because a sketch stores discrete key hashes ``h(k)``,
off-the-shelf inverted indexes support the candidate-retrieval step of
query evaluation: find the corpus sketches sharing the most key hashes
with the query sketch. This module implements exactly that primitive:

* posting lists: ``key_hash → [sketch ids containing it]``;
* :meth:`InvertedIndex.top_overlap` — scan the query's posting lists,
  accumulate per-candidate overlap counts, return the top-``k`` by count
  (a textbook ScanCount set-overlap search; JOSIE/ppjoin+ are optimized
  variants of the same computation).

Two physical layouts implement the same logical index:

* :class:`InvertedIndex` — the mutable dict-of-lists build used while a
  catalog is being populated, probed one posting list at a time (the
  scalar reference path);
* :class:`ColumnarPostings` — a frozen CSR-style snapshot
  (:meth:`InvertedIndex.freeze`): the sorted key-hash vocabulary plus one
  contiguous ``int32`` doc-id array, probed with ``np.searchsorted`` +
  ``np.bincount`` and top-``k``-selected with ``np.argpartition``. Its
  :meth:`~ColumnarPostings.top_overlap` returns exactly the scalar
  result, including the ``(−overlap, sketch_id)`` tie-break; the
  multi-query :meth:`~ColumnarPostings.top_overlap_batch` answers a
  whole query batch from one stacked probe over the concatenated query
  hashes (the retrieval phase of ``JoinCorrelationEngine.query_batch``).
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from itertools import islice
from typing import Iterable

import numpy as np

#: Posting entries gathered per chunk of the stacked batch probe — keeps
#: the per-entry int64 temporaries around 1 MB (L2-resident) however
#: large the query batch grows.
_PROBE_CHUNK_ENTRIES = 131_072

#: Cells of the dense (queries x docs) ScanCount matrix a single
#: top_overlap_batch selection round is allowed to hold (~32 MB of
#: int64) — query batches are processed in row chunks under this bound,
#: so batch memory never scales with batch_size x corpus_size.
_PROBE_MATRIX_CELLS = 4_194_304


class InvertedIndex:
    """Posting-list index from key hashes to sketch identifiers."""

    def __init__(self) -> None:
        self._postings: dict[int, list[str]] = defaultdict(list)
        self._doc_keys: dict[str, int] = {}

    def __len__(self) -> int:
        """Number of indexed sketches."""
        return len(self._doc_keys)

    def __contains__(self, sketch_id: str) -> bool:
        return sketch_id in self._doc_keys

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct key hashes with postings."""
        return len(self._postings)

    def add(self, sketch_id: str, key_hashes: Iterable[int]) -> None:
        """Index a sketch's key hashes under ``sketch_id``.

        Raises:
            ValueError: if ``sketch_id`` is already indexed (re-indexing
                would duplicate postings; :meth:`remove` first for
                catalog churn).
        """
        if sketch_id in self._doc_keys:
            raise ValueError(f"sketch id {sketch_id!r} is already indexed")
        count = 0
        for kh in key_hashes:
            self._postings[kh].append(sketch_id)
            count += 1
        self._doc_keys[sketch_id] = count

    def remove(self, sketch_id: str, key_hashes: Iterable[int]) -> None:
        """Drop a sketch's postings (the catalog deletion path).

        Args:
            sketch_id: the indexed sketch to remove.
            key_hashes: exactly the key hashes the sketch was added
                under — the catalog owns the sketch, so it always has
                them; passing them in keeps the index from storing a
                per-document hash copy.

        Posting lists that become empty are deleted so
        :attr:`vocabulary_size` reflects live postings only; after
        removal the same id can be re-indexed with :meth:`add`.

        Raises:
            KeyError: if ``sketch_id`` is not indexed.
        """
        if sketch_id not in self._doc_keys:
            raise KeyError(f"sketch id {sketch_id!r} is not indexed")
        for kh in key_hashes:
            postings = self._postings.get(kh)
            if postings is None:
                continue
            try:
                postings.remove(sketch_id)
            except ValueError:
                continue
            if not postings:
                del self._postings[kh]
        del self._doc_keys[sketch_id]

    def overlap_counts(
        self, key_hashes: Iterable[int], *, exclude: str | None = None
    ) -> dict[str, int]:
        """Count shared key hashes per indexed sketch (ScanCount)."""
        counts: dict[str, int] = defaultdict(int)
        for kh in key_hashes:
            postings = self._postings.get(kh)
            if not postings:
                continue
            for sid in postings:
                counts[sid] += 1
        if exclude is not None:
            counts.pop(exclude, None)
        return dict(counts)

    def top_overlap(
        self,
        key_hashes: Iterable[int],
        k: int,
        *,
        exclude: str | None = None,
        min_overlap: int = 1,
    ) -> list[tuple[str, int]]:
        """Top-``k`` indexed sketches by key-hash overlap with the query.

        Args:
            key_hashes: the query sketch's key hashes.
            k: number of candidates to return.
            exclude: optional sketch id to omit (typically the query
                itself when it is part of the corpus).
            min_overlap: drop candidates sharing fewer hashes than this.

        Returns:
            ``(sketch_id, overlap)`` pairs, descending by overlap with id
            as the deterministic tie-break.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        counts = self.overlap_counts(key_hashes, exclude=exclude)
        candidates = [
            (sid, c) for sid, c in counts.items() if c >= min_overlap
        ]
        candidates.sort(key=lambda t: (-t[1], t[0]))
        return candidates[:k]

    def freeze(self) -> "ColumnarPostings":
        """Snapshot the current postings into a :class:`ColumnarPostings`.

        The snapshot does not track later :meth:`add` calls — callers that
        mutate the index must re-freeze (the catalog does this
        automatically; see :meth:`repro.index.catalog.SketchCatalog.frozen_postings`).
        """
        return ColumnarPostings._from_index(self)


class ColumnarPostings:
    """Frozen CSR layout of an :class:`InvertedIndex`.

    Three parallel arrays hold the whole index:

    * ``vocab`` — the distinct key hashes, sorted ascending (``uint64``);
    * ``indptr`` — ``indptr[i]:indptr[i+1]`` delimits the postings of
      ``vocab[i]`` (``int64``, length ``len(vocab) + 1``);
    * ``doc_ids`` — the concatenated posting lists as integer document
      ids (``int32``).

    Document ids are positions into ``docs``, which is sorted
    lexicographically so the integer order *is* the sketch-id order —
    the scalar path's ``(−overlap, sketch_id)`` tie-break becomes a
    plain integer comparison.

    Build once with :meth:`InvertedIndex.freeze`; instances are
    immutable.
    """

    __slots__ = (
        "vocab",
        "indptr",
        "doc_ids",
        "docs",
        "_doc_index_cache",
        "_doc_lengths",
    )

    def __init__(
        self,
        vocab: np.ndarray,
        indptr: np.ndarray,
        doc_ids: np.ndarray,
        docs: list[str],
        doc_lengths: np.ndarray,
        doc_index: dict[str, int] | None = None,
    ) -> None:
        self.vocab = vocab
        self.indptr = indptr
        self.doc_ids = doc_ids
        self.docs = docs
        self._doc_index_cache = doc_index
        self._doc_lengths = doc_lengths

    @property
    def _doc_index(self) -> dict[str, int]:
        """sketch id -> document position, built on first use.

        Only the reverse lookups need it (exclude-id probes, tombstone
        bans); plain top-k probes never do, so snapshot loads stay
        O(metadata) instead of paying an O(docs) dict build up front.
        """
        if self._doc_index_cache is None:
            self._doc_index_cache = {
                sid: i for i, sid in enumerate(self.docs)
            }
        return self._doc_index_cache

    @classmethod
    def _from_index(cls, index: InvertedIndex) -> "ColumnarPostings":
        docs = sorted(index._doc_keys)
        doc_index = {sid: i for i, sid in enumerate(docs)}
        doc_lengths = np.asarray(
            [index._doc_keys[sid] for sid in docs], dtype=np.int64
        )
        items = sorted(index._postings.items())
        vocab = np.asarray([kh for kh, _ in items], dtype=np.uint64)
        lengths = np.asarray([len(p) for _, p in items], dtype=np.int64)
        indptr = np.zeros(len(items) + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        doc_ids = np.empty(int(indptr[-1]), dtype=np.int32)
        pos = 0
        # Postings are stored in canonical order: ascending doc id within
        # each vocabulary slice. Probes are order-insensitive (bincount),
        # but the canonical layout makes a freeze reproducible from *any*
        # insertion history — a compaction fold of frozen + delta layers
        # (repro.index.catalog.SketchCatalog.compact) is bit-identical to
        # freezing a from-scratch rebuild.
        for _, postings in items:
            for did in sorted(doc_index[sid] for sid in postings):
                doc_ids[pos] = did
                pos += 1
        return cls(vocab, indptr, doc_ids, docs, doc_lengths, doc_index)

    def __len__(self) -> int:
        """Number of indexed sketches."""
        return len(self.docs)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct key hashes with postings."""
        return int(self.vocab.shape[0])

    @property
    def doc_lengths(self) -> np.ndarray:
        """Per-document key-hash counts, aligned with :attr:`docs`.

        Part of the persisted snapshot layout (:mod:`repro.index.snapshot`).
        """
        return self._doc_lengths

    @property
    def nbytes(self) -> int:
        """Total bytes of the numeric CSR arrays (vocab, indptr, doc
        ids, doc lengths) — the ``docs`` string table is excluded."""
        return (
            self.vocab.nbytes
            + self.indptr.nbytes
            + self.doc_ids.nbytes
            + self._doc_lengths.nbytes
        )

    @property
    def storage(self) -> str:
        """``"mmap"`` when the CSR arrays are views into a memory-mapped
        arena snapshot (:mod:`repro.index.arena`), else ``"heap"``."""
        from repro.index.arena import backing_storage

        return backing_storage(
            self.vocab, self.indptr, self.doc_ids, self._doc_lengths
        )

    def overlap_counts_array(self, key_hashes) -> np.ndarray:
        """Per-document shared-key-hash counts for one query (ScanCount).

        Args:
            key_hashes: the query's key hashes — any iterable of ints or
                an integer array. Duplicates count once per occurrence,
                exactly like the scalar ScanCount (sketch queries pass
                hash sets, so multiplicity is 1 in practice).

        Returns:
            ``int64`` array of length ``len(self)``; element ``d`` is the
            number of query hashes indexed under document ``d``.
        """
        if isinstance(key_hashes, np.ndarray):
            q_arr = key_hashes.astype(np.uint64, copy=False)
        else:
            q_arr = np.fromiter(key_hashes, dtype=np.uint64)
        n_docs = len(self.docs)
        if q_arr.size == 0 or self.vocab.size == 0:
            return np.zeros(n_docs, dtype=np.int64)
        q, mult = np.unique(q_arr, return_counts=True)
        pos = np.searchsorted(self.vocab, q)
        in_range = pos < self.vocab.size
        pos = pos[in_range]
        matched = self.vocab[pos] == q[in_range]
        pos = pos[matched]
        mult = mult[in_range][matched]
        starts = self.indptr[pos]
        ends = self.indptr[pos + 1]
        lens = ends - starts
        total = int(lens.sum())
        if total == 0:
            return np.zeros(n_docs, dtype=np.int64)
        # Gather all matched posting slices with one fancy index: for each
        # slice, generate its absolute positions via the repeat/cumsum
        # trick (no Python-level loop over posting lists).
        shifts = np.repeat(starts - np.concatenate(([0], np.cumsum(lens)[:-1])), lens)
        flat = np.arange(total, dtype=np.int64) + shifts
        weights = np.repeat(mult, lens)
        # Float weights are exact for any realistic count (< 2**53).
        return np.bincount(
            self.doc_ids[flat], weights=weights, minlength=n_docs
        ).astype(np.int64)

    def _select_top(
        self,
        counts: np.ndarray,
        k: int,
        exclude: str | None,
        min_overlap: int,
        banned: np.ndarray | None = None,
    ) -> list[tuple[str, int]]:
        """Top-``k`` selection over one per-document ScanCount row.

        The shared tail of :meth:`top_overlap` and
        :meth:`top_overlap_batch`: zero the excluded doc and any banned
        docs (tombstoned entries of a delta-layered catalog), threshold,
        then ``np.argpartition`` on a composite ``(overlap, doc)`` key
        that reproduces the scalar ``(−overlap, sketch_id)`` tie-break.
        Mutates ``counts`` (callers pass a fresh probe result).
        """
        if exclude is not None:
            excl = self._doc_index.get(exclude)
            if excl is not None:
                counts[excl] = 0
        if banned is not None and banned.size:
            counts[banned] = 0
        threshold = max(1, min_overlap)
        cand = np.nonzero(counts >= threshold)[0]
        if cand.size == 0:
            return []
        n_docs = len(self.docs)
        if cand.size > k:
            # Composite selection key: maximize overlap, then minimize the
            # (lexicographically ordered) doc id. Overlaps are bounded by
            # the query size and doc ids by the corpus size, so the
            # product stays well inside int64.
            composite = counts[cand] * np.int64(n_docs) + (
                np.int64(n_docs - 1) - cand
            )
            sel = np.argpartition(composite, cand.size - k)[cand.size - k:]
            sel = sel[np.argsort(composite[sel])[::-1]]
            cand = cand[sel]
        else:
            order = np.lexsort((cand, -counts[cand]))
            cand = cand[order]
        return [(self.docs[int(d)], int(counts[d])) for d in cand]

    def top_overlap(
        self,
        key_hashes,
        k: int,
        *,
        exclude: str | None = None,
        min_overlap: int = 1,
        banned: np.ndarray | None = None,
    ) -> list[tuple[str, int]]:
        """Top-``k`` sketches by key-hash overlap; scalar-parity output.

        Same contract and same result as
        :meth:`InvertedIndex.top_overlap` — descending overlap, sketch id
        as tie-break — computed columnarly: one ScanCount via
        :meth:`overlap_counts_array`, then an ``np.argpartition``
        selection on a composite ``(overlap, doc)`` key. ``banned``
        optionally drops a set of doc indices from consideration (the
        catalog's tombstone filter).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        return self._select_top(
            self.overlap_counts_array(key_hashes), k, exclude, min_overlap,
            banned,
        )

    def overlap_counts_batch(
        self, concat_hashes: np.ndarray, q_indptr: np.ndarray
    ) -> np.ndarray:
        """Stacked ScanCount: per-document overlaps for many queries at once.

        Args:
            concat_hashes: the queries' key hashes concatenated CSR-style
                (``uint64``-compatible). Each query's hashes must be
                duplicate-free — sketch hash *sets* always are; this is
                the one contract :meth:`overlap_counts_array`'s
                ``np.unique`` multiplicity handling relaxes.
            q_indptr: ``int64`` of length ``n_queries + 1`` delimiting
                each query's slice.

        Returns:
            ``int64`` matrix of shape ``(n_queries, len(self))``; row
            ``q`` is bit-identical to
            ``overlap_counts_array(concat_hashes[q_indptr[q]:q_indptr[q+1]])``.
            The matrix is dense — callers with large batches against
            large corpora should go through :meth:`top_overlap_batch`,
            which bounds the live matrix by processing query row chunks.

        The whole batch costs one ``np.searchsorted`` over the
        concatenated hashes, one gather of every matched posting slice
        and a single ``np.bincount`` keyed on the composite
        ``query · n_docs + doc`` bin — this is the "single stacked CSR
        probe" behind :meth:`JoinCorrelationEngine.query_batch
        <repro.index.engine.JoinCorrelationEngine.query_batch>`.
        """
        q_indptr = np.asarray(q_indptr, dtype=np.int64)
        n_queries = q_indptr.shape[0] - 1
        n_docs = len(self.docs)
        q_arr = np.asarray(concat_hashes).astype(np.uint64, copy=False)
        out = np.zeros((n_queries, n_docs), dtype=np.int64)
        if q_arr.size == 0 or self.vocab.size == 0:
            return out
        rows = np.repeat(
            np.arange(n_queries, dtype=np.int64), np.diff(q_indptr)
        )
        pos = np.searchsorted(self.vocab, q_arr)
        pos_clipped = np.minimum(pos, self.vocab.size - 1)
        matched = (pos < self.vocab.size) & (self.vocab[pos_clipped] == q_arr)
        pos = pos_clipped[matched]
        rows = rows[matched]
        starts = self.indptr[pos]
        lens = self.indptr[pos + 1] - starts
        total = int(lens.sum())
        if total == 0:
            return out
        # Same repeat/cumsum slice gather as overlap_counts_array, with
        # the owning query riding along so bincount fills the matrix.
        # Processed in query-aligned chunks of bounded posting entries:
        # the per-entry temporaries (shifts / flat / bins) stay
        # cache-sized, and each chunk's bincount covers only its own
        # queries' rows of `out` — total cost stays proportional to the
        # entries gathered plus one pass over `out`, whatever the batch
        # and catalog sizes. A single query exceeding the budget forms
        # its own chunk (no worse than its standalone probe).
        per_query_entries = np.bincount(rows, weights=lens, minlength=n_queries)
        query_entry_ends = np.cumsum(per_query_entries)
        # Query boundaries where the cumulative entry count crosses each
        # budget multiple; dedup collapses over-budget queries into
        # singleton chunks.
        cuts = np.searchsorted(
            query_entry_ends,
            np.arange(0, total, _PROBE_CHUNK_ENTRIES)[1:],
            side="left",
        )
        q_bounds = np.unique(np.concatenate(([0], cuts + 1, [n_queries])))
        entry_csum = np.concatenate(([0], np.cumsum(lens)))
        row_csum = np.searchsorted(rows, np.arange(n_queries + 1))
        for q_lo, q_hi in zip(q_bounds[:-1], q_bounds[1:]):
            a, b = int(row_csum[q_lo]), int(row_csum[q_hi])
            if a >= b:
                continue
            c_lens = lens[a:b]
            c_starts = starts[a:b]
            shifts = np.repeat(
                c_starts - (entry_csum[a:b] - entry_csum[a]), c_lens
            )
            flat = np.arange(int(entry_csum[b] - entry_csum[a]), dtype=np.int64) + shifts
            bins = (rows[a:b] - q_lo).repeat(c_lens) * np.int64(n_docs) + self.doc_ids[
                flat
            ]
            out[q_lo:q_hi] += np.bincount(
                bins, minlength=int(q_hi - q_lo) * n_docs
            ).reshape(int(q_hi - q_lo), n_docs)
        return out

    def top_overlap_batch(
        self,
        queries,
        k: int,
        *,
        excludes=None,
        min_overlap: int = 1,
        banned: np.ndarray | None = None,
    ) -> list[list[tuple[str, int]]]:
        """:meth:`top_overlap` for many queries off one stacked probe.

        Args:
            queries: per-query key-hash arrays (duplicate-free, as sketch
                hash sets are).
            k: candidates per query.
            excludes: optional per-query exclude ids (None entries allowed).
            min_overlap: joinability floor, shared by all queries.
            banned: optional doc indices dropped for every query (the
                catalog's tombstone filter).

        Returns:
            One :meth:`top_overlap`-identical result list per query.

        Memory stays bounded for any batch size: queries are probed in
        row chunks holding at most :data:`_PROBE_MATRIX_CELLS` dense
        ScanCount cells at a time, and only the selected top-``k`` per
        query survives a chunk.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        queries = [np.asarray(q).astype(np.uint64, copy=False) for q in queries]
        if excludes is None:
            excludes = [None] * len(queries)
        if len(excludes) != len(queries):
            raise ValueError(
                f"{len(queries)} queries but {len(excludes)} excludes"
            )
        rows_per_chunk = max(1, _PROBE_MATRIX_CELLS // max(1, len(self.docs)))
        out: list[list[tuple[str, int]]] = []
        for lo in range(0, len(queries), rows_per_chunk):
            chunk = queries[lo : lo + rows_per_chunk]
            q_indptr = np.zeros(len(chunk) + 1, dtype=np.int64)
            sizes = np.asarray([q.size for q in chunk], dtype=np.int64)
            np.cumsum(sizes, out=q_indptr[1:])
            concat = (
                np.concatenate(chunk) if chunk else np.empty(0, dtype=np.uint64)
            )
            counts = self.overlap_counts_batch(concat, q_indptr)
            out.extend(
                self._select_top(
                    counts[i], k, excludes[lo + i], min_overlap, banned
                )
                for i in range(len(chunk))
            )
        return out


def merge_hits(
    per_layer_hits: list[list[tuple[str, int]]], depth: int
) -> list[tuple[str, int]]:
    """Merge sorted hits lists into the global top-``depth``.

    A deterministic heap merge under the shared ``(−overlap, id)`` total
    order: inputs are already sorted (the probe contract of
    :meth:`ColumnarPostings.top_overlap` and friends), so ``heapq.merge``
    recovers the global order without re-sorting, and truncation to
    ``depth`` reproduces the monolithic probe's cutoff. This is the one
    merge primitive behind both horizontal partitioning (shard
    scatter-gather, :func:`repro.serving.router.merge_shard_hits`) and
    vertical layering (frozen + delta probes,
    :meth:`repro.index.catalog.SketchCatalog.probe_top_overlap`): any
    candidate in the global top-``depth`` is in its own layer's
    top-``depth`` under the same total order, so merging per-layer lists
    and re-truncating is exact.
    """
    return list(
        islice(
            heapq.merge(*per_layer_hits, key=lambda t: (-t[1], t[0])),
            depth,
        )
    )
