"""Inverted index over sketch key hashes (the Lucene stand-in).

Section 4 notes that because a sketch stores discrete key hashes ``h(k)``,
off-the-shelf inverted indexes support the candidate-retrieval step of
query evaluation: find the corpus sketches sharing the most key hashes
with the query sketch. This module implements exactly that primitive:

* posting lists: ``key_hash → [sketch ids containing it]``;
* :meth:`InvertedIndex.top_overlap` — scan the query's posting lists,
  accumulate per-candidate overlap counts, return the top-``k`` by count
  (a textbook ScanCount set-overlap search; JOSIE/ppjoin+ are optimized
  variants of the same computation).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable


class InvertedIndex:
    """Posting-list index from key hashes to sketch identifiers."""

    def __init__(self) -> None:
        self._postings: dict[int, list[str]] = defaultdict(list)
        self._doc_keys: dict[str, int] = {}

    def __len__(self) -> int:
        """Number of indexed sketches."""
        return len(self._doc_keys)

    def __contains__(self, sketch_id: str) -> bool:
        return sketch_id in self._doc_keys

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct key hashes with postings."""
        return len(self._postings)

    def add(self, sketch_id: str, key_hashes: Iterable[int]) -> None:
        """Index a sketch's key hashes under ``sketch_id``.

        Raises:
            ValueError: if ``sketch_id`` is already indexed (re-indexing
                would duplicate postings; remove support is intentionally
                omitted — rebuild the index for catalog churn, as batch
                dataset-search systems do).
        """
        if sketch_id in self._doc_keys:
            raise ValueError(f"sketch id {sketch_id!r} is already indexed")
        count = 0
        for kh in key_hashes:
            self._postings[kh].append(sketch_id)
            count += 1
        self._doc_keys[sketch_id] = count

    def overlap_counts(
        self, key_hashes: Iterable[int], *, exclude: str | None = None
    ) -> dict[str, int]:
        """Count shared key hashes per indexed sketch (ScanCount)."""
        counts: dict[str, int] = defaultdict(int)
        for kh in key_hashes:
            postings = self._postings.get(kh)
            if not postings:
                continue
            for sid in postings:
                counts[sid] += 1
        if exclude is not None:
            counts.pop(exclude, None)
        return dict(counts)

    def top_overlap(
        self,
        key_hashes: Iterable[int],
        k: int,
        *,
        exclude: str | None = None,
        min_overlap: int = 1,
    ) -> list[tuple[str, int]]:
        """Top-``k`` indexed sketches by key-hash overlap with the query.

        Args:
            key_hashes: the query sketch's key hashes.
            k: number of candidates to return.
            exclude: optional sketch id to omit (typically the query
                itself when it is part of the corpus).
            min_overlap: drop candidates sharing fewer hashes than this.

        Returns:
            ``(sketch_id, overlap)`` pairs, descending by overlap with id
            as the deterministic tie-break.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        counts = self.overlap_counts(key_hashes, exclude=exclude)
        candidates = [
            (sid, c) for sid, c in counts.items() if c >= min_overlap
        ]
        candidates.sort(key=lambda t: (-t[1], t[0]))
        return candidates[:k]
