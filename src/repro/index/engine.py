"""Top-k join-correlation query evaluation (Definition 3 + Section 5.5).

The engine follows the paper's two-phase plan:

1. **Candidate retrieval** — query the inverted index for the
   ``retrieval_depth`` (paper: 100) corpus sketches with the largest
   key-hash overlap. Overlap is necessary for a usable join sample, so
   this prunes the vast majority of column pairs without any correlation
   work.
2. **Re-ranking** — join the query sketch with each candidate sketch,
   compute the per-candidate scoring statistics, apply the chosen scoring
   function (Section 4.4), and return the top-``k``.

The ``scorer`` argument of :meth:`JoinCorrelationEngine.query` (and the
CLI's ``repro-sketch query --scorer``) selects the Section 4.4 scoring
function by name: ``rp`` (s1, raw Pearson), ``rp_sez`` (s2, Fisher-z
penalized), ``rb_cib`` (s3, bootstrap-CI penalized — hundreds of
resamples per candidate), ``rp_cih`` (s4, Hoeffding-CI penalized — the
default and the paper's recommended latency/quality trade-off), plus the
``jc`` / ``jc_est`` containment and ``random`` baselines of Section 5.4.
See :data:`repro.ranking.scoring.SCORER_NAMES` — the name table in that
module's docs is the authoritative registry — and
:mod:`repro.ranking.ranker` for how scores become a ranked list.

Query sketches for in-memory tables are built through the vectorized
columnar path (:meth:`repro.core.sketch.CorrelationSketch.update_array`),
which is bit-identical to streaming construction.

Two interchangeable :class:`QueryExecutor` strategies evaluate the plan:

* :class:`ColumnarQueryExecutor` (default) — the whole pipeline runs on
  arrays: the retrieval probe answers from the catalog's layered
  indexes — frozen CSR + delta − tombstones
  (:meth:`SketchCatalog.probe_top_overlap`), every candidate join is a
  sorted-array merge of cached :class:`~repro.core.sketch.SketchColumns`
  views, containment estimates come from one vectorized DV-estimator
  call, and the scoring statistics are computed for all candidates at
  once (:func:`repro.ranking.scoring.candidate_scores_batch`).
* :class:`ScalarQueryExecutor` — the row-at-a-time reference
  implementation (dict-of-lists ScanCount, per-candidate dict joins and
  statistics), kept as the baseline the parity suite and the
  ``bench_query_eval`` speedup benchmark compare against.

Both return the same rankings; select with
``JoinCorrelationEngine(..., vectorized=False)`` or the CLI's
``query --no-vectorized-query``.

Orthogonally, ``rng_mode`` selects how ``rb_cib`` queries run the PM1
bootstrap across the candidate page: ``"batched"`` (default) drives all
candidates through the cross-candidate resampling engine
(:func:`repro.correlation.bootstrap.pm1_interval_batch`); ``"compat"``
reproduces the historical per-candidate rng stream bit-for-bit. Both
executors honor both modes with bit-identical bootstrap statistics for a
given mode, so executor parity holds under either.

Two further serving axes (both orthogonal to the executor choice):

* ``retrieval_backend`` plugs the candidate-retrieval phase
  (:data:`RETRIEVAL_BACKENDS`): the exact inverted index (default) or
  the approximate MinHash-LSH index — candidates are ranked by exact
  key overlap either way, so the backends share re-ranking and differ
  only in retrieval recall;
* :meth:`JoinCorrelationEngine.query_batch` evaluates many queries
  through one amortized pipeline (stacked index probe, one shared
  scoring pass) with results bit-identical to looping
  :meth:`JoinCorrelationEngine.query`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.joined_sample import JoinedSample, join_sketches
from repro.core.sketch import CorrelationSketch, SketchColumns
from repro.correlation.bootstrap import pm1_interval, pm1_interval_batch
from repro.index.catalog import SketchCatalog
from repro.index.options import RETRIEVAL_BACKENDS, QueryOptions
from repro.kmv.estimators import unbiased_dv_estimate, unbiased_dv_estimate_batch
from repro.ranking.ranker import RankedCandidate, rank_candidates
from repro.ranking.scoring import (
    CandidateScores,
    candidate_scores,
    candidate_scores_batch,
    cib_factor,
)

__all__ = [
    "RETRIEVAL_BACKENDS",  # re-exported from repro.index.options
    "CandidatePage",
    "ColumnarQueryExecutor",
    "JoinCorrelationEngine",
    "QueryExecutor",
    "QueryResult",
    "ScalarQueryExecutor",
    "retrieve_candidates",
    "retrieve_candidates_batch",
]


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one top-k join-correlation query.

    Attributes:
        ranked: the final ranked candidate list (top-k).
        candidates_considered: sketches retrieved by the overlap phase.
        retrieval_seconds: wall time of the index-probe phase.
        rerank_seconds: wall time of the join/score/sort phase.
        shards_probed: how many catalog partitions served the retrieval
            phase — 1 for a monolithic catalog, the shard count when a
            :class:`repro.serving.ShardRouter` merged the result.
        shards_failed: partitions that timed out or raised and were
            dropped from the merge under the router's
            ``on_shard_error="partial"`` policy. Always 0 on the
            monolithic engine and on any fault-free routed query.
        degraded: True when the answer is known-incomplete — at least
            one shard's candidates are missing (``shards_failed > 0``).
            Callers that must not act on partial answers check this one
            flag.
        trace: optional per-query phase trace
            (:meth:`repro.obs.trace.Trace.to_dict` — ``trace_id`` plus
            named spans), recorded only when the caller requested
            tracing. Unlike ``retrieval_seconds``/``rerank_seconds`` —
            which on batched paths are *per-query shares* of the batch
            phases — the trace carries each query's genuinely per-query
            timings (assemble/merge spans) alongside the shared batch
            phases (marked ``meta.shared``).
    """

    ranked: list[RankedCandidate]
    candidates_considered: int
    retrieval_seconds: float
    rerank_seconds: float
    shards_probed: int = 1
    shards_failed: int = 0
    degraded: bool = False
    trace: dict | None = None

    @property
    def total_seconds(self) -> float:
        return self.retrieval_seconds + self.rerank_seconds

    def to_dict(self) -> dict:
        """Strict-JSON representation of the full result.

        The serialization seam the HTTP query service responds with —
        the server never hand-serializes result fields, so anything a
        query can report (score breakdowns, shard accounting, the
        ``degraded`` flag) reaches clients through this one method.
        Floats round-trip bit-for-bit through ``json.dumps``/``loads``
        (JSON carries ``repr``); NaN is encoded as ``null`` and restored
        by :meth:`from_dict`.
        """
        payload = {
            "ranked": [entry.to_dict() for entry in self.ranked],
            "candidates_considered": self.candidates_considered,
            "retrieval_seconds": self.retrieval_seconds,
            "rerank_seconds": self.rerank_seconds,
            "shards_probed": self.shards_probed,
            "shards_failed": self.shards_failed,
            "degraded": self.degraded,
        }
        if self.trace is not None:
            # Present only when tracing was requested, so untraced
            # responses stay byte-identical to pre-observability wire.
            payload["trace"] = self.trace
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "QueryResult":
        """Rebuild a result from :meth:`to_dict` output (client side)."""
        return cls(
            ranked=[
                RankedCandidate.from_dict(entry)
                for entry in payload["ranked"]
            ],
            candidates_considered=int(payload["candidates_considered"]),
            retrieval_seconds=float(payload["retrieval_seconds"]),
            rerank_seconds=float(payload["rerank_seconds"]),
            shards_probed=int(payload["shards_probed"]),
            shards_failed=int(payload["shards_failed"]),
            degraded=bool(payload["degraded"]),
            trace=payload.get("trace"),
        )


def _containment_estimate(
    query: CorrelationSketch, candidate: CorrelationSketch, overlap: int
) -> float:
    """Sketch-estimated containment of the query key set in the candidate.

    Mirrors Eq. 1: intersection cardinality estimated from the combined
    bottom-k, normalized by the query's distinct-key estimate.
    """
    d_query = query.distinct_keys()
    if d_query <= 0 or overlap <= 0:
        return 0.0
    if query.saw_all_keys and candidate.saw_all_keys:
        inter = float(overlap)
    else:
        q_hashes = query.key_hashes()
        c_hashes = candidate.key_hashes()
        combined_k = min(len(query), len(candidate))
        ordered = sorted(
            q_hashes | c_hashes, key=query.hasher.unit_hash_of_key_hash
        )[:combined_k]
        if not ordered:
            return 0.0
        kth = query.hasher.unit_hash_of_key_hash(ordered[-1])
        k_inter = sum(1 for kh in ordered if kh in q_hashes and kh in c_hashes)
        inter = (k_inter / len(ordered)) * unbiased_dv_estimate(len(ordered), kth)
    return max(0.0, min(1.0, inter / d_query))


@dataclass(frozen=True)
class _UnionStats:
    """Per-candidate combined-bottom-k statistics for Eq. 1.

    ``k_len``/``kth``/``k_inter`` describe the first ``combined_k``
    entries of the rank-ordered union of query and candidate hashes;
    ``exact`` marks the both-sketches-saw-everything shortcut where the
    raw overlap count is the exact intersection size.
    """

    k_len: int
    kth: float
    k_inter: int
    exact: bool


def _candidate_membership(
    query: SketchColumns, candidate: SketchColumns
) -> tuple[np.ndarray, np.ndarray]:
    """Probe the candidate's hashes against the query's sorted hashes.

    Returns ``(in_query, positions)``: a boolean membership mask over the
    candidate's entries and, for members, their index in the query's
    arrays. One ``np.searchsorted`` pass serves both the sketch join and
    the containment union statistics — the two hot per-candidate steps.
    """
    pos = np.searchsorted(query.key_hashes, candidate.key_hashes)
    pos_clipped = np.minimum(pos, max(query.size - 1, 0))
    if query.size:
        in_query = query.key_hashes[pos_clipped] == candidate.key_hashes
    else:
        in_query = np.zeros(candidate.size, dtype=bool)
    return in_query, pos_clipped


def _membership_batch(
    query: SketchColumns, candidates: list[SketchColumns]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`_candidate_membership` for a whole candidate page at once.

    Concatenates the candidates' hash arrays and probes the query's
    sorted hashes with a single ``np.searchsorted``; membership is
    per-element, so slice ``i`` (``offsets[i]:offsets[i+1]``) of the
    returned ``(in_query, positions)`` arrays is bit-identical to the
    per-candidate probe. This collapses the batch executor's hottest
    per-candidate numpy round-trip into one call per query. Also returns
    the concatenated hash array itself (``offsets`` delimits candidate
    slices) for downstream page-level passes to reuse.
    """
    offsets = np.zeros(len(candidates) + 1, dtype=np.int64)
    np.cumsum(
        np.asarray([c.size for c in candidates], dtype=np.int64),
        out=offsets[1:],
    )
    if candidates:
        concat = np.concatenate([c.key_hashes for c in candidates])
    else:
        concat = np.empty(0, dtype=np.uint64)
    pos = np.searchsorted(query.key_hashes, concat)
    pos_clipped = np.minimum(pos, max(query.size - 1, 0))
    if query.size:
        in_query = query.key_hashes[pos_clipped] == concat
    else:
        in_query = np.zeros(concat.size, dtype=bool)
    return in_query, pos_clipped, offsets, concat


def _union_stats_from_membership(
    query: SketchColumns, candidate: SketchColumns, in_query: np.ndarray
) -> _UnionStats:
    """Combined-bottom-k statistics given a precomputed membership mask.

    Mirrors the sorted-union step of :func:`_containment_estimate`
    without re-sorting hash sets per candidate: dedup via the mask, then
    the ``k``-th union rank from one ``np.partition`` over cached ranks.
    """
    if query.saw_all_keys and candidate.saw_all_keys:
        return _UnionStats(k_len=0, kth=1.0, k_inter=0, exact=True)
    union_ranks = np.concatenate([query.ranks, candidate.ranks[~in_query]])
    combined_k = min(query.size, candidate.size)
    k_len = min(combined_k, union_ranks.size)
    if k_len == 0:
        return _UnionStats(k_len=0, kth=1.0, k_inter=0, exact=False)
    if k_len == union_ranks.size:
        kth = float(union_ranks.max())
    else:
        kth = float(np.partition(union_ranks, k_len - 1)[k_len - 1])
    # Ranks are injective over key hashes, so "within the first k_len of
    # the union" is exactly "rank <= kth".
    k_inter = int(np.count_nonzero(candidate.ranks[in_query] <= kth))
    return _UnionStats(k_len=k_len, kth=kth, k_inter=k_inter, exact=False)


def _union_stats(query: SketchColumns, candidate: SketchColumns) -> _UnionStats:
    """Combined-bottom-k statistics from two cached columnar views."""
    return _union_stats_from_membership(
        query, candidate, _candidate_membership(query, candidate)[0]
    )


def _join_page(
    query: SketchColumns,
    candidates: list[SketchColumns],
    cat_hashes: np.ndarray,
    cat_ranks: np.ndarray,
    cat_values: np.ndarray,
    in_query_all: np.ndarray,
    positions_all: np.ndarray,
    offsets: np.ndarray,
) -> list[JoinedSample]:
    """Materialize every candidate join of a page in one tensor pass.

    Bit-identical to calling ``_join_from_membership(...).drop_nan()``
    per candidate: one ``np.lexsort`` on ``(candidate row, rank)`` orders
    all matched pairs by ascending rank within each candidate (ranks are
    injective, so the permutation equals the per-candidate ``argsort``),
    the NaN filter is applied to the whole page at once, and each
    returned :class:`JoinedSample` is a zero-copy slice view of the
    page-level arrays.
    """
    mem_idx = np.nonzero(in_query_all)[0]
    row = np.searchsorted(offsets, mem_idx, side="right") - 1
    order = np.lexsort((cat_ranks[mem_idx], row))
    mem_ordered = mem_idx[order]
    row_ordered = row[order]
    kh = cat_hashes[mem_ordered]
    y = cat_values[mem_ordered]
    x = query.values[positions_all[mem_ordered]]
    keep = ~(np.isnan(x) | np.isnan(y))
    if not keep.all():
        kh, x, y, row_ordered = kh[keep], x[keep], y[keep], row_ordered[keep]
    counts = np.bincount(row_ordered, minlength=len(candidates))
    indptr = np.zeros(len(candidates) + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    x_range = query.value_range
    return [
        JoinedSample(
            key_hashes=kh[indptr[i] : indptr[i + 1]],
            x=x[indptr[i] : indptr[i + 1]],
            y=y[indptr[i] : indptr[i + 1]],
            x_range=x_range,
            y_range=cand.value_range,
        )
        for i, cand in enumerate(candidates)
    ]


def _union_stats_page(
    query: SketchColumns,
    candidates: list[SketchColumns],
    in_query_all: np.ndarray,
    offsets: np.ndarray,
    all_ranks: np.ndarray | None = None,
) -> list[_UnionStats]:
    """:func:`_union_stats_from_membership` for a whole candidate page.

    Bit-identical output, computed without per-candidate
    concatenate/partition round-trips. The union of query and candidate
    ranks always shares the query's side, so the ``k``-th union rank is
    selected from two *sorted* sequences instead: the query's ranks
    (sorted once per page) and the candidates' non-member ranks (one
    padded row-sorted matrix for the page). An element's 0-based union
    position is its index in its own sequence plus its
    ``np.searchsorted`` insertion point in the other; ranks are
    injective over key hashes (see :meth:`BottomK.update_batch
    <repro.kmv.bottomk.BottomK.update_batch>`), so positions are unique
    and the selected value equals the per-candidate ``np.partition``
    result exactly. ``k_inter`` counts come from one concatenated
    member-rank comparison with segment sums.
    """
    count = len(candidates)
    out: list[_UnionStats | None] = [None] * count
    active: list[int] = []
    for i, cand in enumerate(candidates):
        if query.saw_all_keys and cand.saw_all_keys:
            out[i] = _UnionStats(k_len=0, kth=1.0, k_inter=0, exact=True)
        else:
            active.append(i)
    if not active:
        return out

    offsets = np.asarray(offsets, dtype=np.int64)
    sizes = offsets[1:] - offsets[:-1]
    member_csum = np.concatenate(
        ([0], np.cumsum(in_query_all, dtype=np.int64))
    )
    members = member_csum[offsets[1:]] - member_csum[offsets[:-1]]
    nonmembers = sizes - members

    act = np.asarray(active, dtype=np.int64)
    m_act = nonmembers[act]
    q_size = query.size
    k_len = np.minimum(np.minimum(q_size, sizes[act]), q_size + m_act)
    valid = np.nonzero(k_len > 0)[0]
    for j in np.nonzero(k_len == 0)[0].tolist():
        out[active[j]] = _UnionStats(k_len=0, kth=1.0, k_inter=0, exact=False)
    if valid.size == 0:
        return out

    if all_ranks is None:
        all_ranks = np.concatenate([c.ranks for c in candidates])
    nonmem_ranks = all_ranks[~in_query_all]
    mem_ranks = all_ranks[in_query_all]
    #: Positions of candidate i's segment within the member/non-member
    #: streams: entries before i, minus/plus how many of them matched.
    nm_starts = offsets[:-1] - member_csum[offsets[:-1]]
    mem_starts = member_csum[offsets[:-1]]

    sorted_q = np.sort(query.ranks)
    v_act = act[valid]
    m_v = nonmembers[v_act]
    max_m = int(m_v.max()) if m_v.size else 0
    n_rows = v_act.size

    # Padded (rows, max_m) non-member rank matrix, +inf beyond each row.
    non_matrix = np.full((n_rows, max_m), np.inf)
    if max_m:
        total_nm = int(m_v.sum())
        row_rep = np.repeat(np.arange(n_rows, dtype=np.int64), m_v)
        col_rep = np.arange(total_nm, dtype=np.int64) - np.repeat(
            np.cumsum(m_v) - m_v, m_v
        )
        non_matrix[row_rep, col_rep] = nonmem_ranks[
            np.repeat(nm_starts[v_act], m_v) + col_rep
        ]
        non_matrix.sort(axis=1)

    # 0-based union position of the row-sorted non-member j: its
    # insertion point in the sorted query ranks plus j. Padding lands at
    # q_size + j, beyond any valid target position.
    kth = np.empty(n_rows)
    if max_m:
        pos_in_q = np.searchsorted(sorted_q, non_matrix.reshape(-1)).reshape(
            n_rows, max_m
        )
        union_pos = pos_in_q + np.arange(max_m, dtype=np.int64)[None, :]
        target = (k_len[valid] - 1)[:, None]
        from_non = union_pos == target
        has_non = from_non.any(axis=1)
        non_col = np.argmax(from_non, axis=1)
        taken_before = (union_pos < target).sum(axis=1)
        kth[has_non] = non_matrix[np.nonzero(has_non)[0], non_col[has_non]]
    else:
        has_non = np.zeros(n_rows, dtype=bool)
        taken_before = np.zeros(n_rows, dtype=np.int64)
    from_query = ~has_non
    kth[from_query] = sorted_q[
        (k_len[valid] - 1 - taken_before)[from_query]
    ]

    # k_inter: member ranks <= kth, segment-summed over the page.
    mem_v = members[v_act]
    total_mem = int(mem_v.sum())
    if total_mem:
        col_mem = np.arange(total_mem, dtype=np.int64) - np.repeat(
            np.cumsum(mem_v) - mem_v, mem_v
        )
        inside = (
            mem_ranks[np.repeat(mem_starts[v_act], mem_v) + col_mem]
            <= np.repeat(kth, mem_v)
        )
        inside_csum = np.concatenate(
            ([0], np.cumsum(inside, dtype=np.int64))
        )
        seg_ends = np.cumsum(mem_v)
        k_inter = inside_csum[seg_ends] - inside_csum[seg_ends - mem_v]
    else:
        k_inter = np.zeros(n_rows, dtype=np.int64)

    for j, row in enumerate(valid.tolist()):
        out[active[row]] = _UnionStats(
            k_len=int(k_len[row]),
            kth=float(kth[j]),
            k_inter=int(k_inter[j]),
            exact=False,
        )
    return out


def _join_from_membership(
    query: SketchColumns,
    candidate: SketchColumns,
    in_query: np.ndarray,
    positions: np.ndarray,
) -> JoinedSample:
    """Materialize the sketch join from a precomputed membership probe.

    Bit-identical to :func:`repro.core.joined_sample.join_columns` (both
    sides store the same rank for a shared hash, so ordering by the
    candidate's ranks reproduces the canonical ascending-rank order).
    """
    cand_idx = np.nonzero(in_query)[0]
    query_idx = positions[cand_idx]
    order = np.argsort(candidate.ranks[cand_idx])
    cand_idx = cand_idx[order]
    query_idx = query_idx[order]
    return JoinedSample(
        key_hashes=candidate.key_hashes[cand_idx],
        x=query.values[query_idx],
        y=candidate.values[cand_idx],
        x_range=query.value_range,
        y_range=candidate.value_range,
    )


def _containment_estimates_batch(
    d_query: float, overlaps: list[int], stats: list[_UnionStats]
) -> list[float]:
    """Vectorized Eq. 1 over all candidates of one query.

    Applies the same arithmetic as :func:`_containment_estimate`
    elementwise — one :func:`unbiased_dv_estimate_batch` call for the
    whole candidate list — so each estimate is bit-identical to the
    scalar function's.
    """
    count = len(stats)
    if count == 0:
        return []
    if d_query <= 0:
        return [0.0] * count
    k_len = np.asarray([s.k_len for s in stats], dtype=np.int64)
    kth = np.asarray([s.kth for s in stats], dtype=np.float64)
    k_inter = np.asarray([s.k_inter for s in stats], dtype=np.float64)
    exact = np.asarray([s.exact for s in stats], dtype=bool)
    overlap_arr = np.asarray(overlaps, dtype=np.int64)

    dv = unbiased_dv_estimate_batch(
        k_len, kth, np.zeros(count, dtype=bool)
    )
    safe_len = np.maximum(k_len, 1).astype(np.float64)
    inter = (k_inter / safe_len) * dv
    inter = np.where(exact, overlap_arr.astype(np.float64), inter)
    contained = np.minimum(1.0, np.maximum(0.0, inter / d_query))
    zero = (~exact & (k_len == 0)) | (overlap_arr <= 0)
    return [0.0 if z else float(c) for z, c in zip(zero, contained)]


def _apply_batched_bootstrap(
    samples: list[JoinedSample],
    stats: list[CandidateScores],
    rng: np.random.Generator,
) -> list[CandidateScores]:
    """Fill ``r_bootstrap``/``cib_factor`` via the cross-candidate engine.

    Shared by both executors under ``rng_mode="batched"``: the eligibility
    mask and candidate order derive from already-computed statistics, so
    feeding the same samples and rng produces bit-identical bootstrap
    columns regardless of which executor computed the rest.
    """
    eligible = [
        s.size >= 2 and not math.isnan(st.r_pearson)
        for s, st in zip(samples, stats)
    ]
    boots = pm1_interval_batch(
        [s.x for s in samples],
        [s.y for s in samples],
        rng=rng,
        active=eligible,
    )
    return [
        replace(
            st,
            r_bootstrap=boot.estimate,
            cib_factor=cib_factor(boot.low, boot.high),
        )
        if ok
        else st
        for st, boot, ok in zip(stats, boots, eligible)
    ]


def _apply_compat_bootstrap(
    samples: list[JoinedSample],
    stats: list[CandidateScores],
    rng: np.random.Generator,
) -> list[CandidateScores]:
    """Fill ``r_bootstrap``/``cib_factor`` per candidate in list order.

    Mirrors the ``rng_mode="compat"`` branch of
    :func:`repro.ranking.scoring.candidate_scores_batch` — one
    599-replicate :func:`pm1_interval` per eligible candidate, consuming
    ``rng`` sequentially — so :meth:`JoinCorrelationEngine.query_batch`
    stays bit-identical to looped single queries under either rng mode.
    """
    out: list[CandidateScores] = []
    for sample, stat in zip(samples, stats):
        if sample.size >= 2 and not math.isnan(stat.r_pearson):
            boot = pm1_interval(sample.x, sample.y, rng=rng)
            stat = replace(
                stat,
                r_bootstrap=boot.estimate,
                cib_factor=cib_factor(boot.low, boot.high),
            )
        out.append(stat)
    return out


def _lsh_hits_columnar(
    catalog: SketchCatalog,
    query_cols: SketchColumns,
    *,
    depth: int,
    min_overlap: int,
    exclude: str | None,
    lsh_bands: int | None,
    lsh_rows: int | None,
) -> list[tuple[str, int]]:
    """LSH candidate retrieval with exact-overlap ranking (columnar).

    Probes the catalog's LSH index for colliding sketches, then computes
    each survivor's *exact* key overlap with one sorted-membership pass —
    so the hits list has the same ``(sketch_id, overlap)`` contract,
    ``min_overlap`` floor and ``(−overlap, id)`` ordering as the inverted
    backend, and downstream re-ranking is shared unchanged. The backends
    therefore differ only in recall: candidates the banding never
    collides with are missing here, everything retrieved is ranked
    identically.
    """
    threshold = max(1, min_overlap)
    hits: list[tuple[str, int]] = []
    for sid in catalog.lsh_candidate_ids(
        query_cols.key_hashes, exclude=exclude, bands=lsh_bands, rows=lsh_rows
    ):
        candidate_cols = catalog.sketch_columns(sid)
        in_query, _ = _candidate_membership(query_cols, candidate_cols)
        overlap = int(np.count_nonzero(in_query))
        if overlap >= threshold:
            hits.append((sid, overlap))
    hits.sort(key=lambda t: (-t[1], t[0]))
    return hits[:depth]


def retrieve_candidates(
    catalog: SketchCatalog,
    query_cols: SketchColumns,
    *,
    depth: int,
    min_overlap: int = 1,
    exclude: str | None = None,
    backend: str = "inverted",
    lsh_bands: int | None = None,
    lsh_rows: int | None = None,
) -> list[tuple[str, int]]:
    """Columnar candidate retrieval against one catalog, either backend.

    The retrieval phase of :class:`ColumnarQueryExecutor`, factored out
    so a :class:`repro.serving.ShardRouter` can run the identical probe
    per shard: ``(sketch_id, overlap)`` pairs sorted by
    ``(−overlap, id)``, floored at ``min_overlap``, truncated to
    ``depth``. Because that ordering is a total order over candidates,
    per-shard lists merged under the same key and re-truncated to
    ``depth`` reproduce the single-catalog hits list exactly.
    """
    if depth <= 0:
        raise ValueError(f"depth must be positive, got {depth}")
    if backend == "lsh":
        return _lsh_hits_columnar(
            catalog,
            query_cols,
            depth=depth,
            min_overlap=min_overlap,
            exclude=exclude,
            lsh_bands=lsh_bands,
            lsh_rows=lsh_rows,
        )
    return catalog.probe_top_overlap(
        query_cols.key_hashes, depth, exclude=exclude, min_overlap=min_overlap
    )


def retrieve_candidates_batch(
    catalog: SketchCatalog,
    query_cols_list: list[SketchColumns],
    *,
    depth: int,
    min_overlap: int = 1,
    excludes: list[str | None] | None = None,
    backend: str = "inverted",
    lsh_bands: int | None = None,
    lsh_rows: int | None = None,
) -> list[list[tuple[str, int]]]:
    """:func:`retrieve_candidates` for many queries at once.

    The inverted backend answers the whole batch from one stacked CSR
    probe (:meth:`~repro.index.inverted.ColumnarPostings.top_overlap_batch`);
    LSH probes per query (its cost is already O(bands) each). Row ``q``
    is bit-identical to the single-query call.
    """
    if depth <= 0:
        raise ValueError(f"depth must be positive, got {depth}")
    if excludes is None:
        excludes = [None] * len(query_cols_list)
    if backend == "lsh":
        return [
            _lsh_hits_columnar(
                catalog,
                cols,
                depth=depth,
                min_overlap=min_overlap,
                exclude=excl,
                lsh_bands=lsh_bands,
                lsh_rows=lsh_rows,
            )
            for cols, excl in zip(query_cols_list, excludes)
        ]
    return catalog.probe_top_overlap_batch(
        [cols.key_hashes for cols in query_cols_list],
        depth,
        excludes=excludes,
        min_overlap=min_overlap,
    )


@dataclass(frozen=True)
class CandidatePage:
    """One query's assembled candidate page: everything re-ranking needs.

    The merge seam between retrieval and scoring. Each field is aligned
    with ``ids``; every per-candidate value depends only on the query and
    that candidate (never on the rest of the page), so pages assembled in
    shard-sized groups and re-interleaved into the global hit order are
    bit-identical to one monolithic assembly — the property the
    scatter-gather router relies on.
    """

    ids: list[str]
    overlaps: list[int]
    samples: list[JoinedSample]
    union_stats: list[_UnionStats]

    @classmethod
    def assemble(
        cls,
        catalog: SketchCatalog,
        query_cols: SketchColumns,
        hits: list[tuple[str, int]],
    ) -> "CandidatePage":
        """Join + union statistics for a hits list, in page-level passes.

        One :func:`_membership_batch` probe, one :func:`_union_stats_page`
        pass and one :func:`_join_page` materialization for the whole
        page — per-candidate outputs bit-identical to the per-candidate
        helpers (their documented contract).
        """
        page_cols = [catalog.sketch_columns(sid) for sid, _ in hits]
        in_query_all, positions_all, offsets, cat_hashes = _membership_batch(
            query_cols, page_cols
        )
        if page_cols:
            cat_ranks = np.concatenate([c.ranks for c in page_cols])
            cat_values = np.concatenate([c.values for c in page_cols])
        else:
            cat_ranks = np.empty(0, dtype=np.float64)
            cat_values = np.empty(0, dtype=np.float64)
        union_stats = _union_stats_page(
            query_cols, page_cols, in_query_all, offsets, all_ranks=cat_ranks
        )
        samples = _join_page(
            query_cols,
            page_cols,
            cat_hashes,
            cat_ranks,
            cat_values,
            in_query_all,
            positions_all,
            offsets,
        )
        return cls(
            ids=[sid for sid, _ in hits],
            overlaps=[overlap for _, overlap in hits],
            samples=samples,
            union_stats=union_stats,
        )

    def containments(self, d_query: float) -> list[float]:
        """Vectorized Eq. 1 containment estimates for the page."""
        return _containment_estimates_batch(
            d_query, self.overlaps, self.union_stats
        )


class QueryExecutor:
    """Strategy interface for one top-``k`` query evaluation.

    Executors read ``catalog`` / ``retrieval_depth`` / ``min_overlap``
    from the owning engine at execution time, so tuning the engine after
    construction behaves identically under both strategies. Inputs are
    validated by :meth:`JoinCorrelationEngine.query` before dispatch.
    """

    def __init__(self, engine: "JoinCorrelationEngine") -> None:
        self.engine = engine

    def execute(
        self,
        query_sketch: CorrelationSketch,
        k: int,
        scorer: str,
        *,
        exclude_id: str | None,
        true_correlations: dict[str, float] | None,
        rng: np.random.Generator,
        trace=None,
    ) -> QueryResult:
        raise NotImplementedError

    @staticmethod
    def _truths(
        ids: list[str], true_correlations: dict[str, float] | None
    ) -> list[float]:
        if true_correlations is None:
            return [math.nan] * len(ids)
        return [true_correlations.get(sid, math.nan) for sid in ids]


class ScalarQueryExecutor(QueryExecutor):
    """Row-at-a-time reference path (pre-columnar behavior, bit for bit
    under ``rng_mode="compat"``).

    One dict-based ScanCount probe, then per candidate: a dict-set sketch
    join, a sorted-union containment estimate and a full
    :func:`candidate_scores` round-trip. Under ``rng_mode="batched"`` the
    PM1 bootstrap alone moves to the shared cross-candidate engine so the
    scalar path stays ranking-identical to the columnar one in every mode.
    """

    def _lsh_hits(
        self, query_sketch: CorrelationSketch, exclude_id: str | None
    ) -> list[tuple[str, int]]:
        """Set-based reference of :func:`_lsh_hits_columnar` — identical
        candidate set (signatures are order-free) and identical exact
        overlaps (set intersection vs sorted membership)."""
        engine = self.engine
        q_hashes = query_sketch.key_hashes()
        threshold = max(1, engine.min_overlap)
        hits: list[tuple[str, int]] = []
        for sid in engine.catalog.lsh_candidate_ids(
            q_hashes,
            exclude=exclude_id,
            bands=engine.lsh_bands,
            rows=engine.lsh_rows,
        ):
            overlap = len(q_hashes & engine.catalog.get(sid).key_hashes())
            if overlap >= threshold:
                hits.append((sid, overlap))
        hits.sort(key=lambda t: (-t[1], t[0]))
        return hits[: engine.retrieval_depth]

    def execute(
        self,
        query_sketch: CorrelationSketch,
        k: int,
        scorer: str,
        *,
        exclude_id: str | None,
        true_correlations: dict[str, float] | None,
        rng: np.random.Generator,
        trace=None,
    ) -> QueryResult:
        engine = self.engine
        t0 = time.perf_counter()
        if engine.retrieval_backend == "lsh":
            hits = self._lsh_hits(query_sketch, exclude_id)
        else:
            hits = engine.catalog.index.top_overlap(
                query_sketch.key_hashes(),
                engine.retrieval_depth,
                exclude=exclude_id,
                min_overlap=engine.min_overlap,
            )
        t1 = time.perf_counter()

        # The PM1 bootstrap costs hundreds of resamples per candidate;
        # compute it only when the chosen scorer reads r_b / cib. Under
        # rng_mode="batched" it runs after the per-candidate loop so both
        # executors share one cross-candidate engine invocation (and hence
        # bit-identical bootstrap statistics).
        needs_bootstrap = scorer == "rb_cib"
        per_candidate_bootstrap = needs_bootstrap and engine.rng_mode == "compat"

        ids: list[str] = []
        samples: list[JoinedSample] = []
        stats: list[CandidateScores] = []
        for sid, overlap in hits:
            candidate = engine.catalog.get(sid)
            sample = join_sketches(query_sketch, candidate).drop_nan()
            containment = _containment_estimate(query_sketch, candidate, overlap)
            stat = candidate_scores(
                sample,
                containment_est=containment,
                rng=rng,
                with_bootstrap=per_candidate_bootstrap,
            )
            ids.append(sid)
            samples.append(sample)
            stats.append(stat)

        if needs_bootstrap and not per_candidate_bootstrap:
            stats = _apply_batched_bootstrap(samples, stats, rng)
        ts = time.perf_counter() if trace is not None else 0.0

        ranked = rank_candidates(
            ids, stats, scorer,
            true_correlations=self._truths(ids, true_correlations),
            rng=rng,
        )[:k]
        t2 = time.perf_counter()

        if trace is not None:
            # The scalar path interleaves join+score per candidate, so
            # its phases are retrieval / score (join+stats+bootstrap) /
            # merge (ranking) — no separate assemble pass exists.
            trace.add("retrieval", t0, t1, candidates=len(hits))
            trace.add("score", t1, ts)
            trace.add("merge", ts, t2)
        return QueryResult(
            ranked=ranked,
            candidates_considered=len(hits),
            retrieval_seconds=t1 - t0,
            rerank_seconds=t2 - t1,
            trace=None if trace is None else trace.to_dict(),
        )


class ColumnarQueryExecutor(QueryExecutor):
    """Vectorized executor: frozen postings, merge joins, batch scoring.

    Produces the same rankings as :class:`ScalarQueryExecutor` (the
    parity suite pins this): retrieval counts, join samples, containment
    estimates and bootstrap statistics are bit-identical; the batched
    moment statistics agree to within float summation order.
    """

    def execute(
        self,
        query_sketch: CorrelationSketch,
        k: int,
        scorer: str,
        *,
        exclude_id: str | None,
        true_correlations: dict[str, float] | None,
        rng: np.random.Generator,
        trace=None,
    ) -> QueryResult:
        engine = self.engine
        t0 = time.perf_counter()
        query_cols = query_sketch.columnar()
        hits = retrieve_candidates(
            engine.catalog,
            query_cols,
            depth=engine.retrieval_depth,
            min_overlap=engine.min_overlap,
            exclude=exclude_id,
            backend=engine.retrieval_backend,
            lsh_bands=engine.lsh_bands,
            lsh_rows=engine.lsh_rows,
        )
        t1 = time.perf_counter()

        needs_bootstrap = scorer == "rb_cib"

        page = CandidatePage.assemble(engine.catalog, query_cols, hits)
        containments = page.containments(query_sketch.distinct_keys())
        ta = time.perf_counter() if trace is not None else 0.0
        stats = candidate_scores_batch(
            page.samples,
            containment_ests=containments,
            rng=rng,
            with_bootstrap=needs_bootstrap,
            rng_mode=engine.rng_mode,
        )
        ts = time.perf_counter() if trace is not None else 0.0

        ranked = rank_candidates(
            page.ids, stats, scorer,
            true_correlations=self._truths(page.ids, true_correlations),
            rng=rng,
        )[:k]
        t2 = time.perf_counter()

        if trace is not None:
            trace.add("retrieval", t0, t1, candidates=len(hits))
            trace.add("assemble", t1, ta)
            trace.add("score", ta, ts)
            trace.add("merge", ts, t2)
        return QueryResult(
            ranked=ranked,
            candidates_considered=len(hits),
            retrieval_seconds=t1 - t0,
            rerank_seconds=t2 - t1,
            trace=None if trace is None else trace.to_dict(),
        )

    def execute_batch(
        self,
        query_sketches: list[CorrelationSketch],
        k: int,
        scorer: str,
        *,
        exclude_ids: list[str | None],
        true_correlations: list[dict[str, float] | None],
        rng: np.random.Generator | None,
        traces: list | None = None,
    ) -> list[QueryResult]:
        """Evaluate many queries through one amortized columnar pipeline.

        Three batch effects, none changing any result bit
        (:meth:`JoinCorrelationEngine.query_batch` documents the parity
        contract):

        * **stacked retrieval** — all queries probe the frozen postings
          with one concatenated ``searchsorted``/``bincount`` pass
          (:meth:`~repro.index.inverted.ColumnarPostings.top_overlap_batch`);
        * **shared join state** — candidates appearing in several
          queries' pages are lowered to :class:`SketchColumns` once (the
          catalog cache), so overlapping candidate sets amortize;
        * **one scoring pass** — every query's join samples enter a
          single :func:`candidate_scores_batch` call; per-sample segment
          reductions are independent, so each query's statistics are
          bit-identical to its standalone evaluation. Bootstrap (rng
          consuming) work stays per query, in order, preserving the rng
          stream of a plain loop.

        ``retrieval_seconds``/``rerank_seconds`` in the returned
        results are **documented aggregates**: equal per-query shares
        of the batch phases (the stacked probe and shared scoring pass
        have no per-query wall time to attribute). Callers that need
        genuinely per-query phase cost pass ``traces`` (one
        :class:`repro.obs.trace.Trace` or None per query): the batch
        phases land as shared spans (``meta.shared=True`` with the
        batch size), while the assemble and merge phases — the work
        that actually runs query by query — are timed per query.
        """
        engine = self.engine
        n_queries = len(query_sketches)
        if n_queries == 0:
            return []
        if traces is not None and len(traces) != n_queries:
            raise ValueError(
                f"{n_queries} query sketches but {len(traces)} traces"
            )
        tracing = traces is not None
        t0 = time.perf_counter()
        query_cols = [sketch.columnar() for sketch in query_sketches]
        hits_per_query = retrieve_candidates_batch(
            engine.catalog,
            query_cols,
            depth=engine.retrieval_depth,
            min_overlap=engine.min_overlap,
            excludes=exclude_ids,
            backend=engine.retrieval_backend,
            lsh_bands=engine.lsh_bands,
            lsh_rows=engine.lsh_rows,
        )
        t1 = time.perf_counter()
        if tracing:
            for tr in traces:
                if tr is not None:
                    tr.add(
                        "retrieval", t0, t1,
                        shared=True, batch_size=n_queries,
                    )

        needs_bootstrap = scorer == "rb_cib"

        ids_per_query: list[list[str]] = []
        spans: list[tuple[int, int]] = []
        all_samples: list[JoinedSample] = []
        all_containments: list[float] = []
        for q, (sketch, cols, hits) in enumerate(
            zip(query_sketches, query_cols, hits_per_query)
        ):
            a0 = time.perf_counter() if tracing else 0.0
            start = len(all_samples)
            page = CandidatePage.assemble(engine.catalog, cols, hits)
            all_samples.extend(page.samples)
            all_containments.extend(page.containments(sketch.distinct_keys()))
            ids_per_query.append(page.ids)
            spans.append((start, len(all_samples)))
            if tracing and traces[q] is not None:
                traces[q].add(
                    "assemble", a0, time.perf_counter(),
                    candidates=len(hits),
                )

        s0 = time.perf_counter() if tracing else 0.0
        base_stats = candidate_scores_batch(
            all_samples,
            containment_ests=all_containments,
            with_bootstrap=False,
        )
        if tracing:
            s1 = time.perf_counter()
            for tr in traces:
                if tr is not None:
                    tr.add(
                        "score", s0, s1,
                        shared=True, batch_size=n_queries,
                    )

        ranked_per_query: list[tuple[list[RankedCandidate], int]] = []
        for q in range(n_queries):
            m0 = time.perf_counter() if tracing else 0.0
            start, end = spans[q]
            samples = all_samples[start:end]
            stats = base_stats[start:end]
            # Each query consumes rng exactly as its standalone query()
            # would: a fresh fixed-seed generator when none was supplied,
            # the shared one in query order otherwise.
            query_rng = np.random.default_rng(7) if rng is None else rng
            if needs_bootstrap:
                if engine.rng_mode == "batched":
                    stats = _apply_batched_bootstrap(samples, stats, query_rng)
                else:
                    stats = _apply_compat_bootstrap(samples, stats, query_rng)
            ranked = rank_candidates(
                ids_per_query[q], stats, scorer,
                true_correlations=self._truths(
                    ids_per_query[q], true_correlations[q]
                ),
                rng=query_rng,
            )[:k]
            ranked_per_query.append((ranked, len(hits_per_query[q])))
            if tracing and traces[q] is not None:
                # Per-query by construction: bootstrap + ranking consume
                # this query's rng and only its candidates.
                traces[q].add("merge", m0, time.perf_counter())
        t2 = time.perf_counter()

        retrieval_share = (t1 - t0) / n_queries
        rerank_share = (t2 - t1) / n_queries
        return [
            QueryResult(
                ranked=ranked,
                candidates_considered=considered,
                retrieval_seconds=retrieval_share,
                rerank_seconds=rerank_share,
                trace=(
                    traces[q].to_dict()
                    if tracing and traces[q] is not None
                    else None
                ),
            )
            for q, (ranked, considered) in enumerate(ranked_per_query)
        ]


class JoinCorrelationEngine:
    """Evaluates top-k join-correlation queries against a sketch catalog.

    Args:
        catalog: the populated sketch catalog.
        retrieval_depth: candidates fetched by key overlap before
            re-ranking (the paper's experiments use 100).
        min_overlap: minimum shared key hashes for a candidate to be
            considered joinable at all.
        vectorized: evaluate queries with the columnar executor
            (default). Disable to run the row-at-a-time reference path —
            same rankings, ~an order of magnitude slower re-ranking; used
            for debugging and as the benchmark baseline.
        rng_mode: how ``rb_cib`` queries run the PM1 bootstrap across the
            candidate page (see :data:`repro.ranking.scoring.RNG_MODES`):
            ``"batched"`` (default) resamples all candidates through the
            cross-candidate engine — statistically equivalent scores, a
            multiple faster; ``"compat"`` reproduces the per-candidate
            rng stream bit-for-bit. Both executors honor both modes, so
            scalar/columnar rankings stay identical either way.
        retrieval_backend: candidate-retrieval strategy (see
            :data:`RETRIEVAL_BACKENDS`): ``"inverted"`` (default) probes
            the exact inverted index; ``"lsh"`` probes the catalog's
            MinHash-LSH index — sub-linear in posting lengths, recall
            < 1 on low-overlap candidates. Retrieved candidates are
            ranked by exact key overlap and re-ranked identically under
            either backend, so rankings differ only by retrieval recall
            (quantified in ``benchmarks/bench_ablation_retrieval.py``).
        lsh_bands: LSH bands ``b`` (``"lsh"`` backend only). ``None``
            (default) keeps a warm snapshot-loaded index whatever its
            persisted banding (module default ``16`` when none exists);
            an explicit value pins the shape, rebuilding a cached index
            of a different one.
        lsh_rows: LSH rows per band ``r``, same ``None`` semantics.
            Collision threshold is roughly ``(1/b)**(1/r)`` Jaccard.
    """

    def __init__(
        self,
        catalog: SketchCatalog,
        retrieval_depth: int = 100,
        min_overlap: int = 1,
        *,
        vectorized: bool = True,
        rng_mode: str = "batched",
        retrieval_backend: str = "inverted",
        lsh_bands: int | None = None,
        lsh_rows: int | None = None,
    ) -> None:
        # All tuning state lives in one validated QueryOptions record —
        # the same seam every other query entry point (router, worker
        # pool, CLI, HTTP service) construct themselves from, so the
        # validation rules and messages cannot drift between layers.
        self.catalog = catalog
        self._options = QueryOptions(
            depth=retrieval_depth,
            min_overlap=min_overlap,
            vectorized=vectorized,
            rng_mode=rng_mode,
            retrieval_backend=retrieval_backend,
            lsh_bands=lsh_bands,
            lsh_rows=lsh_rows,
        )
        self.executor: QueryExecutor = (
            ColumnarQueryExecutor(self) if vectorized else ScalarQueryExecutor(self)
        )

    @classmethod
    def from_options(
        cls, catalog: SketchCatalog, options: QueryOptions
    ) -> "JoinCorrelationEngine":
        """Build an engine from one :class:`QueryOptions` record.

        Per-query fields (``k``, ``scorer``, ``seed``) stay on the
        options record for the caller's ``query``/``submit`` calls;
        the resilience fields (``deadline_ms``/``on_shard_error``) have
        no monolithic surface and are ignored here — a
        :class:`~repro.serving.session.QuerySession` rejects forwarding
        them to an engine backend.
        """
        return cls(
            catalog,
            retrieval_depth=options.depth,
            min_overlap=options.min_overlap,
            vectorized=options.vectorized,
            rng_mode=options.rng_mode,
            retrieval_backend=options.retrieval_backend,
            lsh_bands=options.lsh_bands,
            lsh_rows=options.lsh_rows,
        )

    @property
    def options(self) -> QueryOptions:
        """The engine's tuning state as one frozen record."""
        return self._options

    def _replace_options(self, **changes) -> None:
        # dataclasses.replace re-runs __post_init__, so attribute
        # assignment keeps the constructor's validation.
        self._options = replace(self._options, **changes)

    @property
    def retrieval_depth(self) -> int:
        return self._options.depth

    @retrieval_depth.setter
    def retrieval_depth(self, value: int) -> None:
        self._replace_options(depth=value)

    @property
    def min_overlap(self) -> int:
        return self._options.min_overlap

    @min_overlap.setter
    def min_overlap(self, value: int) -> None:
        self._replace_options(min_overlap=value)

    @property
    def vectorized(self) -> bool:
        return self._options.vectorized

    @vectorized.setter
    def vectorized(self, value: bool) -> None:
        self._replace_options(vectorized=value)
        self.executor = (
            ColumnarQueryExecutor(self) if value else ScalarQueryExecutor(self)
        )

    @property
    def rng_mode(self) -> str:
        return self._options.rng_mode

    @rng_mode.setter
    def rng_mode(self, value: str) -> None:
        self._replace_options(rng_mode=value)

    @property
    def retrieval_backend(self) -> str:
        return self._options.retrieval_backend

    @retrieval_backend.setter
    def retrieval_backend(self, value: str) -> None:
        self._replace_options(retrieval_backend=value)

    @property
    def lsh_bands(self) -> int | None:
        return self._options.lsh_bands

    @lsh_bands.setter
    def lsh_bands(self, value: int | None) -> None:
        self._replace_options(lsh_bands=value)

    @property
    def lsh_rows(self) -> int | None:
        return self._options.lsh_rows

    @lsh_rows.setter
    def lsh_rows(self, value: int | None) -> None:
        self._replace_options(lsh_rows=value)

    def query(
        self,
        query_sketch: CorrelationSketch,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        exclude_id: str | None = None,
        true_correlations: dict[str, float] | None = None,
        rng: np.random.Generator | None = None,
        trace=None,
    ) -> QueryResult:
        """Evaluate one top-``k`` join-correlation query.

        Args:
            query_sketch: sketch of the query's ``⟨K_Q, Q⟩`` column pair.
            k: result-list size.
            scorer: scoring function name (see
                :data:`repro.ranking.SCORER_NAMES`).
            exclude_id: catalog id to exclude (the query itself, when the
                query column pair is part of the indexed corpus).
            true_correlations: optional ground truth per candidate id,
                carried through to the result for evaluation workloads.
            rng: generator for stochastic scorers (``random``) and the
                bootstrap; defaults to a fixed-seed generator so identical
                queries return identical rankings.
            trace: optional :class:`repro.obs.trace.Trace` to record the
                query's phase spans into (carried out via
                ``QueryResult.trace``). Tracing reads only the wall
                clock — never the rng — so results are bit-identical
                with or without it.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._check_scheme(query_sketch)
        if rng is None:
            rng = np.random.default_rng(7)
        return self.executor.execute(
            query_sketch,
            k,
            scorer,
            exclude_id=exclude_id,
            true_correlations=true_correlations,
            rng=rng,
            trace=trace,
        )

    def _check_scheme(self, query_sketch: CorrelationSketch) -> None:
        if query_sketch.hasher.scheme_id != self.catalog.hasher.scheme_id:
            # The scalar path would fail inside join_sketches at the first
            # candidate; the columnar join has no hasher to check against,
            # so enforce comparability up front for both executors.
            raise ValueError(
                "query sketch hashing scheme "
                f"{query_sketch.hasher!r} differs from catalog scheme "
                f"{self.catalog.hasher!r}"
            )

    def query_batch(
        self,
        query_sketches,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        exclude_ids: list[str | None] | None = None,
        true_correlations: list[dict[str, float] | None] | None = None,
        rng: np.random.Generator | None = None,
        traces: list | None = None,
    ) -> list[QueryResult]:
        """Evaluate many top-``k`` queries through one batched pipeline.

        The multi-query serving entry point: ``Q`` concurrent queries
        cost one stacked retrieval probe over their concatenated key
        hashes, one shared scoring tensor pass over every candidate join
        sample, and per-query ranking — instead of ``Q`` full pipeline
        round-trips (``benchmarks/bench_batch_query.py`` quantifies the
        throughput gain; CLI: ``query --queries-dir``). Amortization
        pays most when per-query fixed overhead is a large fraction of
        the pipeline (small-to-moderate sketch sizes, deep candidate
        pages); at very large sketch sizes the shared per-candidate join
        math dominates and the gain tapers toward parity.

        **Parity contract**: results are bit-identical to looping
        :meth:`query` over the sketches in order — for every scorer,
        both rng modes and both retrieval backends. When ``rng`` is
        None, each query gets the same fresh fixed-seed generator
        :meth:`query` would create; a caller-supplied generator is
        consumed in query order, exactly like the loop.
        (``retrieval_seconds``/``rerank_seconds`` are per-query
        *shares* of the batch phases — documented aggregates, the one
        field a loop cannot reproduce; per-query phase cost comes from
        ``traces``.)

        Args:
            query_sketches: the query sketches, one per query.
            k: result-list size per query.
            scorer: scoring function name, shared by the batch.
            exclude_ids: optional per-query catalog id to exclude
                (parallel to ``query_sketches``; None entries allowed).
            true_correlations: optional per-query ground-truth dicts.
            rng: generator for stochastic scorers and the bootstrap.
            traces: optional per-query :class:`repro.obs.trace.Trace`
                recorders (parallel to ``query_sketches``; None entries
                allowed) — see :meth:`query`.
        """
        query_sketches = list(query_sketches)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        n_queries = len(query_sketches)
        if exclude_ids is None:
            exclude_ids = [None] * n_queries
        if true_correlations is None:
            true_correlations = [None] * n_queries
        if len(exclude_ids) != n_queries or len(true_correlations) != n_queries:
            raise ValueError(
                f"{n_queries} query sketches but {len(exclude_ids)} exclude "
                f"ids and {len(true_correlations)} truth dicts"
            )
        if traces is not None and len(traces) != n_queries:
            raise ValueError(
                f"{n_queries} query sketches but {len(traces)} traces"
            )
        for sketch in query_sketches:
            self._check_scheme(sketch)
        if not self.vectorized:
            # Reference loop (trivially bit-identical to the batch path).
            return [
                self.query(
                    sketch, k=k, scorer=scorer,
                    exclude_id=exclude, true_correlations=truths, rng=rng,
                    trace=None if traces is None else traces[i],
                )
                for i, (sketch, exclude, truths) in enumerate(
                    zip(query_sketches, exclude_ids, true_correlations)
                )
            ]
        return self.executor.execute_batch(
            query_sketches,
            k,
            scorer,
            exclude_ids=exclude_ids,
            true_correlations=true_correlations,
            rng=rng,
            traces=traces,
        )

    def query_table(
        self,
        table,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        rng: np.random.Generator | None = None,
    ) -> dict[str, QueryResult]:
        """Evaluate one query per ⟨key, numeric⟩ column pair of ``table``.

        Convenience batch API for the common "here is my dataset, find me
        everything correlated with any of its columns" interaction: every
        column pair becomes a query sketch built with the catalog's
        hashing scheme, and results are keyed by ``pair_id``.

        Evaluation rides :meth:`query_batch`, so under the columnar
        executor the whole table costs one stacked retrieval probe and
        one shared scoring pass (plus the catalog's one-time frozen
        postings freeze) — with results bit-identical to querying each
        pair separately.
        """
        pairs = table.column_pairs()
        sketches = []
        for pair in pairs:
            sketch = CorrelationSketch(
                self.catalog.sketch_size,
                aggregate=self.catalog.aggregate,
                hasher=self.catalog.hasher,
                name=pair.pair_id,
            )
            keys, values = table.pair_arrays(pair)
            sketch.update_array(keys, values)
            sketches.append(sketch)
        results = self.query_batch(
            sketches,
            k=k,
            scorer=scorer,
            exclude_ids=[pair.pair_id for pair in pairs],
            rng=rng,
        )
        return {pair.pair_id: result for pair, result in zip(pairs, results)}
