"""Top-k join-correlation query evaluation (Definition 3 + Section 5.5).

The engine follows the paper's two-phase plan:

1. **Candidate retrieval** — query the inverted index for the
   ``retrieval_depth`` (paper: 100) corpus sketches with the largest
   key-hash overlap. Overlap is necessary for a usable join sample, so
   this prunes the vast majority of column pairs without any correlation
   work.
2. **Re-ranking** — join the query sketch with each candidate sketch,
   compute the per-candidate scoring statistics, apply the chosen scoring
   function (Section 4.4), and return the top-``k``.

The ``scorer`` argument of :meth:`JoinCorrelationEngine.query` (and the
CLI's ``repro-sketch query --scorer``) selects the Section 4.4 scoring
function by name: ``rp`` (s1, raw Pearson), ``rp_sez`` (s2, Fisher-z
penalized), ``rb_cib`` (s3, bootstrap-CI penalized — hundreds of
resamples per candidate), ``rp_cih`` (s4, Hoeffding-CI penalized — the
default and the paper's recommended latency/quality trade-off), plus the
``jc`` / ``jc_est`` containment and ``random`` baselines of Section 5.4.
See :data:`repro.ranking.scoring.SCORER_NAMES` — the name table in that
module's docs is the authoritative registry — and
:mod:`repro.ranking.ranker` for how scores become a ranked list.

Query sketches for in-memory tables are built through the vectorized
columnar path (:meth:`repro.core.sketch.CorrelationSketch.update_array`),
which is bit-identical to streaming construction.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.core.joined_sample import join_sketches
from repro.core.sketch import CorrelationSketch
from repro.index.catalog import SketchCatalog
from repro.kmv.estimators import unbiased_dv_estimate
from repro.ranking.ranker import RankedCandidate, rank_candidates
from repro.ranking.scoring import CandidateScores, candidate_scores


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one top-k join-correlation query.

    Attributes:
        ranked: the final ranked candidate list (top-k).
        candidates_considered: sketches retrieved by the overlap phase.
        retrieval_seconds: wall time of the index-probe phase.
        rerank_seconds: wall time of the join/score/sort phase.
    """

    ranked: list[RankedCandidate]
    candidates_considered: int
    retrieval_seconds: float
    rerank_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.retrieval_seconds + self.rerank_seconds


def _containment_estimate(
    query: CorrelationSketch, candidate: CorrelationSketch, overlap: int
) -> float:
    """Sketch-estimated containment of the query key set in the candidate.

    Mirrors Eq. 1: intersection cardinality estimated from the combined
    bottom-k, normalized by the query's distinct-key estimate.
    """
    d_query = query.distinct_keys()
    if d_query <= 0 or overlap <= 0:
        return 0.0
    if query.saw_all_keys and candidate.saw_all_keys:
        inter = float(overlap)
    else:
        q_hashes = query.key_hashes()
        c_hashes = candidate.key_hashes()
        combined_k = min(len(query), len(candidate))
        ordered = sorted(
            q_hashes | c_hashes, key=query.hasher.unit_hash_of_key_hash
        )[:combined_k]
        if not ordered:
            return 0.0
        kth = query.hasher.unit_hash_of_key_hash(ordered[-1])
        k_inter = sum(1 for kh in ordered if kh in q_hashes and kh in c_hashes)
        inter = (k_inter / len(ordered)) * unbiased_dv_estimate(len(ordered), kth)
    return max(0.0, min(1.0, inter / d_query))


class JoinCorrelationEngine:
    """Evaluates top-k join-correlation queries against a sketch catalog.

    Args:
        catalog: the populated sketch catalog.
        retrieval_depth: candidates fetched by key overlap before
            re-ranking (the paper's experiments use 100).
        min_overlap: minimum shared key hashes for a candidate to be
            considered joinable at all.
    """

    def __init__(
        self,
        catalog: SketchCatalog,
        retrieval_depth: int = 100,
        min_overlap: int = 1,
    ) -> None:
        if retrieval_depth <= 0:
            raise ValueError(f"retrieval_depth must be positive, got {retrieval_depth}")
        self.catalog = catalog
        self.retrieval_depth = retrieval_depth
        self.min_overlap = min_overlap

    def query(
        self,
        query_sketch: CorrelationSketch,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        exclude_id: str | None = None,
        true_correlations: dict[str, float] | None = None,
        rng: np.random.Generator | None = None,
    ) -> QueryResult:
        """Evaluate one top-``k`` join-correlation query.

        Args:
            query_sketch: sketch of the query's ``⟨K_Q, Q⟩`` column pair.
            k: result-list size.
            scorer: scoring function name (see
                :data:`repro.ranking.SCORER_NAMES`).
            exclude_id: catalog id to exclude (the query itself, when the
                query column pair is part of the indexed corpus).
            true_correlations: optional ground truth per candidate id,
                carried through to the result for evaluation workloads.
            rng: generator for stochastic scorers (``random``) and the
                bootstrap; defaults to a fixed-seed generator so identical
                queries return identical rankings.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if rng is None:
            rng = np.random.default_rng(7)

        t0 = time.perf_counter()
        hits = self.catalog.index.top_overlap(
            query_sketch.key_hashes(),
            self.retrieval_depth,
            exclude=exclude_id,
            min_overlap=self.min_overlap,
        )
        t1 = time.perf_counter()

        # The PM1 bootstrap costs hundreds of resamples per candidate;
        # compute it only when the chosen scorer reads r_b / cib.
        needs_bootstrap = scorer == "rb_cib"

        ids: list[str] = []
        stats: list[CandidateScores] = []
        truths: list[float] = []
        for sid, overlap in hits:
            candidate = self.catalog.get(sid)
            sample = join_sketches(query_sketch, candidate).drop_nan()
            containment = _containment_estimate(query_sketch, candidate, overlap)
            stat = candidate_scores(
                sample,
                containment_est=containment,
                rng=rng,
                with_bootstrap=needs_bootstrap,
            )
            ids.append(sid)
            stats.append(stat)
            if true_correlations is not None:
                truths.append(true_correlations.get(sid, math.nan))
            else:
                truths.append(math.nan)

        ranked = rank_candidates(
            ids, stats, scorer, true_correlations=truths, rng=rng
        )[:k]
        t2 = time.perf_counter()

        return QueryResult(
            ranked=ranked,
            candidates_considered=len(hits),
            retrieval_seconds=t1 - t0,
            rerank_seconds=t2 - t1,
        )

    def query_table(
        self,
        table,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        rng: np.random.Generator | None = None,
    ) -> dict[str, QueryResult]:
        """Evaluate one query per ⟨key, numeric⟩ column pair of ``table``.

        Convenience batch API for the common "here is my dataset, find me
        everything correlated with any of its columns" interaction: every
        column pair becomes a query sketch built with the catalog's
        hashing scheme, and results are keyed by ``pair_id``.
        """
        results: dict[str, QueryResult] = {}
        for pair in table.column_pairs():
            sketch = CorrelationSketch(
                self.catalog.sketch_size,
                aggregate=self.catalog.aggregate,
                hasher=self.catalog.hasher,
                name=pair.pair_id,
            )
            keys, values = table.pair_arrays(pair)
            sketch.update_array(keys, values)
            results[pair.pair_id] = self.query(
                sketch, k=k, scorer=scorer, exclude_id=pair.pair_id, rng=rng
            )
        return results
