"""Top-k join-correlation query evaluation (Definition 3 + Section 5.5).

The engine follows the paper's two-phase plan:

1. **Candidate retrieval** — query the inverted index for the
   ``retrieval_depth`` (paper: 100) corpus sketches with the largest
   key-hash overlap. Overlap is necessary for a usable join sample, so
   this prunes the vast majority of column pairs without any correlation
   work.
2. **Re-ranking** — join the query sketch with each candidate sketch,
   compute the per-candidate scoring statistics, apply the chosen scoring
   function (Section 4.4), and return the top-``k``.

The ``scorer`` argument of :meth:`JoinCorrelationEngine.query` (and the
CLI's ``repro-sketch query --scorer``) selects the Section 4.4 scoring
function by name: ``rp`` (s1, raw Pearson), ``rp_sez`` (s2, Fisher-z
penalized), ``rb_cib`` (s3, bootstrap-CI penalized — hundreds of
resamples per candidate), ``rp_cih`` (s4, Hoeffding-CI penalized — the
default and the paper's recommended latency/quality trade-off), plus the
``jc`` / ``jc_est`` containment and ``random`` baselines of Section 5.4.
See :data:`repro.ranking.scoring.SCORER_NAMES` — the name table in that
module's docs is the authoritative registry — and
:mod:`repro.ranking.ranker` for how scores become a ranked list.

Query sketches for in-memory tables are built through the vectorized
columnar path (:meth:`repro.core.sketch.CorrelationSketch.update_array`),
which is bit-identical to streaming construction.

Two interchangeable :class:`QueryExecutor` strategies evaluate the plan:

* :class:`ColumnarQueryExecutor` (default) — the whole pipeline runs on
  arrays: the retrieval probe hits the catalog's frozen CSR postings
  (:meth:`SketchCatalog.frozen_postings`), every candidate join is a
  sorted-array merge of cached :class:`~repro.core.sketch.SketchColumns`
  views, containment estimates come from one vectorized DV-estimator
  call, and the scoring statistics are computed for all candidates at
  once (:func:`repro.ranking.scoring.candidate_scores_batch`).
* :class:`ScalarQueryExecutor` — the row-at-a-time reference
  implementation (dict-of-lists ScanCount, per-candidate dict joins and
  statistics), kept as the baseline the parity suite and the
  ``bench_query_eval`` speedup benchmark compare against.

Both return the same rankings; select with
``JoinCorrelationEngine(..., vectorized=False)`` or the CLI's
``query --no-vectorized-query``.

Orthogonally, ``rng_mode`` selects how ``rb_cib`` queries run the PM1
bootstrap across the candidate page: ``"batched"`` (default) drives all
candidates through the cross-candidate resampling engine
(:func:`repro.correlation.bootstrap.pm1_interval_batch`); ``"compat"``
reproduces the historical per-candidate rng stream bit-for-bit. Both
executors honor both modes with bit-identical bootstrap statistics for a
given mode, so executor parity holds under either.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, replace

import numpy as np

from repro.core.joined_sample import JoinedSample, join_sketches
from repro.core.sketch import CorrelationSketch, SketchColumns
from repro.correlation.bootstrap import pm1_interval_batch
from repro.index.catalog import SketchCatalog
from repro.kmv.estimators import unbiased_dv_estimate, unbiased_dv_estimate_batch
from repro.ranking.ranker import RankedCandidate, rank_candidates
from repro.ranking.scoring import (
    RNG_MODES,
    CandidateScores,
    candidate_scores,
    candidate_scores_batch,
    cib_factor,
)


@dataclass(frozen=True)
class QueryResult:
    """Outcome of one top-k join-correlation query.

    Attributes:
        ranked: the final ranked candidate list (top-k).
        candidates_considered: sketches retrieved by the overlap phase.
        retrieval_seconds: wall time of the index-probe phase.
        rerank_seconds: wall time of the join/score/sort phase.
    """

    ranked: list[RankedCandidate]
    candidates_considered: int
    retrieval_seconds: float
    rerank_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.retrieval_seconds + self.rerank_seconds


def _containment_estimate(
    query: CorrelationSketch, candidate: CorrelationSketch, overlap: int
) -> float:
    """Sketch-estimated containment of the query key set in the candidate.

    Mirrors Eq. 1: intersection cardinality estimated from the combined
    bottom-k, normalized by the query's distinct-key estimate.
    """
    d_query = query.distinct_keys()
    if d_query <= 0 or overlap <= 0:
        return 0.0
    if query.saw_all_keys and candidate.saw_all_keys:
        inter = float(overlap)
    else:
        q_hashes = query.key_hashes()
        c_hashes = candidate.key_hashes()
        combined_k = min(len(query), len(candidate))
        ordered = sorted(
            q_hashes | c_hashes, key=query.hasher.unit_hash_of_key_hash
        )[:combined_k]
        if not ordered:
            return 0.0
        kth = query.hasher.unit_hash_of_key_hash(ordered[-1])
        k_inter = sum(1 for kh in ordered if kh in q_hashes and kh in c_hashes)
        inter = (k_inter / len(ordered)) * unbiased_dv_estimate(len(ordered), kth)
    return max(0.0, min(1.0, inter / d_query))


@dataclass(frozen=True)
class _UnionStats:
    """Per-candidate combined-bottom-k statistics for Eq. 1.

    ``k_len``/``kth``/``k_inter`` describe the first ``combined_k``
    entries of the rank-ordered union of query and candidate hashes;
    ``exact`` marks the both-sketches-saw-everything shortcut where the
    raw overlap count is the exact intersection size.
    """

    k_len: int
    kth: float
    k_inter: int
    exact: bool


def _candidate_membership(
    query: SketchColumns, candidate: SketchColumns
) -> tuple[np.ndarray, np.ndarray]:
    """Probe the candidate's hashes against the query's sorted hashes.

    Returns ``(in_query, positions)``: a boolean membership mask over the
    candidate's entries and, for members, their index in the query's
    arrays. One ``np.searchsorted`` pass serves both the sketch join and
    the containment union statistics — the two hot per-candidate steps.
    """
    pos = np.searchsorted(query.key_hashes, candidate.key_hashes)
    pos_clipped = np.minimum(pos, max(query.size - 1, 0))
    if query.size:
        in_query = query.key_hashes[pos_clipped] == candidate.key_hashes
    else:
        in_query = np.zeros(candidate.size, dtype=bool)
    return in_query, pos_clipped


def _union_stats_from_membership(
    query: SketchColumns, candidate: SketchColumns, in_query: np.ndarray
) -> _UnionStats:
    """Combined-bottom-k statistics given a precomputed membership mask.

    Mirrors the sorted-union step of :func:`_containment_estimate`
    without re-sorting hash sets per candidate: dedup via the mask, then
    the ``k``-th union rank from one ``np.partition`` over cached ranks.
    """
    if query.saw_all_keys and candidate.saw_all_keys:
        return _UnionStats(k_len=0, kth=1.0, k_inter=0, exact=True)
    union_ranks = np.concatenate([query.ranks, candidate.ranks[~in_query]])
    combined_k = min(query.size, candidate.size)
    k_len = min(combined_k, union_ranks.size)
    if k_len == 0:
        return _UnionStats(k_len=0, kth=1.0, k_inter=0, exact=False)
    if k_len == union_ranks.size:
        kth = float(union_ranks.max())
    else:
        kth = float(np.partition(union_ranks, k_len - 1)[k_len - 1])
    # Ranks are injective over key hashes, so "within the first k_len of
    # the union" is exactly "rank <= kth".
    k_inter = int(np.count_nonzero(candidate.ranks[in_query] <= kth))
    return _UnionStats(k_len=k_len, kth=kth, k_inter=k_inter, exact=False)


def _union_stats(query: SketchColumns, candidate: SketchColumns) -> _UnionStats:
    """Combined-bottom-k statistics from two cached columnar views."""
    return _union_stats_from_membership(
        query, candidate, _candidate_membership(query, candidate)[0]
    )


def _join_from_membership(
    query: SketchColumns,
    candidate: SketchColumns,
    in_query: np.ndarray,
    positions: np.ndarray,
) -> JoinedSample:
    """Materialize the sketch join from a precomputed membership probe.

    Bit-identical to :func:`repro.core.joined_sample.join_columns` (both
    sides store the same rank for a shared hash, so ordering by the
    candidate's ranks reproduces the canonical ascending-rank order).
    """
    cand_idx = np.nonzero(in_query)[0]
    query_idx = positions[cand_idx]
    order = np.argsort(candidate.ranks[cand_idx])
    cand_idx = cand_idx[order]
    query_idx = query_idx[order]
    return JoinedSample(
        key_hashes=candidate.key_hashes[cand_idx],
        x=query.values[query_idx],
        y=candidate.values[cand_idx],
        x_range=query.value_range,
        y_range=candidate.value_range,
    )


def _containment_estimates_batch(
    d_query: float, overlaps: list[int], stats: list[_UnionStats]
) -> list[float]:
    """Vectorized Eq. 1 over all candidates of one query.

    Applies the same arithmetic as :func:`_containment_estimate`
    elementwise — one :func:`unbiased_dv_estimate_batch` call for the
    whole candidate list — so each estimate is bit-identical to the
    scalar function's.
    """
    count = len(stats)
    if count == 0:
        return []
    if d_query <= 0:
        return [0.0] * count
    k_len = np.asarray([s.k_len for s in stats], dtype=np.int64)
    kth = np.asarray([s.kth for s in stats], dtype=np.float64)
    k_inter = np.asarray([s.k_inter for s in stats], dtype=np.float64)
    exact = np.asarray([s.exact for s in stats], dtype=bool)
    overlap_arr = np.asarray(overlaps, dtype=np.int64)

    dv = unbiased_dv_estimate_batch(
        k_len, kth, np.zeros(count, dtype=bool)
    )
    safe_len = np.maximum(k_len, 1).astype(np.float64)
    inter = (k_inter / safe_len) * dv
    inter = np.where(exact, overlap_arr.astype(np.float64), inter)
    contained = np.minimum(1.0, np.maximum(0.0, inter / d_query))
    zero = (~exact & (k_len == 0)) | (overlap_arr <= 0)
    return [0.0 if z else float(c) for z, c in zip(zero, contained)]


def _apply_batched_bootstrap(
    samples: list[JoinedSample],
    stats: list[CandidateScores],
    rng: np.random.Generator,
) -> list[CandidateScores]:
    """Fill ``r_bootstrap``/``cib_factor`` via the cross-candidate engine.

    Shared by both executors under ``rng_mode="batched"``: the eligibility
    mask and candidate order derive from already-computed statistics, so
    feeding the same samples and rng produces bit-identical bootstrap
    columns regardless of which executor computed the rest.
    """
    eligible = [
        s.size >= 2 and not math.isnan(st.r_pearson)
        for s, st in zip(samples, stats)
    ]
    boots = pm1_interval_batch(
        [s.x for s in samples],
        [s.y for s in samples],
        rng=rng,
        active=eligible,
    )
    return [
        replace(
            st,
            r_bootstrap=boot.estimate,
            cib_factor=cib_factor(boot.low, boot.high),
        )
        if ok
        else st
        for st, boot, ok in zip(stats, boots, eligible)
    ]


class QueryExecutor:
    """Strategy interface for one top-``k`` query evaluation.

    Executors read ``catalog`` / ``retrieval_depth`` / ``min_overlap``
    from the owning engine at execution time, so tuning the engine after
    construction behaves identically under both strategies. Inputs are
    validated by :meth:`JoinCorrelationEngine.query` before dispatch.
    """

    def __init__(self, engine: "JoinCorrelationEngine") -> None:
        self.engine = engine

    def execute(
        self,
        query_sketch: CorrelationSketch,
        k: int,
        scorer: str,
        *,
        exclude_id: str | None,
        true_correlations: dict[str, float] | None,
        rng: np.random.Generator,
    ) -> QueryResult:
        raise NotImplementedError

    @staticmethod
    def _truths(
        ids: list[str], true_correlations: dict[str, float] | None
    ) -> list[float]:
        if true_correlations is None:
            return [math.nan] * len(ids)
        return [true_correlations.get(sid, math.nan) for sid in ids]


class ScalarQueryExecutor(QueryExecutor):
    """Row-at-a-time reference path (pre-columnar behavior, bit for bit
    under ``rng_mode="compat"``).

    One dict-based ScanCount probe, then per candidate: a dict-set sketch
    join, a sorted-union containment estimate and a full
    :func:`candidate_scores` round-trip. Under ``rng_mode="batched"`` the
    PM1 bootstrap alone moves to the shared cross-candidate engine so the
    scalar path stays ranking-identical to the columnar one in every mode.
    """

    def execute(
        self,
        query_sketch: CorrelationSketch,
        k: int,
        scorer: str,
        *,
        exclude_id: str | None,
        true_correlations: dict[str, float] | None,
        rng: np.random.Generator,
    ) -> QueryResult:
        engine = self.engine
        t0 = time.perf_counter()
        hits = engine.catalog.index.top_overlap(
            query_sketch.key_hashes(),
            engine.retrieval_depth,
            exclude=exclude_id,
            min_overlap=engine.min_overlap,
        )
        t1 = time.perf_counter()

        # The PM1 bootstrap costs hundreds of resamples per candidate;
        # compute it only when the chosen scorer reads r_b / cib. Under
        # rng_mode="batched" it runs after the per-candidate loop so both
        # executors share one cross-candidate engine invocation (and hence
        # bit-identical bootstrap statistics).
        needs_bootstrap = scorer == "rb_cib"
        per_candidate_bootstrap = needs_bootstrap and engine.rng_mode == "compat"

        ids: list[str] = []
        samples: list[JoinedSample] = []
        stats: list[CandidateScores] = []
        for sid, overlap in hits:
            candidate = engine.catalog.get(sid)
            sample = join_sketches(query_sketch, candidate).drop_nan()
            containment = _containment_estimate(query_sketch, candidate, overlap)
            stat = candidate_scores(
                sample,
                containment_est=containment,
                rng=rng,
                with_bootstrap=per_candidate_bootstrap,
            )
            ids.append(sid)
            samples.append(sample)
            stats.append(stat)

        if needs_bootstrap and not per_candidate_bootstrap:
            stats = _apply_batched_bootstrap(samples, stats, rng)

        ranked = rank_candidates(
            ids, stats, scorer,
            true_correlations=self._truths(ids, true_correlations),
            rng=rng,
        )[:k]
        t2 = time.perf_counter()

        return QueryResult(
            ranked=ranked,
            candidates_considered=len(hits),
            retrieval_seconds=t1 - t0,
            rerank_seconds=t2 - t1,
        )


class ColumnarQueryExecutor(QueryExecutor):
    """Vectorized executor: frozen postings, merge joins, batch scoring.

    Produces the same rankings as :class:`ScalarQueryExecutor` (the
    parity suite pins this): retrieval counts, join samples, containment
    estimates and bootstrap statistics are bit-identical; the batched
    moment statistics agree to within float summation order.
    """

    def execute(
        self,
        query_sketch: CorrelationSketch,
        k: int,
        scorer: str,
        *,
        exclude_id: str | None,
        true_correlations: dict[str, float] | None,
        rng: np.random.Generator,
    ) -> QueryResult:
        engine = self.engine
        t0 = time.perf_counter()
        query_cols = query_sketch.columnar()
        hits = engine.catalog.frozen_postings().top_overlap(
            query_cols.key_hashes,
            engine.retrieval_depth,
            exclude=exclude_id,
            min_overlap=engine.min_overlap,
        )
        t1 = time.perf_counter()

        needs_bootstrap = scorer == "rb_cib"

        ids: list[str] = []
        samples: list[JoinedSample] = []
        union_stats: list[_UnionStats] = []
        overlaps: list[int] = []
        for sid, overlap in hits:
            candidate_cols = engine.catalog.sketch_columns(sid)
            in_query, positions = _candidate_membership(query_cols, candidate_cols)
            ids.append(sid)
            samples.append(
                _join_from_membership(
                    query_cols, candidate_cols, in_query, positions
                ).drop_nan()
            )
            union_stats.append(
                _union_stats_from_membership(query_cols, candidate_cols, in_query)
            )
            overlaps.append(overlap)

        containments = _containment_estimates_batch(
            query_sketch.distinct_keys(), overlaps, union_stats
        )
        stats = candidate_scores_batch(
            samples,
            containment_ests=containments,
            rng=rng,
            with_bootstrap=needs_bootstrap,
            rng_mode=engine.rng_mode,
        )

        ranked = rank_candidates(
            ids, stats, scorer,
            true_correlations=self._truths(ids, true_correlations),
            rng=rng,
        )[:k]
        t2 = time.perf_counter()

        return QueryResult(
            ranked=ranked,
            candidates_considered=len(hits),
            retrieval_seconds=t1 - t0,
            rerank_seconds=t2 - t1,
        )


class JoinCorrelationEngine:
    """Evaluates top-k join-correlation queries against a sketch catalog.

    Args:
        catalog: the populated sketch catalog.
        retrieval_depth: candidates fetched by key overlap before
            re-ranking (the paper's experiments use 100).
        min_overlap: minimum shared key hashes for a candidate to be
            considered joinable at all.
        vectorized: evaluate queries with the columnar executor
            (default). Disable to run the row-at-a-time reference path —
            same rankings, ~an order of magnitude slower re-ranking; used
            for debugging and as the benchmark baseline.
        rng_mode: how ``rb_cib`` queries run the PM1 bootstrap across the
            candidate page (see :data:`repro.ranking.scoring.RNG_MODES`):
            ``"batched"`` (default) resamples all candidates through the
            cross-candidate engine — statistically equivalent scores, a
            multiple faster; ``"compat"`` reproduces the per-candidate
            rng stream bit-for-bit. Both executors honor both modes, so
            scalar/columnar rankings stay identical either way.
    """

    def __init__(
        self,
        catalog: SketchCatalog,
        retrieval_depth: int = 100,
        min_overlap: int = 1,
        *,
        vectorized: bool = True,
        rng_mode: str = "batched",
    ) -> None:
        if retrieval_depth <= 0:
            raise ValueError(f"retrieval_depth must be positive, got {retrieval_depth}")
        if rng_mode not in RNG_MODES:
            raise ValueError(
                f"unknown rng_mode {rng_mode!r}; expected one of {RNG_MODES}"
            )
        self.catalog = catalog
        self.retrieval_depth = retrieval_depth
        self.min_overlap = min_overlap
        self.vectorized = vectorized
        self.rng_mode = rng_mode
        self.executor: QueryExecutor = (
            ColumnarQueryExecutor(self) if vectorized else ScalarQueryExecutor(self)
        )

    def query(
        self,
        query_sketch: CorrelationSketch,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        exclude_id: str | None = None,
        true_correlations: dict[str, float] | None = None,
        rng: np.random.Generator | None = None,
    ) -> QueryResult:
        """Evaluate one top-``k`` join-correlation query.

        Args:
            query_sketch: sketch of the query's ``⟨K_Q, Q⟩`` column pair.
            k: result-list size.
            scorer: scoring function name (see
                :data:`repro.ranking.SCORER_NAMES`).
            exclude_id: catalog id to exclude (the query itself, when the
                query column pair is part of the indexed corpus).
            true_correlations: optional ground truth per candidate id,
                carried through to the result for evaluation workloads.
            rng: generator for stochastic scorers (``random``) and the
                bootstrap; defaults to a fixed-seed generator so identical
                queries return identical rankings.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if query_sketch.hasher.scheme_id != self.catalog.hasher.scheme_id:
            # The scalar path would fail inside join_sketches at the first
            # candidate; the columnar join has no hasher to check against,
            # so enforce comparability up front for both executors.
            raise ValueError(
                "query sketch hashing scheme "
                f"{query_sketch.hasher!r} differs from catalog scheme "
                f"{self.catalog.hasher!r}"
            )
        if rng is None:
            rng = np.random.default_rng(7)
        return self.executor.execute(
            query_sketch,
            k,
            scorer,
            exclude_id=exclude_id,
            true_correlations=true_correlations,
            rng=rng,
        )

    def query_table(
        self,
        table,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        rng: np.random.Generator | None = None,
    ) -> dict[str, QueryResult]:
        """Evaluate one query per ⟨key, numeric⟩ column pair of ``table``.

        Convenience batch API for the common "here is my dataset, find me
        everything correlated with any of its columns" interaction: every
        column pair becomes a query sketch built with the catalog's
        hashing scheme, and results are keyed by ``pair_id``.

        Under the columnar executor the catalog's frozen postings
        snapshot is built by the first query and reused by every
        subsequent one (the catalog is not mutated between queries), so
        the freeze cost is amortized across the whole batch.
        """
        results: dict[str, QueryResult] = {}
        for pair in table.column_pairs():
            sketch = CorrelationSketch(
                self.catalog.sketch_size,
                aggregate=self.catalog.aggregate,
                hasher=self.catalog.hasher,
                name=pair.pair_id,
            )
            keys, values = table.pair_arrays(pair)
            sketch.update_array(keys, values)
            results[pair.pair_id] = self.query(
                sketch, k=k, scorer=scorer, exclude_id=pair.pair_id, rng=rng
            )
        return results
