"""Contiguous mmap-able arena files: the zero-copy snapshot container.

The npz snapshot (:mod:`repro.index.snapshot`) is a zip of ``.npy``
members: loading it decompresses and copies every array into the
process heap, so cold-start cost is O(catalog bytes) *per process* and
two serving processes hold two private copies of the same frozen
arrays. The arena is the zero-copy alternative: every numeric array is
packed into **one** contiguous file at a 64-byte-aligned offset, with a
small JSON header describing the extents, so a reader can map the whole
file once (read-only ``mmap`` wrapped by ``np.frombuffer``) and hand
out read-only array views into the mapping —

* load time is O(metadata): parse the header, map the file, build
  views. No array data is read until a query touches it (the kernel
  faults pages in on demand);
* the mapped pages are file-backed and shared: every process serving
  the same arena — forked or independently started — references the
  same physical pages through the page cache, so N workers cost one
  catalog's worth of resident memory, not N;
* views are read-only (``ACCESS_READ``), so nothing can scribble on
  the shared pages; mutations go to heap-native delta structures
  (see the copy-on-mutation rules in
  :class:`repro.index.catalog.SketchCatalog`).

File layout::

    [0:8)    magic  b"RSKARENA"
    [8:16)   header length H (uint64, little-endian)
    [16:16+H) header JSON (utf-8)
    ...      zero padding to the next 64-byte boundary (= data start)
    ...      array payloads, each 64-byte aligned, in header order

The header carries everything non-numeric (format version, catalog
config, string members) plus an ``arrays`` table of
``name -> {dtype, shape, offset}`` extents with offsets relative to the
data start — relative offsets keep the header's own length out of the
layout computation. What the header *means* is defined by the snapshot
module; this module only knows how to pack and map arrays.

Writes are atomic *and durable* (:func:`atomic_write`): the payload
lands in a temp file in the target directory, the temp file is
fsynced, ``os.replace`` swaps it in, and the containing directory
is fsynced — so a crash mid-save can never corrupt an existing
snapshot, a power loss after a completed save cannot lose the published
file, and replacing an arena under a live mapping is safe (POSIX keeps
the old inode alive for existing mappings; the old catalog keeps
serving its old bytes). The header additionally carries a CRC32 of the
packed payload (``payload_crc32``), verified on demand by
:meth:`ArenaReader.verify_payload` — never on load, which must stay
O(metadata); files written before checksums load unchecked.
"""

from __future__ import annotations

import json
import math
import mmap
import os
import struct
import sys
import tempfile
import zlib
from pathlib import Path
from typing import Callable

import numpy as np

#: Leading magic of every arena file (8 bytes, never valid zip or JSON).
MAGIC = b"RSKARENA"

#: Array payloads start on multiples of this (covers every numeric dtype
#: alignment and matches cache-line size).
ALIGNMENT = 64

#: magic + uint64 header length.
_PREFIX_BYTES = 16


def _align(offset: int) -> int:
    return (offset + ALIGNMENT - 1) & ~(ALIGNMENT - 1)


def _fault(site: str, **context) -> None:
    """Fire an injected fault when the fault module is loaded and armed.

    Checked via ``sys.modules`` so a process that never imports
    :mod:`repro.serving.faults` pays nothing here — a plan cannot exist
    without that module being imported first.
    """
    faults = sys.modules.get("repro.serving.faults")
    if faults is not None:
        faults.maybe_fire(site, **context)


def has_arena_magic(path: str | Path) -> bool:
    """True when the file starts with the arena magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


# -- atomic persistence -------------------------------------------------------


def atomic_write(path: str | Path, write: Callable) -> None:
    """Write a file atomically and durably: temp file in the target
    directory, fsync, ``os.replace`` into place, fsync the directory.

    ``write`` receives the open binary file object. On any failure the
    temp file is removed and the original (if any) is untouched — the
    shared crash-safety primitive behind every snapshot, arena, JSON
    catalog and manifest write. The fsync pair closes the durability
    gap ``os.replace`` alone leaves open: without it a power loss can
    publish a rename whose data pages (or directory entry) never
    reached disk, leaving a torn or missing "committed" file.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent if str(path.parent) else ".",
        prefix=f".{path.name}.",
        suffix=".tmp",
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            write(handle)
            handle.flush()
            _fault("fsync", path=path, target="file")
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        _fault("fsync", path=path, target="dir")
        _fsync_directory(path.parent if str(path.parent) else Path("."))
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _fsync_directory(directory: Path) -> None:
    """fsync a directory so a just-published rename survives power loss.

    Best-effort on platforms/filesystems where directories cannot be
    opened or synced (``O_DIRECTORY`` is POSIX-only).
    """
    flag = getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, os.O_RDONLY | flag)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str) -> None:
    """:func:`atomic_write` for text payloads (JSON catalogs, manifests)."""
    atomic_write(path, lambda handle: handle.write(text.encode("utf-8")))


# -- writing ------------------------------------------------------------------


def write_arena(
    path: str | Path, meta: dict, arrays: dict[str, np.ndarray]
) -> None:
    """Pack ``arrays`` into one aligned arena file with ``meta`` as header.

    ``meta`` must be JSON-serializable and must not contain an
    ``"arrays"``, ``"data_bytes"`` or ``"payload_crc32"`` key (all are
    filled in here). Each array is written C-contiguous at a
    64-byte-aligned offset; the header records ``{dtype, shape,
    offset}`` per array, offsets relative to the (aligned) end of the
    header, plus a CRC32 over the entire data region (padding
    included). The write is atomic and durable.
    """
    reserved = ("arrays", "data_bytes", "payload_crc32")
    if any(key in meta for key in reserved):
        raise ValueError(f"meta must not predefine any of {reserved}")
    payload: list[tuple[int, np.ndarray]] = []
    extents: dict[str, dict] = {}
    offset = 0
    for name, array in arrays.items():
        array = np.ascontiguousarray(array)
        offset = _align(offset)
        extents[name] = {
            "dtype": array.dtype.str,
            "shape": list(array.shape),
            "offset": offset,
        }
        payload.append((offset, array))
        offset += array.nbytes
    crc = 0
    position = 0
    for rel, array in payload:
        crc = zlib.crc32(b"\0" * (rel - position), crc)
        crc = zlib.crc32(memoryview(array).cast("B"), crc)
        position = rel + array.nbytes
    header = dict(meta)
    header["arrays"] = extents
    header["data_bytes"] = offset
    header["payload_crc32"] = crc
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    data_start = _align(_PREFIX_BYTES + len(header_bytes))

    def _write(handle) -> None:
        handle.write(MAGIC)
        handle.write(struct.pack("<Q", len(header_bytes)))
        handle.write(header_bytes)
        handle.write(b"\0" * (data_start - _PREFIX_BYTES - len(header_bytes)))
        position = 0
        for rel, array in payload:
            handle.write(b"\0" * (rel - position))
            handle.write(memoryview(array).cast("B"))
            position = rel + array.nbytes

    atomic_write(path, _write)


# -- reading ------------------------------------------------------------------


class ArenaReader:
    """One read-only mapping of an arena file, handing out array views.

    The reader owns a single read-only ``mmap`` over the whole file,
    exposed as one plain byte ``ndarray`` (``np.frombuffer``, *not*
    :class:`numpy.memmap` — every candidate a query touches slices the
    mapping a few times, and plain-ndarray views skip the memmap
    subclass's per-slice bookkeeping). Every :meth:`array` call is a
    zero-copy, read-only view into it. Holding any view keeps the
    mapping (and, on POSIX, the underlying inode — even a deleted or
    replaced one) alive.
    """

    def __init__(self, path: str | Path) -> None:
        path = Path(path)
        with open(path, "rb") as handle:
            prefix = handle.read(_PREFIX_BYTES)
            if len(prefix) < _PREFIX_BYTES or prefix[:8] != MAGIC:
                raise ValueError(f"{path} is not an arena snapshot")
            (header_length,) = struct.unpack("<Q", prefix[8:])
            header_bytes = handle.read(header_length)
            if len(header_bytes) != header_length:
                raise ValueError(f"truncated arena header in {path}")
            try:
                self.meta: dict = json.loads(header_bytes.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ValueError(
                    f"corrupt arena header in {path}: {exc}"
                ) from exc
            # The mapping outlives the descriptor (POSIX keeps mapped
            # pages valid after close).
            self._buffer = mmap.mmap(
                handle.fileno(), 0, access=mmap.ACCESS_READ
            )
        self.path = path
        self.header_bytes = _PREFIX_BYTES + header_length
        self.extents: dict[str, dict] = self.meta.get("arrays", {})
        self.data_bytes = int(self.meta.get("data_bytes", 0))
        self._data_start = _align(self.header_bytes)
        expected = self._data_start + self.data_bytes
        self._map = np.frombuffer(self._buffer, dtype=np.uint8)
        if self._map.shape[0] < expected:
            raise ValueError(
                f"truncated arena {path}: {self._map.shape[0]} bytes on "
                f"disk, header promises {expected}"
            )

    def __contains__(self, name: str) -> bool:
        return name in self.extents

    def array(self, name: str) -> np.ndarray:
        """Read-only view of the named array (no data is read or copied).

        Raises:
            KeyError: for names the header does not list.
        """
        try:
            spec = self.extents[name]
        except KeyError:
            raise KeyError(
                f"no array {name!r} in arena {self.path} "
                f"(has: {sorted(self.extents)})"
            ) from None
        dtype = np.dtype(spec["dtype"])
        shape = tuple(spec["shape"])
        start = self._data_start + int(spec["offset"])
        nbytes = dtype.itemsize * math.prod(shape)
        return self._map[start : start + nbytes].view(dtype).reshape(shape)

    @property
    def payload_crc32(self) -> int | None:
        """Checksum recorded at write time; ``None`` for pre-checksum files."""
        value = self.meta.get("payload_crc32")
        return None if value is None else int(value)

    def verify_payload(self) -> bool | None:
        """Checksum the mapped data region against the header's CRC32.

        Returns ``True``/``False`` for files carrying a checksum, or
        ``None`` for files written before checksums existed (those load
        and serve unchecked — the compatibility contract). This reads
        every payload page, so it is an explicit verification step
        (``catalog verify`` / ``shard verify``), never part of load.
        """
        recorded = self.payload_crc32
        if recorded is None:
            return None
        region = self._map[self._data_start : self._data_start + self.data_bytes]
        return zlib.crc32(region) == recorded

    def owns(self, array: np.ndarray) -> bool:
        """True when ``array`` is a view into this arena's mapping."""
        base = array
        while base is not None:
            if base is self._map:
                return True
            base = getattr(base, "base", None)
        return False


# -- storage introspection ----------------------------------------------------


def backing_storage(*arrays: np.ndarray | None) -> str:
    """``"mmap"`` when any array is backed by a memory mapping, else
    ``"heap"``.

    Walks each array's ``base`` chain looking for a memory mapping —
    either an :class:`mmap.mmap` buffer at the end of the chain (the
    arena reader's single mapping, possibly behind the ``memoryview``
    that ``np.frombuffer`` interposes) or a :class:`numpy.memmap`
    anywhere along it. ``None`` entries are skipped, so callers can
    pass optional members directly.
    """
    for array in arrays:
        base = array
        while isinstance(base, np.ndarray):
            if isinstance(base, np.memmap):
                return "mmap"
            base = base.base
        if isinstance(base, memoryview):
            base = base.obj
        if isinstance(base, mmap.mmap):
            return "mmap"
    return "heap"
