"""Sharded catalog + scatter-gather serving subsystem.

The horizontal-scaling layer over :mod:`repro.index`: a
:class:`ShardedCatalog` partitions sketches across independent
:class:`~repro.index.catalog.SketchCatalog` shards (deterministic
hash-by-id placement, least-loaded table routing, incremental add and
remove with per-shard index invalidation), a :class:`ShardRouter`
evaluates top-k queries scatter-gather with results bit-identical to a
monolithic catalog, and :mod:`repro.serving.manifest` persists the whole
thing as one directory of per-shard binary snapshots under a versioned
``manifest.json`` with lazy per-shard rehydration. Worker pools
(:mod:`repro.serving.workers`) supply shard-level thread fan-out and
query-level process parallelism.
"""

from repro.serving.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    load_sharded,
    read_manifest,
    save_sharded,
)
from repro.serving.router import ShardRouter, merge_shard_hits
from repro.serving.shards import ShardedCatalog
from repro.serving.workers import QueryWorkerPool, ShardWorkerPool

__all__ = [
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "QueryWorkerPool",
    "ShardRouter",
    "ShardWorkerPool",
    "ShardedCatalog",
    "load_sharded",
    "merge_shard_hits",
    "read_manifest",
    "save_sharded",
]
