"""Sharded catalog + scatter-gather serving subsystem.

The horizontal-scaling layer over :mod:`repro.index`: a
:class:`ShardedCatalog` partitions sketches across independent
:class:`~repro.index.catalog.SketchCatalog` shards (deterministic
hash-by-id placement, least-loaded table routing, incremental add and
remove with per-shard index invalidation), a :class:`ShardRouter`
evaluates top-k queries scatter-gather with results bit-identical to a
monolithic catalog, and :mod:`repro.serving.manifest` persists the whole
thing as one directory of per-shard binary snapshots under a versioned
``manifest.json`` with lazy per-shard rehydration. Worker pools
(:mod:`repro.serving.workers`) supply shard-level thread fan-out and
query-level process parallelism.

The resilience layer rides on top: per-query deadlines and partial
scatter-gather on the router (``deadline_ms`` / ``on_shard_error``),
supervised worker pools that respawn dead forked workers, snapshot
quarantine with an arena→npz→json fallback chain
(``on_corruption="quarantine"``), and the deterministic fault-injection
harness (:mod:`repro.serving.faults`) that drives all of it in tests
and chaos benchmarks.

The service layer sits at the top: a :class:`QuerySession` unifies the
engine/router/worker-pool query surfaces behind one warm backend plus
one frozen :class:`~repro.index.options.QueryOptions` record, a
:class:`QueryCoalescer` micro-batches concurrent requests into the
amortized ``query_batch`` path with bit-identical responses, and a
:class:`QueryService` exposes the whole stack over stdlib HTTP
(``repro-sketch serve``).
"""

from repro.index.options import QueryOptions
from repro.serving.coalescer import QueryCoalescer
from repro.serving.faults import (
    FaultPlan,
    InjectedFault,
    active_plan,
    injected,
    install,
    uninstall,
)
from repro.serving.manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    load_sharded,
    read_manifest,
    save_sharded,
)
from repro.serving.router import (
    ON_SHARD_ERROR_POLICIES,
    ShardRouter,
    merge_shard_hits,
)
from repro.serving.server import QueryService
from repro.serving.session import QuerySession
from repro.serving.shards import ShardUnavailable, ShardedCatalog
from repro.serving.workers import (
    DeadlineExceeded,
    QueryWorkerPool,
    ShardWorkerPool,
)

__all__ = [
    "DeadlineExceeded",
    "FaultPlan",
    "InjectedFault",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "ON_SHARD_ERROR_POLICIES",
    "QueryCoalescer",
    "QueryOptions",
    "QueryService",
    "QuerySession",
    "QueryWorkerPool",
    "ShardRouter",
    "ShardUnavailable",
    "ShardWorkerPool",
    "ShardedCatalog",
    "active_plan",
    "injected",
    "install",
    "load_sharded",
    "merge_shard_hits",
    "read_manifest",
    "save_sharded",
    "uninstall",
]
