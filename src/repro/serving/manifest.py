"""Manifest persistence for sharded catalogs.

A sharded catalog on disk is one directory:

.. code-block:: text

    catalog-dir/
        manifest.json     # layout + config + placement (versioned)
        shard-0000.npz    # per-shard binary snapshots
        shard-0001.npz    #   (repro.index.snapshot format, one per shard)
        ...

``manifest.json`` is the small, human-inspectable source of truth for
everything that must be known *before* touching a shard file:

* ``version`` — manifest format version; unknown versions are refused
  (same contract as the snapshot loader). Version 1 manifests
  (pre-delta) and version 2 (pre-arena) still load — each newer
  version only adds fields;
* catalog config — ``n_shards``, ``sketch_size``, ``aggregate``, the
  hashing ``scheme`` pair and the ``vectorized`` flag;
* ``layout`` (since version 3) — the shard snapshot layout, ``"npz"``
  (the default when absent) or ``"arena"``. Arena-layout directories
  hold one mmap-able ``shard-NNNN.arena`` per shard
  (:mod:`repro.index.arena`): every shard materializes zero-copy, and
  N serving processes mapping the same directory share one set of
  physical pages;
* per shard: its snapshot ``file`` name, its ``sketches`` count, its
  ``ids`` in insertion order — the placement map — and, since version
  2, its ``index_version`` compaction counter plus the pending
  ``delta`` / ``tombstones`` counts (so ``shard info`` reports delta
  state without opening a single shard file, and a recompacted shard
  snapshot that no longer matches its manifest fails loudly at
  materialization).

Carrying the placement in the manifest is what makes cold starts lazy:
:func:`load_sharded` rebuilds the full ``sketch_id → shard`` map and all
shard sizes without opening a single ``.npz``, so lookups route directly
and a shard snapshot is only materialized when an operation actually
probes that shard. Consistency between manifest and shard files is
checked at materialization time (scheme and sketch count), so a stale or
swapped shard snapshot fails loudly instead of silently serving the
wrong corpus.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.hashing import KeyHasher
from repro.index.arena import atomic_write_text
from repro.index.snapshot import SNAPSHOT_LAYOUTS, save_snapshot
from repro.serving.shards import ShardedCatalog

#: Bump on any manifest layout change; load_sharded refuses unknown
#: versions rather than guessing. v1: layout + config + placement.
#: v2: adds per-shard index_version / delta / tombstones.
#: v3: adds the shard snapshot ``layout`` (npz | arena).
MANIFEST_VERSION = 3

#: Versions this build can read (each a strict superset of the last).
_READABLE_VERSIONS = (1, 2, 3)

#: File name of the manifest inside a sharded-catalog directory.
MANIFEST_NAME = "manifest.json"


def shard_file_name(index: int, layout: str = "npz") -> str:
    """Canonical snapshot file name for shard ``index`` under ``layout``."""
    suffix = "arena" if layout == "arena" else "npz"
    return f"shard-{index:04d}.{suffix}"


def save_sharded(
    catalog: ShardedCatalog, directory: str | Path, *, layout: str = "npz"
) -> Path:
    """Write ``catalog`` as a manifest directory; returns the manifest path.

    Every shard is persisted as a binary snapshot (warm frozen postings,
    LSH signatures when built, pending delta/tombstone state — see
    :mod:`repro.index.snapshot`), in the requested ``layout`` (``"npz"``
    or the zero-copy ``"arena"``); the manifest is written last — and
    atomically — so a crash mid-save never leaves a manifest pointing at
    missing shards.
    """
    if layout not in SNAPSHOT_LAYOUTS:
        raise ValueError(
            f"unknown shard layout {layout!r} (choose from "
            f"{SNAPSHOT_LAYOUTS})"
        )
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    shards_payload = []
    for index in range(catalog.n_shards):
        name = shard_file_name(index, layout)
        shard = catalog.shard(index)
        save_snapshot(shard, directory / name, layout=layout)
        # Recorded after shard.save: a never-frozen shard is promoted by
        # the snapshot writer, so the manifest sees the persisted state.
        shards_payload.append(
            {
                "file": name,
                "sketches": len(shard),
                "ids": list(shard),
                "index_version": shard.index_version,
                "delta": shard.delta_size,
                "tombstones": shard.tombstone_count,
            }
        )
    bits, seed = catalog.hasher.scheme_id
    manifest = {
        "version": MANIFEST_VERSION,
        "n_shards": catalog.n_shards,
        "sketch_size": catalog.sketch_size,
        "aggregate": catalog.aggregate,
        "scheme": [bits, seed],
        "vectorized": catalog.vectorized,
        "layout": layout,
        "shards": shards_payload,
    }
    path = directory / MANIFEST_NAME
    atomic_write_text(path, json.dumps(manifest, indent=2) + "\n")
    return path


def read_manifest(directory: str | Path) -> dict:
    """Parse and version-check a manifest directory's ``manifest.json``.

    Raises:
        FileNotFoundError: when the directory has no manifest.
        ValueError: for malformed JSON, unknown versions or a shard list
            inconsistent with ``n_shards``.
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not path.is_file():
        raise FileNotFoundError(
            f"no {MANIFEST_NAME} under {directory} — not a sharded catalog "
            "directory"
        )
    try:
        manifest = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt manifest {path}: {exc}") from exc
    version = manifest.get("version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported manifest version {version!r} in {path} "
            f"(this build reads versions {_READABLE_VERSIONS})"
        )
    shards = manifest.get("shards")
    if not isinstance(shards, list) or len(shards) != manifest.get("n_shards"):
        raise ValueError(
            f"corrupt manifest {path}: shard list does not match n_shards"
        )
    return manifest


def load_sharded(
    directory: str | Path, *, lazy: bool = True, on_corruption: str = "raise"
) -> ShardedCatalog:
    """Load a sharded catalog from its manifest directory.

    With ``lazy`` (the default) only the manifest is read: every shard
    starts cold and materializes from its snapshot on first access
    (:meth:`ShardedCatalog.shard`), so a cold start pays for exactly the
    shards the workload touches. ``lazy=False`` materializes everything
    up front (and therefore surfaces any stale shard file immediately).

    ``on_corruption`` sets the catalog's shard-materialization policy:
    ``"raise"`` (default) fails on the first unreadable shard snapshot;
    ``"quarantine"`` renames bad files to ``*.quarantined``, walks each
    shard's fallback chain, and marks unrecoverable shards unavailable
    instead of failing the whole load — with ``lazy=False`` the load
    then succeeds on the remaining shards, and
    ``catalog.quarantine_events`` reports exactly what was skipped.
    """
    if on_corruption not in ("raise", "quarantine"):
        raise ValueError(
            f"on_corruption must be 'raise' or 'quarantine', "
            f"got {on_corruption!r}"
        )
    directory = Path(directory)
    manifest = read_manifest(directory)
    bits, seed = manifest["scheme"]
    catalog = ShardedCatalog(
        manifest["n_shards"],
        sketch_size=manifest["sketch_size"],
        aggregate=manifest["aggregate"],
        hasher=KeyHasher(bits=bits, seed=seed),
        vectorized=manifest["vectorized"],
    )
    catalog.on_corruption = on_corruption
    catalog._shards = [None] * catalog.n_shards
    for index, entry in enumerate(manifest["shards"]):
        catalog._shard_paths[index] = directory / entry["file"]
        catalog._counts[index] = int(entry["sketches"])
        version = entry.get("index_version")
        catalog._shard_versions[index] = (
            int(version) if version is not None else None
        )
        if len(entry["ids"]) != int(entry["sketches"]):
            raise ValueError(
                f"corrupt manifest {directory / MANIFEST_NAME}: shard "
                f"{index} lists {len(entry['ids'])} ids but records "
                f"{entry['sketches']} sketches"
            )
        for sid in entry["ids"]:
            if sid in catalog._placement:
                raise ValueError(
                    f"corrupt manifest {directory / MANIFEST_NAME}: sketch "
                    f"id {sid!r} appears in more than one shard"
                )
            catalog._placement[sid] = index
    if not lazy:
        # warm() skips quarantined shards under the "quarantine" policy
        # and propagates the first error under "raise" — exactly the
        # eager-load semantics each policy wants.
        catalog.warm()
    return catalog
