"""Horizontally partitioned sketch catalogs.

A :class:`ShardedCatalog` splits one logical catalog across ``n_shards``
independent :class:`~repro.index.catalog.SketchCatalog` partitions, all
sharing one hashing scheme. Shards are the unit of everything the
serving layer scales over: each has its own inverted index, frozen CSR
postings, LSH index and LSM delta layer (maintained and compacted
independently — one ingest dirties exactly one shard's delta and
invalidates no frozen structure anywhere), its own ``.npz`` snapshot in
the manifest directory, and its own slot in the router's scatter-gather
fan-out.

Placement is two-tier, trading determinism against locality:

* **hash-by-sketch-id** (``add_sketch`` / ``add_sketches``): the owning
  shard is ``murmur3_32(sketch_id) % n_shards`` — deterministic across
  processes and runs, so independently built catalogs agree on layout;
* **least-loaded routing** (``add_table`` / ``add_tables`` /
  ``add_csv_streaming``): a whole table's sketches land together on the
  currently smallest shard (ties to the lowest index), so incremental
  ingest touches exactly one shard's delta per table while keeping
  shards balanced.

Either way the catalog tracks ``sketch_id → shard`` in an in-memory
placement map (persisted in the manifest), so lookups, removals and the
router's page assembly never scan shards.

Shards rehydrate lazily after :meth:`ShardedCatalog.load`: the manifest
carries enough metadata (ids, counts, config) that only the shards an
operation actually touches are materialized from their snapshots — a
targeted ``get`` loads one shard; per-shard stats (``shard info``) load
none.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator

from repro.core.sketch import CorrelationSketch, SketchColumns
from repro.hashing import KeyHasher
from repro.hashing.murmur3 import murmur3_32
from repro.index.catalog import SketchCatalog, SketchMeta
from repro.table.table import Table


class ShardUnavailable(RuntimeError):
    """A shard's snapshot is quarantined with no loadable fallback.

    Raised by :meth:`ShardedCatalog.shard` under
    ``on_corruption="quarantine"`` once a shard's whole fallback chain
    failed. Sticky: every later touch of the shard re-raises without
    re-attempting the load, so the router's ``on_shard_error="partial"``
    policy can keep dropping the shard at probe cost, not load cost.
    """


class ShardedCatalog:
    """``n_shards`` independent :class:`SketchCatalog` partitions behind
    one catalog-shaped interface.

    Args:
        n_shards: number of partitions (fixed for the catalog's life —
            resharding is a rebuild, as for any hash-partitioned store).
        sketch_size / aggregate / hasher / vectorized: shared
            :class:`SketchCatalog` configuration, applied to every shard.
        compact_threshold: per-shard delta-size compaction trigger,
            passed through to every :class:`SketchCatalog` partition
            (``None`` compacts only on demand).

    Raises:
        ValueError: if ``n_shards`` is not positive.
    """

    def __init__(
        self,
        n_shards: int,
        *,
        sketch_size: int = 256,
        aggregate: str = "mean",
        hasher: KeyHasher | None = None,
        vectorized: bool = True,
        compact_threshold: int | None = None,
    ) -> None:
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        self.n_shards = n_shards
        self.sketch_size = sketch_size
        self.aggregate = aggregate
        self.hasher = hasher if hasher is not None else KeyHasher()
        self.vectorized = vectorized
        self.compact_threshold = compact_threshold
        self._shards: list[SketchCatalog | None] = [
            self._new_shard() for _ in range(n_shards)
        ]
        #: Snapshot path per shard; set by the manifest loader, consumed
        #: by lazy materialization.
        self._shard_paths: list[Path | None] = [None] * n_shards
        #: sketch_id -> shard index, for every sketch in the catalog.
        self._placement: dict[str, int] = {}
        self._counts: list[int] = [0] * n_shards
        #: Manifest-recorded compaction version per shard (None when the
        #: manifest predates versioning, or the catalog was built in
        #: memory); checked against each materialized snapshot.
        self._shard_versions: list[int | None] = [None] * n_shards
        #: Corruption policy for lazy shard materialization: ``"raise"``
        #: (default) or ``"quarantine"`` (see :meth:`shard`); set by the
        #: manifest loader.
        self.on_corruption = "raise"
        #: shard index -> failure message, for shards whose snapshot
        #: was quarantined with no loadable fallback (sticky).
        self._unavailable: dict[int, str] = {}
        #: Audit log of quarantine/fallback events, in occurrence order:
        #: dicts with ``shard``, ``path`` and either ``error`` (shard
        #: unavailable) or ``recovery`` (loaded through a fallback).
        self.quarantine_events: list[dict] = []

    def _new_shard(self) -> SketchCatalog:
        return SketchCatalog(
            sketch_size=self.sketch_size,
            aggregate=self.aggregate,
            hasher=self.hasher,
            vectorized=self.vectorized,
            compact_threshold=self.compact_threshold,
        )

    # -- shard access --------------------------------------------------------

    def shard(self, index: int) -> SketchCatalog:
        """The shard at ``index``, materializing it from its snapshot if
        the catalog was manifest-loaded and this shard is still cold.

        Under ``on_corruption="quarantine"`` an unreadable snapshot is
        renamed to ``*.quarantined`` and the fallback chain is walked
        (:meth:`SketchCatalog.load`); if nothing loads, the shard is
        marked unavailable (sticky — recorded in
        :attr:`quarantine_events`) and :class:`ShardUnavailable` is
        raised here and on every later touch.

        Raises:
            ValueError: when a lazily loaded shard's snapshot disagrees
                with the manifest (stale or swapped file), under the
                default ``on_corruption="raise"`` policy.
            ShardUnavailable: under ``"quarantine"``, when the shard's
                whole fallback chain failed.
        """
        shard = self._shards[index]
        if shard is None:
            if index in self._unavailable:
                raise ShardUnavailable(
                    f"shard {index} is quarantined: "
                    f"{self._unavailable[index]}"
                )
            path = self._shard_paths[index]
            try:
                shard = self._materialize(index, path)
            except (OSError, ValueError, KeyError, EOFError) as exc:
                if self.on_corruption != "quarantine":
                    raise
                self._unavailable[index] = str(exc)
                self.quarantine_events.append(
                    {"shard": index, "path": str(path), "error": str(exc)}
                )
                raise ShardUnavailable(
                    f"shard {index} is quarantined: {exc}"
                ) from exc
            if shard.load_recovery is not None:
                self.quarantine_events.append(
                    {
                        "shard": index,
                        "path": str(path),
                        "recovery": shard.load_recovery,
                    }
                )
            self._shards[index] = shard
        return shard

    def _materialize(self, index: int, path: Path | None) -> SketchCatalog:
        """One manifest-checked load of a cold shard's snapshot."""
        shard = SketchCatalog.load(path, on_corruption=self.on_corruption)
        if shard.hasher.scheme_id != self.hasher.scheme_id:
            raise ValueError(
                f"shard snapshot {path} hashing scheme {shard.hasher!r} "
                f"differs from manifest scheme {self.hasher!r}"
            )
        if len(shard) != self._counts[index]:
            raise ValueError(
                f"shard snapshot {path} holds {len(shard)} sketches but "
                f"the manifest records {self._counts[index]} — stale "
                "shard file; rebuild the manifest directory"
            )
        recorded = self._shard_versions[index]
        if recorded is not None and shard.index_version != recorded:
            raise ValueError(
                f"shard snapshot {path} is at compaction version "
                f"{shard.index_version} but the manifest records "
                f"{recorded} — stale shard file; rebuild the manifest "
                "directory"
            )
        return shard

    @property
    def loaded_shards(self) -> list[bool]:
        """Which shards are materialized (cold shards cost no memory)."""
        return [shard is not None for shard in self._shards]

    def warm(self) -> None:
        """Materialize every shard now (cold shards load their snapshots).

        For arena-layout directories this maps every shard file — cheap
        (O(metadata) per shard) and the key step before forking query
        workers: shards mapped *before* the fork are shared between
        parent and children (file-backed pages, plus copy-on-write for
        the Python-object metadata), while shards each worker maps on
        its own still share physical pages but re-parse headers.

        Quarantined shards (:class:`ShardUnavailable`, only possible
        under ``on_corruption="quarantine"``) are skipped — warming is
        best-effort over whatever the degraded catalog can still serve;
        the events log records what was lost.
        """
        for index in range(self.n_shards):
            try:
                self.shard(index)
            except ShardUnavailable:
                continue

    def storage_backends(self) -> list[str | None]:
        """Per-shard storage backend (``"heap"`` / ``"mmap"``; None for
        shards not yet materialized)."""
        return [
            None if shard is None else shard.storage
            for shard in self._shards
        ]

    def shard_sizes(self) -> list[int]:
        """Sketch count per shard, without materializing any shard."""
        return list(self._counts)

    def shard_of(self, sketch_id: str) -> int:
        """Deterministic hash placement for ``sketch_id`` (murmur3)."""
        return murmur3_32(sketch_id) % self.n_shards

    def least_loaded(self) -> int:
        """Smallest shard (ties to the lowest index) — the ingest target."""
        return min(range(self.n_shards), key=lambda i: (self._counts[i], i))

    def owner_of(self, sketch_id: str) -> int:
        """The shard index holding ``sketch_id``.

        Raises:
            KeyError: if the id is not in the catalog.
        """
        try:
            return self._placement[sketch_id]
        except KeyError:
            raise KeyError(
                f"no sketch {sketch_id!r} in catalog ({len(self)} sketches)"
            ) from None

    # -- population ----------------------------------------------------------

    def _check_new_ids(self, sketch_ids: Iterable[str]) -> list[str]:
        ids = list(sketch_ids)
        seen: set[str] = set()
        for sid in ids:
            if sid in self._placement:
                raise ValueError(f"sketch id {sid!r} already in catalog")
            if sid in seen:
                raise ValueError(f"duplicate sketch id {sid!r} in batch")
            seen.add(sid)
        return ids

    def _record(self, shard_index: int, sketch_ids: Iterable[str]) -> list[str]:
        ids = list(sketch_ids)
        for sid in ids:
            self._placement[sid] = shard_index
        self._counts[shard_index] += len(ids)
        return ids

    def add_sketch(self, sketch_id: str, sketch: CorrelationSketch) -> int:
        """Register one sketch on its hash-placed shard; returns the
        shard index (only that shard's delta layer is touched)."""
        self._check_new_ids([sketch_id])
        index = self.shard_of(sketch_id)
        self.shard(index).add_sketch(sketch_id, sketch)
        self._record(index, [sketch_id])
        return index

    def add_sketches(
        self, sketches: Iterable[tuple[str, CorrelationSketch]]
    ) -> list[str]:
        """Bulk hash-placed registration: validate across every shard,
        then one bulk add per touched shard."""
        batch = list(sketches)
        self._check_new_ids(sid for sid, _ in batch)
        by_shard: dict[int, list[tuple[str, CorrelationSketch]]] = {}
        for sid, sketch in batch:
            by_shard.setdefault(self.shard_of(sid), []).append((sid, sketch))
        for index, group in sorted(by_shard.items()):
            self.shard(index).add_sketches(group)
            self._record(index, (sid for sid, _ in group))
        return [sid for sid, _ in batch]

    def add_table(self, table: Table) -> list[str]:
        """Sketch every column pair of ``table`` onto the least-loaded
        shard (one shard's delta touched, sketches kept together)."""
        self._check_new_ids(pair.pair_id for pair in table.column_pairs())
        index = self.least_loaded()
        return self._record(index, self.shard(index).add_table(table))

    def add_tables(self, tables: Iterable[Table]) -> list[str]:
        """Route each table, in order, to the then-least-loaded shard."""
        out: list[str] = []
        for table in tables:
            out.extend(self.add_table(table))
        return out

    def add_csv_streaming(self, path: str | Path, **kwargs) -> list[str]:
        """Stream-sketch a CSV and register it on the least-loaded shard.

        The streaming pass runs before any placement decision so the
        resulting ids can be validated against the whole catalog (not
        just one shard) without partial mutation on failure.
        """
        from repro.table.streaming import stream_sketch_csv

        sketches = stream_sketch_csv(
            path,
            self.sketch_size,
            aggregate=self.aggregate,
            hasher=self.hasher,
            **kwargs,
        )
        self._check_new_ids(sketches.keys())
        index = self.least_loaded()
        return self._record(index, self.shard(index).add_sketches(sketches.items()))

    # -- removal -------------------------------------------------------------

    def remove_sketch(self, sketch_id: str) -> int:
        """Delete one sketch from its owning shard; returns the shard
        index. Only that shard's delta/tombstone state is touched.

        Raises:
            KeyError: if the id is not in the catalog.
        """
        index = self.owner_of(sketch_id)
        self.shard(index).remove_sketch(sketch_id)
        del self._placement[sketch_id]
        self._counts[index] -= 1
        return index

    def remove_sketches(self, sketch_ids: Iterable[str]) -> list[str]:
        """Bulk removal: validate every id first, then remove per shard."""
        ids = list(sketch_ids)
        seen: set[str] = set()
        for sid in ids:
            self.owner_of(sid)  # raises KeyError with context if absent
            if sid in seen:
                raise ValueError(f"duplicate sketch id {sid!r} in batch")
            seen.add(sid)
        by_shard: dict[int, list[str]] = {}
        for sid in ids:
            by_shard.setdefault(self.owner_of(sid), []).append(sid)
        for index, group in sorted(by_shard.items()):
            self.shard(index).remove_sketches(group)
            for sid in group:
                del self._placement[sid]
            self._counts[index] -= len(group)
        return ids

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return sum(self._counts)

    def __contains__(self, sketch_id: str) -> bool:
        return sketch_id in self._placement

    def __iter__(self) -> Iterator[str]:
        return iter(self._placement)

    def get(self, sketch_id: str) -> CorrelationSketch:
        """Fetch a sketch, materializing only its owning shard."""
        return self.shard(self.owner_of(sketch_id)).get(sketch_id)

    def sketch_columns(self, sketch_id: str) -> SketchColumns:
        """Columnar view of a sketch, from its owning shard."""
        return self.shard(self.owner_of(sketch_id)).sketch_columns(sketch_id)

    def sketch_meta(self, sketch_id: str) -> SketchMeta:
        """Persisted per-sketch scalars, from the owning shard."""
        return self.shard(self.owner_of(sketch_id)).sketch_meta(sketch_id)

    # -- incremental maintenance ---------------------------------------------

    def compact(self) -> list[int]:
        """Fold every shard's delta layer
        (:meth:`SketchCatalog.compact`); returns the per-shard
        compaction versions. Materializes every shard — compaction is a
        maintenance operation, not a serving-path one."""
        return [self.shard(i).compact() for i in range(self.n_shards)]

    def delta_sizes(self) -> list[int]:
        """Per-shard delta-layer sketch counts (materialized shards
        only answer live; cold shards answer 0 — a cold shard's pending
        delta, if any, is whatever its snapshot persisted)."""
        return [
            0 if shard is None else shard.delta_size
            for shard in self._shards
        ]

    def tombstone_counts(self) -> list[int]:
        """Per-shard tombstone counts (cold shards report 0, as for
        :meth:`delta_sizes`)."""
        return [
            0 if shard is None else shard.tombstone_count
            for shard in self._shards
        ]

    # -- persistence ---------------------------------------------------------

    def save(self, directory: str | Path, *, layout: str = "npz") -> Path:
        """Write the manifest directory: one binary snapshot per shard
        (``layout="npz"`` or the zero-copy ``layout="arena"``) plus a
        versioned ``manifest.json``
        (:func:`repro.serving.manifest.save_sharded`)."""
        from repro.serving.manifest import save_sharded

        return save_sharded(self, directory, layout=layout)

    @classmethod
    def load(
        cls,
        directory: str | Path,
        *,
        lazy: bool = True,
        on_corruption: str = "raise",
    ) -> "ShardedCatalog":
        """Load a manifest directory written by :meth:`save`.

        With ``lazy`` (default) shards stay cold until first touched —
        see :func:`repro.serving.manifest.load_sharded`.
        ``on_corruption="quarantine"`` makes shard materialization move
        unreadable snapshots aside and serve degraded (see
        :meth:`shard`).
        """
        from repro.serving.manifest import load_sharded

        return load_sharded(directory, lazy=lazy, on_corruption=on_corruption)
