"""One uniform seam over every query entry point.

Historically each layer that answers top-k join-correlation queries —
the monolithic :class:`~repro.index.engine.JoinCorrelationEngine`, the
scatter-gather :class:`~repro.serving.router.ShardRouter`, the forked
:class:`~repro.serving.workers.QueryWorkerPool` — exposed its own
``query``/``query_batch`` with ~8 hand-threaded positional/keyword
arguments, and every caller (CLI, examples, benchmarks, the HTTP
service) re-spelled them. :class:`QuerySession` replaces that with one
object that owns

* a **warm backend** — engine, router, or worker pool, built once and
  reused across requests (the whole point of a long-lived service);
* one frozen :class:`~repro.index.options.QueryOptions` record naming
  every knob exactly once; and
* a uniform ``submit(queries) -> list[QueryResult]`` surface whose
  results carry JSON-serializable ``to_dict()``/``from_dict()``.

The session adapts to what its backend can do (detected from the
``query_batch`` signature, not an isinstance ladder, so any compatible
object works): a monolithic engine has no ``deadline_ms``/
``on_shard_error`` surface, and the forked worker pool's rng contract is
inherently sequential, so a caller-pinned ``seed`` cannot be honored
there. Asking for a capability the backend lacks raises immediately
instead of silently dropping the knob.

Results are bit-identical to calling the backend's ``query_batch``
directly with the same options — the session adds no execution layer,
only construction, capability routing and serialization. With the
default ``seed=None``, every query gets the backend's own fresh
fixed-seed generator, which also makes results independent of how
queries are grouped into ``submit`` calls — the property the request
coalescer (:mod:`repro.serving.coalescer`) is built on.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.core.estimation import estimate as estimate_pair
from repro.core.sketch import CorrelationSketch
from repro.index.engine import JoinCorrelationEngine, QueryResult
from repro.index.options import QueryOptions
from repro.obs import Trace, get_registry
from repro.ranking.scoring import json_float

__all__ = ["QuerySession"]


class QuerySession:
    """A warm query backend plus one :class:`QueryOptions` record.

    Args:
        backend: anything with the engine-shaped ``query_batch`` —
            a :class:`~repro.index.engine.JoinCorrelationEngine`, a
            :class:`~repro.serving.router.ShardRouter`, or a
            :class:`~repro.serving.workers.QueryWorkerPool`.
        options: per-call defaults (``k``/``scorer``/``seed``/
            ``deadline_ms``/``on_shard_error``). Engine-level fields
            (depth, backend, rng mode, ...) are read back from the
            backend itself when it exposes an ``options`` record, so the
            session always reports the configuration that actually
            serves; explicitly setting one of them to a value the warm
            backend disagrees with raises (a session cannot re-tune a
            built backend) — build backends with :meth:`for_catalog` /
            :meth:`for_sharded` to set those fields from the same
            record.
    """

    #: Fields fixed at backend construction — everything submit cannot
    #: vary per call. A caller record that explicitly disagrees with the
    #: warm backend on one of these is a misconfiguration, not an
    #: override (the session adds no execution layer that could honor it).
    _ENGINE_LEVEL_FIELDS = (
        "depth",
        "min_overlap",
        "vectorized",
        "rng_mode",
        "retrieval_backend",
        "lsh_bands",
        "lsh_rows",
    )

    def __init__(self, backend, options: QueryOptions | None = None) -> None:
        self.backend = backend
        if options is None:
            options = QueryOptions()
        backend_options = self._backend_options(backend)
        if backend_options is not None:
            # The backend's construction is the truth for engine-level
            # fields; the caller's record contributes the per-call ones.
            # A default-valued caller field just means "unspecified" and
            # adopts the backend's, but an explicitly divergent value
            # cannot be served by this warm backend — silently answering
            # with the backend's configuration would mask the mistake.
            defaults = QueryOptions()
            conflicts = [
                f"{name}={getattr(options, name)!r} (backend has "
                f"{getattr(backend_options, name)!r})"
                for name in self._ENGINE_LEVEL_FIELDS
                if getattr(options, name) != getattr(backend_options, name)
                and getattr(options, name) != getattr(defaults, name)
            ]
            if conflicts:
                raise ValueError(
                    "options disagree with the warm backend on engine-"
                    f"level field(s): {', '.join(conflicts)}; these are "
                    "fixed at backend construction — build the backend "
                    "from the same record (for_catalog/for_sharded/"
                    "open) or drop the override"
                )
            options = backend_options.merged(
                k=options.k,
                scorer=options.scorer,
                seed=options.seed,
                deadline_ms=options.deadline_ms,
                on_shard_error=options.on_shard_error,
            )
        self._options = options
        params = inspect.signature(backend.query_batch).parameters
        #: The forked worker pool has no ``rng`` parameter — a shared
        #: caller generator is an inherently sequential contract.
        self._supports_rng = "rng" in params
        #: The monolithic engine has no shard fan-out to budget.
        self._supports_resilience = "deadline_ms" in params
        #: Backends grown in this repo thread per-query Trace recorders
        #: through their phases; a foreign backend without the
        #: parameter still traces, as one umbrella span timed here.
        self._supports_traces = "traces" in params

    @staticmethod
    def _backend_options(backend) -> QueryOptions | None:
        options = getattr(backend, "options", None)
        if options is None:
            # A QueryWorkerPool fronts a router; read through it.
            options = getattr(
                getattr(backend, "router", None), "options", None
            )
        return options

    # -- construction --------------------------------------------------------

    @classmethod
    def for_catalog(
        cls, catalog, options: QueryOptions | None = None
    ) -> "QuerySession":
        """A session over a monolithic catalog (in-process engine)."""
        if options is None:
            options = QueryOptions()
        return cls(
            JoinCorrelationEngine.from_options(catalog, options), options
        )

    @classmethod
    def for_sharded(
        cls,
        catalog,
        options: QueryOptions | None = None,
        *,
        workers: int | None = None,
        query_workers: int | None = None,
    ) -> "QuerySession":
        """A session over a sharded catalog (scatter-gather router).

        Args:
            workers: thread fan-out for the per-shard scatter.
            query_workers: when set (> 1), wrap the router in a forked
                :class:`~repro.serving.workers.QueryWorkerPool` for
                query-level parallelism across cores. A pinned
                ``options.seed`` is rejected on such a session at
                submit time (the pool's rng contract is sequential).
        """
        from repro.serving.router import ShardRouter
        from repro.serving.workers import QueryWorkerPool

        if options is None:
            options = QueryOptions()
        backend = ShardRouter.from_options(catalog, options, workers=workers)
        if query_workers is not None and query_workers > 1:
            backend = QueryWorkerPool(backend, workers=query_workers)
        return cls(backend, options)

    @classmethod
    def open(
        cls,
        path: str | Path,
        options: QueryOptions | None = None,
        *,
        workers: int | None = None,
        query_workers: int | None = None,
    ) -> "QuerySession":
        """Open a catalog from disk and wrap it in a session.

        A directory is a sharded-manifest catalog (served scatter-
        gather); a file is a monolithic snapshot (JSON/npz/arena).
        """
        from repro.serving.shards import ShardedCatalog

        path = Path(path)
        if path.is_dir():
            return cls.for_sharded(
                ShardedCatalog.load(path),
                options,
                workers=workers,
                query_workers=query_workers,
            )
        from repro.index.catalog import SketchCatalog

        return cls.for_catalog(SketchCatalog.load(path), options)

    # -- introspection -------------------------------------------------------

    @property
    def options(self) -> QueryOptions:
        return self._options

    @property
    def catalog(self):
        catalog = getattr(self.backend, "catalog", None)
        if catalog is None:
            catalog = getattr(self.backend, "router").catalog
        return catalog

    def catalog_info(self) -> dict:
        """A JSON-safe summary of what this session serves."""
        catalog = self.catalog
        return {
            "sketches": len(catalog),
            "sketch_size": catalog.sketch_size,
            "aggregate": catalog.aggregate,
            "scheme": {
                "bits": catalog.hasher.bits,
                "seed": catalog.hasher.seed,
            },
            "shards": getattr(catalog, "n_shards", 1),
            "backend": type(self.backend).__name__,
            "options": self._options.to_dict(),
        }

    # -- lifecycle -----------------------------------------------------------

    def warm(self) -> None:
        """Materialize lazily-loaded backend state now (idempotent)."""
        warm = getattr(self.backend, "warm", None)
        if warm is not None:
            warm()

    def close(self) -> None:
        close = getattr(self.backend, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "QuerySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- query surface -------------------------------------------------------

    def query_sketch(
        self, keys, values, name: str | None = None
    ) -> CorrelationSketch:
        """Sketch one ⟨key, value⟩ column pair against the catalog's
        configuration (size, aggregate, hashing scheme), ready to submit."""
        catalog = self.catalog
        sketch = CorrelationSketch(
            catalog.sketch_size,
            aggregate=catalog.aggregate,
            hasher=catalog.hasher,
            name=name,
        )
        sketch.update_array(
            np.asarray(keys), np.asarray(values, dtype=float)
        )
        return sketch

    def submit(
        self,
        queries,
        *,
        exclude_ids: list[str | None] | None = None,
        true_correlations: list[dict[str, float] | None] | None = None,
        options: QueryOptions | None = None,
        trace: bool = False,
        arrivals: list[float] | None = None,
    ) -> list[QueryResult]:
        """Evaluate the queries under the session's options.

        Args:
            queries: :class:`CorrelationSketch` query sketches.
            exclude_ids: per-query catalog id to exclude (a query pair
                that is itself indexed must not match itself).
            true_correlations: per-query ground-truth dicts, for
                evaluation runs.
            options: a per-call override of the session's record
                (engine-level fields must match the warm backend — use
                a new session to change those).
            trace: record per-query phase spans; each result carries
                its ``trace`` block and per-phase latencies land in the
                process metrics registry. Results are bit-identical
                either way — tracing only reads the monotonic clock.
            arrivals: per-query ``perf_counter`` timestamps of when
                each request arrived upstream (the coalescer's window);
                the time from arrival to execution start is rendered as
                a ``queue_wait`` span preceding the execution phases.
        """
        opts = self._options if options is None else options
        queries = list(queries)
        n = len(queries)
        if exclude_ids is None:
            exclude_ids = [None] * n
        if true_correlations is None:
            true_correlations = [None] * n
        if len(exclude_ids) != n or len(true_correlations) != n:
            raise ValueError(
                f"{n} queries but {len(exclude_ids)} exclude ids and "
                f"{len(true_correlations)} truth dicts"
            )
        if n == 0:
            return []
        kwargs: dict = {}
        if opts.seed is not None:
            if not self._supports_rng:
                raise ValueError(
                    "options.seed pins one shared rng consumed in query "
                    "order — an inherently sequential contract the "
                    f"{type(self.backend).__name__} backend does not "
                    "support; leave seed=None for the per-query "
                    "fixed-seed default"
                )
            kwargs["rng"] = np.random.default_rng(opts.seed)
        if opts.deadline_ms is not None or opts.on_shard_error != "raise":
            if not self._supports_resilience:
                raise ValueError(
                    "deadline_ms/on_shard_error bound the shard "
                    "fan-out; the monolithic "
                    f"{type(self.backend).__name__} backend has none"
                )
            if opts.deadline_ms is not None:
                kwargs["deadline_ms"] = opts.deadline_ms
            if opts.on_shard_error != "raise":
                kwargs["on_shard_error"] = opts.on_shard_error
        traces: list[Trace] | None = None
        if trace:
            # One shared origin: shared batch spans then carry identical
            # (start_ms, duration_ms) in every query's trace, which is
            # what lets aggregators count them once.
            origin = time.perf_counter()
            traces = [Trace(origin=origin) for _ in range(n)]
            if self._supports_traces:
                kwargs["traces"] = traces
        start = time.perf_counter()
        results = self.backend.query_batch(
            queries,
            k=opts.k,
            scorer=opts.scorer,
            exclude_ids=exclude_ids,
            true_correlations=true_correlations,
            **kwargs,
        )
        if traces is None:
            return results
        return self._finish_traces(
            results, traces, start, time.perf_counter(), arrivals
        )

    def _finish_traces(
        self,
        results: list[QueryResult],
        traces: list[Trace],
        start: float,
        end: float,
        arrivals: list[float] | None,
    ) -> list[QueryResult]:
        """Attach trace blocks, queue_wait spans, and registry samples.

        Backends that accept ``traces`` attached their own blocks to the
        results; a foreign backend gets one shared umbrella ``execute``
        span timed around the whole batch call instead.
        """
        n = len(results)
        registry = get_registry()
        total_s = end - start
        if not self._supports_traces:
            for t in traces:
                t.add(
                    "execute", start, end, shared=True, batch_size=n
                )
        finished: list[QueryResult] = []
        metered = registry.enabled
        query_samples: list[tuple[float, dict]] = []
        phase_samples: list[tuple[float, dict]] = []
        for q, result in enumerate(results):
            block = result.trace
            if block is None:
                block = traces[q].to_dict()
            wait = (
                0.0
                if arrivals is None
                else max(0.0, traces[q].origin - arrivals[q])
            )
            if wait > 0.0:
                wait_ms = wait * 1000.0
                # The wait predates the trace origin (span times are
                # relative to first execution), hence the negative
                # start; "window" is the coalesced batch width.
                block["spans"].insert(
                    0,
                    {
                        "name": "queue_wait",
                        "start_ms": -wait_ms,
                        "duration_ms": wait_ms,
                        "meta": {"window": n},
                    },
                )
            # ``replace`` re-runs the frozen dataclass __init__; skip it
            # when the backend already attached this very block (the
            # queue_wait insert above mutates it in place).
            finished.append(
                result
                if result.trace is block
                else replace(result, trace=block)
            )
            if metered:
                query_samples.append((wait + total_s / n, {}))
                phase_samples.extend(
                    (span["duration_ms"] / 1000.0, {"phase": span["name"]})
                    for span in block["spans"]
                    if "parent" not in span
                )
        if metered:
            # Batched: three lock round-trips for the whole window, not
            # six per query — the overhead benchmark holds this <2% p50.
            registry.inc(
                "repro_queries_total",
                float(n),
                help="Queries served through QuerySession.submit",
            )
            registry.observe_many(
                "repro_query_seconds",
                query_samples,
                help="End-to-end per-query latency (queue wait + "
                "equal share of batch execution)",
            )
            registry.observe_many(
                "repro_phase_seconds",
                phase_samples,
                help="Per-query time in each top-level query phase",
            )
        return finished

    def submit_one(
        self,
        query: CorrelationSketch,
        *,
        exclude_id: str | None = None,
        true_correlations: dict[str, float] | None = None,
        options: QueryOptions | None = None,
        trace: bool = False,
    ) -> QueryResult:
        """:meth:`submit` for a single query (batch of one — results are
        bit-identical either way under the default ``seed=None``)."""
        return self.submit(
            [query],
            exclude_ids=[exclude_id],
            true_correlations=[true_correlations],
            options=options,
            trace=trace,
        )[0]

    def estimate(
        self,
        left_keys,
        left_values,
        right_keys,
        right_values,
        *,
        estimator: str = "pearson",
    ) -> dict:
        """One-off after-join correlation estimate between two in-memory
        column pairs, sketched under the catalog's configuration.

        Returns a strict-JSON dict (NaN encodes as ``null``, infinities
        as the :func:`~repro.ranking.scoring.json_float` string
        sentinels) — the body the HTTP service's ``/estimate`` endpoint
        answers with.
        """
        left = self.query_sketch(left_keys, left_values, name="left")
        right = self.query_sketch(right_keys, right_values, name="right")
        result = estimate_pair(left, right, estimator=estimator)
        return {
            "correlation": json_float(result.correlation),
            "estimator": result.estimator,
            "sample_size": result.sample_size,
            "fisher_se": json_float(result.fisher_se),
            "hoeffding": {
                "low": json_float(result.hoeffding.low),
                "high": json_float(result.hoeffding.high),
            },
            "hfd": {
                "low": json_float(result.hfd.low),
                "high": json_float(result.hfd.high),
            },
            "key_overlap": result.key_overlap,
            "containment_est": json_float(result.containment_est),
            "join_size_est": json_float(result.join_size_est),
            "range_bounds_valid": result.range_bounds_valid,
        }
