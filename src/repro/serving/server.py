"""Long-lived HTTP query service over a warm :class:`QuerySession`.

Everything below the wire is the library's existing query stack — the
service adds *residency*: the catalog loads once, the indexes stay warm,
and concurrent clients share one process through the coalescing front
door (:mod:`repro.serving.coalescer`). Stdlib only
(``http.server.ThreadingHTTPServer``); no new dependencies.

Endpoints (JSON in, strict JSON out — NaN encodes as ``null`` and the
infinities as ``"Infinity"``/``"-Infinity"`` string sentinels, never as
the non-standard bare literals):

* ``POST /query`` — body ``{"keys": [...], "values": [...]}`` plus
  optional ``"k"``, ``"scorer"``, ``"exclude_id"``, ``"name"``. The
  column pair is sketched against the catalog's configuration and
  answered through the coalescer; the response body is exactly
  ``QueryResult.to_dict()`` — bit-identical to calling the underlying
  engine/router directly with the same options, including the
  ``shards_probed``/``shards_failed``/``degraded`` resilience fields.
* ``POST /estimate`` — body ``{"left": {"keys", "values"}, "right":
  {"keys", "values"}}`` plus optional ``"estimator"``; one-off
  after-join correlation estimate between two client-supplied columns.
* ``GET /catalog/info`` — catalog summary + the session's options.
* ``GET /healthz`` — versioned liveness payload: ``status``,
  ``version``, ``uptime_seconds``, coalescer counters (snapshotted
  under the stats lock — no torn cross-counter reads), shard and
  worker summaries.
* ``GET /metrics`` — Prometheus text exposition of the process
  :class:`~repro.obs.MetricsRegistry`: request counts, per-phase
  latency histograms, coalescer batch sizes, per-shard error counters.

**Observability.** The service owns a real registry for its lifetime
(installed process-globally on :meth:`QueryService.start`, restored to
the no-op default on :meth:`~QueryService.stop`) and always executes
queries traced — phase spans feed the histograms and the threshold-gated
slow-query log either way, but the ``trace`` block is stripped from the
response unless the client opted in with ``"trace": true``, keeping
untraced responses byte-identical to a service without instrumentation.

**Shutdown.** :meth:`QueryService.stop` (or SIGTERM/SIGINT under
:meth:`QueryService.run`) drains gracefully: the listener stops
accepting, in-flight handler threads run to completion
(``daemon_threads = False`` so ``server_close`` joins them), and the
coalescer executes every request already in its window before closing —
no accepted request is ever dropped.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.obs import (
    BATCH_SIZE_BUCKETS,
    MetricsRegistry,
    SlowQueryLog,
    render_prometheus,
    set_registry,
)
from repro.serving.coalescer import QueryCoalescer
from repro.serving.session import QuerySession

__all__ = ["QueryService"]

#: Served paths; anything else is labelled "other" in the HTTP request
#: counter so a client probing random URLs cannot mint unbounded series.
_KNOWN_PATHS = frozenset(
    {"/query", "/estimate", "/catalog/info", "/healthz", "/metrics"}
)


class _Server(ThreadingHTTPServer):
    # Join in-flight handler threads on server_close so stop() is a
    # real drain, not an abandonment (ThreadingHTTPServer defaults to
    # daemon threads, which server_close would not wait for).
    daemon_threads = False
    # socketserver's default listen backlog of 5 drops/resets connects
    # when a burst of concurrent clients outruns the accept loop — the
    # exact regime the coalescing window exists for. 128 rides the
    # common somaxconn floor.
    request_queue_size = 128
    #: Installed by QueryService before the listener starts.
    service: "QueryService"


class _Handler(BaseHTTPRequestHandler):
    # Keep the access log out of stderr — the service is often run
    # under a test harness or a benchmark that parses its output.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _track(self, status: int) -> None:
        self.server.service.registry.inc(
            "repro_http_requests_total",
            help="HTTP requests served, by endpoint and status",
            endpoint=(
                self.path if self.path in _KNOWN_PATHS else "other"
            ),
            status=str(status),
        )

    def _reply(self, status: int, payload: dict) -> None:
        try:
            # allow_nan=False enforces the strict-JSON wire contract:
            # non-finite floats must already be encoded (json_float) —
            # the default encoder would emit NaN/Infinity literals that
            # non-Python clients cannot parse.
            body = json.dumps(payload, allow_nan=False).encode()
        except ValueError:
            status = 500
            body = json.dumps(
                {"error": "internal error: non-finite float in response"}
            ).encode()
        self._track(status)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _reply_text(
        self, status: int, text: str, content_type: str
    ) -> None:
        body = text.encode()
        self._track(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        service = self.server.service
        if self.path == "/healthz":
            self._reply(200, service.health_payload())
        elif self.path == "/metrics":
            self._reply_text(
                200,
                render_prometheus(service.registry),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        elif self.path == "/catalog/info":
            self._reply(200, service.session.catalog_info())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        service = self.server.service
        if self.path not in ("/query", "/estimate"):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            payload = self._read_json()
            if self.path == "/query":
                self._reply(200, service.handle_query(payload))
            else:
                self._reply(200, service.handle_estimate(payload))
        except (ValueError, KeyError, TypeError) as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - one service, many clients
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})


def _columns(payload: dict, *path: str) -> tuple[list, list]:
    """Extract a ``{"keys": [...], "values": [...]}`` pair, with errors
    that name the missing field (and where it was expected)."""
    where = "/".join(path) + "." if path else ""
    for field in ("keys", "values"):
        if field not in payload:
            raise ValueError(f"missing required field {where}{field!r}")
    keys, values = payload["keys"], payload["values"]
    if not isinstance(keys, list) or not isinstance(values, list):
        raise ValueError(f"{where}keys/{where}values must be JSON arrays")
    if len(keys) != len(values):
        raise ValueError(
            f"{where}keys has {len(keys)} entries but {where}values has "
            f"{len(values)}"
        )
    if not keys:
        raise ValueError(f"{where}keys/{where}values must be non-empty")
    return keys, values


class QueryService:
    """The HTTP front end: one session, one coalescer, one listener.

    Args:
        session: the warm :class:`QuerySession` to serve.
        host / port: bind address; ``port=0`` picks a free port
            (read it back from :attr:`address` — the test/bench idiom).
        max_batch / max_wait_ms: the coalescing window
            (see :class:`~repro.serving.coalescer.QueryCoalescer`).
        registry: the metrics registry to serve on ``/metrics``; by
            default the service builds its own.
        slow_query_ms: queries whose server-side wall time breaches
            this threshold are written to the slow-query log as
            single-line JSON records. ``None`` (default) disables it.
        slow_query_log: slow-query sink — a file path to append to, or
            ``None`` for stderr. Ignored unless ``slow_query_ms`` is
            set.
    """

    def __init__(
        self,
        session: QuerySession,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 16,
        max_wait_ms: float = 0.0,
        registry: MetricsRegistry | None = None,
        slow_query_ms: float | None = None,
        slow_query_log: str | Path | None = None,
    ) -> None:
        self.session = session
        self.registry = MetricsRegistry() if registry is None else registry
        self.slow_log = (
            None
            if slow_query_ms is None
            else SlowQueryLog(slow_query_ms, sink=slow_query_log)
        )
        self.coalescer = QueryCoalescer(
            session, max_batch=max_batch, max_wait_ms=max_wait_ms
        )
        self._httpd = _Server((host, port), _Handler)
        self._httpd.service = self
        self._thread: threading.Thread | None = None
        self._started_monotonic: float | None = None
        self._stopped = threading.Event()
        self._stop_requested_event = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — authoritative when ``port=0``."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- request handling (shared by HTTP and in-process callers) ------------

    def handle_query(self, payload: dict) -> dict:
        keys, values = _columns(payload)
        want_trace = bool(payload.get("trace", False))
        start = time.perf_counter()
        sketch = self.session.query_sketch(
            keys, values, name=payload.get("name")
        )
        sketched = time.perf_counter()
        sketch_ms = (sketched - start) * 1000.0
        # Always trace: the phase histograms and the slow-query log need
        # the spans whether or not the client asked to see them. Passing
        # ``arrived`` backdates the request to the post-sketch instant
        # so queue_wait also covers the coalescer's admission work.
        result = self.coalescer.submit(
            sketch,
            k=payload.get("k"),
            scorer=payload.get("scorer"),
            exclude_id=payload.get("exclude_id"),
            trace=True,
            arrived=sketched,
        )
        encode_start = time.perf_counter()
        body = result.to_dict()
        end = time.perf_counter()
        trace = body.get("trace")
        if trace is not None:
            encode_ms = (end - encode_start) * 1000.0
            spans = trace["spans"]
            # Sketching happens before the request even enters the
            # window, so its span sits before the earliest recorded
            # start (queue_wait's negative start when coalesced).
            first = min(
                (s["start_ms"] for s in spans if "parent" not in s),
                default=0.0,
            )
            spans.insert(
                0,
                {
                    "name": "sketch",
                    "start_ms": first - sketch_ms,
                    "duration_ms": sketch_ms,
                },
            )
            # Everything after the last execution phase and before the
            # encode is hand-off: result finalization in the session
            # plus waking this handler from the coalescer. Measured as
            # the wall time the other spans leave unaccounted.
            anchor = max(
                (
                    s["start_ms"] + s["duration_ms"]
                    for s in spans
                    if "parent" not in s
                ),
                default=0.0,
            )
            span_of = {s["name"]: s for s in spans if "parent" not in s}
            deliver_ms = max(
                0.0,
                (encode_start - start) * 1000.0
                - sketch_ms
                - span_of.get("queue_wait", {"duration_ms": 0.0})[
                    "duration_ms"
                ]
                - anchor,
            )
            spans.append(
                {
                    "name": "deliver",
                    "start_ms": anchor,
                    "duration_ms": deliver_ms,
                }
            )
            spans.append(
                {
                    "name": "wire_encode",
                    "start_ms": anchor + deliver_ms,
                    "duration_ms": encode_ms,
                }
            )
            for name, value in (
                ("sketch", sketch_ms),
                ("deliver", deliver_ms),
                ("wire_encode", encode_ms),
            ):
                self.registry.observe(
                    "repro_phase_seconds",
                    value / 1000.0,
                    help="Per-query time in each top-level query phase",
                    phase=name,
                )
            if self.slow_log is not None:
                self.slow_log.maybe_record(
                    total_ms=(end - start) * 1000.0, trace=trace
                )
            if not want_trace:
                del body["trace"]
        return body

    def health_payload(self) -> dict:
        """The versioned ``/healthz`` body (counters snapshotted under
        their locks — no torn cross-counter reads)."""
        # Deferred: repro/__init__ imports this module, so the package
        # attribute is not bound yet at our import time.
        from repro import __version__

        backend = self.session.backend
        uptime = (
            0.0
            if self._started_monotonic is None
            else time.monotonic() - self._started_monotonic
        )
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": round(uptime, 3),
            "coalescer": self.coalescer.stats_snapshot(),
            "shards": {
                "count": getattr(self.session.catalog, "n_shards", 1),
                "errors": int(
                    sum(
                        value
                        for _, value in self.registry.counter_samples(
                            "repro_shard_errors_total"
                        )
                    )
                ),
            },
            "workers": {
                "count": getattr(backend, "workers", None) or 0,
                "respawns": int(getattr(backend, "respawns", 0)),
                "sequential_fallback": bool(
                    getattr(backend, "sequential_fallback", False)
                ),
            },
        }

    def handle_estimate(self, payload: dict) -> dict:
        for side in ("left", "right"):
            if side not in payload or not isinstance(payload[side], dict):
                raise ValueError(
                    f"missing required object field {side!r} "
                    "({'keys': [...], 'values': [...]})"
                )
        left_keys, left_values = _columns(payload["left"], "left")
        right_keys, right_values = _columns(payload["right"], "right")
        return self.session.estimate(
            left_keys,
            left_values,
            right_keys,
            right_values,
            estimator=payload.get("estimator", "pearson"),
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QueryService":
        """Serve on a background thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        set_registry(self.registry)
        # Declare the core families up front so a scrape of a fresh
        # service already shows the full schema.
        self.registry.declare(
            "repro_http_requests_total",
            "counter",
            help="HTTP requests served, by endpoint and status",
        )
        self.registry.declare(
            "repro_queries_total",
            "counter",
            help="Queries served through QuerySession.submit",
        )
        self.registry.declare(
            "repro_query_seconds",
            "histogram",
            help="End-to-end per-query latency (queue wait + equal "
            "share of batch execution)",
        )
        self.registry.declare(
            "repro_phase_seconds",
            "histogram",
            help="Per-query time in each top-level query phase",
        )
        self.registry.declare(
            "repro_coalescer_batch_size",
            "histogram",
            help="Requests executed together per coalescer window",
            buckets=BATCH_SIZE_BUCKETS,
        )
        self.registry.declare(
            "repro_shard_errors_total",
            "counter",
            help="Shard probe/assemble failures, by shard",
        )
        self._started_monotonic = time.monotonic()
        self.session.warm()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="query-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful drain (idempotent): stop accepting, finish in-flight
        handlers, flush the coalescer window, release the session."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
        self._httpd.server_close()  # joins in-flight handler threads
        self.coalescer.close()      # drains the pending window
        self.session.close()
        set_registry(None)          # restore the process no-op default

    def wait_for_shutdown(self, *, install_signals: bool = True) -> None:
        """Block until SIGTERM/SIGINT (or :meth:`request_stop`), then
        drain.

        The listener runs on a background thread while the calling
        thread waits on an event the signal handlers set, so a handler
        never calls ``shutdown()`` from the thread running
        ``serve_forever`` (that self-join deadlocks).
        """
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(
                    signum, lambda *_: self._stop_requested_event.set()
                )
        try:
            self._stop_requested_event.wait()
        finally:
            self.stop()

    def request_stop(self) -> None:
        """Unblock :meth:`wait_for_shutdown` (signal-handler equivalent,
        callable from any thread)."""
        self._stop_requested_event.set()

    def run(self, *, install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT, then drain — the CLI entry point."""
        self.start()
        self.wait_for_shutdown(install_signals=install_signals)

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
