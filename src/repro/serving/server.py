"""Long-lived HTTP query service over a warm :class:`QuerySession`.

Everything below the wire is the library's existing query stack — the
service adds *residency*: the catalog loads once, the indexes stay warm,
and concurrent clients share one process through the coalescing front
door (:mod:`repro.serving.coalescer`). Stdlib only
(``http.server.ThreadingHTTPServer``); no new dependencies.

Endpoints (JSON in, strict JSON out — NaN encodes as ``null`` and the
infinities as ``"Infinity"``/``"-Infinity"`` string sentinels, never as
the non-standard bare literals):

* ``POST /query`` — body ``{"keys": [...], "values": [...]}`` plus
  optional ``"k"``, ``"scorer"``, ``"exclude_id"``, ``"name"``. The
  column pair is sketched against the catalog's configuration and
  answered through the coalescer; the response body is exactly
  ``QueryResult.to_dict()`` — bit-identical to calling the underlying
  engine/router directly with the same options, including the
  ``shards_probed``/``shards_failed``/``degraded`` resilience fields.
* ``POST /estimate`` — body ``{"left": {"keys", "values"}, "right":
  {"keys", "values"}}`` plus optional ``"estimator"``; one-off
  after-join correlation estimate between two client-supplied columns.
* ``GET /catalog/info`` — catalog summary + the session's options.
* ``GET /healthz`` — liveness plus coalescer telemetry.

**Shutdown.** :meth:`QueryService.stop` (or SIGTERM/SIGINT under
:meth:`QueryService.run`) drains gracefully: the listener stops
accepting, in-flight handler threads run to completion
(``daemon_threads = False`` so ``server_close`` joins them), and the
coalescer executes every request already in its window before closing —
no accepted request is ever dropped.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serving.coalescer import QueryCoalescer
from repro.serving.session import QuerySession

__all__ = ["QueryService"]


class _Server(ThreadingHTTPServer):
    # Join in-flight handler threads on server_close so stop() is a
    # real drain, not an abandonment (ThreadingHTTPServer defaults to
    # daemon threads, which server_close would not wait for).
    daemon_threads = False
    # socketserver's default listen backlog of 5 drops/resets connects
    # when a burst of concurrent clients outruns the accept loop — the
    # exact regime the coalescing window exists for. 128 rides the
    # common somaxconn floor.
    request_queue_size = 128
    #: Installed by QueryService before the listener starts.
    service: "QueryService"


class _Handler(BaseHTTPRequestHandler):
    # Keep the access log out of stderr — the service is often run
    # under a test harness or a benchmark that parses its output.
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    def _reply(self, status: int, payload: dict) -> None:
        try:
            # allow_nan=False enforces the strict-JSON wire contract:
            # non-finite floats must already be encoded (json_float) —
            # the default encoder would emit NaN/Infinity literals that
            # non-Python clients cannot parse.
            body = json.dumps(payload, allow_nan=False).encode()
        except ValueError:
            status = 500
            body = json.dumps(
                {"error": "internal error: non-finite float in response"}
            ).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ValueError(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        return payload

    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        service = self.server.service
        if self.path == "/healthz":
            self._reply(
                200,
                {"status": "ok", "coalescer": dict(service.coalescer.stats)},
            )
        elif self.path == "/catalog/info":
            self._reply(200, service.session.catalog_info())
        else:
            self._reply(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        service = self.server.service
        if self.path not in ("/query", "/estimate"):
            self._reply(404, {"error": f"unknown path {self.path!r}"})
            return
        try:
            payload = self._read_json()
            if self.path == "/query":
                self._reply(200, service.handle_query(payload))
            else:
                self._reply(200, service.handle_estimate(payload))
        except (ValueError, KeyError, TypeError) as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - one service, many clients
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})


def _columns(payload: dict, *path: str) -> tuple[list, list]:
    """Extract a ``{"keys": [...], "values": [...]}`` pair, with errors
    that name the missing field (and where it was expected)."""
    where = "/".join(path) + "." if path else ""
    for field in ("keys", "values"):
        if field not in payload:
            raise ValueError(f"missing required field {where}{field!r}")
    keys, values = payload["keys"], payload["values"]
    if not isinstance(keys, list) or not isinstance(values, list):
        raise ValueError(f"{where}keys/{where}values must be JSON arrays")
    if len(keys) != len(values):
        raise ValueError(
            f"{where}keys has {len(keys)} entries but {where}values has "
            f"{len(values)}"
        )
    if not keys:
        raise ValueError(f"{where}keys/{where}values must be non-empty")
    return keys, values


class QueryService:
    """The HTTP front end: one session, one coalescer, one listener.

    Args:
        session: the warm :class:`QuerySession` to serve.
        host / port: bind address; ``port=0`` picks a free port
            (read it back from :attr:`address` — the test/bench idiom).
        max_batch / max_wait_ms: the coalescing window
            (see :class:`~repro.serving.coalescer.QueryCoalescer`).
    """

    def __init__(
        self,
        session: QuerySession,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 16,
        max_wait_ms: float = 0.0,
    ) -> None:
        self.session = session
        self.coalescer = QueryCoalescer(
            session, max_batch=max_batch, max_wait_ms=max_wait_ms
        )
        self._httpd = _Server((host, port), _Handler)
        self._httpd.service = self
        self._thread: threading.Thread | None = None
        self._stopped = threading.Event()
        self._stop_requested_event = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — authoritative when ``port=0``."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    # -- request handling (shared by HTTP and in-process callers) ------------

    def handle_query(self, payload: dict) -> dict:
        keys, values = _columns(payload)
        sketch = self.session.query_sketch(
            keys, values, name=payload.get("name")
        )
        result = self.coalescer.submit(
            sketch,
            k=payload.get("k"),
            scorer=payload.get("scorer"),
            exclude_id=payload.get("exclude_id"),
        )
        return result.to_dict()

    def handle_estimate(self, payload: dict) -> dict:
        for side in ("left", "right"):
            if side not in payload or not isinstance(payload[side], dict):
                raise ValueError(
                    f"missing required object field {side!r} "
                    "({'keys': [...], 'values': [...]})"
                )
        left_keys, left_values = _columns(payload["left"], "left")
        right_keys, right_values = _columns(payload["right"], "right")
        return self.session.estimate(
            left_keys,
            left_values,
            right_keys,
            right_values,
            estimator=payload.get("estimator", "pearson"),
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "QueryService":
        """Serve on a background thread; returns immediately."""
        if self._thread is not None:
            raise RuntimeError("service already started")
        self.session.warm()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="query-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Graceful drain (idempotent): stop accepting, finish in-flight
        handlers, flush the coalescer window, release the session."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
        self._httpd.server_close()  # joins in-flight handler threads
        self.coalescer.close()      # drains the pending window
        self.session.close()

    def wait_for_shutdown(self, *, install_signals: bool = True) -> None:
        """Block until SIGTERM/SIGINT (or :meth:`request_stop`), then
        drain.

        The listener runs on a background thread while the calling
        thread waits on an event the signal handlers set, so a handler
        never calls ``shutdown()`` from the thread running
        ``serve_forever`` (that self-join deadlocks).
        """
        if install_signals:
            for signum in (signal.SIGTERM, signal.SIGINT):
                signal.signal(
                    signum, lambda *_: self._stop_requested_event.set()
                )
        try:
            self._stop_requested_event.wait()
        finally:
            self.stop()

    def request_stop(self) -> None:
        """Unblock :meth:`wait_for_shutdown` (signal-handler equivalent,
        callable from any thread)."""
        self._stop_requested_event.set()

    def run(self, *, install_signals: bool = True) -> None:
        """Serve until SIGTERM/SIGINT, then drain — the CLI entry point."""
        self.start()
        self.wait_for_shutdown(install_signals=install_signals)

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
