"""Worker pools behind the scatter-gather serving subsystem.

Two axes of parallelism, matching the two ways a sharded deployment
spends its cores:

* :class:`ShardWorkerPool` — a persistent ``concurrent.futures`` thread
  pool that fans *one* query's (or one batch round's) shard work out
  across shards. Threads are the right tool here: the per-shard probe
  and page assembly are NumPy-dominated (searchsorted / bincount /
  reduceat release the GIL for their hot loops), and shards share the
  parent's memory, so there is nothing to pickle.
* :class:`QueryWorkerPool` — persistent *forked* process workers that
  partition a multi-query batch across full CPU cores. Each worker
  inherits the parent's :class:`~repro.serving.router.ShardRouter`
  (and every shard) copy-on-write at fork time — no catalog
  serialization — and evaluates its query slice end to end, returning
  only the small ranked-result objects. This is query-level
  parallelism: per-query results are bit-identical to the sequential
  router because each query's rng is the same fresh fixed-seed
  generator ``query_batch(rng=None)`` would hand it.

Platforms without the ``fork`` start method (and ``workers=1`` pools)
degrade to sequential execution with identical results — the pools gate
the capability instead of assuming it.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

_T = TypeVar("_T")
_R = TypeVar("_R")


def _validate_workers(workers: int | None) -> int | None:
    if workers is not None and workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    return workers


class ShardWorkerPool:
    """Persistent thread pool for per-shard fan-out (``map`` semantics).

    Args:
        workers: thread count. ``None`` or ``1`` runs tasks sequentially
            on the calling thread — same results, no pool overhead —
            so callers can treat the pool as always present.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = _validate_workers(workers)
        self._executor: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=workers)
            if workers is not None and workers > 1
            else None
        )

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """Apply ``fn`` to every item, preserving input order.

        Exceptions propagate to the caller exactly as a plain loop's
        would (the first failing task's, re-raised on gather).
        """
        if self._executor is None:
            return [fn(item) for item in items]
        return list(self._executor.map(fn, items))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Worker-process state: the pool's router, installed by
#: :func:`_init_query_worker` (run in each worker, including respawns).
#: Never set in the parent, so concurrent pools cannot cross-talk and
#: closing a pool leaves nothing pinned.
_WORKER_ROUTER = None


def _init_query_worker(router) -> None:
    """Pool initializer: bind this worker to its pool's router.

    Under the ``fork`` start method the router arrives by memory
    inheritance (never pickled), and a worker the pool respawns re-runs
    this initializer with the same router — per-pool state, not shared.
    """
    global _WORKER_ROUTER
    _WORKER_ROUTER = router


def _run_query_chunk(task):
    """Worker-side entry: evaluate one contiguous query slice."""
    chunk_index, sketches, k, scorer, exclude_ids = task
    results = _WORKER_ROUTER.query_batch(
        sketches, k=k, scorer=scorer, exclude_ids=exclude_ids
    )
    return chunk_index, results


class QueryWorkerPool:
    """Persistent forked workers partitioning query batches across cores.

    Args:
        router: the :class:`~repro.serving.router.ShardRouter` (or any
            object with a compatible ``query_batch``) each worker
            inherits at fork time. The pool warms the router
            (``router.warm()``, when present) immediately before the
            first fork, so every lazily-loaded shard materializes in
            the parent and the workers inherit it: heap catalogs arrive
            copy-on-write, and arena-mapped catalogs arrive as shared
            file-backed mappings — N workers reference one set of
            physical pages, not N private copies.
        workers: process count. ``None``/``1`` — or a platform without
            the ``fork`` start method — evaluates sequentially through
            ``router.query_batch`` with identical results.

    Results are bit-identical to ``router.query_batch(..., rng=None)``:
    queries are split into contiguous chunks and every query's bootstrap
    / stochastic-scorer rng is the fresh fixed-seed generator the
    sequential path would create, so chunk boundaries cannot shift any
    rng stream. A caller-supplied shared generator is therefore not
    supported here — that contract is inherently sequential.
    """

    def __init__(self, router, workers: int | None = None) -> None:
        self.router = router
        self.workers = _validate_workers(workers)
        self._pool = None

    @property
    def parallel(self) -> bool:
        """True when batches actually fan out across processes."""
        return (
            self.workers is not None
            and self.workers > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def _ensure_pool(self):
        if self._pool is None and self.parallel:
            # Fork *after* the shards are materialized: whatever the
            # parent loaded (heap arrays) or mapped (arena pages) is
            # inherited by every worker instead of re-built per process.
            warm = getattr(self.router, "warm", None)
            if warm is not None:
                warm()
            self._pool = multiprocessing.get_context("fork").Pool(
                processes=self.workers,
                initializer=_init_query_worker,
                initargs=(self.router,),
            )
        return self._pool

    def query_batch(
        self,
        query_sketches: Sequence,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        exclude_ids: list[str | None] | None = None,
    ):
        """Evaluate the batch, partitioned across the worker processes."""
        query_sketches = list(query_sketches)
        if exclude_ids is None:
            exclude_ids = [None] * len(query_sketches)
        if len(exclude_ids) != len(query_sketches):
            raise ValueError(
                f"{len(query_sketches)} query sketches but "
                f"{len(exclude_ids)} exclude ids"
            )
        pool = self._ensure_pool()
        if pool is None or len(query_sketches) <= 1:
            return self.router.query_batch(
                query_sketches, k=k, scorer=scorer, exclude_ids=exclude_ids
            )
        n_chunks = min(self.workers, len(query_sketches))
        bounds = [
            round(i * len(query_sketches) / n_chunks) for i in range(n_chunks + 1)
        ]
        tasks = [
            (
                i,
                query_sketches[bounds[i] : bounds[i + 1]],
                k,
                scorer,
                exclude_ids[bounds[i] : bounds[i + 1]],
            )
            for i in range(n_chunks)
        ]
        gathered = sorted(pool.map(_run_query_chunk, tasks))
        return [result for _, results in gathered for result in results]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "QueryWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
