"""Worker pools behind the scatter-gather serving subsystem.

Two axes of parallelism, matching the two ways a sharded deployment
spends its cores:

* :class:`ShardWorkerPool` — a persistent ``concurrent.futures`` thread
  pool that fans *one* query's (or one batch round's) shard work out
  across shards. Threads are the right tool here: the per-shard probe
  and page assembly are NumPy-dominated (searchsorted / bincount /
  reduceat release the GIL for their hot loops), and shards share the
  parent's memory, so there is nothing to pickle.
* :class:`QueryWorkerPool` — persistent *forked* process workers that
  partition a multi-query batch across full CPU cores. Each worker
  inherits the parent's :class:`~repro.serving.router.ShardRouter`
  (and every shard) copy-on-write at fork time — no catalog
  serialization — and evaluates its query slice end to end, returning
  only the small ranked-result objects. This is query-level
  parallelism: per-query results are bit-identical to the sequential
  router because each query's rng is the same fresh fixed-seed
  generator ``query_batch(rng=None)`` would hand it.

Both pools are *supervised*:

* :meth:`ShardWorkerPool.map` fails deterministically — when tasks
  raise, outstanding futures are cancelled and the **lowest-index**
  task's error propagates, regardless of thread scheduling;
  :meth:`ShardWorkerPool.map_supervised` returns per-item outcomes
  instead of failing fast, with an optional wall-clock deadline that
  converts late completions into :class:`DeadlineExceeded` entries —
  the primitive behind the router's partial scatter-gather.
* :class:`QueryWorkerPool` detects dead forked workers (a worker killed
  mid-chunk surfaces as ``BrokenProcessPool``), respawns the pool with
  capped exponential backoff plus seeded jitter, and re-dispatches
  exactly the chunks whose results were never received — completed
  chunks are kept, so no query is ever lost or evaluated twice. After
  :attr:`~QueryWorkerPool.MAX_RESPAWN_FAILURES` consecutive
  zero-progress respawns it falls back to the sequential router path
  for the rest of the pool's life.

Platforms without the ``fork`` start method (and ``workers=1`` pools)
degrade to sequential execution with identical results — the pools gate
the capability instead of assuming it.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, Sequence, TypeVar

from repro.obs import get_registry
from repro.serving.faults import maybe_fire

_T = TypeVar("_T")
_R = TypeVar("_R")


class DeadlineExceeded(TimeoutError):
    """A task (or a whole query) overran its wall-clock deadline.

    Raised by the router when ``on_shard_error="raise"`` and recorded
    per shard (then folded into ``QueryResult.shards_failed``) when the
    policy is ``"partial"``.
    """


def _validate_workers(workers: int | None) -> int | None:
    if workers is not None and workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    return workers


class ShardWorkerPool:
    """Persistent thread pool for per-shard fan-out (``map`` semantics).

    Args:
        workers: thread count. ``None`` or ``1`` runs tasks sequentially
            on the calling thread — same results, no pool overhead —
            so callers can treat the pool as always present.
    """

    def __init__(self, workers: int | None = None) -> None:
        self.workers = _validate_workers(workers)
        self._executor: ThreadPoolExecutor | None = (
            ThreadPoolExecutor(max_workers=workers)
            if workers is not None and workers > 1
            else None
        )

    def map(self, fn: Callable[[_T], _R], items: Iterable[_T]) -> list[_R]:
        """Apply ``fn`` to every item, preserving input order.

        Failure is deterministic: when any task raises, outstanding
        futures are cancelled and the **lowest-index** failing task's
        exception propagates — the same error a plain sequential loop
        would surface, whatever order the threads actually failed in.
        """
        if self._executor is None:
            return [fn(item) for item in items]
        futures = [self._executor.submit(fn, item) for item in items]
        results: list[_R] = []
        error: BaseException | None = None
        for future in futures:
            if error is not None:
                future.cancel()
                continue
            try:
                results.append(future.result())
            except BaseException as exc:  # noqa: BLE001 — re-raised below
                error = exc
        if error is not None:
            raise error
        return results

    def map_supervised(
        self,
        fn: Callable[[_T], _R],
        items: Iterable[_T],
        *,
        deadline_s: float | None = None,
    ) -> tuple[list[_R | None], list[BaseException | None]]:
        """Apply ``fn`` to every item, reporting per-item outcomes.

        Returns ``(results, errors)`` — parallel lists where exactly one
        of ``results[i]`` / ``errors[i]`` is non-None. A raising task
        contributes its exception; with ``deadline_s`` set, any task
        that has not *completed* within the budget (measured from this
        call) contributes :class:`DeadlineExceeded` instead. Completion
        time is what counts, in both the threaded and the sequential
        mode: a task that finishes after the deadline is rejected even
        if its value is already in hand, so an injected fixed delay
        produces the same outcome whether or not a pool is attached —
        threads cannot be preempted, only their results refused.
        """
        items = list(items)
        start = time.perf_counter()

        def expired() -> bool:
            return (
                deadline_s is not None
                and time.perf_counter() - start > deadline_s
            )

        results: list[_R | None] = []
        errors: list[BaseException | None] = []

        def record(value: _R | None, error: BaseException | None) -> None:
            results.append(value)
            errors.append(error)

        if self._executor is None:
            for item in items:
                if expired():
                    record(None, DeadlineExceeded(f"deadline hit before {item!r}"))
                    continue
                try:
                    value = fn(item)
                except BaseException as exc:  # noqa: BLE001 — reported per item
                    record(None, exc)
                    continue
                if expired():
                    record(None, DeadlineExceeded(f"{item!r} finished late"))
                else:
                    record(value, None)
            return results, errors

        def timed(item: _T) -> tuple[_R, float]:
            value = fn(item)
            return value, time.perf_counter()

        futures = [self._executor.submit(timed, item) for item in items]
        for item, future in zip(items, futures):
            if deadline_s is None:
                timeout = None
            else:
                timeout = max(0.0, deadline_s - (time.perf_counter() - start))
            try:
                value, finished = future.result(timeout=timeout)
            except _FutureTimeout:
                future.cancel()
                record(None, DeadlineExceeded(f"{item!r} missed the deadline"))
            except BaseException as exc:  # noqa: BLE001 — reported per item
                record(None, exc)
            else:
                if deadline_s is not None and finished - start > deadline_s:
                    record(None, DeadlineExceeded(f"{item!r} finished late"))
                else:
                    record(value, None)
        return results, errors

    def reset(self) -> None:
        """Swap in a fresh executor whose threads have not started yet.

        Must be called in a process about to ``fork`` (see
        :meth:`QueryWorkerPool._ensure_pool`): live pool threads do not
        survive into the child, so a forked copy of a *used* executor
        would queue probes no thread ever drains — a silent deadlock. A
        fresh :class:`ThreadPoolExecutor` spawns its threads lazily on
        first submit, in whichever process ends up using it.
        """
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = ThreadPoolExecutor(max_workers=self.workers)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Worker-process state: the pool's router, installed by
#: :func:`_init_query_worker` (run in each worker, including respawns).
#: Never set in the parent, so concurrent pools cannot cross-talk and
#: closing a pool leaves nothing pinned.
_WORKER_ROUTER = None


def _init_query_worker(router) -> None:
    """Pool initializer: bind this worker to its pool's router.

    Under the ``fork`` start method the router arrives by memory
    inheritance (never pickled), and a worker the pool respawns re-runs
    this initializer with the same router — per-pool state, not shared.
    """
    global _WORKER_ROUTER
    _WORKER_ROUTER = router


def _run_query_chunk(task):
    """Worker-side entry: evaluate one contiguous query slice.

    ``traces`` (when the chunk carries them) are plain
    :class:`repro.obs.trace.Trace` recorders pickled into the worker;
    their spans come back *inside* the chunk's ``QueryResult.trace``
    dicts — ``perf_counter`` is the system-wide monotonic clock, so
    worker-side spans share the parent's timeline.
    """
    chunk_index, sketches, k, scorer, exclude_ids, truths, traces, extra = task
    maybe_fire("worker_chunk", chunk=chunk_index)
    kwargs = dict(extra)
    if traces is not None:
        # Forwarded only when requested, so a plain monolithic engine
        # (no ``traces`` parameter) still works as the pool's router.
        kwargs["traces"] = traces
    results = _WORKER_ROUTER.query_batch(
        sketches, k=k, scorer=scorer, exclude_ids=exclude_ids,
        true_correlations=truths, **kwargs
    )
    return chunk_index, results


class QueryWorkerPool:
    """Persistent forked workers partitioning query batches across cores.

    Args:
        router: the :class:`~repro.serving.router.ShardRouter` (or any
            object with a compatible ``query_batch``) each worker
            inherits at fork time. The pool warms the router
            (``router.warm()``, when present) immediately before the
            first fork, so every lazily-loaded shard materializes in
            the parent and the workers inherit it: heap catalogs arrive
            copy-on-write, and arena-mapped catalogs arrive as shared
            file-backed mappings — N workers reference one set of
            physical pages, not N private copies.
        workers: process count. ``None``/``1`` — or a platform without
            the ``fork`` start method — evaluates sequentially through
            ``router.query_batch`` with identical results.

    Supervision: a dead worker (crash, OOM-kill, injected
    ``worker_chunk`` kill fault) surfaces as ``BrokenProcessPool`` —
    the executor is torn down and respawned with capped exponential
    backoff plus seeded jitter, and only the chunks whose results never
    arrived are re-dispatched. Chunk results received before the crash
    are kept, so a batch is never partially lost and no query is ever
    evaluated twice. :attr:`MAX_RESPAWN_FAILURES` consecutive respawns
    with zero completed chunks flip the pool to the sequential router
    path permanently (:attr:`sequential_fallback`); the batch in flight
    still completes.

    Results are bit-identical to ``router.query_batch(..., rng=None)``:
    queries are split into contiguous chunks and every query's bootstrap
    / stochastic-scorer rng is the fresh fixed-seed generator the
    sequential path would create, so chunk boundaries cannot shift any
    rng stream. A caller-supplied shared generator is therefore not
    supported here — that contract is inherently sequential.
    """

    #: Backoff before respawn attempt ``n`` (0-based) is
    #: ``min(CAP, BASE * 2**n)`` seconds, scaled by jitter in [0.5, 1).
    RESPAWN_BACKOFF_BASE = 0.05
    RESPAWN_BACKOFF_CAP = 1.0
    #: Consecutive zero-progress respawns before the sequential fallback.
    MAX_RESPAWN_FAILURES = 3

    def __init__(self, router, workers: int | None = None) -> None:
        self.router = router
        self.workers = _validate_workers(workers)
        self._pool: ProcessPoolExecutor | None = None
        #: Total workers-pool respawns over this pool's life (telemetry).
        self.respawns = 0
        #: True once supervision gave up on process workers for good.
        self.sequential_fallback = False
        self._consecutive_failures = 0
        self._backoff_rng = random.Random(
            int(os.environ.get("REPRO_FAULT_SEED", 7))
        )

    @property
    def parallel(self) -> bool:
        """True when batches actually fan out across processes."""
        return (
            not self.sequential_fallback
            and self.workers is not None
            and self.workers > 1
            and "fork" in multiprocessing.get_all_start_methods()
        )

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        if self._pool is None and self.parallel:
            # Fork *after* the shards are materialized: whatever the
            # parent loaded (heap arrays) or mapped (arena pages) is
            # inherited by every worker instead of re-built per process.
            warm = getattr(self.router, "warm", None)
            if warm is not None:
                warm()
            # A router whose shard thread-pool has already run probes
            # holds live threads that would not survive the fork; swap
            # in an unstarted executor so parent and children each
            # spawn their own threads on first use.
            reset = getattr(
                getattr(self.router, "_pool", None), "reset", None
            )
            if reset is not None:
                reset()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=multiprocessing.get_context("fork"),
                initializer=_init_query_worker,
                initargs=(self.router,),
            )
        return self._pool

    def _discard_broken_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def _backoff(self) -> None:
        attempt = max(0, self._consecutive_failures - 1)
        delay = min(
            self.RESPAWN_BACKOFF_CAP,
            self.RESPAWN_BACKOFF_BASE * (2**attempt),
        )
        time.sleep(delay * (0.5 + self._backoff_rng.random() * 0.5))

    def query_batch(
        self,
        query_sketches: Sequence,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        exclude_ids: list[str | None] | None = None,
        true_correlations: list[dict[str, float] | None] | None = None,
        deadline_ms: float | None = None,
        on_shard_error: str = "raise",
        traces: list | None = None,
    ):
        """Evaluate the batch, partitioned across the worker processes.

        ``true_correlations`` (per-query ground-truth dicts, for
        evaluation runs) and ``traces`` (per-query
        :class:`repro.obs.trace.Trace` recorders) are chunked alongside
        the sketches and forwarded to each worker's ``query_batch`` —
        trace spans recorded in a worker come back serialized inside
        that chunk's ``QueryResult.trace`` dicts. ``deadline_ms`` /
        ``on_shard_error`` forward to the router's shard fan-out (each
        worker applies them to its own chunk); the defaults — and an
        absent ``traces`` — are never forwarded, so any monolithic
        engine with a plain ``query_batch`` still works as the pool's
        router.
        """
        query_sketches = list(query_sketches)
        if exclude_ids is None:
            exclude_ids = [None] * len(query_sketches)
        if len(exclude_ids) != len(query_sketches):
            raise ValueError(
                f"{len(query_sketches)} query sketches but "
                f"{len(exclude_ids)} exclude ids"
            )
        if true_correlations is None:
            true_correlations = [None] * len(query_sketches)
        if len(true_correlations) != len(query_sketches):
            raise ValueError(
                f"{len(query_sketches)} query sketches but "
                f"{len(true_correlations)} truth dicts"
            )
        if traces is not None and len(traces) != len(query_sketches):
            raise ValueError(
                f"{len(query_sketches)} query sketches but "
                f"{len(traces)} traces"
            )
        extra: dict = {}
        if deadline_ms is not None:
            extra["deadline_ms"] = deadline_ms
        if on_shard_error != "raise":
            extra["on_shard_error"] = on_shard_error
        pool = self._ensure_pool()
        if pool is None or len(query_sketches) <= 1:
            kwargs = dict(extra)
            if traces is not None:
                kwargs["traces"] = traces
            return self.router.query_batch(
                query_sketches, k=k, scorer=scorer, exclude_ids=exclude_ids,
                true_correlations=true_correlations, **kwargs,
            )
        n_chunks = min(self.workers, len(query_sketches))
        bounds = [
            round(i * len(query_sketches) / n_chunks) for i in range(n_chunks + 1)
        ]
        pending = {
            i: (
                i,
                query_sketches[bounds[i] : bounds[i + 1]],
                k,
                scorer,
                exclude_ids[bounds[i] : bounds[i + 1]],
                true_correlations[bounds[i] : bounds[i + 1]],
                (
                    None
                    if traces is None
                    else traces[bounds[i] : bounds[i + 1]]
                ),
                extra,
            )
            for i in range(n_chunks)
        }
        completed: dict[int, list] = {}
        while pending:
            pool = self._ensure_pool()
            if pool is None:
                # Sequential fallback engaged mid-batch: drain the
                # chunks the workers never answered, in index order.
                for index, task in sorted(pending.items()):
                    kwargs = dict(extra)
                    if task[6] is not None:
                        kwargs["traces"] = task[6]
                    completed[index] = self.router.query_batch(
                        task[1], k=k, scorer=scorer, exclude_ids=task[4],
                        true_correlations=task[5], **kwargs,
                    )
                pending.clear()
                break
            futures: dict[int, object] = {}
            broken = False
            try:
                for index, task in sorted(pending.items()):
                    futures[index] = pool.submit(_run_query_chunk, task)
            except BrokenProcessPool:
                broken = True
            error: BaseException | None = None
            progressed = False
            for index, future in futures.items():
                if error is not None:
                    future.cancel()
                    continue
                try:
                    chunk_index, results = future.result()
                except BrokenProcessPool:
                    broken = True
                except BaseException as exc:  # noqa: BLE001 — re-raised
                    error = exc
                else:
                    completed[chunk_index] = results
                    pending.pop(chunk_index, None)
                    progressed = True
            if error is not None:
                # A task-level error (not a dead worker): deterministic
                # lowest-index propagation, like ShardWorkerPool.map.
                raise error
            if not pending:
                self._consecutive_failures = 0
                break
            # A worker died (broken is necessarily True here): respawn
            # and re-dispatch only what never completed.
            assert broken
            if progressed:
                self._consecutive_failures = 0
            self._consecutive_failures += 1
            self.respawns += 1
            get_registry().inc(
                "repro_worker_respawns_total",
                help="Forked query-worker pools respawned after a crash",
            )
            self._discard_broken_pool()
            if self._consecutive_failures >= self.MAX_RESPAWN_FAILURES:
                self.sequential_fallback = True
                get_registry().set_gauge(
                    "repro_worker_sequential_fallback", 1.0,
                    help="1 once supervision fell back to the sequential path",
                )
                continue
            self._backoff()
        return [
            result
            for index in sorted(completed)
            for result in completed[index]
        ]

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "QueryWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
