"""Scatter-gather query routing over a sharded catalog.

A :class:`ShardRouter` evaluates top-k join-correlation queries against
a :class:`~repro.serving.shards.ShardedCatalog` with **exact result
semantics**: for every scorer, rng mode and retrieval backend, the
merged result is bit-identical — ids, scores and order — to running the
same query against one monolithic catalog holding the union of the
shards. That guarantee decomposes into three facts the rest of the
stack already pins:

* **retrieval merges exactly.** Each shard's candidate probe returns
  its hits sorted under the total order ``(−overlap, sketch_id)`` and
  truncated to ``retrieval_depth``. Any candidate in the global
  top-``depth`` is, within its own shard, among that shard's
  top-``depth`` under the same order — so a deterministic heap merge of
  the per-shard lists, re-truncated to ``depth``, reproduces the
  monolithic hits list exactly. This holds for the LSH backend too:
  band collisions are a pairwise (query, candidate) predicate, so the
  union of per-shard collision sets equals the single-index collision
  set, and survivors are ranked by the same exact overlap either way.
* **page assembly is per-candidate pure.** Join samples, union
  statistics and containment inputs depend only on the query and one
  candidate (never on the rest of the page), so each shard assembles
  its own candidates (:meth:`repro.index.engine.CandidatePage.assemble`)
  and the router re-interleaves them into the merged global hit order,
  bit-identical to a monolithic assembly.
* **scoring and rng stay global.** Everything page-shaped — the
  ``rp_cih`` min-max normalization over the candidate list, the
  ``random`` scorer's draws, both PM1 bootstrap rng disciplines — runs
  once at the router over the merged page, consuming the query's rng
  exactly as :class:`~repro.index.engine.ColumnarQueryExecutor` would.
  Scattering the *scoring* would break bit-parity; scattering retrieval
  and assembly cannot.

Shard fan-out runs sequentially or on a persistent
:class:`~repro.serving.workers.ShardWorkerPool` (``workers=N``); for
query-level parallelism across cores, wrap the router in a
:class:`~repro.serving.workers.QueryWorkerPool`.

**Failure model.** ``query``/``query_batch`` take a per-call
``deadline_ms`` budget and an ``on_shard_error`` policy. Under
``"raise"`` (the default) any shard failure — a probe raising, a
quarantined shard (:class:`~repro.serving.shards.ShardUnavailable`), or
the deadline expiring — propagates, lowest shard index first. Under
``"partial"`` failing shards are dropped from the merge and the answer
is served from the survivors, flagged via ``QueryResult.shards_failed``
and ``degraded``. A partial answer equals the exact answer over the
surviving shards' union whenever ``retrieval_depth`` does not truncate
(every survivor's candidates still fit the depth); when it does
truncate, the merged cutoff may admit fewer candidates than a pure
survivors-only catalog would — the dropped shard's hits are unknowable,
so the router never invents replacements. With no faults firing, both
policies execute the identical code path and results stay bit-identical
to the monolithic engine.
"""

from __future__ import annotations

import time
from dataclasses import replace

import numpy as np

from repro.core.sketch import CorrelationSketch
from repro.index.engine import (
    CandidatePage,
    QueryResult,
    QueryExecutor,
    _apply_batched_bootstrap,
    _apply_compat_bootstrap,
    retrieve_candidates_batch,
)
from repro.index.inverted import merge_hits
from repro.index.options import (
    ON_SHARD_ERROR_POLICIES,
    QueryOptions,
    validate_resilience,
)
from repro.obs import get_registry
from repro.ranking.ranker import RankedCandidate, rank_candidates
from repro.ranking.scoring import candidate_scores_batch
from repro.serving.faults import maybe_fire
from repro.serving.shards import ShardedCatalog
from repro.serving.workers import DeadlineExceeded, ShardWorkerPool

__all__ = [
    "ON_SHARD_ERROR_POLICIES",  # re-exported from repro.index.options
    "ShardRouter",
    "merge_shard_hits",
]


def merge_shard_hits(
    per_shard_hits: list[list[tuple[str, int]]], depth: int
) -> list[tuple[str, int]]:
    """Merge per-shard hits lists into the global top-``depth``.

    The horizontal-partitioning face of the one merge primitive,
    :func:`repro.index.inverted.merge_hits`: inputs are already sorted
    under the shared ``(−overlap, id)`` total order (each shard's probe
    contract), so the heap merge plus truncation to ``depth``
    reproduces the monolithic probe's cutoff. The same primitive merges
    a single catalog's frozen and delta layers — shard scatter over
    delta-layered shards composes both without further argument.
    """
    return merge_hits(per_shard_hits, depth)


class ShardRouter:
    """Top-k query evaluation, scatter-gathered across catalog shards.

    Mirrors the :class:`~repro.index.engine.JoinCorrelationEngine` query
    surface (``query`` / ``query_batch``, same defaults, same
    :class:`~repro.index.engine.QueryResult` output with
    ``shards_probed`` set) so callers can swap a monolithic engine for a
    sharded one without touching call sites.

    Args:
        catalog: the sharded catalog to serve.
        retrieval_depth: candidates fetched by key overlap before
            re-ranking (applied globally after the merge; each shard is
            probed to the same depth).
        min_overlap: joinability floor, applied inside every shard.
        rng_mode: PM1 bootstrap execution contract for ``rb_cib``
            (see :data:`repro.ranking.scoring.RNG_MODES`).
        retrieval_backend: per-shard candidate retrieval strategy
            (see :data:`repro.index.engine.RETRIEVAL_BACKENDS`).
        lsh_bands / lsh_rows: LSH banding overrides (``"lsh"`` backend),
            same ``None`` semantics as the engine, applied per shard.
        workers: thread count for the shard fan-out; ``None``/``1``
            scatter sequentially. The pool is persistent for the
            router's life — :meth:`close` (or use as a context manager)
            releases it.
    """

    def __init__(
        self,
        catalog: ShardedCatalog,
        retrieval_depth: int = 100,
        min_overlap: int = 1,
        *,
        rng_mode: str = "batched",
        retrieval_backend: str = "inverted",
        lsh_bands: int | None = None,
        lsh_rows: int | None = None,
        workers: int | None = None,
    ) -> None:
        # Validation lives in QueryOptions — one record, one set of
        # error messages, shared with the monolithic engine and the
        # session/service layers above.
        self.catalog = catalog
        self._options = QueryOptions(
            depth=retrieval_depth,
            min_overlap=min_overlap,
            rng_mode=rng_mode,
            retrieval_backend=retrieval_backend,
            lsh_bands=lsh_bands,
            lsh_rows=lsh_rows,
        )
        self._pool = ShardWorkerPool(workers)

    @classmethod
    def from_options(
        cls,
        catalog: ShardedCatalog,
        options: QueryOptions,
        *,
        workers: int | None = None,
    ) -> "ShardRouter":
        """Build a router from one :class:`QueryOptions` record.

        Per-call fields (``k``/``scorer``/``seed``/``deadline_ms``/
        ``on_shard_error``) stay on the record for the caller's
        ``query``/``submit`` calls; ``vectorized`` is ignored — the
        router is columnar by construction.
        """
        return cls(
            catalog,
            retrieval_depth=options.depth,
            min_overlap=options.min_overlap,
            rng_mode=options.rng_mode,
            retrieval_backend=options.retrieval_backend,
            lsh_bands=options.lsh_bands,
            lsh_rows=options.lsh_rows,
            workers=workers,
        )

    @property
    def options(self) -> QueryOptions:
        """The router's tuning state as one frozen record."""
        return self._options

    def _replace_options(self, **changes) -> None:
        # replace() re-runs __post_init__, keeping ctor validation.
        self._options = replace(self._options, **changes)

    @property
    def retrieval_depth(self) -> int:
        return self._options.depth

    @retrieval_depth.setter
    def retrieval_depth(self, value: int) -> None:
        self._replace_options(depth=value)

    @property
    def min_overlap(self) -> int:
        return self._options.min_overlap

    @min_overlap.setter
    def min_overlap(self, value: int) -> None:
        self._replace_options(min_overlap=value)

    @property
    def rng_mode(self) -> str:
        return self._options.rng_mode

    @rng_mode.setter
    def rng_mode(self, value: str) -> None:
        self._replace_options(rng_mode=value)

    @property
    def retrieval_backend(self) -> str:
        return self._options.retrieval_backend

    @retrieval_backend.setter
    def retrieval_backend(self, value: str) -> None:
        self._replace_options(retrieval_backend=value)

    @property
    def lsh_bands(self) -> int | None:
        return self._options.lsh_bands

    @lsh_bands.setter
    def lsh_bands(self, value: int | None) -> None:
        self._replace_options(lsh_bands=value)

    @property
    def lsh_rows(self) -> int | None:
        return self._options.lsh_rows

    @lsh_rows.setter
    def lsh_rows(self, value: int | None) -> None:
        self._replace_options(lsh_rows=value)

    @property
    def workers(self) -> int | None:
        return self._pool.workers

    def warm(self) -> None:
        """Materialize every catalog shard now, instead of on first probe.

        Delegates to :meth:`ShardedCatalog.warm` when the catalog has it
        (a monolithic stand-in without shards simply has nothing to
        warm). :class:`~repro.serving.workers.QueryWorkerPool` calls
        this before forking so every worker inherits the mapped/loaded
        shards instead of materializing its own copies.
        """
        warm = getattr(self.catalog, "warm", None)
        if warm is not None:
            warm()

    def close(self) -> None:
        """Release the shard worker pool (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scatter phases ------------------------------------------------------

    def _check_scheme(self, query_sketch: CorrelationSketch) -> None:
        if query_sketch.hasher.scheme_id != self.catalog.hasher.scheme_id:
            raise ValueError(
                "query sketch hashing scheme "
                f"{query_sketch.hasher!r} differs from catalog scheme "
                f"{self.catalog.hasher!r}"
            )

    def _scatter_retrieve(
        self,
        query_cols: list,
        exclude_ids: list[str | None],
        *,
        deadline_at: float | None = None,
        partial: bool = False,
        timings: list | None = None,
    ) -> tuple[list[list[tuple[str, int]]], set[int], dict]:
        """Probe every shard for every query; merge per query.

        Returns ``(hits_per_query, failed_shards, errors_by_shard)``.
        Without a deadline and under the ``"raise"`` policy this is the
        plain fan-out — any failure propagates and ``failed_shards`` is
        empty; otherwise probes run supervised, and shards that raised
        or missed the deadline are excluded from the merge
        (``partial``) or re-raised lowest-index-first. With ``timings``
        (a pre-sized per-shard list) each probe records its
        ``(start, end)`` wall clock — the source of per-shard trace
        spans; a shard whose probe was cancelled leaves None.
        """

        def probe(index: int) -> list[list[tuple[str, int]]]:
            start = time.perf_counter() if timings is not None else 0.0
            try:
                maybe_fire("shard_probe", shard=index)
                return retrieve_candidates_batch(
                    self.catalog.shard(index),
                    query_cols,
                    depth=self.retrieval_depth,
                    min_overlap=self.min_overlap,
                    excludes=exclude_ids,
                    backend=self.retrieval_backend,
                    lsh_bands=self.lsh_bands,
                    lsh_rows=self.lsh_rows,
                )
            finally:
                if timings is not None:
                    timings[index] = (start, time.perf_counter())

        n_shards = self.catalog.n_shards
        per_shard, failed, errors = self._supervised_fanout(
            probe, n_shards, deadline_at=deadline_at, partial=partial
        )
        survivors = [s for s in range(n_shards) if s not in failed]
        return [
            merge_shard_hits(
                [per_shard[s][q] for s in survivors],
                self.retrieval_depth,
            )
            for q in range(len(query_cols))
        ], failed, errors

    def _supervised_fanout(
        self,
        fn,
        n_shards: int,
        *,
        deadline_at: float | None,
        partial: bool,
    ) -> tuple[list, set[int], dict]:
        """Run one shard fan-out under the failure policy.

        The fault-free default (no deadline, ``"raise"``) takes the
        exact pre-resilience code path — ``pool.map`` — so the parity
        suites exercise byte-for-byte the same execution; the
        supervised path only engages when a caller opts into deadlines
        or partial results. Returns ``(results, failed_shards,
        errors_by_shard)``; every supervised shard failure also bumps
        the per-shard ``repro_shard_errors_total`` counter.
        """
        if deadline_at is None and not partial:
            return self._pool.map(fn, range(n_shards)), set(), {}
        remaining = (
            None
            if deadline_at is None
            else deadline_at - time.perf_counter()
        )
        results, errors = self._pool.map_supervised(
            fn, range(n_shards), deadline_s=remaining
        )
        failed = {s for s, error in enumerate(errors) if error is not None}
        if failed:
            registry = get_registry()
            for s in sorted(failed):
                registry.inc(
                    "repro_shard_errors_total",
                    help="Shard probes/assemblies that failed or timed out",
                    shard=str(s),
                )
        if failed and not partial:
            raise errors[min(failed)]
        return results, failed, {
            s: errors[s] for s in failed
        }

    def _scatter_assemble(
        self,
        query_cols: list,
        hits_per_query: list[list[tuple[str, int]]],
        *,
        deadline_at: float | None = None,
        partial: bool = False,
        timings: list | None = None,
    ) -> tuple[
        list[CandidatePage], list[list[tuple[str, int]]], set[int], dict
    ]:
        """Assemble every query's candidate page, shard-locally.

        Each query's merged hits are split by owning shard; every shard
        assembles its own candidates in one page-level pass, and the
        results are re-interleaved into the merged global hit order —
        bit-identical to a monolithic assembly because every
        per-candidate value depends only on (query, candidate).

        Returns ``(pages, hits_per_query, failed_shards)``: when a
        shard fails its assembly pass under the ``partial`` policy, its
        candidates are dropped from both the pages and the hits lists
        (the page-shaped scoring that follows must only ever see
        candidates that were actually assembled).
        """
        n_shards = self.catalog.n_shards
        #: shard -> list of (query index, page positions, hits subset)
        shard_tasks: list[list[tuple[int, list[int], list[tuple[str, int]]]]] = [
            [] for _ in range(n_shards)
        ]
        for q, hits in enumerate(hits_per_query):
            buckets: dict[int, tuple[list[int], list[tuple[str, int]]]] = {}
            for pos, hit in enumerate(hits):
                owner = self.catalog.owner_of(hit[0])
                positions, subset = buckets.setdefault(owner, ([], []))
                positions.append(pos)
                subset.append(hit)
            for owner, (positions, subset) in buckets.items():
                shard_tasks[owner].append((q, positions, subset))

        def assemble(index: int):
            start = time.perf_counter() if timings is not None else 0.0
            try:
                maybe_fire("shard_assemble", shard=index)
                shard = self.catalog.shard(index)
                return [
                    (q, positions, CandidatePage.assemble(shard, query_cols[q], subset))
                    for q, positions, subset in shard_tasks[index]
                ]
            finally:
                if timings is not None:
                    timings[index] = (start, time.perf_counter())

        pages = [
            CandidatePage(
                ids=[sid for sid, _ in hits],
                overlaps=[overlap for _, overlap in hits],
                samples=[None] * len(hits),
                union_stats=[None] * len(hits),
            )
            for hits in hits_per_query
        ]
        shard_results, failed, errors = self._supervised_fanout(
            assemble, n_shards, deadline_at=deadline_at, partial=partial
        )
        for shard_result in shard_results:
            if shard_result is None:
                continue
            for q, positions, sub_page in shard_result:
                page = pages[q]
                for j, pos in enumerate(positions):
                    page.samples[pos] = sub_page.samples[j]
                    page.union_stats[pos] = sub_page.union_stats[j]
        if failed:
            drop: list[set[int]] = [set() for _ in hits_per_query]
            for owner in failed:
                for q, positions, _subset in shard_tasks[owner]:
                    drop[q].update(positions)
            if any(drop):
                filtered_hits: list[list[tuple[str, int]]] = []
                filtered_pages: list[CandidatePage] = []
                for q, hits in enumerate(hits_per_query):
                    keep = [p for p in range(len(hits)) if p not in drop[q]]
                    page = pages[q]
                    filtered_hits.append([hits[p] for p in keep])
                    filtered_pages.append(
                        CandidatePage(
                            ids=[page.ids[p] for p in keep],
                            overlaps=[page.overlaps[p] for p in keep],
                            samples=[page.samples[p] for p in keep],
                            union_stats=[page.union_stats[p] for p in keep],
                        )
                    )
                hits_per_query, pages = filtered_hits, filtered_pages
        return pages, hits_per_query, failed, errors

    # -- gather / scoring ----------------------------------------------------

    def _execute(
        self,
        query_sketches: list[CorrelationSketch],
        k: int,
        scorer: str,
        exclude_ids: list[str | None],
        true_correlations: list[dict[str, float] | None],
        rng: np.random.Generator | None,
        *,
        deadline_ms: float | None = None,
        on_shard_error: str = "raise",
        traces: list | None = None,
    ) -> list[QueryResult]:
        """The shared scatter-gather pipeline (single query = batch of 1).

        The gather tail mirrors
        :meth:`~repro.index.engine.ColumnarQueryExecutor.execute_batch`
        statement for statement — one global scoring pass, then
        per-query bootstrap and ranking consuming each query's rng in
        order — so results inherit that method's parity contract with
        looped single-catalog queries (including the timing caveat:
        ``retrieval_seconds``/``rerank_seconds`` are equal per-query
        shares of the batch phases — documented aggregates; per-query
        phase cost lives in the ``traces`` spans).

        With ``traces``, the scatter phases land in every query's trace
        as shared spans with per-shard children (``shard_probe`` /
        ``shard_assemble``, each carrying its shard index, wall time
        and ok/error/timeout status — failed shards included), and the
        merge phase is timed per query.
        """
        n_queries = len(query_sketches)
        if n_queries == 0:
            return []
        if traces is not None and len(traces) != n_queries:
            raise ValueError(
                f"{n_queries} query sketches but {len(traces)} traces"
            )
        tracing = traces is not None
        n_shards = self.catalog.n_shards
        t0 = time.perf_counter()
        deadline_at = (
            None if deadline_ms is None else t0 + deadline_ms / 1000.0
        )
        partial = on_shard_error == "partial"
        query_cols = [sketch.columnar() for sketch in query_sketches]
        probe_timings: list | None = [None] * n_shards if tracing else None
        hits_per_query, retrieve_failed, retrieve_errors = (
            self._scatter_retrieve(
                query_cols,
                exclude_ids,
                deadline_at=deadline_at,
                partial=partial,
                timings=probe_timings,
            )
        )
        t1 = time.perf_counter()

        # The deadline bounds the probe scatter — the phase where a
        # straggler shard can stall the answer indefinitely. Assembly of
        # the *surviving* shards always runs to completion (it is
        # bounded work over already-retrieved candidates), so a blown
        # deadline yields a degraded answer, never an empty late one;
        # assembly failures still drop their shard under ``partial``.
        assemble_timings: list | None = (
            [None] * n_shards if tracing else None
        )
        pages, hits_per_query, assemble_failed, assemble_errors = (
            self._scatter_assemble(
                query_cols,
                hits_per_query,
                partial=partial,
                timings=assemble_timings,
            )
        )
        ta = time.perf_counter() if tracing else 0.0
        failed_shards = retrieve_failed | assemble_failed
        if tracing:
            self._record_scatter_spans(
                traces, "retrieval", t0, t1, "shard_probe",
                probe_timings, retrieve_failed, retrieve_errors,
                batch_size=n_queries,
            )
            self._record_scatter_spans(
                traces, "assemble", t1, ta, "shard_assemble",
                assemble_timings, assemble_failed, assemble_errors,
                batch_size=n_queries,
            )
        spans: list[tuple[int, int]] = []
        all_samples = []
        all_containments: list[float] = []
        for sketch, page in zip(query_sketches, pages):
            start = len(all_samples)
            all_samples.extend(page.samples)
            all_containments.extend(page.containments(sketch.distinct_keys()))
            spans.append((start, len(all_samples)))

        base_stats = candidate_scores_batch(
            all_samples,
            containment_ests=all_containments,
            with_bootstrap=False,
        )
        ts = time.perf_counter() if tracing else 0.0
        if tracing:
            for tr in traces:
                if tr is not None:
                    tr.add(
                        "score", ta, ts,
                        shared=True, batch_size=n_queries,
                    )

        needs_bootstrap = scorer == "rb_cib"
        ranked_per_query: list[tuple[list[RankedCandidate], int]] = []
        for q in range(n_queries):
            m0 = time.perf_counter() if tracing else 0.0
            start, end = spans[q]
            samples = all_samples[start:end]
            stats = base_stats[start:end]
            query_rng = np.random.default_rng(7) if rng is None else rng
            if needs_bootstrap:
                if self.rng_mode == "batched":
                    stats = _apply_batched_bootstrap(samples, stats, query_rng)
                else:
                    stats = _apply_compat_bootstrap(samples, stats, query_rng)
            ranked = rank_candidates(
                pages[q].ids, stats, scorer,
                true_correlations=QueryExecutor._truths(
                    pages[q].ids, true_correlations[q]
                ),
                rng=query_rng,
            )[:k]
            ranked_per_query.append((ranked, len(hits_per_query[q])))
            if tracing and traces[q] is not None:
                traces[q].add("merge", m0, time.perf_counter())
        t2 = time.perf_counter()

        retrieval_share = (t1 - t0) / n_queries
        rerank_share = (t2 - t1) / n_queries
        return [
            QueryResult(
                ranked=ranked,
                candidates_considered=considered,
                retrieval_seconds=retrieval_share,
                rerank_seconds=rerank_share,
                shards_probed=self.catalog.n_shards,
                shards_failed=len(failed_shards),
                degraded=bool(failed_shards),
                trace=(
                    traces[q].to_dict()
                    if tracing and traces[q] is not None
                    else None
                ),
            )
            for q, (ranked, considered) in enumerate(ranked_per_query)
        ]

    @staticmethod
    def _record_scatter_spans(
        traces,
        phase: str,
        start: float,
        end: float,
        child_name: str,
        timings: list | None,
        failed: set[int],
        errors: dict,
        *,
        batch_size: int,
    ) -> None:
        """Add one shared scatter-phase span plus per-shard children to
        every query's trace (the scatter serves the whole batch, so the
        phase genuinely belongs to each query).

        Child status is ``"ok"``, ``"timeout"``
        (:class:`~repro.serving.workers.DeadlineExceeded`) or
        ``"error"``; a shard whose task never ran (cancelled after an
        earlier failure) has no wall time to report and appears as a
        zero-length child at the phase end, so failed shards are always
        visible in the trace.
        """
        children: list[tuple[float, float, dict]] = []
        for shard, timing in enumerate(timings or ()):
            meta: dict = {"shard": shard}
            if shard in failed:
                error = errors.get(shard)
                meta["status"] = (
                    "timeout"
                    if isinstance(error, DeadlineExceeded)
                    else "error"
                )
                if error is not None:
                    meta["error"] = type(error).__name__
            else:
                meta["status"] = "ok"
            child_start, child_end = timing if timing else (end, end)
            children.append((child_start, child_end, meta))
        for tr in traces:
            if tr is None:
                continue
            tr.add(
                phase, start, end,
                shared=True, batch_size=batch_size,
                shards_failed=len(failed),
            )
            for child_start, child_end, meta in children:
                tr.add(
                    child_name, child_start, child_end,
                    parent=phase, **meta,
                )

    # Delegates to the shared rule so per-call validation cannot drift
    # from QueryOptions construction.
    _validate_resilience = staticmethod(validate_resilience)

    # -- public query surface ------------------------------------------------

    def query(
        self,
        query_sketch: CorrelationSketch,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        exclude_id: str | None = None,
        true_correlations: dict[str, float] | None = None,
        rng: np.random.Generator | None = None,
        deadline_ms: float | None = None,
        on_shard_error: str = "raise",
        trace=None,
    ) -> QueryResult:
        """Evaluate one top-``k`` query across all shards.

        Same signature, defaults and rng semantics as
        :meth:`JoinCorrelationEngine.query
        <repro.index.engine.JoinCorrelationEngine.query>`; the result is
        bit-identical to that method on a monolithic catalog holding the
        union of the shards.

        Args:
            deadline_ms: wall-clock budget for the shard fan-out; shards
                whose probe or assembly has not completed in time count
                as failed (policy below). ``None`` waits indefinitely.
            on_shard_error: ``"raise"`` (default) propagates the
                lowest-index shard failure; ``"partial"`` serves the
                surviving shards and flags the result ``degraded``.
            trace: optional :class:`repro.obs.trace.Trace` recording
                the scatter-gather phases with per-shard child spans
                (see :meth:`JoinCorrelationEngine.query
                <repro.index.engine.JoinCorrelationEngine.query>` —
                tracing never touches the rng).
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._validate_resilience(deadline_ms, on_shard_error)
        self._check_scheme(query_sketch)
        return self._execute(
            [query_sketch], k, scorer, [exclude_id], [true_correlations], rng,
            deadline_ms=deadline_ms, on_shard_error=on_shard_error,
            traces=None if trace is None else [trace],
        )[0]

    def query_batch(
        self,
        query_sketches,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        exclude_ids: list[str | None] | None = None,
        true_correlations: list[dict[str, float] | None] | None = None,
        rng: np.random.Generator | None = None,
        deadline_ms: float | None = None,
        on_shard_error: str = "raise",
        traces: list | None = None,
    ) -> list[QueryResult]:
        """Evaluate many queries with one scatter-gather round per phase.

        Retrieval scatters once (every shard answers all queries from
        one stacked probe), assembly scatters once, and the scoring
        gather mirrors :meth:`JoinCorrelationEngine.query_batch
        <repro.index.engine.JoinCorrelationEngine.query_batch>` — so the
        batch inherits both parity contracts: bit-identical to looping
        :meth:`query`, and bit-identical to the monolithic engine.

        ``deadline_ms`` / ``on_shard_error`` behave as in :meth:`query`;
        the deadline budgets the whole batch's fan-out (one scatter
        serves every query), and a dropped shard degrades every query in
        the batch — each result reports the same ``shards_failed``.
        """
        query_sketches = list(query_sketches)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._validate_resilience(deadline_ms, on_shard_error)
        n_queries = len(query_sketches)
        if exclude_ids is None:
            exclude_ids = [None] * n_queries
        if true_correlations is None:
            true_correlations = [None] * n_queries
        if len(exclude_ids) != n_queries or len(true_correlations) != n_queries:
            raise ValueError(
                f"{n_queries} query sketches but {len(exclude_ids)} exclude "
                f"ids and {len(true_correlations)} truth dicts"
            )
        for sketch in query_sketches:
            self._check_scheme(sketch)
        return self._execute(
            query_sketches, k, scorer, exclude_ids, true_correlations, rng,
            deadline_ms=deadline_ms, on_shard_error=on_shard_error,
            traces=traces,
        )
