"""Scatter-gather query routing over a sharded catalog.

A :class:`ShardRouter` evaluates top-k join-correlation queries against
a :class:`~repro.serving.shards.ShardedCatalog` with **exact result
semantics**: for every scorer, rng mode and retrieval backend, the
merged result is bit-identical — ids, scores and order — to running the
same query against one monolithic catalog holding the union of the
shards. That guarantee decomposes into three facts the rest of the
stack already pins:

* **retrieval merges exactly.** Each shard's candidate probe returns
  its hits sorted under the total order ``(−overlap, sketch_id)`` and
  truncated to ``retrieval_depth``. Any candidate in the global
  top-``depth`` is, within its own shard, among that shard's
  top-``depth`` under the same order — so a deterministic heap merge of
  the per-shard lists, re-truncated to ``depth``, reproduces the
  monolithic hits list exactly. This holds for the LSH backend too:
  band collisions are a pairwise (query, candidate) predicate, so the
  union of per-shard collision sets equals the single-index collision
  set, and survivors are ranked by the same exact overlap either way.
* **page assembly is per-candidate pure.** Join samples, union
  statistics and containment inputs depend only on the query and one
  candidate (never on the rest of the page), so each shard assembles
  its own candidates (:meth:`repro.index.engine.CandidatePage.assemble`)
  and the router re-interleaves them into the merged global hit order,
  bit-identical to a monolithic assembly.
* **scoring and rng stay global.** Everything page-shaped — the
  ``rp_cih`` min-max normalization over the candidate list, the
  ``random`` scorer's draws, both PM1 bootstrap rng disciplines — runs
  once at the router over the merged page, consuming the query's rng
  exactly as :class:`~repro.index.engine.ColumnarQueryExecutor` would.
  Scattering the *scoring* would break bit-parity; scattering retrieval
  and assembly cannot.

Shard fan-out runs sequentially or on a persistent
:class:`~repro.serving.workers.ShardWorkerPool` (``workers=N``); for
query-level parallelism across cores, wrap the router in a
:class:`~repro.serving.workers.QueryWorkerPool`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.sketch import CorrelationSketch
from repro.index.engine import (
    RETRIEVAL_BACKENDS,
    CandidatePage,
    QueryResult,
    QueryExecutor,
    _apply_batched_bootstrap,
    _apply_compat_bootstrap,
    retrieve_candidates_batch,
)
from repro.index.inverted import merge_hits
from repro.ranking.ranker import RankedCandidate, rank_candidates
from repro.ranking.scoring import RNG_MODES, candidate_scores_batch
from repro.serving.shards import ShardedCatalog
from repro.serving.workers import ShardWorkerPool


def merge_shard_hits(
    per_shard_hits: list[list[tuple[str, int]]], depth: int
) -> list[tuple[str, int]]:
    """Merge per-shard hits lists into the global top-``depth``.

    The horizontal-partitioning face of the one merge primitive,
    :func:`repro.index.inverted.merge_hits`: inputs are already sorted
    under the shared ``(−overlap, id)`` total order (each shard's probe
    contract), so the heap merge plus truncation to ``depth``
    reproduces the monolithic probe's cutoff. The same primitive merges
    a single catalog's frozen and delta layers — shard scatter over
    delta-layered shards composes both without further argument.
    """
    return merge_hits(per_shard_hits, depth)


class ShardRouter:
    """Top-k query evaluation, scatter-gathered across catalog shards.

    Mirrors the :class:`~repro.index.engine.JoinCorrelationEngine` query
    surface (``query`` / ``query_batch``, same defaults, same
    :class:`~repro.index.engine.QueryResult` output with
    ``shards_probed`` set) so callers can swap a monolithic engine for a
    sharded one without touching call sites.

    Args:
        catalog: the sharded catalog to serve.
        retrieval_depth: candidates fetched by key overlap before
            re-ranking (applied globally after the merge; each shard is
            probed to the same depth).
        min_overlap: joinability floor, applied inside every shard.
        rng_mode: PM1 bootstrap execution contract for ``rb_cib``
            (see :data:`repro.ranking.scoring.RNG_MODES`).
        retrieval_backend: per-shard candidate retrieval strategy
            (see :data:`repro.index.engine.RETRIEVAL_BACKENDS`).
        lsh_bands / lsh_rows: LSH banding overrides (``"lsh"`` backend),
            same ``None`` semantics as the engine, applied per shard.
        workers: thread count for the shard fan-out; ``None``/``1``
            scatter sequentially. The pool is persistent for the
            router's life — :meth:`close` (or use as a context manager)
            releases it.
    """

    def __init__(
        self,
        catalog: ShardedCatalog,
        retrieval_depth: int = 100,
        min_overlap: int = 1,
        *,
        rng_mode: str = "batched",
        retrieval_backend: str = "inverted",
        lsh_bands: int | None = None,
        lsh_rows: int | None = None,
        workers: int | None = None,
    ) -> None:
        if retrieval_depth <= 0:
            raise ValueError(
                f"retrieval_depth must be positive, got {retrieval_depth}"
            )
        if rng_mode not in RNG_MODES:
            raise ValueError(
                f"unknown rng_mode {rng_mode!r}; expected one of {RNG_MODES}"
            )
        if retrieval_backend not in RETRIEVAL_BACKENDS:
            raise ValueError(
                f"unknown retrieval_backend {retrieval_backend!r}; "
                f"expected one of {RETRIEVAL_BACKENDS}"
            )
        for name, value in (("lsh_bands", lsh_bands), ("lsh_rows", lsh_rows)):
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        self.catalog = catalog
        self.retrieval_depth = retrieval_depth
        self.min_overlap = min_overlap
        self.rng_mode = rng_mode
        self.retrieval_backend = retrieval_backend
        self.lsh_bands = lsh_bands
        self.lsh_rows = lsh_rows
        self._pool = ShardWorkerPool(workers)

    @property
    def workers(self) -> int | None:
        return self._pool.workers

    def warm(self) -> None:
        """Materialize every catalog shard now, instead of on first probe.

        Delegates to :meth:`ShardedCatalog.warm` when the catalog has it
        (a monolithic stand-in without shards simply has nothing to
        warm). :class:`~repro.serving.workers.QueryWorkerPool` calls
        this before forking so every worker inherits the mapped/loaded
        shards instead of materializing its own copies.
        """
        warm = getattr(self.catalog, "warm", None)
        if warm is not None:
            warm()

    def close(self) -> None:
        """Release the shard worker pool (idempotent)."""
        self._pool.close()

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- scatter phases ------------------------------------------------------

    def _check_scheme(self, query_sketch: CorrelationSketch) -> None:
        if query_sketch.hasher.scheme_id != self.catalog.hasher.scheme_id:
            raise ValueError(
                "query sketch hashing scheme "
                f"{query_sketch.hasher!r} differs from catalog scheme "
                f"{self.catalog.hasher!r}"
            )

    def _scatter_retrieve(
        self, query_cols: list, exclude_ids: list[str | None]
    ) -> list[list[tuple[str, int]]]:
        """Probe every shard for every query; merge per query."""

        def probe(index: int) -> list[list[tuple[str, int]]]:
            return retrieve_candidates_batch(
                self.catalog.shard(index),
                query_cols,
                depth=self.retrieval_depth,
                min_overlap=self.min_overlap,
                excludes=exclude_ids,
                backend=self.retrieval_backend,
                lsh_bands=self.lsh_bands,
                lsh_rows=self.lsh_rows,
            )

        per_shard = self._pool.map(probe, range(self.catalog.n_shards))
        return [
            merge_shard_hits(
                [per_shard[s][q] for s in range(self.catalog.n_shards)],
                self.retrieval_depth,
            )
            for q in range(len(query_cols))
        ]

    def _scatter_assemble(
        self,
        query_cols: list,
        hits_per_query: list[list[tuple[str, int]]],
    ) -> list[CandidatePage]:
        """Assemble every query's candidate page, shard-locally.

        Each query's merged hits are split by owning shard; every shard
        assembles its own candidates in one page-level pass, and the
        results are re-interleaved into the merged global hit order —
        bit-identical to a monolithic assembly because every
        per-candidate value depends only on (query, candidate).
        """
        n_shards = self.catalog.n_shards
        #: shard -> list of (query index, page positions, hits subset)
        shard_tasks: list[list[tuple[int, list[int], list[tuple[str, int]]]]] = [
            [] for _ in range(n_shards)
        ]
        for q, hits in enumerate(hits_per_query):
            buckets: dict[int, tuple[list[int], list[tuple[str, int]]]] = {}
            for pos, hit in enumerate(hits):
                owner = self.catalog.owner_of(hit[0])
                positions, subset = buckets.setdefault(owner, ([], []))
                positions.append(pos)
                subset.append(hit)
            for owner, (positions, subset) in buckets.items():
                shard_tasks[owner].append((q, positions, subset))

        def assemble(index: int):
            shard = self.catalog.shard(index)
            return [
                (q, positions, CandidatePage.assemble(shard, query_cols[q], subset))
                for q, positions, subset in shard_tasks[index]
            ]

        pages = [
            CandidatePage(
                ids=[sid for sid, _ in hits],
                overlaps=[overlap for _, overlap in hits],
                samples=[None] * len(hits),
                union_stats=[None] * len(hits),
            )
            for hits in hits_per_query
        ]
        for shard_result in self._pool.map(assemble, range(n_shards)):
            for q, positions, sub_page in shard_result:
                page = pages[q]
                for j, pos in enumerate(positions):
                    page.samples[pos] = sub_page.samples[j]
                    page.union_stats[pos] = sub_page.union_stats[j]
        return pages

    # -- gather / scoring ----------------------------------------------------

    def _execute(
        self,
        query_sketches: list[CorrelationSketch],
        k: int,
        scorer: str,
        exclude_ids: list[str | None],
        true_correlations: list[dict[str, float] | None],
        rng: np.random.Generator | None,
    ) -> list[QueryResult]:
        """The shared scatter-gather pipeline (single query = batch of 1).

        The gather tail mirrors
        :meth:`~repro.index.engine.ColumnarQueryExecutor.execute_batch`
        statement for statement — one global scoring pass, then
        per-query bootstrap and ranking consuming each query's rng in
        order — so results inherit that method's parity contract with
        looped single-catalog queries.
        """
        n_queries = len(query_sketches)
        if n_queries == 0:
            return []
        t0 = time.perf_counter()
        query_cols = [sketch.columnar() for sketch in query_sketches]
        hits_per_query = self._scatter_retrieve(query_cols, exclude_ids)
        t1 = time.perf_counter()

        pages = self._scatter_assemble(query_cols, hits_per_query)
        spans: list[tuple[int, int]] = []
        all_samples = []
        all_containments: list[float] = []
        for sketch, page in zip(query_sketches, pages):
            start = len(all_samples)
            all_samples.extend(page.samples)
            all_containments.extend(page.containments(sketch.distinct_keys()))
            spans.append((start, len(all_samples)))

        base_stats = candidate_scores_batch(
            all_samples,
            containment_ests=all_containments,
            with_bootstrap=False,
        )

        needs_bootstrap = scorer == "rb_cib"
        ranked_per_query: list[tuple[list[RankedCandidate], int]] = []
        for q in range(n_queries):
            start, end = spans[q]
            samples = all_samples[start:end]
            stats = base_stats[start:end]
            query_rng = np.random.default_rng(7) if rng is None else rng
            if needs_bootstrap:
                if self.rng_mode == "batched":
                    stats = _apply_batched_bootstrap(samples, stats, query_rng)
                else:
                    stats = _apply_compat_bootstrap(samples, stats, query_rng)
            ranked = rank_candidates(
                pages[q].ids, stats, scorer,
                true_correlations=QueryExecutor._truths(
                    pages[q].ids, true_correlations[q]
                ),
                rng=query_rng,
            )[:k]
            ranked_per_query.append((ranked, len(hits_per_query[q])))
        t2 = time.perf_counter()

        retrieval_share = (t1 - t0) / n_queries
        rerank_share = (t2 - t1) / n_queries
        return [
            QueryResult(
                ranked=ranked,
                candidates_considered=considered,
                retrieval_seconds=retrieval_share,
                rerank_seconds=rerank_share,
                shards_probed=self.catalog.n_shards,
            )
            for ranked, considered in ranked_per_query
        ]

    # -- public query surface ------------------------------------------------

    def query(
        self,
        query_sketch: CorrelationSketch,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        exclude_id: str | None = None,
        true_correlations: dict[str, float] | None = None,
        rng: np.random.Generator | None = None,
    ) -> QueryResult:
        """Evaluate one top-``k`` query across all shards.

        Same signature, defaults and rng semantics as
        :meth:`JoinCorrelationEngine.query
        <repro.index.engine.JoinCorrelationEngine.query>`; the result is
        bit-identical to that method on a monolithic catalog holding the
        union of the shards.
        """
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self._check_scheme(query_sketch)
        return self._execute(
            [query_sketch], k, scorer, [exclude_id], [true_correlations], rng
        )[0]

    def query_batch(
        self,
        query_sketches,
        k: int = 10,
        scorer: str = "rp_cih",
        *,
        exclude_ids: list[str | None] | None = None,
        true_correlations: list[dict[str, float] | None] | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[QueryResult]:
        """Evaluate many queries with one scatter-gather round per phase.

        Retrieval scatters once (every shard answers all queries from
        one stacked probe), assembly scatters once, and the scoring
        gather mirrors :meth:`JoinCorrelationEngine.query_batch
        <repro.index.engine.JoinCorrelationEngine.query_batch>` — so the
        batch inherits both parity contracts: bit-identical to looping
        :meth:`query`, and bit-identical to the monolithic engine.
        """
        query_sketches = list(query_sketches)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        n_queries = len(query_sketches)
        if exclude_ids is None:
            exclude_ids = [None] * n_queries
        if true_correlations is None:
            true_correlations = [None] * n_queries
        if len(exclude_ids) != n_queries or len(true_correlations) != n_queries:
            raise ValueError(
                f"{n_queries} query sketches but {len(exclude_ids)} exclude "
                f"ids and {len(true_correlations)} truth dicts"
            )
        for sketch in query_sketches:
            self._check_scheme(sketch)
        return self._execute(
            query_sketches, k, scorer, exclude_ids, true_correlations, rng
        )
