"""Micro-batching front door for concurrent query clients.

The batched query path amortizes the index probe and the scoring pass
across queries (``benchmarks/results/batch_query.txt``), but a real
service receives *concurrent single queries*, not pre-assembled batches.
:class:`QueryCoalescer` closes that gap: callers block on
:meth:`submit` while a flusher thread collects whatever arrived into a
bounded time/size window and executes it as one
:meth:`QuerySession.submit <repro.serving.session.QuerySession.submit>`
call.

**Bit-parity.** Coalesced responses are bit-identical to per-request
execution because the engine's default rng contract gives *every query
its own* fresh fixed-seed generator under ``seed=None`` — batch
composition is invisible to any query's scores. The coalescer therefore
refuses a session whose options pin a shared ``seed`` (that contract is
sequential; batching arbitrary concurrent arrivals under it would make
responses depend on who else happened to be in the window). Requests
with different per-request ``k``/``scorer`` coalesce in the same window
and are executed as one sub-batch per ``(k, scorer)`` group (the
batched pipeline takes scalar ``k``/``scorer``).

**Window semantics.** A flush happens when the window fills
(``max_batch`` requests), when the oldest pending request has waited
``max_wait_ms``, or at shutdown (close drains every pending request —
nothing is abandoned). With the default ``max_wait_ms=0`` the window is
purely *adaptive*: an idle coalescer executes a lone request immediately
on the caller's thread (no batching latency at low load), and batches
form naturally only while an execution is already in flight — arrivals
queue behind it and flush together the moment the flusher frees up.
A positive ``max_wait_ms`` instead holds the window open to let
companions accumulate, trading per-request latency for larger batches.
"""

from __future__ import annotations

import threading
import time

from repro.index.engine import QueryResult
from repro.obs import BATCH_SIZE_BUCKETS, get_registry
from repro.serving.session import QuerySession

__all__ = ["QueryCoalescer"]


class _Pending:
    """One caller-visible request parked in the window."""

    __slots__ = (
        "sketch", "k", "scorer", "exclude_id", "trace",
        "arrived", "done", "result", "error",
    )

    def __init__(
        self, sketch, k, scorer, exclude_id, trace, arrived=None
    ) -> None:
        self.sketch = sketch
        self.k = k
        self.scorer = scorer
        self.exclude_id = exclude_id
        self.trace = trace
        self.arrived = (
            time.perf_counter() if arrived is None else arrived
        )
        self.done = threading.Event()
        self.result: QueryResult | None = None
        self.error: BaseException | None = None


class QueryCoalescer:
    """Collect concurrent queries into one batched execution.

    Args:
        session: the warm :class:`QuerySession` that executes windows.
            Its options must leave ``seed=None`` (see module docs).
        max_batch: flush as soon as this many requests are pending.
        max_wait_ms: flush once the oldest pending request has waited
            this long. ``0`` (default) never waits — idle requests
            execute immediately and batches form only under load.
    """

    def __init__(
        self,
        session: QuerySession,
        *,
        max_batch: int = 16,
        max_wait_ms: float = 0.0,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(
                f"max_wait_ms must be non-negative, got {max_wait_ms}"
            )
        if session.options.seed is not None:
            raise ValueError(
                "coalescing requires options.seed=None: a pinned seed "
                "makes responses depend on window composition, breaking "
                "parity with per-request execution"
            )
        self.session = session
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self._cond = threading.Condition()
        self._pending: list[_Pending] = []
        self._busy = False  # an execution (fast-path or flush) in flight
        self._closed = False
        #: Counters — every write holds ``_cond`` so concurrent
        #: read-modify-writes cannot drop increments; telemetry readers
        #: (``/healthz``) read lock-free, which is safe for int values.
        self.stats = {
            "submitted": 0,
            "fast_path": 0,      # lone idle requests run on caller thread
            "batches": 0,        # flusher executions (any size)
            "coalesced": 0,      # requests that shared a window with others
            "largest_batch": 0,
        }
        self._flusher = threading.Thread(
            target=self._run, name="query-coalescer", daemon=True
        )
        self._flusher.start()

    # -- caller side ---------------------------------------------------------

    def submit(
        self,
        sketch,
        *,
        k: int | None = None,
        scorer: str | None = None,
        exclude_id: str | None = None,
        trace: bool = False,
        arrived: float | None = None,
    ) -> QueryResult:
        """Evaluate one query, blocking until its window executes.

        ``k``/``scorer`` default to the session's options; other knobs
        (depth, backend, resilience policy) are session-wide by design —
        they describe the warm index, not one request. ``trace`` asks
        for the result's phase-span block; traced and untraced requests
        execute in separate sub-batches (the flag is part of the group
        key) but scores are bit-identical regardless. ``arrived`` lets
        a caller backdate the request's arrival to when it finished its
        own pre-work (the HTTP service stamps post-sketching), so the
        traced ``queue_wait`` covers admission overhead too.
        """
        options = self.session.options
        k = options.k if k is None else k
        scorer = options.scorer if scorer is None else scorer
        # Validate per-request knobs on the caller's thread, before the
        # request can enter a shared window: a bad value (wrong type,
        # unknown scorer, unhashable JSON like k=[5]) must fail only
        # this call, never reach the flusher or a window-mate.
        if not isinstance(k, int) or isinstance(k, bool):
            raise TypeError(f"k must be an integer, got {type(k).__name__}")
        if not isinstance(scorer, str):
            raise TypeError(
                f"scorer must be a string, got {type(scorer).__name__}"
            )
        if exclude_id is not None and not isinstance(exclude_id, str):
            raise TypeError(
                f"exclude_id must be a string or None, got "
                f"{type(exclude_id).__name__}"
            )
        options.merged(k=k, scorer=scorer)  # value validation (k>0, names)
        request = _Pending(
            sketch, k, scorer, exclude_id, bool(trace), arrived
        )
        with self._cond:
            if self._closed:
                raise RuntimeError("coalescer is closed")
            self.stats["submitted"] += 1
            fast = (
                self.max_wait_ms == 0
                and not self._busy
                and not self._pending
            )
            if fast:
                self._busy = True
                self.stats["fast_path"] += 1
            else:
                self._pending.append(request)
                self._cond.notify_all()
        if not fast:
            request.done.wait()
            if request.error is not None:
                raise request.error
            return request.result
        # Fast path: the coalescer is idle and no window is configured —
        # execute on the caller's thread, exactly like a direct call.
        try:
            self._execute([request])
        finally:
            with self._cond:
                self._busy = False
                self._cond.notify_all()
        if request.error is not None:
            raise request.error
        return request.result

    # -- flusher side --------------------------------------------------------

    def _window_ready(self) -> bool:
        if not self._pending:
            return False
        if self._closed or len(self._pending) >= self.max_batch:
            return True
        waited_ms = (
            time.perf_counter() - self._pending[0].arrived
        ) * 1000.0
        return waited_ms >= self.max_wait_ms

    def _run(self) -> None:
        while True:
            with self._cond:
                while not (self._window_ready() and not self._busy):
                    if self._closed and not self._pending and not self._busy:
                        return
                    if self._pending and not self._busy:
                        # Window still filling: sleep only its remainder.
                        waited = (
                            time.perf_counter() - self._pending[0].arrived
                        )
                        timeout = max(
                            0.0, self.max_wait_ms / 1000.0 - waited
                        )
                        self._cond.wait(timeout)
                    else:
                        self._cond.wait()
                batch = self._pending[: self.max_batch]
                del self._pending[: self.max_batch]
                self._busy = True
                self.stats["batches"] += 1
                if len(batch) > 1:
                    self.stats["coalesced"] += len(batch)
                self.stats["largest_batch"] = max(
                    self.stats["largest_batch"], len(batch)
                )
            try:
                self._execute(batch)
            except BaseException as exc:  # noqa: BLE001 — see below
                # _execute hands per-group failures to their callers; an
                # exception escaping it is a coalescer bug. Fail the
                # batch (callers are blocked on done.wait()) but keep
                # the flusher alive — killing it would hang every
                # later request and deadlock close()'s drain.
                for request in batch:
                    if not request.done.is_set():
                        request.error = exc
                        request.done.set()
            finally:
                with self._cond:
                    self._busy = False
                    self._cond.notify_all()

    def _execute(self, batch: list[_Pending]) -> None:
        """Run one window as one sub-batch per ``(k, scorer, trace)``
        group."""
        get_registry().observe(
            "repro_coalescer_batch_size",
            len(batch),
            buckets=BATCH_SIZE_BUCKETS,
            help="Requests executed together per coalescer window",
        )
        groups: dict[tuple[int, str, bool], list[_Pending]] = {}
        for request in batch:
            try:
                key = (request.k, request.scorer, request.trace)
                groups.setdefault(key, []).append(request)
            except Exception as exc:  # unhashable k/scorer that slipped
                request.error = exc   # past submit's validation: fail
                request.done.set()    # this request, keep its window-mates
        for (k, scorer, trace), requests in groups.items():
            try:
                results = self.session.submit(
                    [r.sketch for r in requests],
                    exclude_ids=[r.exclude_id for r in requests],
                    options=self.session.options.merged(k=k, scorer=scorer),
                    trace=trace,
                    arrivals=(
                        [r.arrived for r in requests] if trace else None
                    ),
                )
            except BaseException as exc:  # noqa: BLE001 — handed to callers
                for request in requests:
                    request.error = exc
                    request.done.set()
                continue
            for request, result in zip(requests, results):
                request.result = result
                request.done.set()

    def stats_snapshot(self) -> dict[str, int]:
        """A consistent copy of :attr:`stats`, taken under the lock.

        The lock-free :attr:`stats` reads are safe per-counter but can
        tear *across* counters (e.g. ``submitted`` bumped while
        ``batches`` is not yet); versioned payloads like ``/healthz``
        snapshot instead.
        """
        with self._cond:
            return dict(self.stats)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain every pending request, then stop the flusher (idempotent).

        Requests already in the window when close is called still
        execute and their callers get real results; only *new* submits
        are refused.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._flusher.join()

    def __enter__(self) -> "QueryCoalescer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
