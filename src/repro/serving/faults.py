"""Deterministic fault injection for the serving and snapshot stack.

The resilience layer — query deadlines, partial scatter-gather, worker
supervision, snapshot quarantine — only earns trust if its failure
paths are *driven*, repeatably, in tests and benchmarks. This module is
the driver: a process-global :class:`FaultPlan` describing which
injection **sites** misbehave and how, installed explicitly and
consulted by small hooks threaded through the stack:

========================  ====================================================
site                      fired from (context keys)
========================  ====================================================
``shard_probe``           :meth:`ShardRouter._scatter_retrieve`, once per
                          shard probe (``shard``)
``shard_assemble``        :meth:`ShardRouter._scatter_assemble`, once per
                          shard page-assembly task (``shard``)
``worker_chunk``          :func:`repro.serving.workers._run_query_chunk`,
                          inside the forked worker before it evaluates its
                          query slice (``chunk``)
``snapshot_read``         :func:`repro.index.snapshot.load_snapshot`, before
                          a snapshot file is opened (``path``)
``fsync``                 :func:`repro.index.arena.atomic_write`, at each
                          durability barrier (``path``, ``target`` —
                          ``"file"`` before the publish, ``"dir"`` after)
========================  ====================================================

A plan is a mapping ``site -> rule`` (or ``site -> [rules]``); each rule
is a dict with a ``kind`` plus matchers and scoping:

* ``kind`` — ``"delay"`` (sleep ``ms`` milliseconds inside the site),
  ``"exception"`` (raise :class:`InjectedFault`), or ``"kill"``
  (``os._exit`` — only legal at ``worker_chunk``, where it simulates a
  crashed forked worker; anywhere else it would kill the caller);
* matchers — any other key is compared against the site's context:
  equality for scalars (``{"shard": 1}``), substring for ``path``
  (``{"path": "shard-0001"}`` matches the file name);
* ``times`` — fire at most this many times (default ``1``; ``None`` is
  unlimited). The counter is a fork-shared :class:`multiprocessing.Value`,
  so a one-shot worker-kill stays one-shot across the respawned worker
  re-running the same chunk — the decrement made in the killed child is
  visible to the parent and every later fork;
* ``probability`` — fire on this fraction of matching hits, drawn from
  the plan's seeded :class:`random.Random` stream (chaos benchmarks;
  omit for the deterministic always-fire used by the test matrix).

Example (the ISSUE's canonical plan)::

    install({"shard_probe": {"shard": 1, "kind": "delay", "ms": 50}})

Determinism and overhead contract:

* the plan's random stream is seeded from ``seed`` (default: the
  ``REPRO_FAULT_SEED`` environment variable, else 7), so a pinned seed
  replays the same fault sequence;
* nothing fires unless a plan was explicitly installed. The hooks in
  :mod:`repro.index` check ``sys.modules`` for this module before doing
  anything, so a process that never imports ``repro.serving.faults``
  pays literally zero overhead, and a serving process with no plan pays
  one ``None`` check per site.
"""

from __future__ import annotations

import multiprocessing
import os
import random
import time
from contextlib import contextmanager

#: Every injection site the stack exposes; unknown sites in a plan are
#: rejected at install time so a typo cannot silently disable a fault.
FAULT_SITES = (
    "shard_probe",
    "shard_assemble",
    "worker_chunk",
    "snapshot_read",
    "fsync",
)

#: Fault behaviours a rule may request.
FAULT_KINDS = ("delay", "exception", "kill")

#: Exit status of a fault-killed worker process (distinctive in logs).
KILL_EXIT_STATUS = 17


class InjectedFault(ValueError):
    """The exception an ``"exception"``-kind fault raises.

    A :class:`ValueError` subclass on purpose: the quarantine and
    one-line-CLI-error paths already catch ``ValueError`` for genuinely
    corrupt inputs, so an injected read fault exercises exactly the
    handlers a real corruption would.
    """


class FaultRule:
    """One normalized fault rule: kind + matchers + firing budget."""

    __slots__ = ("site", "kind", "ms", "probability", "match", "_remaining")

    def __init__(self, site: str, spec: dict) -> None:
        spec = dict(spec)
        kind = spec.pop("kind", None)
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"fault rule for site {site!r} has kind {kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if kind == "kill" and site != "worker_chunk":
            raise ValueError(
                f"kind 'kill' is only legal at site 'worker_chunk' "
                f"(got site {site!r}) — anywhere else it would kill the "
                "serving process itself"
            )
        self.site = site
        self.kind = kind
        self.ms = float(spec.pop("ms", 0.0))
        if kind == "delay" and self.ms <= 0:
            raise ValueError(
                f"delay rule for site {site!r} needs a positive 'ms', "
                f"got {self.ms}"
            )
        self.probability = spec.pop("probability", None)
        if self.probability is not None and not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        times = spec.pop("times", 1)
        if times is not None and (not isinstance(times, int) or times <= 0):
            raise ValueError(f"times must be a positive int or None, got {times!r}")
        # Fork-shared so a child's firing (e.g. a worker kill) consumes
        # the budget for the parent and every subsequently forked worker.
        self._remaining = (
            multiprocessing.Value("q", times) if times is not None else None
        )
        self.match = spec  # whatever is left matches against site context

    def matches(self, context: dict) -> bool:
        for key, want in self.match.items():
            got = context.get(key)
            if key == "path":
                if str(want) not in str(got if got is not None else ""):
                    return False
            elif got != want:
                return False
        return True

    def consume(self) -> bool:
        """Claim one firing from the budget (atomically, cross-process)."""
        if self._remaining is None:
            return True
        with self._remaining.get_lock():
            if self._remaining.value <= 0:
                return False
            self._remaining.value -= 1
            return True


class FaultPlan:
    """A seeded set of fault rules, ready to install.

    Args:
        spec: ``{site: rule-or-list-of-rules}`` (see the module docs).
        seed: seed for the probability stream; ``None`` reads the
            ``REPRO_FAULT_SEED`` environment variable (default 7) so CI
            can pin the whole suite's fault randomness from one place.
    """

    def __init__(self, spec: dict, seed: int | None = None) -> None:
        if seed is None:
            seed = int(os.environ.get("REPRO_FAULT_SEED", 7))
        self.seed = seed
        self._rng = random.Random(seed)
        self.rules: dict[str, list[FaultRule]] = {}
        for site, rules in spec.items():
            if site not in FAULT_SITES:
                raise ValueError(
                    f"unknown fault site {site!r}; expected one of "
                    f"{FAULT_SITES}"
                )
            if isinstance(rules, dict):
                rules = [rules]
            self.rules[site] = [FaultRule(site, rule) for rule in rules]
        # Fork-shared firing counter: tests assert faults actually fired
        # even when the firing happened inside a (since dead) worker.
        self._fired = multiprocessing.Value("q", 0)
        #: Per-process log of (site, context) pairs that fired — the
        #: parent's view only; the shared count above is authoritative.
        self.fired_log: list[tuple[str, dict]] = []

    @property
    def fired_count(self) -> int:
        """Total firings across every process sharing this plan."""
        return int(self._fired.value)

    def fire(self, site: str, **context) -> None:
        """Trigger every matching rule for ``site`` (may sleep or raise)."""
        for rule in self.rules.get(site, ()):
            if not rule.matches(context):
                continue
            if rule.probability is not None and (
                self._rng.random() >= rule.probability
            ):
                continue
            if not rule.consume():
                continue
            with self._fired.get_lock():
                self._fired.value += 1
            self.fired_log.append((site, context))
            if rule.kind == "delay":
                time.sleep(rule.ms / 1000.0)
            elif rule.kind == "exception":
                raise InjectedFault(
                    f"injected fault at {site} ({context})"
                )
            else:  # kill — only reachable at worker_chunk
                os._exit(KILL_EXIT_STATUS)


#: The process-global plan; ``None`` means fault injection is off.
_PLAN: FaultPlan | None = None


def install(spec: dict | FaultPlan, seed: int | None = None) -> FaultPlan:
    """Install a fault plan process-globally; returns it.

    Install *before* forking worker pools so children inherit the plan
    (and its shared counters). Installing replaces any previous plan.
    """
    global _PLAN
    plan = spec if isinstance(spec, FaultPlan) else FaultPlan(spec, seed=seed)
    _PLAN = plan
    return plan


def uninstall() -> None:
    """Remove the installed plan (idempotent)."""
    global _PLAN
    _PLAN = None


def active_plan() -> FaultPlan | None:
    """The installed plan, or ``None`` when injection is off."""
    return _PLAN


def maybe_fire(site: str, **context) -> None:
    """The hook injection sites call: a no-op unless a plan is installed."""
    if _PLAN is not None:
        _PLAN.fire(site, **context)


@contextmanager
def injected(spec: dict, seed: int | None = None):
    """Scope a fault plan to a ``with`` block (test-suite sugar)."""
    plan = install(spec, seed=seed)
    try:
        yield plan
    finally:
        uninstall()
