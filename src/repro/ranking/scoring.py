"""Risk-averse scoring functions for ranked correlation discovery (§4.4).

The framework (Eq. 5) scores a candidate by ``|r̂| · (1 − risk)`` where
``risk ∈ [0, 1]`` measures the dispersion of the estimate. Three
penalization factors instantiate it:

* ``sez = 1 − 1/sqrt(max(4, n) − 3)`` — Fisher z standard error (§4.2);
* ``cib = 1 − (ρ^high_PM1 − ρ^low_PM1)/2`` — PM1 bootstrap CI length;
* ``cih = 1 − (ci_len − ci_min)/(ci_max − ci_min)`` — HFD Hoeffding CI
  length, min-max normalized *within the ranked list* (so it is computed
  by the ranker, not per candidate).

yielding the paper's four scoring functions

    s1 = r_p            s2 = r_p · sez
    s3 = r_b · cib      s4 = r_p · cih

with ``r_p`` the absolute Pearson estimate and ``r_b`` the absolute PM1
bootstrap estimate. NaN estimates score 0 (a candidate whose correlation
cannot even be estimated is ranked last, tied with zero-correlation ones).

Scorer names
------------
:data:`SCORER_NAMES` is the registry every entry point accepts — the CLI's
``repro-sketch query --scorer``, :meth:`JoinCorrelationEngine.query
<repro.index.engine.JoinCorrelationEngine.query>` and
:func:`repro.ranking.ranker.rank_candidates`:

==========  ============================================================
name        meaning (paper §4.4 / §5.4 unless noted)
==========  ============================================================
``rp``      ``s1`` — absolute Pearson estimate, no risk penalty
``rp_sez``  ``s2`` — Pearson discounted by the Fisher-z standard error
            (§4.2); cheap, sample-size-aware
``rb_cib``  ``s3`` — PM1 bootstrap estimate discounted by its bootstrap
            CI length; the most accurate and by far the most expensive
``rp_cih``  ``s4`` — Pearson discounted by the Hoeffding CI length
            (§4.3), min-max normalized over the ranked list; the paper's
            recommended latency/quality trade-off and the CLI default
``jc``      exact query-key containment when ground truth is available
            (joinability baseline, §5.4)
``jc_est``  sketch-estimated containment (the deployable joinability
            baseline)
``random``  uniform-random scores (ranking-quality floor, §5.4)
==========  ============================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bounds.hoeffding import hfd_interval
from repro.correlation.bootstrap import pm1_interval, pm1_interval_batch
from repro.correlation.fisher import clamped_fisher_se
from repro.correlation.pearson import pearson
from repro.core.joined_sample import JoinedSample

SCORER_NAMES = ("rp", "rp_sez", "rb_cib", "rp_cih", "jc", "jc_est", "random")

#: How batched scoring runs the PM1 bootstrap across a candidate list:
#: ``"batched"`` (default) drives all candidates through the
#: cross-candidate engine (:func:`repro.correlation.bootstrap
#: .pm1_interval_batch` — shared draws per stopping round, adaptive
#: early stopping, one masked tensor pass); ``"compat"`` reproduces the
#: per-candidate rng stream bit-for-bit (one 599-replicate
#: :func:`~repro.correlation.bootstrap.pm1_interval` per candidate, in
#: list order).
RNG_MODES = ("batched", "compat")


@dataclass(frozen=True)
class CandidateScores:
    """Per-candidate statistics every scoring function draws from.

    Attributes:
        r_pearson: Pearson estimate from the sketch join (NaN-safe).
        r_bootstrap: PM1 bootstrap estimate (mean of replicates).
        sample_size: sketch-join sample size ``n``.
        sez_factor: the ``sez`` penalization factor.
        cib_factor: the ``cib`` penalization factor.
        hfd_ci_length: HFD interval length (input to ``cih``, which needs
            list-level normalization).
        containment_est: sketch-estimated containment (the ``ĵc`` score).
        containment_true: exact containment if known (the ``jc`` score),
            NaN otherwise.
    """

    r_pearson: float
    r_bootstrap: float
    sample_size: int
    sez_factor: float
    cib_factor: float
    hfd_ci_length: float
    containment_est: float
    containment_true: float

    def to_dict(self) -> dict:
        """Strict-JSON representation (inverse of :meth:`from_dict`).

        Floats survive bit-for-bit (JSON carries ``repr``, which
        round-trips every finite float exactly); NaN and the infinities
        (a legal ``hfd_ci_length`` on degenerate samples) — which strict
        JSON cannot express — use the :func:`json_float` encodings.
        """
        return {
            "r_pearson": json_float(self.r_pearson),
            "r_bootstrap": json_float(self.r_bootstrap),
            "sample_size": self.sample_size,
            "sez_factor": json_float(self.sez_factor),
            "cib_factor": json_float(self.cib_factor),
            "hfd_ci_length": json_float(self.hfd_ci_length),
            "containment_est": json_float(self.containment_est),
            "containment_true": json_float(self.containment_true),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CandidateScores":
        return cls(
            r_pearson=unjson_float(payload["r_pearson"]),
            r_bootstrap=unjson_float(payload["r_bootstrap"]),
            sample_size=int(payload["sample_size"]),
            sez_factor=unjson_float(payload["sez_factor"]),
            cib_factor=unjson_float(payload["cib_factor"]),
            hfd_ci_length=unjson_float(payload["hfd_ci_length"]),
            containment_est=unjson_float(payload["containment_est"]),
            containment_true=unjson_float(payload["containment_true"]),
        )


def json_float(value: float) -> float | str | None:
    """Strict-JSON float encoding: finite floats unchanged.

    Strict JSON has no token for the IEEE specials, and Python's default
    encoder would emit the non-standard ``NaN``/``Infinity`` literals
    that non-Python clients reject — so NaN encodes as ``None`` and the
    infinities as the string sentinels ``"Infinity"``/``"-Infinity"``
    (:func:`unjson_float` restores all three).
    """
    value = float(value)
    if math.isnan(value):
        return None
    if math.isinf(value):
        return "Infinity" if value > 0 else "-Infinity"
    return value


def unjson_float(value: float | str | None) -> float:
    """Inverse of :func:`json_float`: decode the NaN/infinity encodings."""
    if value is None:
        return math.nan
    if isinstance(value, str):
        if value == "Infinity":
            return math.inf
        if value == "-Infinity":
            return -math.inf
        raise ValueError(f"not a JSON float encoding: {value!r}")
    return float(value)


def _abs_or_zero(r: float) -> float:
    return 0.0 if math.isnan(r) else abs(r)


def sez_factor(sample_size: int) -> float:
    """``1 − 1/sqrt(max(4, n) − 3)`` — in [0, 1), 0 at n ≤ 4."""
    return 1.0 - clamped_fisher_se(sample_size)


def cib_factor(ci_low: float, ci_high: float) -> float:
    """``1 − (ρ^high − ρ^low)/2`` from the PM1 interval, floored at 0."""
    if math.isnan(ci_low) or math.isnan(ci_high):
        return 0.0
    return max(0.0, 1.0 - (ci_high - ci_low) / 2.0)


def cih_factors(ci_lengths: list[float]) -> list[float]:
    """Min-max normalize HFD CI lengths over a ranked list (the ``cih``).

    Candidates with NaN lengths receive factor 0 (maximum risk). When all
    finite lengths are equal the normalization is degenerate; every finite
    candidate then gets factor 1 (no discrimination, no penalty).
    """
    finite = [c for c in ci_lengths if not math.isnan(c)]
    if not finite:
        return [0.0 for _ in ci_lengths]
    lo, hi = min(finite), max(finite)
    span = hi - lo
    out = []
    for c in ci_lengths:
        if math.isnan(c):
            out.append(0.0)
        elif span <= 0:
            out.append(1.0)
        else:
            out.append(1.0 - (c - lo) / span)
    return out


def candidate_scores(
    sample: JoinedSample,
    *,
    containment_est: float = 0.0,
    containment_true: float = math.nan,
    alpha: float = 0.05,
    rng: np.random.Generator | None = None,
    with_bootstrap: bool = True,
) -> CandidateScores:
    """Compute all per-candidate scoring statistics from a sketch join.

    Args:
        sample: NaN-filtered joined sample from ``join_sketches(...)``.
        containment_est: sketch-based containment estimate (``ĵc``).
        containment_true: exact containment when available (``jc``).
        alpha: miscoverage level for the HFD interval.
        rng: generator for the PM1 bootstrap (seeded per-sample if None).
        with_bootstrap: the PM1 bootstrap is by far the most expensive
            statistic (hundreds of resamples); pass False when the scoring
            function in use does not need ``r_b``/``cib`` — this is what
            keeps query latency interactive (Section 5.5, and the paper's
            point that Hoeffding CIs deliver bootstrap-quality rankings at
            a fraction of the cost).
    """
    r_p = pearson(sample.x, sample.y)
    n = sample.size

    if rng is None:
        rng = np.random.default_rng(n * 2_654_435_761 % (2**32) + 17)

    if with_bootstrap and n >= 2 and not math.isnan(r_p):
        boot = pm1_interval(sample.x, sample.y, rng=rng)
        r_b = boot.estimate
        cib = cib_factor(boot.low, boot.high)
    else:
        r_b = math.nan
        cib = 0.0

    c_low, c_high = sample.combined_range()
    hfd = hfd_interval(sample.x, sample.y, c_low, c_high, alpha)
    hfd_len = hfd.length if not math.isnan(hfd.length) else math.nan

    return CandidateScores(
        r_pearson=r_p,
        r_bootstrap=r_b,
        sample_size=n,
        sez_factor=sez_factor(n),
        cib_factor=cib,
        hfd_ci_length=hfd_len,
        containment_est=containment_est,
        containment_true=containment_true,
    )


def candidate_scores_batch(
    samples: list[JoinedSample],
    *,
    containment_ests: list[float] | None = None,
    containment_trues: list[float] | None = None,
    alpha: float = 0.05,
    rng: np.random.Generator | None = None,
    with_bootstrap: bool = True,
    rng_mode: str = "batched",
) -> list[CandidateScores]:
    """Batched :func:`candidate_scores` over a whole candidate list.

    The columnar executor's scoring stage: Pearson, Fisher-z SE and
    Hoeffding-CI statistics for *all* candidates are computed from two
    concatenated sample arrays with segment reductions
    (``np.add.reduceat``), replacing one Python/NumPy round-trip per
    candidate with a fixed number of whole-list array passes. Ragged
    sample lengths are handled by segment offsets; empty samples get the
    same degenerate statistics as the scalar path (NaN Pearson, vacuous
    ``[-1, 1]`` Hoeffding interval).

    The PM1 bootstrap — when ``with_bootstrap`` — follows ``rng_mode``:

    * ``"batched"`` (default): all eligible candidates are resampled
      together by the cross-candidate engine
      (:func:`repro.correlation.bootstrap.pm1_interval_batch`) — shared
      index draws per stopping round, per-candidate adaptive stopping,
      chunked masked tensor arithmetic. Statistically equivalent to the
      per-candidate path and deterministic per ``rng``, but a different
      rng stream; the parity suite pins identical *rankings*.
    * ``"compat"``: one per-candidate :func:`pm1_interval` call in list
      order, consuming ``rng`` draws exactly as the scalar path does, so
      ``r_b``/``cib`` are bit-identical to pre-batch-engine behavior.

    The reduceat-based moment statistics differ from the scalar
    per-candidate reductions only in float summation order (a few ulps);
    the parity suite pins rankings to be identical and these statistics
    to agree within that rounding.

    Args:
        samples: NaN-filtered joined samples, one per candidate.
        containment_ests: per-candidate ``ĵc`` estimates (default 0.0).
        containment_trues: per-candidate exact containments (default NaN).
        alpha: miscoverage level for the HFD interval.
        rng: generator for the PM1 bootstrap. When None, ``"compat"``
            falls back to the scalar path's per-sample seeded defaults
            and ``"batched"`` to the batch engine's fixed-seed default —
            both deterministic.
        with_bootstrap: compute ``r_b``/``cib`` (expensive; see
            :func:`candidate_scores`).
        rng_mode: bootstrap execution contract (see :data:`RNG_MODES`).
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if rng_mode not in RNG_MODES:
        raise ValueError(
            f"unknown rng_mode {rng_mode!r}; expected one of {RNG_MODES}"
        )
    count = len(samples)
    if containment_ests is None:
        containment_ests = [0.0] * count
    if containment_trues is None:
        containment_trues = [math.nan] * count
    if len(containment_ests) != count or len(containment_trues) != count:
        raise ValueError(
            f"{count} samples but {len(containment_ests)} containment "
            f"estimates and {len(containment_trues)} true containments"
        )
    if count == 0:
        return []

    lengths = np.asarray([s.size for s in samples], dtype=np.int64)
    ranges = np.asarray([s.combined_range() for s in samples], dtype=np.float64)
    c_low, c_high = ranges[:, 0], ranges[:, 1]

    r_pearson = np.full(count, math.nan, dtype=np.float64)
    hfd_len = np.full(count, 2.0, dtype=np.float64)

    nonempty = np.nonzero(lengths > 0)[0]
    if nonempty.size:
        seg_n = lengths[nonempty].astype(np.float64)
        x = np.concatenate([samples[i].x for i in nonempty])
        y = np.concatenate([samples[i].y for i in nonempty])
        starts = np.zeros(nonempty.size, dtype=np.int64)
        np.cumsum(lengths[nonempty][:-1], out=starts[1:])

        # -- Pearson (Eq. 3), centered two-pass as in pearson() ------------
        mean_x = np.add.reduceat(x, starts) / seg_n
        mean_y = np.add.reduceat(y, starts) / seg_n
        dx = x - np.repeat(mean_x, lengths[nonempty])
        dy = y - np.repeat(mean_y, lengths[nonempty])
        sxx = np.add.reduceat(dx * dx, starts)
        syy = np.add.reduceat(dy * dy, starts)
        sxy = np.add.reduceat(dx * dy, starts)
        eps = np.finfo(np.float64).eps
        absmax_x = np.maximum.reduceat(np.abs(x), starts)
        absmax_y = np.maximum.reduceat(np.abs(y), starts)
        tol_x = (8.0 * eps * absmax_x) ** 2 * seg_n
        tol_y = (8.0 * eps * absmax_y) ** 2 * seg_n
        with np.errstate(invalid="ignore", divide="ignore"):
            denom = np.sqrt(sxx) * np.sqrt(syy)
            r = np.clip(sxy / denom, -1.0, 1.0)
        defined = (
            (lengths[nonempty] >= 2)
            & (sxx > tol_x)
            & (syy > tol_y)
            & (denom > 0.0)
            & np.isfinite(denom)
        )
        r_pearson[nonempty] = np.where(defined, r, math.nan)

        # -- HFD interval length (§4.3, sample-SD denominator) -------------
        clo = c_low[nonempty]
        chi = c_high[nonempty]
        c = chi - clo
        a = x - np.repeat(clo, lengths[nonempty])
        b = y - np.repeat(clo, lengths[nonempty])
        mu_a = np.add.reduceat(a, starts) / seg_n
        mu_b = np.add.reduceat(b, starts) / seg_n
        nu_a = np.add.reduceat(a * a, starts) / seg_n
        nu_b = np.add.reduceat(b * b, starts) / seg_n
        nu_ab = np.add.reduceat(a * b, starts) / seg_n
        log_term = math.log(10.0 / alpha)
        with np.errstate(invalid="ignore", divide="ignore"):
            c2 = c * c
            t = np.sqrt(log_term * c2 / (2.0 * seg_n))
            t_prime = np.sqrt(log_term * c2 * c2 / (2.0 * seg_n))
            mu_a_low = np.maximum(0.0, mu_a - t)
            mu_a_high = np.minimum(c, mu_a + t)
            mu_b_low = np.maximum(0.0, mu_b - t)
            mu_b_high = np.minimum(c, mu_b + t)
            nu_ab_low = np.maximum(0.0, nu_ab - t_prime)
            nu_ab_high = np.minimum(c * c, nu_ab + t_prime)
            num_low = nu_ab_low - mu_a_high * mu_b_high
            num_high = nu_ab_high - mu_a_low * mu_b_low
            var_a = np.maximum(0.0, nu_a - mu_a * mu_a)
            var_b = np.maximum(0.0, nu_b - mu_b * mu_b)
            den = np.sqrt(var_a) * np.sqrt(var_b)
            # Both denominator bounds equal the sample-SD product, so the
            # sign-aware interval quotient (Eq. 6-7) collapses to plain
            # division; the length mirrors ConfidenceInterval.length as
            # high - low (not the algebraically equal (num_high-num_low)/den).
            length = num_high / den - num_low / den
        degenerate = (
            np.isnan(clo) | np.isnan(chi) | (chi < clo) | (c == 0.0) | (den <= 0.0)
        )
        hfd_len[nonempty] = np.where(degenerate, 2.0, length)

    # -- Fisher-z SE factor (§4.2) -----------------------------------------
    sez = 1.0 - 1.0 / np.sqrt(np.maximum(4, lengths) - 3.0)

    # -- PM1 bootstrap (rng_mode selects the execution contract) -----------
    r_boot = [math.nan] * count
    cib = [0.0] * count
    if with_bootstrap:
        eligible = [
            samples[i].size >= 2 and not math.isnan(r_pearson[i])
            for i in range(count)
        ]
        if rng_mode == "batched":
            boots = pm1_interval_batch(
                [s.x for s in samples],
                [s.y for s in samples],
                rng=rng,
                active=eligible,
            )
            for i, boot in enumerate(boots):
                if eligible[i]:
                    r_boot[i] = boot.estimate
                    cib[i] = cib_factor(boot.low, boot.high)
        else:
            # Compat: per candidate in list order, preserving the scalar
            # path's rng consumption bit-for-bit.
            for i, sample in enumerate(samples):
                if not eligible[i]:
                    continue
                sample_rng = (
                    rng
                    if rng is not None
                    else np.random.default_rng(
                        sample.size * 2_654_435_761 % (2**32) + 17
                    )
                )
                boot = pm1_interval(sample.x, sample.y, rng=sample_rng)
                r_boot[i] = boot.estimate
                cib[i] = cib_factor(boot.low, boot.high)

    return [
        CandidateScores(
            r_pearson=float(r_pearson[i]),
            r_bootstrap=r_boot[i],
            sample_size=int(lengths[i]),
            sez_factor=float(sez[i]),
            cib_factor=cib[i],
            hfd_ci_length=float(hfd_len[i]),
            containment_est=containment_ests[i],
            containment_true=containment_trues[i],
        )
        for i in range(count)
    ]


def score_candidates(
    scores: list[CandidateScores],
    scorer: str,
    rng: np.random.Generator | None = None,
) -> list[float]:
    """Apply one named scoring function to a whole candidate list.

    ``cih`` needs the full list for normalization and ``random`` needs a
    generator, so scoring is list-at-a-time.

    Raises:
        ValueError: for unknown scorer names (see :data:`SCORER_NAMES`).
    """
    if scorer == "rp":
        return [_abs_or_zero(s.r_pearson) for s in scores]
    if scorer == "rp_sez":
        return [_abs_or_zero(s.r_pearson) * s.sez_factor for s in scores]
    if scorer == "rb_cib":
        return [_abs_or_zero(s.r_bootstrap) * s.cib_factor for s in scores]
    if scorer == "rp_cih":
        cih = cih_factors([s.hfd_ci_length for s in scores])
        return [_abs_or_zero(s.r_pearson) * f for s, f in zip(scores, cih)]
    if scorer == "jc":
        return [
            0.0 if math.isnan(s.containment_true) else s.containment_true
            for s in scores
        ]
    if scorer == "jc_est":
        return [s.containment_est for s in scores]
    if scorer == "random":
        if rng is None:
            rng = np.random.default_rng()
        return list(rng.uniform(0.0, 1.0, size=len(scores)))
    raise ValueError(f"unknown scorer {scorer!r}; expected one of {SCORER_NAMES}")
