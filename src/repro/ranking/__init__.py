"""Ranking correlated columns under estimation uncertainty (Section 4).

Implements the risk-averse scoring framework (Eq. 5), the paper's four
scoring functions and three baselines, deterministic ranked-list
construction, and the MAP / nDCG evaluation metrics of Section 5.4.
"""

from repro.ranking.metrics import (
    average_precision,
    dcg_at,
    mean_average_precision,
    mean_ndcg_at,
    ndcg_at,
    precision_at,
)
from repro.ranking.ranker import (
    RankedCandidate,
    rank_candidates,
    relevance_flags,
    relevance_gains,
)
from repro.ranking.scoring import (
    RNG_MODES,
    SCORER_NAMES,
    CandidateScores,
    candidate_scores,
    candidate_scores_batch,
    cib_factor,
    cih_factors,
    score_candidates,
    sez_factor,
)

__all__ = [
    "CandidateScores",
    "RNG_MODES",
    "RankedCandidate",
    "SCORER_NAMES",
    "average_precision",
    "candidate_scores",
    "candidate_scores_batch",
    "cib_factor",
    "cih_factors",
    "dcg_at",
    "mean_average_precision",
    "mean_ndcg_at",
    "ndcg_at",
    "precision_at",
    "rank_candidates",
    "relevance_flags",
    "relevance_gains",
    "score_candidates",
    "sez_factor",
]
