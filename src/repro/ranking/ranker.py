"""Turning scored candidates into ranked result lists.

Connects the scoring functions (:mod:`repro.ranking.scoring`) to concrete
candidate lists: rank by descending score with a deterministic tie-break
(candidate id), carry the per-candidate ground truth through for the
evaluation metrics, and produce the relevance sequences
:mod:`repro.ranking.metrics` consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ranking.scoring import (
    CandidateScores,
    json_float,
    score_candidates,
    unjson_float,
)


@dataclass(frozen=True)
class RankedCandidate:
    """One entry of a ranked result list.

    Attributes:
        candidate_id: stable identifier of the candidate column pair.
        score: value assigned by the scoring function.
        stats: the per-candidate scoring statistics.
        true_correlation: after-join correlation on the complete data
            (NaN when unknown — e.g. in production use).
    """

    candidate_id: str
    score: float
    stats: CandidateScores
    true_correlation: float

    def to_dict(self) -> dict:
        """Strict-JSON representation (inverse of :meth:`from_dict`);
        floats round-trip bit-for-bit, NaN encodes as ``null``."""
        return {
            "candidate_id": self.candidate_id,
            "score": json_float(self.score),
            "stats": self.stats.to_dict(),
            "true_correlation": json_float(self.true_correlation),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RankedCandidate":
        return cls(
            candidate_id=payload["candidate_id"],
            score=unjson_float(payload["score"]),
            stats=CandidateScores.from_dict(payload["stats"]),
            true_correlation=unjson_float(payload["true_correlation"]),
        )


def rank_candidates(
    candidate_ids: list[str],
    stats: list[CandidateScores],
    scorer: str,
    *,
    true_correlations: list[float] | None = None,
    rng: np.random.Generator | None = None,
) -> list[RankedCandidate]:
    """Score and sort a candidate list with one scoring function.

    Ties break on candidate id so rankings are reproducible across runs
    (important when a scorer collapses many candidates to score 0).
    """
    if len(candidate_ids) != len(stats):
        raise ValueError(
            f"{len(candidate_ids)} ids but {len(stats)} stat records"
        )
    if true_correlations is None:
        true_correlations = [math.nan] * len(candidate_ids)
    if len(true_correlations) != len(candidate_ids):
        raise ValueError(
            f"{len(candidate_ids)} ids but {len(true_correlations)} truths"
        )

    scores = score_candidates(stats, scorer, rng=rng)
    entries = [
        RankedCandidate(cid, s, st, tc)
        for cid, s, st, tc in zip(candidate_ids, scores, stats, true_correlations)
    ]
    entries.sort(key=lambda e: (-e.score, e.candidate_id))
    return entries


def relevance_flags(
    ranked: list[RankedCandidate], threshold: float
) -> list[bool]:
    """Binary relevance: ``|true r| > threshold`` (NaN → irrelevant)."""
    return [
        (not math.isnan(e.true_correlation))
        and abs(e.true_correlation) > threshold
        for e in ranked
    ]


def relevance_gains(ranked: list[RankedCandidate]) -> list[float]:
    """Graded relevance for nDCG: ``|true r|`` (NaN → 0)."""
    return [
        0.0 if math.isnan(e.true_correlation) else abs(e.true_correlation)
        for e in ranked
    ]
