"""IR evaluation metrics: average precision and nDCG (Section 5.4).

* **MAP** — binary relevance derived from the *true* after-join correlation
  via a threshold (the paper uses ``|r| > 0.5`` and ``|r| > 0.75``);
  average precision is computed over the whole ranked list and averaged
  across queries.
* **nDCG@k** — graded relevance (the absolute true correlation), gains
  discounted by ``log2(rank + 1)``, normalized by the ideal ordering. The
  paper reports k = 5 and k = 10.

Both metrics take *already ranked* relevance lists, keeping them decoupled
from how the ranking was produced.
"""

from __future__ import annotations

import math
from typing import Sequence


def precision_at(relevant_flags: Sequence[bool], k: int) -> float:
    """Fraction of the top-``k`` entries that are relevant."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    top = relevant_flags[:k]
    if not top:
        return 0.0
    return sum(top) / len(top)


def average_precision(relevant_flags: Sequence[bool]) -> float:
    """Average precision of one ranked list (binary relevance).

    AP = mean over relevant positions i of precision@i. Returns 0.0 when
    the list contains no relevant items (the convention the paper's MAP
    figures imply — queries with no relevant candidates drag the mean
    down rather than being skipped; see :func:`mean_average_precision`
    for the skip-empty variant).
    """
    hits = 0
    total = 0.0
    for i, flag in enumerate(relevant_flags, start=1):
        if flag:
            hits += 1
            total += hits / i
    if hits == 0:
        return 0.0
    return total / hits


def mean_average_precision(
    queries: Sequence[Sequence[bool]], *, skip_empty: bool = True
) -> float:
    """MAP over a workload of ranked binary-relevance lists.

    Args:
        queries: one ranked relevance list per query.
        skip_empty: ignore queries with no relevant candidate (they carry
            no ranking signal; this matches standard IR practice).
    """
    aps = []
    for flags in queries:
        if skip_empty and not any(flags):
            continue
        aps.append(average_precision(flags))
    if not aps:
        return 0.0
    return sum(aps) / len(aps)


def dcg_at(gains: Sequence[float], k: int) -> float:
    """Discounted cumulative gain of the top-``k`` graded gains."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return sum(g / math.log2(i + 1) for i, g in enumerate(gains[:k], start=1))


def ndcg_at(gains: Sequence[float], k: int) -> float:
    """Normalized DCG@k: DCG of the list over DCG of the ideal ordering.

    Returns 0.0 when the ideal DCG is zero (no positive gains anywhere).
    """
    ideal = sorted(gains, reverse=True)
    denom = dcg_at(ideal, k)
    if denom <= 0:
        return 0.0
    return dcg_at(gains, k) / denom


def mean_ndcg_at(
    queries: Sequence[Sequence[float]], k: int, *, skip_empty: bool = True
) -> float:
    """Mean nDCG@k over a workload of ranked graded-gain lists."""
    vals = []
    for gains in queries:
        if skip_empty and not any(g > 0 for g in gains):
            continue
        vals.append(ndcg_at(gains, k))
    if not vals:
        return 0.0
    return sum(vals) / len(vals)
