"""Threshold (G-KMV-style) selection strategy — the paper's ablation.

Section 3.3 and the related-work discussion contrast the paper's
*fixed-size* bottom-``n`` selection with *variable-size* threshold
selection (G-KMV, correlated sampling): include every key whose unit hash
falls below a fixed threshold ``τ``. Threshold selection gives each table
a sample size proportional to its distinct-key count — better for large
joins, but unbounded storage for large tables, which is exactly the
trade-off the paper cites for preferring fixed-size sketches ("avoids
assigning too much space to large datasets and leads to more predictable
performance").

:class:`ThresholdSketch` implements the strategy with the same join
interface as :class:`~repro.core.sketch.CorrelationSketch` (duck-typed:
``entries`` / ``key_hashes`` / ``hasher`` / value range), so
:func:`repro.core.joined_sample.join_sketches` works on either kind. The
ablation benchmark compares the two at matched *expected* storage.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.core.aggregators import Aggregator, make_aggregator
from repro.hashing import KeyHasher, default_hasher


class ThresholdSketch:
    """Variable-size sketch: keep keys with ``h_u(h(k)) < τ``.

    Args:
        threshold: inclusion threshold ``τ`` in (0, 1]. A table with ``D``
            distinct keys retains ``≈ τ·D`` of them.
        aggregate: streaming aggregate for repeated keys.
        hasher: hashing scheme (must match any sketch it will join with).
        name: optional identifier.
    """

    def __init__(
        self,
        threshold: float,
        aggregate: str = "mean",
        hasher: KeyHasher | None = None,
        name: str | None = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.aggregate = aggregate
        make_aggregator(aggregate)  # validate eagerly
        self.hasher = hasher if hasher is not None else default_hasher()
        self.name = name
        self._entries: dict[int, Aggregator] = {}
        self.value_min = math.inf
        self.value_max = -math.inf
        self.rows_seen = 0

    def update(self, key: object, value: float) -> None:
        """Offer one ``(key, value)`` row."""
        self.rows_seen += 1
        value = float(value)
        if value == value:
            if value < self.value_min:
                self.value_min = value
            if value > self.value_max:
                self.value_max = value
        pair = self.hasher.hash(key)
        if pair.unit_hash >= self.threshold:
            return
        agg = self._entries.get(pair.key_hash)
        if agg is None:
            agg = make_aggregator(self.aggregate)
            self._entries[pair.key_hash] = agg
        agg.observe(value)

    def update_all(self, rows: Iterable[tuple[object, float]]) -> None:
        for key, value in rows:
            self.update(key, value)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def saw_all_keys(self) -> bool:
        """Threshold sketches always drop above-threshold keys."""
        return self.threshold >= 1.0

    def key_hashes(self) -> set[int]:
        return set(self._entries)

    def entries(self) -> dict[int, float]:
        return {kh: agg.value() for kh, agg in self._entries.items()}

    def distinct_keys(self) -> float:
        """DV estimate: retained count scaled by the inclusion rate."""
        return len(self._entries) / self.threshold

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"ThresholdSketch(threshold={self.threshold}, "
            f"size={len(self)}{label})"
        )
