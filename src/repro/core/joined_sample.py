"""Sketch joins: reconstructing a uniform sample of the joined table.

Joining two correlation sketches ``L_X`` and ``L_Y`` on their stored key
hashes yields ``L_{X⋈Y}`` — and by Theorem 1 of the paper, the paired
numeric values in ``L_{X⋈Y}`` are a *uniform random sample* of the paired
values in the full joined table ``T_{X⋈Y}``.

The subtlety (also in the paper's proof) is that only keys ranked below
*both* sketches' thresholds are trustworthy: a key hash present in ``L_X``
but ranked above ``U(k)`` of ``L_Y`` might be absent from ``L_Y`` simply
because it was evicted, not because it is absent from ``T_Y``. Taking the
plain intersection of stored hashes is still correct, because any key in
both sketches necessarily ranks below both thresholds, and any joint key
ranking below both thresholds is necessarily in both sketches. So the
intersection equals "all joint keys with ``g(k)`` below
``min(U_X(k), U_Y(k))``" — a bottom-ranked (hence uniform) subset of the
join keys.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sketch import CorrelationSketch


@dataclass(frozen=True)
class JoinedSample:
    """Aligned numeric samples reconstructed from two sketches.

    Attributes:
        key_hashes: the joint tuple identifiers, ascending by rank.
        x: numeric values from the left sketch, aligned with ``key_hashes``.
        y: numeric values from the right sketch, aligned with ``key_hashes``.
        x_range: global (min, max) of the left column (for CI bounds).
        y_range: global (min, max) of the right column.
    """

    key_hashes: np.ndarray
    x: np.ndarray
    y: np.ndarray
    x_range: tuple[float, float] = field(default=(np.nan, np.nan))
    y_range: tuple[float, float] = field(default=(np.nan, np.nan))

    @property
    def size(self) -> int:
        """Number of aligned pairs (the paper's sketch-join sample size)."""
        return int(self.x.shape[0])

    def __len__(self) -> int:
        return self.size

    def drop_nan(self) -> "JoinedSample":
        """Return a copy without pairs containing NaN (missing data)."""
        mask = ~(np.isnan(self.x) | np.isnan(self.y))
        if mask.all():
            return self
        return JoinedSample(
            key_hashes=self.key_hashes[mask],
            x=self.x[mask],
            y=self.y[mask],
            x_range=self.x_range,
            y_range=self.y_range,
        )

    def combined_range(self) -> tuple[float, float]:
        """``(C_low, C_high)`` over both columns, as Section 4.3 defines."""
        lows = [v for v in (self.x_range[0], self.y_range[0]) if v == v]
        highs = [v for v in (self.x_range[1], self.y_range[1]) if v == v]
        if not lows or not highs:
            return (np.nan, np.nan)
        return (min(lows), max(highs))


def join_sketches(left: CorrelationSketch, right: CorrelationSketch) -> JoinedSample:
    """Join two sketches on their key hashes (Section 3.2, step 1).

    Raises:
        ValueError: if the sketches use different hashing schemes — their
            tuple identifiers would not be comparable.
    """
    if left.hasher.scheme_id != right.hasher.scheme_id:
        raise ValueError(
            "cannot join sketches built with different hashing schemes: "
            f"{left.hasher!r} vs {right.hasher!r}"
        )

    left_entries = left.entries()
    right_entries = right.entries()
    if len(left_entries) > len(right_entries):
        # Iterate the smaller map for the membership probes.
        common = [kh for kh in right_entries if kh in left_entries]
    else:
        common = [kh for kh in left_entries if kh in right_entries]

    # Deterministic order: ascending unit-hash rank (equivalently, the
    # order in which a bigger sketch would have admitted them).
    common.sort(key=left.hasher.unit_hash_of_key_hash)

    key_hashes = np.asarray(common, dtype=np.uint64)
    x = np.asarray([left_entries[kh] for kh in common], dtype=np.float64)
    y = np.asarray([right_entries[kh] for kh in common], dtype=np.float64)

    def _range(sketch: CorrelationSketch) -> tuple[float, float]:
        if sketch.value_min > sketch.value_max:
            return (np.nan, np.nan)
        return (sketch.value_min, sketch.value_max)

    return JoinedSample(
        key_hashes=key_hashes,
        x=x,
        y=y,
        x_range=_range(left),
        y_range=_range(right),
    )
