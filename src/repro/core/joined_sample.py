"""Sketch joins: reconstructing a uniform sample of the joined table.

Joining two correlation sketches ``L_X`` and ``L_Y`` on their stored key
hashes yields ``L_{X⋈Y}`` — and by Theorem 1 of the paper, the paired
numeric values in ``L_{X⋈Y}`` are a *uniform random sample* of the paired
values in the full joined table ``T_{X⋈Y}``.

The subtlety (also in the paper's proof) is that only keys ranked below
*both* sketches' thresholds are trustworthy: a key hash present in ``L_X``
but ranked above ``U(k)`` of ``L_Y`` might be absent from ``L_Y`` simply
because it was evicted, not because it is absent from ``T_Y``. Taking the
plain intersection of stored hashes is still correct, because any key in
both sketches necessarily ranks below both thresholds, and any joint key
ranking below both thresholds is necessarily in both sketches. So the
intersection equals "all joint keys with ``g(k)`` below
``min(U_X(k), U_Y(k))``" — a bottom-ranked (hence uniform) subset of the
join keys.

Two join implementations share these semantics:

* :func:`join_sketches` — the scalar reference: dict-set intersection of
  the two sketches' entry maps, sorted per join (kept as the baseline the
  parity tests and benchmarks compare against);
* :func:`join_columns` — the columnar fast path: each sketch is lowered
  once into a :class:`SketchColumns` (sorted key-hash / rank / value
  arrays, cached on the sketch), and the join becomes a
  ``np.searchsorted`` merge of two sorted arrays. Output is bit-identical
  to :func:`join_sketches`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.sketch import CorrelationSketch, SketchColumns


@dataclass(frozen=True)
class JoinedSample:
    """Aligned numeric samples reconstructed from two sketches.

    Attributes:
        key_hashes: the joint tuple identifiers, ascending by rank.
        x: numeric values from the left sketch, aligned with ``key_hashes``.
        y: numeric values from the right sketch, aligned with ``key_hashes``.
        x_range: global (min, max) of the left column (for CI bounds).
        y_range: global (min, max) of the right column.
    """

    key_hashes: np.ndarray
    x: np.ndarray
    y: np.ndarray
    x_range: tuple[float, float] = field(default=(np.nan, np.nan))
    y_range: tuple[float, float] = field(default=(np.nan, np.nan))

    @property
    def size(self) -> int:
        """Number of aligned pairs (the paper's sketch-join sample size)."""
        return int(self.x.shape[0])

    def __len__(self) -> int:
        return self.size

    def drop_nan(self) -> "JoinedSample":
        """Return a copy without pairs containing NaN (missing data)."""
        mask = ~(np.isnan(self.x) | np.isnan(self.y))
        if mask.all():
            return self
        return JoinedSample(
            key_hashes=self.key_hashes[mask],
            x=self.x[mask],
            y=self.y[mask],
            x_range=self.x_range,
            y_range=self.y_range,
        )

    def combined_range(self) -> tuple[float, float]:
        """``(C_low, C_high)`` over both columns, as Section 4.3 defines."""
        lows = [v for v in (self.x_range[0], self.y_range[0]) if v == v]
        highs = [v for v in (self.x_range[1], self.y_range[1]) if v == v]
        if not lows or not highs:
            return (np.nan, np.nan)
        return (min(lows), max(highs))


def join_sketches(left: CorrelationSketch, right: CorrelationSketch) -> JoinedSample:
    """Join two sketches on their key hashes (Section 3.2, step 1).

    Raises:
        ValueError: if the sketches use different hashing schemes — their
            tuple identifiers would not be comparable.
    """
    if left.hasher.scheme_id != right.hasher.scheme_id:
        raise ValueError(
            "cannot join sketches built with different hashing schemes: "
            f"{left.hasher!r} vs {right.hasher!r}"
        )

    left_entries = left.entries()
    right_entries = right.entries()
    if len(left_entries) > len(right_entries):
        # Iterate the smaller map for the membership probes.
        common = [kh for kh in right_entries if kh in left_entries]
    else:
        common = [kh for kh in left_entries if kh in right_entries]

    # Deterministic order: ascending unit-hash rank (equivalently, the
    # order in which a bigger sketch would have admitted them).
    common.sort(key=left.hasher.unit_hash_of_key_hash)

    key_hashes = np.asarray(common, dtype=np.uint64)
    x = np.asarray([left_entries[kh] for kh in common], dtype=np.float64)
    y = np.asarray([right_entries[kh] for kh in common], dtype=np.float64)

    def _range(sketch: CorrelationSketch) -> tuple[float, float]:
        if sketch.value_min > sketch.value_max:
            return (np.nan, np.nan)
        return (sketch.value_min, sketch.value_max)

    return JoinedSample(
        key_hashes=key_hashes,
        x=x,
        y=y,
        x_range=_range(left),
        y_range=_range(right),
    )


def join_columns(left: SketchColumns, right: SketchColumns) -> JoinedSample:
    """Columnar sketch join: a sorted-array merge instead of dict sets.

    Both inputs keep their key hashes sorted ascending, so the
    intersection is one ``np.searchsorted`` probe of the smaller side
    into the larger plus an equality check — no Python-level hashing or
    per-key function calls. The matched pairs are then ordered by the
    cached unit-interval ranks, which reproduces the scalar join's
    ascending-rank order (ranks are injective over key hashes, so the
    order is unique) and therefore a bit-identical :class:`JoinedSample`.

    Unlike :func:`join_sketches`, hashing-scheme compatibility cannot be
    checked here (the columnar view carries no hasher); callers must
    guarantee it — the catalog enforces one scheme at registration.
    """
    if left.size <= right.size:
        small, large = left, right
        small_is_left = True
    else:
        small, large = right, left
        small_is_left = False

    pos = np.searchsorted(large.key_hashes, small.key_hashes)
    pos_clipped = np.minimum(pos, max(large.size - 1, 0))
    if large.size:
        mask = large.key_hashes[pos_clipped] == small.key_hashes
    else:
        mask = np.zeros(small.size, dtype=bool)
    small_idx = np.nonzero(mask)[0]
    large_idx = pos_clipped[small_idx]

    order = np.argsort(small.ranks[small_idx])
    small_idx = small_idx[order]
    large_idx = large_idx[order]

    if small_is_left:
        x = small.values[small_idx]
        y = large.values[large_idx]
    else:
        x = large.values[large_idx]
        y = small.values[small_idx]

    return JoinedSample(
        key_hashes=small.key_hashes[small_idx],
        x=x,
        y=y,
        x_range=left.value_range,
        y_range=right.value_range,
    )
