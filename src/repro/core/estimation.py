"""High-level estimation façade over a pair of correlation sketches.

:func:`estimate` runs the full Section 3.2 pipeline — join the sketches,
reconstruct the uniform sample, apply a correlation estimator — and
attaches everything the ranking layer needs: sample size, Fisher z
standard error, Hoeffding/HFD intervals, and the KMV-derived joinability
statistics (cardinalities, containment, join size) that Section 3.3 notes
come for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bounds.hoeffding import hfd_interval, hoeffding_interval
from repro.bounds.intervals import ConfidenceInterval
from repro.core.joined_sample import JoinedSample, join_sketches
from repro.core.sketch import CorrelationSketch
from repro.correlation.estimators import get_estimator
from repro.correlation.fisher import clamped_fisher_se
from repro.kmv.estimators import unbiased_dv_estimate

#: Aggregates whose output always lies within the input value range, making
#: the single-pass column min/max valid Hoeffding bounds (Section 4.3).
RANGE_PRESERVING_AGGREGATES = frozenset({"mean", "max", "min", "first", "last"})


@dataclass(frozen=True)
class EstimateResult:
    """Everything estimable from one pair of sketches.

    Attributes:
        correlation: the correlation estimate (NaN if undefined).
        estimator: name of the estimator used.
        sample: the reconstructed joined sample (after NaN filtering).
        sample_size: rows in the sketch join (the paper's ``n``).
        fisher_se: clamped Fisher z standard error ``1/sqrt(max(4,n)−3)``.
        hoeffding: true distribution-free interval (Eqs. 6–7).
        hfd: small-sample HFD interval (drives the ``cih`` ranking factor).
        key_overlap: number of common key hashes between the two sketches.
        containment_est: estimated Jaccard containment of the left key set
            in the right one (the ``ĵc`` baseline).
        join_size_est: estimated number of rows in the full joined table.
        range_bounds_valid: False when a non-range-preserving aggregate
            (``sum``/``count``) makes the stored column min/max invalid as
            Hoeffding bounds — intervals then use the observed sample range
            and are best-effort rather than certified.
    """

    correlation: float
    estimator: str
    sample: JoinedSample
    sample_size: int
    fisher_se: float
    hoeffding: ConfidenceInterval
    hfd: ConfidenceInterval
    key_overlap: int
    containment_est: float
    join_size_est: float
    range_bounds_valid: bool


@dataclass(frozen=True)
class StatisticsResult:
    """Sample statistics beyond correlation (the Section 3.3 claim).

    All values are plug-in estimates computed from the uniform joined
    sample the sketches reconstruct; NaN when the sample is too small.

    Attributes:
        sample_size: rows in the NaN-filtered sketch join.
        mutual_information: plug-in MI in nats (captures *any* dependence,
            including non-monotone ones Pearson misses).
        entropy_x, entropy_y: plug-in marginal entropies in nats.
        distance_correlation: sample distance correlation (Székely et al.).
        pearson: Pearson's r on the same sample, for comparison.
    """

    sample_size: int
    mutual_information: float
    entropy_x: float
    entropy_y: float
    distance_correlation: float
    pearson: float


def estimate_statistics(
    left: CorrelationSketch,
    right: CorrelationSketch,
    *,
    bins: int | None = None,
) -> StatisticsResult:
    """Estimate information-theoretic statistics from a sketch join.

    Theorem 1 makes the sketch join a uniform random sample of the joined
    table, so any statistic with a consistent sample estimator applies —
    the paper names entropy and mutual information explicitly. This is
    the companion to :func:`estimate` for non-correlation statistics.

    Args:
        left, right: the two column-pair sketches.
        bins: histogram bin count for the entropy / MI plug-in estimators
            (Freedman-Diaconis per column when None). Fix it explicitly
            when comparing entropies across columns — plug-in entropy is
            only comparable at a common bin count.
    """
    from repro.core.statistics import (
        distance_correlation,
        sample_entropy,
        sample_mutual_information,
    )
    from repro.correlation.pearson import pearson as pearson_fn

    sample = join_sketches(left, right).drop_nan()
    return StatisticsResult(
        sample_size=sample.size,
        mutual_information=sample_mutual_information(sample.x, sample.y, bins=bins),
        entropy_x=sample_entropy(sample.x, bins=bins),
        entropy_y=sample_entropy(sample.y, bins=bins),
        distance_correlation=distance_correlation(sample.x, sample.y),
        pearson=pearson_fn(sample.x, sample.y),
    )


def _sample_range(sample: JoinedSample) -> tuple[float, float]:
    """Observed combined min/max of the joined sample values."""
    if sample.size == 0:
        return (math.nan, math.nan)
    lo = min(float(sample.x.min()), float(sample.y.min()))
    hi = max(float(sample.x.max()), float(sample.y.max()))
    return (lo, hi)


def estimate(
    left: CorrelationSketch,
    right: CorrelationSketch,
    estimator: str = "pearson",
    alpha: float = 0.05,
) -> EstimateResult:
    """Estimate the after-join correlation between two sketched columns.

    Args:
        left: sketch of the query column pair ``⟨K_X, X⟩``.
        right: sketch of a candidate column pair ``⟨K_Y, Y⟩``.
        estimator: one of :data:`repro.correlation.ESTIMATORS`.
        alpha: miscoverage for the Hoeffding intervals.

    Raises:
        ValueError: if the sketches use different hashing schemes or the
            estimator name is unknown.
    """
    fn = get_estimator(estimator)
    raw = join_sketches(left, right)
    sample = raw.drop_nan()

    r = fn(sample.x, sample.y)
    n = sample.size

    range_ok = (
        left.aggregate in RANGE_PRESERVING_AGGREGATES
        and right.aggregate in RANGE_PRESERVING_AGGREGATES
    )
    if range_ok:
        c_low, c_high = sample.combined_range()
    else:
        c_low, c_high = _sample_range(sample)

    hoeff = hoeffding_interval(sample.x, sample.y, c_low, c_high, alpha)
    hfd = hfd_interval(sample.x, sample.y, c_low, c_high, alpha)

    overlap = raw.size  # overlap counts keys even when values are missing
    d_left = left.distinct_keys()
    containment = 0.0
    join_size = 0.0
    if overlap > 0:
        combined_k = min(len(left), len(right))
        if left.saw_all_keys and right.saw_all_keys:
            inter = float(overlap)
        else:
            # Eq. 1 applied to the sketch pair: (K∩ / k) * D̂_union.
            left_hashes = left.key_hashes()
            right_hashes = right.key_hashes()
            ordered = sorted(
                left_hashes | right_hashes, key=left.hasher.unit_hash_of_key_hash
            )
            ordered = ordered[:combined_k]
            kth = left.hasher.unit_hash_of_key_hash(ordered[-1])
            k_inter = sum(1 for kh in ordered if kh in left_hashes and kh in right_hashes)
            d_union = unbiased_dv_estimate(len(ordered), kth)
            inter = (k_inter / len(ordered)) * d_union
        join_size = inter
        if d_left > 0:
            containment = max(0.0, min(1.0, inter / d_left))

    return EstimateResult(
        correlation=r,
        estimator=estimator,
        sample=sample,
        sample_size=n,
        fisher_se=clamped_fisher_se(n),
        hoeffding=hoeff,
        hfd=hfd,
        key_overlap=overlap,
        containment_est=containment,
        join_size_est=join_size,
        range_bounds_valid=range_ok,
    )
