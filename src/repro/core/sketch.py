"""The Correlation Sketch (Section 3.1 of the paper).

A :class:`CorrelationSketch` summarizes a column pair ``⟨K_X, X⟩`` —
categorical join-key column plus numeric column — as the set of tuples
``⟨h(k), x_k⟩`` for the ``n`` keys with minimum ``h_u(h(k))``, where
``x_k`` is the (streaming-)aggregated numeric value for key ``k``.

Two sketches built with the same hashing scheme can be *joined* on their
stored key hashes; by Theorem 1 the resulting paired values form a uniform
random sample of the values in the full joined table, so any sample
statistic (correlation, mutual information, …) can be estimated from it.

The sketch also retains everything a plain KMV synopsis holds, so
cardinality / Jaccard / containment / join-size estimation come for free
(Section 3.3) — see the ``to_kmv``/estimation helpers.

Beyond the sketch itself we track two scalars per column that cost nothing
extra during the single construction pass and that Section 4.3's Hoeffding
confidence intervals require: the global minimum and maximum of the numeric
column (``C_low``/``C_high`` bounds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.core.aggregators import Aggregator, GroupedAggregates, make_aggregator
from repro.hashing import KeyHasher, default_hasher
from repro.kmv.bottomk import BottomK
from repro.kmv.estimators import basic_dv_estimate, unbiased_dv_estimate


def _value_range_of(value_min: float, value_max: float) -> tuple[float, float]:
    """Map the ±inf no-finite-value sentinels to the NaN convention
    :class:`SketchColumns` uses for ``value_range``."""
    if value_min > value_max:
        return (math.nan, math.nan)
    return (value_min, value_max)


@dataclass(frozen=True)
class SketchColumns:
    """Read-only columnar view of a sketch's retained entries.

    The arrays are parallel and sorted ascending by ``key_hashes`` so two
    views can be merge-joined with ``np.searchsorted`` (see
    :func:`repro.core.joined_sample.join_columns`) and probed against the
    frozen inverted index without materializing Python sets.

    Attributes:
        key_hashes: retained tuple identifiers ``h(k)``, ascending
            (``uint64``).
        ranks: aligned unit-interval hashes ``h_u(h(k))`` (``float64``).
        values: aligned aggregated numeric values (``float64``).
        value_range: global ``(min, max)`` of the source column, or
            ``(nan, nan)`` when no finite value was observed.
        saw_all_keys: True when the sketch never overflowed.
    """

    key_hashes: np.ndarray
    ranks: np.ndarray
    values: np.ndarray
    value_range: tuple[float, float]
    saw_all_keys: bool

    @property
    def size(self) -> int:
        return int(self.key_hashes.shape[0])

    def __len__(self) -> int:
        return self.size


class CorrelationSketch:
    """Bottom-``n`` sketch of a ``⟨key, value⟩`` column pair.

    Args:
        n: sketch size (number of minimum-hash tuples retained). The
            paper's experiments use 256 (accuracy study) and 1024 (query
            evaluation).
        aggregate: name of the streaming aggregate function applied to
            values of repeated keys (default ``"mean"``, as in Figures 1-2
            of the paper). See :mod:`repro.core.aggregators`.
        hasher: hashing scheme shared across the collection.
        name: optional identifier (e.g. ``"taxi_trips.csv:pickups"``) used
            in query results.

    The sketch is built in a single pass with :meth:`update` /
    :meth:`update_all`; it never buffers the input.
    """

    def __init__(
        self,
        n: int,
        aggregate: str = "mean",
        hasher: KeyHasher | None = None,
        name: str | None = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"sketch size n must be positive, got {n}")
        self.n = n
        self.aggregate = aggregate
        # Validate the aggregate name eagerly so misconfiguration fails at
        # sketch creation, not at first update.
        make_aggregator(aggregate)
        self.hasher = hasher if hasher is not None else default_hasher()
        self.name = name
        self._bottom = BottomK(n)
        self._overflowed = False
        self.value_min = math.inf
        self.value_max = -math.inf
        self.rows_seen = 0
        self._columns: SketchColumns | None = None

    # -- construction ------------------------------------------------------

    def update(self, key: object, value: float) -> None:
        """Offer one ``(key, value)`` row to the sketch.

        ``value`` may be NaN (missing cell); the key still counts toward
        joinability but contributes no numeric value (except under the
        ``count`` aggregate, which counts occurrences).
        """
        self._columns = None
        self.rows_seen += 1
        value = float(value)
        if value == value:  # not NaN: maintain global range for CI bounds
            if value < self.value_min:
                self.value_min = value
            if value > self.value_max:
                self.value_max = value

        pair = self.hasher.hash(key)
        if pair.key_hash in self._bottom:
            agg: Aggregator = self._bottom.get(pair.key_hash)
            agg.observe(value)
            return

        was_full = len(self._bottom) >= self.n
        agg = make_aggregator(self.aggregate)
        agg.observe(value)
        admitted = self._bottom.offer(pair.unit_hash, pair.key_hash, agg)
        if not admitted or was_full:
            self._overflowed = True

    def update_all(self, rows: Iterable[tuple[object, float]]) -> None:
        """Offer every ``(key, value)`` pair in ``rows``."""
        for key, value in rows:
            self.update(key, value)

    def update_array(self, keys, values) -> None:
        """Vectorized :meth:`update_all` over parallel key/value columns.

        Produces a sketch **identical** to streaming the same rows through
        :meth:`update` in order — same retained keys, same aggregator
        state (bit-for-bit float accumulation), same ``value_min`` /
        ``value_max`` / ``rows_seen`` / overflow flag — at columnar speed:

        1. hash every key in one vectorized pass
           (:meth:`repro.hashing.KeyHasher.hash_batch`);
        2. group repeated keys with ``np.unique`` and reduce each group
           with the chosen aggregate in a few ``ufunc.at`` calls
           (:class:`repro.core.aggregators.GroupedAggregates`), seeding
           groups whose key is already retained from the live aggregator
           so multi-batch construction matches streaming exactly;
        3. admit new keys bottom-``n`` first (``np.argpartition``) so at
           most ``n`` Python aggregator objects are ever materialized,
           then merge via :meth:`repro.kmv.bottomk.BottomK.update_batch`.

        Equivalence holds because a key retained by the streaming path is
        never evicted-then-readmitted (its rank is deterministic and the
        admission threshold only decreases), so its aggregator always sees
        every occurrence; keys that streaming would reject mid-stream are
        exactly those outside the final bottom-``n``. (Rank ties —
        impossible at 32 bits, theoretically possible at 64 bits through
        float64 rounding — are resolved as described in
        :meth:`repro.kmv.bottomk.BottomK.update_batch`.) The parity test
        suite (``tests/test_core_sketch_batch.py``) asserts equality
        against :meth:`update_all` on adversarial inputs.

        Args:
            keys: 1-D array or sequence of join keys. NumPy numeric/bool
                arrays take a fully vectorized hash path; other sequences
                are canonicalized per element.
            values: numeric array-like, NaN = missing cell.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError(f"values must be 1-D, got {values.ndim}-D")
        m = values.shape[0]
        if len(keys) != m:
            raise ValueError(
                f"key column has {len(keys)} rows but value column has {m}"
            )
        self._columns = None
        self.rows_seen += m
        if m == 0:
            return

        finite = values[~np.isnan(values)]
        if finite.size:
            lo = float(finite.min())
            hi = float(finite.max())
            if lo < self.value_min:
                self.value_min = lo
            if hi > self.value_max:
                self.value_max = hi

        key_hashes = self.hasher.hash_batch(keys)
        uniq, inv = np.unique(key_hashes, return_inverse=True)
        n_groups = uniq.shape[0]

        grouped = GroupedAggregates(self.aggregate, n_groups)
        if len(self._bottom):
            retained = np.fromiter(
                self._bottom.keys(), dtype=np.uint64, count=len(self._bottom)
            )
            existing = np.nonzero(np.isin(uniq.astype(np.uint64), retained))[0]
        else:
            existing = np.empty(0, dtype=np.intp)
        existing_aggs: list[tuple[int, Aggregator]] = []
        for gi in existing.tolist():
            agg: Aggregator = self._bottom.get(int(uniq[gi]))
            grouped.seed(gi, agg)
            existing_aggs.append((gi, agg))

        grouped.accumulate(inv, values)

        for gi, agg in existing_aggs:
            grouped.apply(gi, agg)

        new_mask = np.ones(n_groups, dtype=bool)
        new_mask[existing] = False
        new_groups = np.nonzero(new_mask)[0]
        if len(self._bottom) + new_groups.size > self.n:
            self._overflowed = True
        if new_groups.size == 0:
            return

        new_keys = uniq[new_groups]
        new_ranks = self.hasher.unit_hash_batch(new_keys)
        if new_groups.size > self.n:
            # Only the n smallest-rank newcomers can possibly be admitted;
            # don't build aggregator objects for the rest.
            sel = np.argpartition(new_ranks, self.n - 1)[: self.n]
            new_groups = new_groups[sel]
            new_keys = new_keys[sel]
            new_ranks = new_ranks[sel]
        payloads = [grouped.materialize(gi) for gi in new_groups.tolist()]
        self._bottom.update_batch(new_ranks, new_keys, payloads)

    @classmethod
    def from_columns(
        cls,
        keys: Sequence[object],
        values: Sequence[float],
        n: int,
        aggregate: str = "mean",
        hasher: KeyHasher | None = None,
        name: str | None = None,
        *,
        vectorized: bool = True,
    ) -> "CorrelationSketch":
        """Build a sketch from parallel key/value sequences.

        By default construction runs through the columnar
        :meth:`update_array` fast path, which produces an identical sketch
        to the streaming path; pass ``vectorized=False`` to force the
        row-at-a-time :meth:`update_all` (reference implementation, and
        the baseline ``bench_construction.py`` measures against).

        Raises:
            ValueError: if the sequences have different lengths.
        """
        if len(keys) != len(values):
            raise ValueError(
                f"key column has {len(keys)} rows but value column has "
                f"{len(values)}"
            )
        sketch = cls(n, aggregate=aggregate, hasher=hasher, name=name)
        if vectorized:
            sketch.update_array(keys, values)
        else:
            sketch.update_all(zip(keys, values))
        return sketch

    @classmethod
    def from_frozen_arrays(
        cls,
        key_hashes: np.ndarray,
        ranks: np.ndarray,
        values: np.ndarray,
        *,
        n: int,
        aggregate: str = "mean",
        hasher: KeyHasher | None = None,
        name: str | None = None,
        rows_seen: int = 0,
        overflowed: bool = False,
        value_min: float = math.inf,
        value_max: float = -math.inf,
    ) -> "CorrelationSketch":
        """Rehydrate a frozen sketch from its columnar arrays.

        The array-level inverse of :meth:`columnar`, used by binary
        catalog snapshots (:mod:`repro.index.snapshot`): ``key_hashes``
        must be sorted ascending with ``ranks``/``values`` aligned —
        exactly the :class:`SketchColumns` layout. Like
        :meth:`from_dict`, the result is frozen for estimation purposes
        (``last`` aggregators holding the materialized values); unlike
        it, the stored unit-hash ranks are trusted rather than recomputed
        and the columnar view is pre-seeded without a rebuild.
        """
        sketch = cls(n, aggregate=aggregate, hasher=hasher, name=name)
        sketch.rows_seen = rows_seen
        sketch._overflowed = overflowed
        sketch.value_min = value_min
        sketch.value_max = value_max
        for rank, kh, value in zip(
            ranks.tolist(), key_hashes.tolist(), values.tolist()
        ):
            agg = make_aggregator("last")
            agg.observe(value)
            sketch._bottom.offer(rank, kh, agg)
        sketch._columns = SketchColumns(
            key_hashes=key_hashes,
            ranks=ranks,
            values=values,
            value_range=_value_range_of(value_min, value_max),
            saw_all_keys=not overflowed,
        )
        return sketch

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        """Number of retained tuples (≤ n)."""
        return len(self._bottom)

    @property
    def saw_all_keys(self) -> bool:
        """True when every distinct key offered is still retained."""
        return not self._overflowed

    @property
    def value_range(self) -> float:
        """``C_high - C_low`` for this column alone (0 when empty)."""
        if self.value_min > self.value_max:
            return 0.0
        return self.value_max - self.value_min

    def key_hashes(self) -> set[int]:
        """Retained tuple identifiers ``h(k)``."""
        return set(self._bottom.keys())

    def items(self) -> Iterator[tuple[int, float, float]]:
        """Yield ``(key_hash, unit_hash, aggregated_value)`` ascending by rank."""
        for rank, key_hash, agg in self._bottom.sorted_items():
            yield key_hash, rank, agg.value()

    def entries(self) -> dict[int, float]:
        """Return ``{key_hash: aggregated_value}`` for all retained keys."""
        return {kh: agg.value() for _r, kh, agg in self._bottom.items()}

    def columnar(self) -> SketchColumns:
        """Lower the retained entries into a :class:`SketchColumns` view.

        Built once and cached until the next update (catalog sketches are
        never updated after registration, so in the query engine this is
        effectively built once per sketch for the life of the catalog).
        The aggregated values are materialized with the same
        ``Aggregator.value()`` calls as :meth:`entries`, so the columnar
        join consumes the exact floats the scalar join would.
        """
        if self._columns is None:
            size = len(self._bottom)
            key_hashes = np.empty(size, dtype=np.uint64)
            ranks = np.empty(size, dtype=np.float64)
            values = np.empty(size, dtype=np.float64)
            for i, (rank, kh, agg) in enumerate(self._bottom.items()):
                key_hashes[i] = kh
                ranks[i] = rank
                values[i] = agg.value()
            order = np.argsort(key_hashes)
            if self.value_min > self.value_max:
                value_range = (math.nan, math.nan)
            else:
                value_range = (self.value_min, self.value_max)
            self._columns = SketchColumns(
                key_hashes=key_hashes[order],
                ranks=ranks[order],
                values=values[order],
                value_range=value_range,
                saw_all_keys=self.saw_all_keys,
            )
        return self._columns

    def kth_unit_value(self) -> float:
        """``U(k)`` — the largest retained unit-interval hash value."""
        return self._bottom.kth_rank()

    def __repr__(self) -> str:
        label = f" name={self.name!r}" if self.name else ""
        return (
            f"CorrelationSketch(n={self.n}, size={len(self)}, "
            f"aggregate={self.aggregate!r}{label})"
        )

    # -- KMV statistics (Section 3.3: everything KMV supports still works) --

    def distinct_keys(self, *, estimator: str = "unbiased") -> float:
        """Estimate the number of distinct keys in the key column."""
        size = len(self._bottom)
        if size == 0:
            return 0.0
        saw_all = self.saw_all_keys
        ukth = self._bottom.kth_rank() if not saw_all else 1.0
        if estimator == "unbiased":
            return unbiased_dv_estimate(size, ukth, saw_all=saw_all)
        if estimator == "basic":
            return basic_dv_estimate(size, ukth, saw_all=saw_all)
        raise ValueError(f"unknown estimator {estimator!r}")

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Serialize to a plain dict (JSON-compatible) for catalog storage.

        Aggregator *state* is not preserved — a deserialized sketch is
        frozen for estimation purposes, which is exactly how an index uses
        it. The aggregated values are materialized.
        """
        return {
            "n": self.n,
            "aggregate": self.aggregate,
            "name": self.name,
            "scheme": list(self.hasher.scheme_id),
            "rows_seen": self.rows_seen,
            "overflowed": self._overflowed,
            "value_min": None if math.isinf(self.value_min) else self.value_min,
            "value_max": None if math.isinf(self.value_max) else self.value_max,
            "entries": [[kh, value] for kh, _u, value in self.items()],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CorrelationSketch":
        """Reconstruct a (frozen) sketch serialized by :meth:`to_dict`."""
        bits, seed = payload["scheme"]
        sketch = cls(
            payload["n"],
            aggregate=payload["aggregate"],
            hasher=KeyHasher(bits=bits, seed=seed),
            name=payload.get("name"),
        )
        sketch.rows_seen = payload.get("rows_seen", 0)
        sketch._overflowed = payload.get("overflowed", False)
        if payload.get("value_min") is not None:
            sketch.value_min = payload["value_min"]
        if payload.get("value_max") is not None:
            sketch.value_max = payload["value_max"]
        for kh, value in payload["entries"]:
            agg = make_aggregator("last")
            agg.observe(value)
            rank = sketch.hasher.unit_hash_of_key_hash(kh)
            sketch._bottom.offer(rank, kh, agg)
        return sketch
