"""Other sample statistics estimable from a sketch join (Section 3.3).

Theorem 1 guarantees the sketch join is a uniform random sample of the
joined table, so *any* statistic with a consistent sample estimator can be
plugged in — the paper names entropy and mutual information explicitly.
This module provides histogram-based plug-in estimators for those two,
plus distance correlation (Székely et al. 2007), to demonstrate the
flexibility claim. All operate on the aligned arrays of a
:class:`~repro.core.joined_sample.JoinedSample`.
"""

from __future__ import annotations

import math

import numpy as np


def _freedman_diaconis_bins(values: np.ndarray, max_bins: int = 64) -> int:
    """Histogram bin count via the Freedman–Diaconis rule, clamped."""
    n = values.shape[0]
    if n < 2:
        return 1
    q75, q25 = np.percentile(values, [75, 25])
    iqr = q75 - q25
    if iqr <= 0:
        return min(max_bins, max(1, int(math.sqrt(n))))
    width = 2.0 * iqr / (n ** (1.0 / 3.0))
    span = float(values.max() - values.min())
    if width <= 0 or span <= 0:
        return 1
    return max(1, min(max_bins, int(math.ceil(span / width))))


def sample_entropy(values: np.ndarray, bins: int | None = None) -> float:
    """Plug-in (maximum-likelihood) entropy estimate in nats.

    The continuous column is discretized into ``bins`` equal-width bins
    (Freedman–Diaconis by default) and the empirical distribution's Shannon
    entropy is returned. NaN for empty input.
    """
    values = np.asarray(values, dtype=np.float64)
    values = values[~np.isnan(values)]
    if values.shape[0] == 0:
        return math.nan
    if bins is None:
        bins = _freedman_diaconis_bins(values)
    counts, _edges = np.histogram(values, bins=bins)
    probs = counts[counts > 0] / values.shape[0]
    return float(-(probs * np.log(probs)).sum())


def sample_mutual_information(
    x: np.ndarray, y: np.ndarray, bins: int | None = None
) -> float:
    """Plug-in mutual information estimate (nats) from paired samples.

    Both columns are discretized on a shared 2-D equal-width grid; the MI
    of the empirical joint distribution is returned. Non-negative by
    construction; NaN for fewer than 2 pairs.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    mask = ~(np.isnan(x) | np.isnan(y))
    x, y = x[mask], y[mask]
    n = x.shape[0]
    if n < 2:
        return math.nan
    if bins is None:
        bins = max(_freedman_diaconis_bins(x), _freedman_diaconis_bins(y))
    joint, _xe, _ye = np.histogram2d(x, y, bins=bins)
    joint = joint / n
    px = joint.sum(axis=1)
    py = joint.sum(axis=0)
    mi = 0.0
    nz = np.nonzero(joint)
    for i, j in zip(*nz):
        p = joint[i, j]
        mi += p * math.log(p / (px[i] * py[j]))
    return max(0.0, float(mi))


def distance_correlation(x: np.ndarray, y: np.ndarray) -> float:
    """Sample distance correlation (Székely, Rizzo & Bakirov 2007).

    Zero iff (in the population) the variables are independent; captures
    arbitrary — not just monotone — dependence. O(n²) memory; intended for
    sketch-sized samples.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError(f"shape mismatch: {x.shape} vs {y.shape}")
    mask = ~(np.isnan(x) | np.isnan(y))
    x, y = x[mask], y[mask]
    n = x.shape[0]
    if n < 2:
        return math.nan

    def _centered(values: np.ndarray) -> np.ndarray:
        d = np.abs(values[:, None] - values[None, :])
        return d - d.mean(axis=0, keepdims=True) - d.mean(axis=1, keepdims=True) + d.mean()

    ax = _centered(x)
    by = _centered(y)
    dcov2 = float((ax * by).mean())
    dvar_x = float((ax * ax).mean())
    dvar_y = float((by * by).mean())
    denom = math.sqrt(dvar_x * dvar_y)
    if denom <= 0:
        return math.nan
    return math.sqrt(max(0.0, dcov2)) / math.sqrt(denom)
