"""Sketches carrying several aggregate functions at once.

Section 3.1 ("Handling Repeated Keys"): *"our synopsis is agnostic to
such aggregations, and can easily be extended to take as input one or
more functions"*. This module implements that extension: a
:class:`MultiAggregateSketch` maintains, per retained key, one streaming
aggregator per requested function — so a single pass yields sketches for
``mean`` *and* ``max`` *and* ``count`` (etc.) simultaneously, instead of
one pass per function.

As with :class:`~repro.core.multicolumn.MultiColumnSketch`, per-function
views materialize ordinary :class:`~repro.core.sketch.CorrelationSketch`
objects, so all join/estimation machinery applies unchanged.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.aggregators import Aggregator, make_aggregator
from repro.core.sketch import CorrelationSketch
from repro.hashing import KeyHasher, default_hasher
from repro.kmv.bottomk import BottomK


class MultiAggregateSketch:
    """Bottom-``n`` sketch aggregating one value column under several
    functions simultaneously.

    Args:
        n: sketch size.
        aggregates: aggregate-function names (each a key of
            :data:`repro.core.aggregators.AGGREGATORS`), e.g.
            ``("mean", "max", "count")``.
        hasher: hashing scheme.
        name: optional identifier.
    """

    def __init__(
        self,
        n: int,
        aggregates: Sequence[str],
        hasher: KeyHasher | None = None,
        name: str | None = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"sketch size n must be positive, got {n}")
        if not aggregates:
            raise ValueError("at least one aggregate function is required")
        if len(set(aggregates)) != len(aggregates):
            raise ValueError(f"duplicate aggregate names in {list(aggregates)}")
        for agg in aggregates:
            make_aggregator(agg)  # validate eagerly
        self.n = n
        self.aggregates = tuple(aggregates)
        self.hasher = hasher if hasher is not None else default_hasher()
        self.name = name
        self._bottom = BottomK(n)
        self._overflowed = False
        self.rows_seen = 0
        self.value_min = math.inf
        self.value_max = -math.inf

    def update(self, key: object, value: float) -> None:
        """Offer one ``(key, value)`` row to every aggregate."""
        self.rows_seen += 1
        value = float(value)
        if value == value:
            if value < self.value_min:
                self.value_min = value
            if value > self.value_max:
                self.value_max = value
        pair = self.hasher.hash(key)
        if pair.key_hash in self._bottom:
            aggs: list[Aggregator] = self._bottom.get(pair.key_hash)
            for agg in aggs:
                agg.observe(value)
            return
        was_full = len(self._bottom) >= self.n
        aggs = [make_aggregator(name) for name in self.aggregates]
        for agg in aggs:
            agg.observe(value)
        admitted = self._bottom.offer(pair.unit_hash, pair.key_hash, aggs)
        if not admitted or was_full:
            self._overflowed = True

    def update_all(self, rows: Iterable[tuple[object, float]]) -> None:
        for key, value in rows:
            self.update(key, value)

    def __len__(self) -> int:
        return len(self._bottom)

    @property
    def saw_all_keys(self) -> bool:
        return not self._overflowed

    def view(self, aggregate: str) -> CorrelationSketch:
        """Materialize the single-aggregate sketch for ``aggregate``.

        The view carries correct key hashes, ranks, overflow state and —
        for range-preserving aggregates — the column value range, so it
        behaves exactly like a sketch built with that aggregate alone.
        """
        try:
            idx = self.aggregates.index(aggregate)
        except ValueError:
            raise KeyError(
                f"aggregate {aggregate!r} not tracked; available: "
                f"{list(self.aggregates)}"
            ) from None
        view = CorrelationSketch(
            self.n,
            aggregate=aggregate,
            hasher=self.hasher,
            name=f"{self.name}:{aggregate}" if self.name else aggregate,
        )
        view.rows_seen = self.rows_seen
        view._overflowed = self._overflowed
        if not math.isinf(self.value_min):
            view.value_min = self.value_min
        if not math.isinf(-self.value_max):
            view.value_max = self.value_max
        for rank, key_hash, aggs in self._bottom.items():
            holder = make_aggregator("last")
            holder.observe(aggs[idx].value())
            view._bottom.offer(rank, key_hash, holder)
        return view
