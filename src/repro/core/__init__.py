"""The paper's primary contribution: Correlation Sketches.

* :class:`~repro.core.sketch.CorrelationSketch` — single-pass bottom-``n``
  sketch of a ``⟨key, value⟩`` column pair (Section 3.1).
* :func:`~repro.core.joined_sample.join_sketches` — sketch join
  reconstructing a uniform random sample of the joined table (Theorem 1).
* :func:`~repro.core.estimation.estimate` — the full estimation pipeline:
  join, correlate, attach error bounds and joinability statistics.
* :class:`~repro.core.multicolumn.MultiColumnSketch` — shared-key-selection
  sketch for tables with several numeric columns.
* :mod:`repro.core.statistics` — entropy / mutual information / distance
  correlation estimators demonstrating the Section 3.3 flexibility claim.
"""

from repro.core.aggregators import AGGREGATORS, Aggregator, make_aggregator
from repro.core.estimation import (
    RANGE_PRESERVING_AGGREGATES,
    EstimateResult,
    StatisticsResult,
    estimate,
    estimate_statistics,
)
from repro.core.gkmv import ThresholdSketch
from repro.core.joined_sample import JoinedSample, join_sketches
from repro.core.multiaggregate import MultiAggregateSketch
from repro.core.multicolumn import MultiColumnSketch
from repro.core.sketch import CorrelationSketch
from repro.core.statistics import (
    distance_correlation,
    sample_entropy,
    sample_mutual_information,
)

__all__ = [
    "AGGREGATORS",
    "Aggregator",
    "CorrelationSketch",
    "EstimateResult",
    "JoinedSample",
    "MultiAggregateSketch",
    "MultiColumnSketch",
    "RANGE_PRESERVING_AGGREGATES",
    "StatisticsResult",
    "ThresholdSketch",
    "distance_correlation",
    "estimate",
    "estimate_statistics",
    "join_sketches",
    "make_aggregator",
    "sample_entropy",
    "sample_mutual_information",
]
