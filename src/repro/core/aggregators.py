"""Streaming aggregate functions for repeated join keys.

Real-world key columns contain repeated values (Section 3.1, "Handling
Repeated Keys"). Correlation is defined over *paired* values, so the
numeric values sharing one key must be collapsed to a single number with a
user-chosen aggregate function ``f`` before correlating. The paper requires
``f`` to be computable in a streaming fashion — ``x_k^t = f(x_k, x_k^{t-1})``
— so the sketch is still built in one pass.

Each aggregator here is a tiny state machine with O(1) state:

=========  ======================================================
name       semantics of the aggregated value for a key
=========  ======================================================
``mean``   arithmetic mean of all values seen for the key
``sum``    sum of all values
``max``    largest value
``min``    smallest value
``first``  first value encountered (stream order)
``last``   most recent value encountered
``count``  number of occurrences of the key (ignores the values)
=========  ======================================================

Use :func:`make_aggregator` (or :data:`AGGREGATORS`) to obtain instances by
name; sketches store one aggregator state per retained key.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np


class Aggregator:
    """Base class for O(1)-state streaming aggregators.

    Subclasses implement :meth:`update` and :meth:`value`. NaN inputs are
    skipped (treated as missing data, matching how the ground-truth join in
    :mod:`repro.table.join` handles missing cells); an aggregator that
    never saw a non-NaN value reports NaN.
    """

    name: str = "abstract"

    __slots__ = ()

    def update(self, x: float) -> None:
        raise NotImplementedError

    def value(self) -> float:
        raise NotImplementedError

    def observe(self, x: float) -> None:
        """Update with NaN filtering; the entry point sketches use."""
        if x != x:  # NaN check without importing math in the hot path
            return
        self.update(x)


class MeanAggregator(Aggregator):
    """Running arithmetic mean (Welford-style count/total)."""

    name = "mean"
    __slots__ = ("_count", "_total")

    def __init__(self) -> None:
        self._count = 0
        self._total = 0.0

    def update(self, x: float) -> None:
        self._count += 1
        self._total += x

    def value(self) -> float:
        if self._count == 0:
            return math.nan
        return self._total / self._count


class SumAggregator(Aggregator):
    name = "sum"
    __slots__ = ("_total", "_seen")

    def __init__(self) -> None:
        self._total = 0.0
        self._seen = False

    def update(self, x: float) -> None:
        self._total += x
        self._seen = True

    def value(self) -> float:
        return self._total if self._seen else math.nan


class MaxAggregator(Aggregator):
    name = "max"
    __slots__ = ("_best",)

    def __init__(self) -> None:
        self._best = math.nan

    def update(self, x: float) -> None:
        if self._best != self._best or x > self._best:
            self._best = x

    def value(self) -> float:
        return self._best


class MinAggregator(Aggregator):
    name = "min"
    __slots__ = ("_best",)

    def __init__(self) -> None:
        self._best = math.nan

    def update(self, x: float) -> None:
        if self._best != self._best or x < self._best:
            self._best = x

    def value(self) -> float:
        return self._best


class FirstAggregator(Aggregator):
    name = "first"
    __slots__ = ("_value", "_seen")

    def __init__(self) -> None:
        self._value = math.nan
        self._seen = False

    def update(self, x: float) -> None:
        if not self._seen:
            self._value = x
            self._seen = True

    def value(self) -> float:
        return self._value


class LastAggregator(Aggregator):
    name = "last"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = math.nan

    def update(self, x: float) -> None:
        self._value = x

    def value(self) -> float:
        return self._value


class CountAggregator(Aggregator):
    """Counts key occurrences; turns the sketch into a frequency sketch."""

    name = "count"
    __slots__ = ("_count",)

    def __init__(self) -> None:
        self._count = 0

    def update(self, x: float) -> None:
        self._count += 1

    def observe(self, x: float) -> None:
        # Count NaN occurrences too: the key occurred even if its numeric
        # cell was missing.
        self._count += 1

    def value(self) -> float:
        return float(self._count)


AGGREGATORS: dict[str, Callable[[], Aggregator]] = {
    "mean": MeanAggregator,
    "sum": SumAggregator,
    "max": MaxAggregator,
    "min": MinAggregator,
    "first": FirstAggregator,
    "last": LastAggregator,
    "count": CountAggregator,
}


def make_aggregator(name: str) -> Aggregator:
    """Instantiate a fresh aggregator by name.

    Raises:
        ValueError: if ``name`` is not one of :data:`AGGREGATORS`.
    """
    try:
        factory = AGGREGATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown aggregate function {name!r}; expected one of "
            f"{sorted(AGGREGATORS)}"
        ) from None
    return factory()


class GroupedAggregates:
    """Vectorized grouped reduction over one batch of ``(key, value)`` rows.

    This is the aggregation kernel behind
    :meth:`repro.core.sketch.CorrelationSketch.update_array`: rows are
    grouped by key (``inv`` maps each row to its group, as produced by
    ``np.unique(..., return_inverse=True)``) and every group is reduced
    with the named aggregate in a handful of ``ufunc.at`` calls instead of
    one Python-level state-machine step per row.

    The kernel reproduces the streaming aggregators *bit for bit*:

    * ``np.add.at`` accumulates unbuffered and in element order, so a
      group's running sum is the same left-to-right float addition chain
      the scalar ``MeanAggregator``/``SumAggregator`` would produce —
      including for groups **seeded** from a live aggregator's state (keys
      already retained in a sketch continue their existing chain);
    * ``first``/``last`` pick values by position (``np.minimum.at`` /
      ``np.maximum.at`` over row indices of non-NaN rows), matching stream
      order exactly;
    * NaN rows are skipped everywhere except under ``count``, which counts
      key occurrences regardless of the cell value — the same missing-data
      policy as :meth:`Aggregator.observe`.

    Usage protocol: construct, :meth:`seed` groups that continue existing
    aggregator state, :meth:`accumulate` the batch once, then
    :meth:`apply` back onto seeded aggregators and/or :meth:`materialize`
    fresh ones for new keys.
    """

    def __init__(self, name: str, n_groups: int) -> None:
        if name not in AGGREGATORS:
            raise ValueError(
                f"unknown aggregate function {name!r}; expected one of "
                f"{sorted(AGGREGATORS)}"
            )
        self.name = name
        self.n_groups = n_groups
        g = n_groups
        if name in ("mean", "count"):
            self._counts = np.zeros(g, dtype=np.int64)
        if name in ("mean", "sum"):
            self._totals = np.zeros(g, dtype=np.float64)
        if name == "sum":
            self._seen = np.zeros(g, dtype=bool)
        if name in ("max", "min"):
            self._best = np.full(
                g, -math.inf if name == "max" else math.inf, dtype=np.float64
            )
            self._seen = np.zeros(g, dtype=bool)
        if name in ("first", "last"):
            # Sentinel row indices: "no non-NaN occurrence in this batch".
            self._pos = np.full(g, -1, dtype=np.int64)
        self._values: np.ndarray | None = None

    # -- phase 1: continue existing aggregator state -----------------------

    def seed(self, group: int, agg: Aggregator) -> None:
        """Initialize ``group`` from a live aggregator's internal state."""
        name = self.name
        if name == "mean":
            self._counts[group] = agg._count
            self._totals[group] = agg._total
        elif name == "sum":
            self._totals[group] = agg._total
            self._seen[group] = agg._seen
        elif name in ("max", "min"):
            if agg._best == agg._best:  # not NaN: a value was observed
                self._best[group] = agg._best
                self._seen[group] = True
        elif name in ("first", "last"):
            # `first` keeps an already-seen value (apply checks the live
            # aggregator); `last` is overwritten by any batch occurrence.
            pass
        elif name == "count":
            self._counts[group] = agg._count

    # -- phase 2: one vectorized pass over the batch -----------------------

    def accumulate(self, inv: np.ndarray, values: np.ndarray) -> None:
        """Fold the whole batch in; ``values[i]`` belongs to group ``inv[i]``."""
        name = self.name
        self._values = values
        if name == "count":
            self._counts += np.bincount(inv, minlength=self.n_groups).astype(
                np.int64
            )
            return
        valid = ~np.isnan(values)
        vi = inv[valid]
        vv = values[valid]
        if name == "mean":
            np.add.at(self._totals, vi, vv)
            np.add.at(self._counts, vi, 1)
        elif name == "sum":
            np.add.at(self._totals, vi, vv)
            self._seen[vi] = True
        elif name == "max":
            np.maximum.at(self._best, vi, vv)
            self._seen[vi] = True
        elif name == "min":
            np.minimum.at(self._best, vi, vv)
            self._seen[vi] = True
        elif name == "first":
            pos = np.full(self.n_groups, np.iinfo(np.int64).max, dtype=np.int64)
            np.minimum.at(pos, vi, np.nonzero(valid)[0])
            hit = pos != np.iinfo(np.int64).max
            self._pos[hit] = pos[hit]
        elif name == "last":
            np.maximum.at(self._pos, vi, np.nonzero(valid)[0])

    # -- phase 3: write results back / build fresh aggregators -------------

    def apply(self, group: int, agg: Aggregator) -> None:
        """Write ``group``'s reduced state back into a seeded aggregator."""
        name = self.name
        if name == "mean":
            agg._count = int(self._counts[group])
            agg._total = float(self._totals[group])
        elif name == "sum":
            agg._total = float(self._totals[group])
            agg._seen = bool(self._seen[group])
        elif name in ("max", "min"):
            if self._seen[group]:
                agg._best = float(self._best[group])
        elif name == "first":
            if not agg._seen and self._pos[group] >= 0:
                agg._value = float(self._values[self._pos[group]])
                agg._seen = True
        elif name == "last":
            if self._pos[group] >= 0:
                agg._value = float(self._values[self._pos[group]])
        elif name == "count":
            agg._count = int(self._counts[group])

    def materialize(self, group: int) -> Aggregator:
        """Build a fresh aggregator holding ``group``'s reduced state.

        The returned object is indistinguishable from one fed the group's
        rows through :meth:`Aggregator.observe` one at a time, and keeps
        accepting streaming updates.
        """
        agg = make_aggregator(self.name)
        self.apply(group, agg)
        return agg
