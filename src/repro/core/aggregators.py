"""Streaming aggregate functions for repeated join keys.

Real-world key columns contain repeated values (Section 3.1, "Handling
Repeated Keys"). Correlation is defined over *paired* values, so the
numeric values sharing one key must be collapsed to a single number with a
user-chosen aggregate function ``f`` before correlating. The paper requires
``f`` to be computable in a streaming fashion — ``x_k^t = f(x_k, x_k^{t-1})``
— so the sketch is still built in one pass.

Each aggregator here is a tiny state machine with O(1) state:

=========  ======================================================
name       semantics of the aggregated value for a key
=========  ======================================================
``mean``   arithmetic mean of all values seen for the key
``sum``    sum of all values
``max``    largest value
``min``    smallest value
``first``  first value encountered (stream order)
``last``   most recent value encountered
``count``  number of occurrences of the key (ignores the values)
=========  ======================================================

Use :func:`make_aggregator` (or :data:`AGGREGATORS`) to obtain instances by
name; sketches store one aggregator state per retained key.
"""

from __future__ import annotations

import math
from typing import Callable


class Aggregator:
    """Base class for O(1)-state streaming aggregators.

    Subclasses implement :meth:`update` and :meth:`value`. NaN inputs are
    skipped (treated as missing data, matching how the ground-truth join in
    :mod:`repro.table.join` handles missing cells); an aggregator that
    never saw a non-NaN value reports NaN.
    """

    name: str = "abstract"

    __slots__ = ()

    def update(self, x: float) -> None:
        raise NotImplementedError

    def value(self) -> float:
        raise NotImplementedError

    def observe(self, x: float) -> None:
        """Update with NaN filtering; the entry point sketches use."""
        if x != x:  # NaN check without importing math in the hot path
            return
        self.update(x)


class MeanAggregator(Aggregator):
    """Running arithmetic mean (Welford-style count/total)."""

    name = "mean"
    __slots__ = ("_count", "_total")

    def __init__(self) -> None:
        self._count = 0
        self._total = 0.0

    def update(self, x: float) -> None:
        self._count += 1
        self._total += x

    def value(self) -> float:
        if self._count == 0:
            return math.nan
        return self._total / self._count


class SumAggregator(Aggregator):
    name = "sum"
    __slots__ = ("_total", "_seen")

    def __init__(self) -> None:
        self._total = 0.0
        self._seen = False

    def update(self, x: float) -> None:
        self._total += x
        self._seen = True

    def value(self) -> float:
        return self._total if self._seen else math.nan


class MaxAggregator(Aggregator):
    name = "max"
    __slots__ = ("_best",)

    def __init__(self) -> None:
        self._best = math.nan

    def update(self, x: float) -> None:
        if self._best != self._best or x > self._best:
            self._best = x

    def value(self) -> float:
        return self._best


class MinAggregator(Aggregator):
    name = "min"
    __slots__ = ("_best",)

    def __init__(self) -> None:
        self._best = math.nan

    def update(self, x: float) -> None:
        if self._best != self._best or x < self._best:
            self._best = x

    def value(self) -> float:
        return self._best


class FirstAggregator(Aggregator):
    name = "first"
    __slots__ = ("_value", "_seen")

    def __init__(self) -> None:
        self._value = math.nan
        self._seen = False

    def update(self, x: float) -> None:
        if not self._seen:
            self._value = x
            self._seen = True

    def value(self) -> float:
        return self._value


class LastAggregator(Aggregator):
    name = "last"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = math.nan

    def update(self, x: float) -> None:
        self._value = x

    def value(self) -> float:
        return self._value


class CountAggregator(Aggregator):
    """Counts key occurrences; turns the sketch into a frequency sketch."""

    name = "count"
    __slots__ = ("_count",)

    def __init__(self) -> None:
        self._count = 0

    def update(self, x: float) -> None:
        self._count += 1

    def observe(self, x: float) -> None:
        # Count NaN occurrences too: the key occurred even if its numeric
        # cell was missing.
        self._count += 1

    def value(self) -> float:
        return float(self._count)


AGGREGATORS: dict[str, Callable[[], Aggregator]] = {
    "mean": MeanAggregator,
    "sum": SumAggregator,
    "max": MaxAggregator,
    "min": MinAggregator,
    "first": FirstAggregator,
    "last": LastAggregator,
    "count": CountAggregator,
}


def make_aggregator(name: str) -> Aggregator:
    """Instantiate a fresh aggregator by name.

    Raises:
        ValueError: if ``name`` is not one of :data:`AGGREGATORS`.
    """
    try:
        factory = AGGREGATORS[name]
    except KeyError:
        raise ValueError(
            f"unknown aggregate function {name!r}; expected one of "
            f"{sorted(AGGREGATORS)}"
        ) from None
    return factory()
