"""Multi-column correlation sketches (Section 3.1, last paragraph).

For a table ``T = {K, X, Z, …}`` with one key column and several numeric
columns, the paper notes the sketch extends to
``L = {⟨h(k), x_k, z_k, …⟩ : k ∈ min(k, h_u(k))}`` — one bottom-``n``
selection shared by all columns, rather than one sketch per column.
Because the selected keys depend only on the key column, the per-column
views of a multi-column sketch are exactly the single-column sketches, so
all estimation code applies unchanged via :meth:`MultiColumnSketch.column`.

The shared selection makes the multi-column variant strictly cheaper to
build (one pass, one hash per row) and to store (the key hashes are shared)
than independent per-column sketches.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro.core.aggregators import Aggregator, make_aggregator
from repro.core.sketch import CorrelationSketch
from repro.hashing import KeyHasher, default_hasher
from repro.kmv.bottomk import BottomK


class MultiColumnSketch:
    """Bottom-``n`` sketch of ``⟨K, X₁, …, X_m⟩`` with shared key selection.

    Args:
        n: sketch size.
        columns: names of the numeric columns, in row order.
        aggregate: streaming aggregate applied per key per column.
        hasher: hashing scheme.
        name: optional identifier.
    """

    def __init__(
        self,
        n: int,
        columns: Sequence[str],
        aggregate: str = "mean",
        hasher: KeyHasher | None = None,
        name: str | None = None,
    ) -> None:
        if n <= 0:
            raise ValueError(f"sketch size n must be positive, got {n}")
        if not columns:
            raise ValueError("at least one numeric column is required")
        if len(set(columns)) != len(columns):
            raise ValueError(f"duplicate column names in {list(columns)}")
        self.n = n
        self.columns = tuple(columns)
        self.aggregate = aggregate
        make_aggregator(aggregate)  # validate eagerly
        self.hasher = hasher if hasher is not None else default_hasher()
        self.name = name
        self._bottom = BottomK(n)
        self._overflowed = False
        self.rows_seen = 0
        self._value_min = {c: math.inf for c in self.columns}
        self._value_max = {c: -math.inf for c in self.columns}

    def update(self, key: object, values: Sequence[float]) -> None:
        """Offer one row: a key plus one value per numeric column."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows_seen += 1
        floats = [float(v) for v in values]
        for col, v in zip(self.columns, floats):
            if v == v:
                if v < self._value_min[col]:
                    self._value_min[col] = v
                if v > self._value_max[col]:
                    self._value_max[col] = v

        pair = self.hasher.hash(key)
        if pair.key_hash in self._bottom:
            aggs: list[Aggregator] = self._bottom.get(pair.key_hash)
            for agg, v in zip(aggs, floats):
                agg.observe(v)
            return

        was_full = len(self._bottom) >= self.n
        aggs = [make_aggregator(self.aggregate) for _ in self.columns]
        for agg, v in zip(aggs, floats):
            agg.observe(v)
        admitted = self._bottom.offer(pair.unit_hash, pair.key_hash, aggs)
        if not admitted or was_full:
            self._overflowed = True

    def update_all(self, rows: Iterable[tuple[object, Sequence[float]]]) -> None:
        """Offer every ``(key, values)`` row."""
        for key, values in rows:
            self.update(key, values)

    def __len__(self) -> int:
        return len(self._bottom)

    @property
    def saw_all_keys(self) -> bool:
        return not self._overflowed

    def column(self, name: str) -> CorrelationSketch:
        """Materialize the single-column sketch view for column ``name``.

        The returned sketch is frozen (built from aggregated values) but
        carries the correct key hashes, ranks, value range and overflow
        flag, so joining/estimation behaves identically to a sketch built
        directly from that column pair.
        """
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(
                f"no column {name!r}; available: {list(self.columns)}"
            ) from None

        view = CorrelationSketch(
            self.n,
            aggregate=self.aggregate,
            hasher=self.hasher,
            name=f"{self.name}:{name}" if self.name else name,
        )
        view.rows_seen = self.rows_seen
        view._overflowed = self._overflowed
        if not math.isinf(self._value_min[name]):
            view.value_min = self._value_min[name]
        if not math.isinf(-self._value_max[name]):
            view.value_max = self._value_max[name]
        for rank, key_hash, aggs in self._bottom.items():
            holder = make_aggregator("last")
            holder.observe(aggs[idx].value())
            view._bottom.offer(rank, key_hash, holder)
        return view
