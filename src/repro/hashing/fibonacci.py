"""Fibonacci (golden-ratio multiplicative) hashing.

The paper implements ``h_u`` — the map from tuple-identifier integers to
uniform reals in ``[0, 1)`` — with *Fibonacci hashing* (Knuth, TAoCP vol. 3
§6.4): multiply by ``floor(2**w / φ)`` modulo ``2**w`` and divide by
``2**w``. The multiplier is chosen so consecutive integers scatter
far apart; for hash-distributed input it behaves like a uniform map while
costing a single multiply.

A useful structural property (exploited in Figure 2 of the paper): the
unit-interval value never needs to be *stored* in a sketch because it can
always be recomputed from the stored key hash ``h(k)``.
"""

from __future__ import annotations

import numpy as np

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

#: ``floor(2**32 / φ)``, forced odd (Knuth's recommendation) — 2654435769.
FIB_MULTIPLIER_32 = 2654435769

#: ``floor(2**64 / φ)``, forced odd — 11400714819323198485.
FIB_MULTIPLIER_64 = 11400714819323198485


def fibonacci_hash_32(value: int) -> int:
    """Scramble a 32-bit integer with the golden-ratio multiplier."""
    return (value * FIB_MULTIPLIER_32) & _MASK32


def fibonacci_hash_64(value: int) -> int:
    """Scramble a 64-bit integer with the golden-ratio multiplier."""
    return (value * FIB_MULTIPLIER_64) & _MASK64


def to_unit_interval_32(value: int) -> float:
    """Map a 32-bit integer to ``[0, 1)`` via Fibonacci hashing.

    This is the paper's ``h_u`` for 32-bit tuple identifiers.
    """
    return fibonacci_hash_32(value) / 4294967296.0  # 2**32


def to_unit_interval_64(value: int) -> float:
    """Map a 64-bit integer to ``[0, 1)`` via Fibonacci hashing."""
    return fibonacci_hash_64(value) / 18446744073709551616.0  # 2**64


# -- vectorized variants ----------------------------------------------------
#
# A single multiply maps a whole array of tuple identifiers to the unit
# interval. Unsigned NumPy arithmetic wraps modulo 2**w exactly like the
# masked scalar code, and dividing by the exact power of two afterwards is
# lossless, so each element is bit-identical to the scalar function — the
# property CorrelationSketch.update_array's parity guarantee rests on.


def fibonacci_hash_32_batch(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`fibonacci_hash_32` over an integer array."""
    return np.asarray(values).astype(np.uint32) * np.uint32(FIB_MULTIPLIER_32)


def fibonacci_hash_64_batch(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`fibonacci_hash_64` over an integer array."""
    return np.asarray(values).astype(np.uint64) * np.uint64(FIB_MULTIPLIER_64)


def to_unit_interval_32_batch(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`to_unit_interval_32`; returns float64 in [0, 1)."""
    return fibonacci_hash_32_batch(values).astype(np.float64) / 4294967296.0


def to_unit_interval_64_batch(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`to_unit_interval_64`; returns float64 in [0, 1)."""
    return (
        fibonacci_hash_64_batch(values).astype(np.float64) / 18446744073709551616.0
    )
