"""Pure-Python MurmurHash3 implementations.

MurmurHash3 (Austin Appleby, 2011, public domain) is the hash the paper
uses for ``h`` (Section 3.4). We port two variants:

* :func:`murmur3_32` — the x86 32-bit variant, bit-exact with the reference
  C++ implementation (validated against published test vectors in the test
  suite).
* :func:`murmur3_x64_64` — the first 64 bits of the x64 128-bit variant,
  useful when indexing collections large enough that 32-bit hash collisions
  would perturb distinct-value estimates.

Both accept ``bytes``/``bytearray`` directly, and any other object is first
converted through :func:`_to_bytes` (strings are UTF-8 encoded, integers
use their minimal two's-complement little-endian encoding). Keeping the
conversion in one place guarantees that a key hashes identically no matter
which table it came from — the property Theorem 1 relies on.
"""

from __future__ import annotations

import numpy as _np

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _to_bytes(key: object) -> bytes:
    """Normalize ``key`` to a canonical byte string.

    Strings encode as UTF-8. Integers use a minimal-width little-endian
    signed encoding so that, e.g., ``1`` and ``"1"`` hash differently but
    ``1`` hashes identically regardless of the Python object's origin.
    Floats use their IEEE-754 big-endian representation via ``struct``.
    NumPy scalars are unwrapped first so ``np.int64(1)`` hashes like ``1``
    — the vectorized batch path in :mod:`repro.hashing.vectorized` hands
    out native-dtype encodings and the scalar path must agree with it.
    """
    if isinstance(key, _np.generic):
        key = key.item()
    if isinstance(key, bytes):
        return key
    if isinstance(key, bytearray):
        return bytes(key)
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, bool):
        # bool is a subclass of int; tag it so True/False do not collide
        # with the integers 1/0 (keys in one column are homogeneous, so a
        # rare cross-type collision with the int 0x01fdfe/0x00fdfe is
        # acceptable).
        return b"\xfe\xfd\x01" if key else b"\xfe\xfd\x00"
    if isinstance(key, int):
        length = max(1, (key.bit_length() + 8) // 8)
        return key.to_bytes(length, "little", signed=True)
    if isinstance(key, float):
        import struct

        return struct.pack(">d", key)
    return repr(key).encode("utf-8")


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


def _rotl64(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _MASK64


def _fmix32(h: int) -> int:
    h ^= h >> 16
    h = (h * 0x85EBCA6B) & _MASK32
    h ^= h >> 13
    h = (h * 0xC2B2AE35) & _MASK32
    h ^= h >> 16
    return h


def _fmix64(k: int) -> int:
    k ^= k >> 33
    k = (k * 0xFF51AFD7ED558CCD) & _MASK64
    k ^= k >> 33
    k = (k * 0xC4CEB9FE1A85EC53) & _MASK64
    k ^= k >> 33
    return k


def murmur3_32(key: object, seed: int = 0) -> int:
    """Return the 32-bit MurmurHash3 (x86 variant) of ``key``.

    Bit-exact with the reference ``MurmurHash3_x86_32``. The result is an
    unsigned integer in ``[0, 2**32)``.
    """
    data = _to_bytes(key)
    nbytes = len(data)
    h1 = seed & _MASK32

    c1 = 0xCC9E2D51
    c2 = 0x1B873593

    nblocks = nbytes // 4
    for i in range(nblocks):
        k1 = int.from_bytes(data[4 * i : 4 * i + 4], "little")
        k1 = (k1 * c1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * c2) & _MASK32

        h1 ^= k1
        h1 = _rotl32(h1, 13)
        h1 = (h1 * 5 + 0xE6546B64) & _MASK32

    # Tail.
    tail = data[nblocks * 4 :]
    k1 = 0
    if len(tail) >= 3:
        k1 ^= tail[2] << 16
    if len(tail) >= 2:
        k1 ^= tail[1] << 8
    if len(tail) >= 1:
        k1 ^= tail[0]
        k1 = (k1 * c1) & _MASK32
        k1 = _rotl32(k1, 15)
        k1 = (k1 * c2) & _MASK32
        h1 ^= k1

    h1 ^= nbytes
    return _fmix32(h1)


def murmur3_x64_128(key: object, seed: int = 0) -> tuple[int, int]:
    """Return the 128-bit MurmurHash3 (x64 variant) as two 64-bit halves."""
    data = _to_bytes(key)
    nbytes = len(data)
    h1 = seed & _MASK64
    h2 = seed & _MASK64

    c1 = 0x87C37B91114253D5
    c2 = 0x4CF5AD432745937F

    nblocks = nbytes // 16
    for i in range(nblocks):
        k1 = int.from_bytes(data[16 * i : 16 * i + 8], "little")
        k2 = int.from_bytes(data[16 * i + 8 : 16 * i + 16], "little")

        k1 = (k1 * c1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * c2) & _MASK64
        h1 ^= k1

        h1 = _rotl64(h1, 27)
        h1 = (h1 + h2) & _MASK64
        h1 = (h1 * 5 + 0x52DCE729) & _MASK64

        k2 = (k2 * c2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * c1) & _MASK64
        h2 ^= k2

        h2 = _rotl64(h2, 31)
        h2 = (h2 + h1) & _MASK64
        h2 = (h2 * 5 + 0x38495AB5) & _MASK64

    tail = data[nblocks * 16 :]
    k1 = 0
    k2 = 0
    tlen = len(tail)
    # The reference implementation's fall-through switch, unrolled.
    if tlen >= 9:
        for j in range(min(tlen, 16) - 1, 7, -1):
            k2 ^= tail[j] << (8 * (j - 8))
        k2 = (k2 * c2) & _MASK64
        k2 = _rotl64(k2, 33)
        k2 = (k2 * c1) & _MASK64
        h2 ^= k2
    if tlen >= 1:
        for j in range(min(tlen, 8) - 1, -1, -1):
            k1 ^= tail[j] << (8 * j)
        k1 = (k1 * c1) & _MASK64
        k1 = _rotl64(k1, 31)
        k1 = (k1 * c2) & _MASK64
        h1 ^= k1

    h1 ^= nbytes
    h2 ^= nbytes

    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64

    h1 = _fmix64(h1)
    h2 = _fmix64(h2)

    h1 = (h1 + h2) & _MASK64
    h2 = (h2 + h1) & _MASK64
    return h1, h2


def murmur3_x64_64(key: object, seed: int = 0) -> int:
    """Return the first 64 bits of the 128-bit x64 MurmurHash3 of ``key``."""
    return murmur3_x64_128(key, seed)[0]
