"""Hashing substrate used by all sketches.

The paper (Section 3.4) uses two hash functions:

* ``h`` — a collision-free hash mapping key values to distinct integers.
  The reference implementation uses the 32-bit MurmurHash3 function, which
  has been shown to behave like a truly random hash function on realistic
  data (Dahlgaard et al., NeurIPS 2017). We provide a bit-exact pure-Python
  port in :mod:`repro.hashing.murmur3` plus a 64-bit variant (from
  MurmurHash3's 128-bit finalizer) for collections where 32-bit collisions
  would be a concern.

* ``h_u`` — a multiplicative *Fibonacci* (golden-ratio) hash mapping those
  integers uniformly into the unit interval ``[0, 1)``. See
  :mod:`repro.hashing.fibonacci`.

The composition ``g(k) = h_u(h(k))`` drives the bottom-``n`` selection of
keys into a sketch; because ``g`` is deterministic, two independently built
sketches agree on *which* keys are the "smallest", which is what makes the
sketch intersection large (Section 3.1).
"""

from repro.hashing.fibonacci import (
    FIB_MULTIPLIER_32,
    FIB_MULTIPLIER_64,
    fibonacci_hash_32,
    fibonacci_hash_32_batch,
    fibonacci_hash_64,
    fibonacci_hash_64_batch,
    to_unit_interval_32,
    to_unit_interval_32_batch,
    to_unit_interval_64,
    to_unit_interval_64_batch,
)
from repro.hashing.hash_functions import (
    HashPair,
    KeyHasher,
    TupleHash,
    default_hasher,
)
from repro.hashing.murmur3 import murmur3_32, murmur3_x64_64
from repro.hashing.vectorized import (
    murmur3_32_batch,
    murmur3_32_bytes_batch,
    murmur3_x64_64_batch,
    murmur3_x64_64_bytes_batch,
)

__all__ = [
    "FIB_MULTIPLIER_32",
    "FIB_MULTIPLIER_64",
    "HashPair",
    "KeyHasher",
    "TupleHash",
    "default_hasher",
    "fibonacci_hash_32",
    "fibonacci_hash_32_batch",
    "fibonacci_hash_64",
    "fibonacci_hash_64_batch",
    "murmur3_32",
    "murmur3_32_batch",
    "murmur3_32_bytes_batch",
    "murmur3_x64_64",
    "murmur3_x64_64_batch",
    "murmur3_x64_64_bytes_batch",
    "to_unit_interval_32",
    "to_unit_interval_32_batch",
    "to_unit_interval_64",
    "to_unit_interval_64_batch",
]
