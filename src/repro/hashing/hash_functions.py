"""Key-hashing façade: the composed map ``g(k) = h_u(h(k))``.

A :class:`KeyHasher` bundles the two hash functions from Section 3.4 of the
paper behind a single object so every sketch in a collection is guaranteed
to use the *same* ``h`` and ``h_u``. Sketches built with different hashers
must never be joined (their tuple identifiers would be incomparable), so
the hasher carries an identity fingerprint that sketch-join code checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.hashing.fibonacci import (
    to_unit_interval_32,
    to_unit_interval_32_batch,
    to_unit_interval_64,
    to_unit_interval_64_batch,
)
from repro.hashing.murmur3 import murmur3_32, murmur3_x64_64
from repro.hashing.vectorized import murmur3_32_batch, murmur3_x64_64_batch


@dataclass(frozen=True, slots=True)
class HashPair:
    """The two hash values a sketch stores/derives for one key.

    Attributes:
        key_hash: the tuple identifier ``h(k)`` (stored in the sketch).
        unit_hash: the unit-interval value ``h_u(h(k))`` used for
            bottom-``n`` selection (derivable, never stored).
    """

    key_hash: int
    unit_hash: float


class KeyHasher:
    """Composed hashing scheme ``g(k) = h_u(h(k))``.

    Args:
        bits: 32 (paper default, MurmurHash3 x86_32 + 32-bit Fibonacci) or
            64 (MurmurHash3 x64 + 64-bit Fibonacci).
        seed: seed forwarded to MurmurHash3. Distinct seeds produce
            independent hashing schemes, which the test-suite uses to check
            distributional properties.
    """

    def __init__(self, bits: int = 32, seed: int = 0) -> None:
        if bits not in (32, 64):
            raise ValueError(f"bits must be 32 or 64, got {bits}")
        self.bits = bits
        self.seed = seed
        if bits == 32:
            self._hash: Callable[[object, int], int] = murmur3_32
            self._unit: Callable[[int], float] = to_unit_interval_32
        else:
            self._hash = murmur3_x64_64
            self._unit = to_unit_interval_64

    @property
    def scheme_id(self) -> tuple[int, int]:
        """Fingerprint identifying this hashing scheme.

        Two sketches are joinable only if their hashers share a scheme id.
        """
        return (self.bits, self.seed)

    def key_hash(self, key: object) -> int:
        """Return the tuple identifier ``h(k)``."""
        return self._hash(key, self.seed)

    def unit_hash_of_key_hash(self, key_hash: int) -> float:
        """Return ``h_u(h(k))`` given an already-computed ``h(k)``."""
        return self._unit(key_hash)

    def hash(self, key: object) -> HashPair:
        """Return both hash values for ``key``."""
        kh = self._hash(key, self.seed)
        return HashPair(key_hash=kh, unit_hash=self._unit(kh))

    # -- vectorized fast path (array-in / array-out) -----------------------

    def hash_batch(self, keys) -> np.ndarray:
        """Vectorized :meth:`key_hash` over a key array or sequence.

        Elementwise identical to the scalar path:
        ``hash_batch(keys)[i] == key_hash(keys[i])`` for every supported
        key type (see :mod:`repro.hashing.vectorized`). Returns a
        ``uint32`` (``bits=32``) or ``uint64`` (``bits=64``) array.
        """
        if self.bits == 32:
            return murmur3_32_batch(keys, self.seed)
        return murmur3_x64_64_batch(keys, self.seed)

    def unit_hash_batch(self, key_hashes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`unit_hash_of_key_hash` over an integer array.

        Returns a float64 array; each element is bit-identical to the
        scalar Fibonacci map of the same tuple identifier.
        """
        if self.bits == 32:
            return to_unit_interval_32_batch(key_hashes)
        return to_unit_interval_64_batch(key_hashes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyHasher):
            return NotImplemented
        return self.scheme_id == other.scheme_id

    def __hash__(self) -> int:
        return hash(self.scheme_id)

    def __repr__(self) -> str:
        return f"KeyHasher(bits={self.bits}, seed={self.seed})"


class TupleHash:
    """Hash composite (multi-attribute) join keys.

    Multi-column join keys are canonicalized as a tuple of attribute byte
    encodings separated by a 0x1F unit-separator byte, then hashed with the
    wrapped :class:`KeyHasher`. This lets callers index composite keys
    without inventing ad-hoc string concatenations (which would make
    ``("a", "bc")`` collide with ``("ab", "c")``).
    """

    _SEP = b"\x1f"

    def __init__(self, hasher: KeyHasher) -> None:
        self.hasher = hasher

    def canonical_bytes(self, parts: tuple) -> bytes:
        from repro.hashing.murmur3 import _to_bytes

        encoded = [_to_bytes(p) for p in parts]
        return self._SEP.join(encoded)

    def hash(self, parts: tuple) -> HashPair:
        return self.hasher.hash(self.canonical_bytes(parts))


def default_hasher() -> KeyHasher:
    """Return the paper's default scheme: 32-bit MurmurHash3, seed 0."""
    return KeyHasher(bits=32, seed=0)
