"""Vectorized (NumPy array-in / array-out) MurmurHash3.

Sketch construction hashes every key of a column exactly once, and for the
pure-Python scalar :mod:`repro.hashing.murmur3` port that hash *is* the
construction hot path — profiling ``bench_construction.py`` on the seed
shows >70% of catalog-build time inside ``murmur3_32``. This module
re-implements both MurmurHash3 variants over NumPy ``uint8`` byte matrices
so a whole column is hashed with a handful of vector operations.

Bit-exactness contract
----------------------
Every batch function here is **elementwise identical** to its scalar
counterpart (``murmur3_32_batch(keys, s)[i] == murmur3_32(keys[i], s)``
for every supported key type). This is not a nicety: Theorem 1 of the
paper requires that two independently built sketches agree on the hash of
a shared key, so a fast path that hashed even one key differently would
silently break sketch joinability with catalogs built on the scalar path.
The test suite enforces the contract against the scalar port on random
bytes, strings, integers (including the 9-byte ``-2**63`` encoding edge
case), floats and booleans.

Variable-length inputs are handled by *length bucketing*: keys are grouped
by encoded byte length, each group is packed into a dense ``(m, L)`` byte
matrix, and the fixed-length kernel runs once per distinct length. Real
key columns (ids, codes, names) concentrate on a few lengths, so the
number of kernel launches stays tiny even for millions of rows.

All arithmetic uses unsigned NumPy dtypes, where overflow wraps modulo
``2**w`` exactly like the masked scalar code.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.hashing.murmur3 import _to_bytes

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


# -- 32-bit kernel ----------------------------------------------------------


def _rotl32v(x: np.ndarray, r: int) -> np.ndarray:
    return (x << np.uint32(r)) | (x >> np.uint32(32 - r))


def _fmix32v(h: np.ndarray) -> np.ndarray:
    h = h ^ (h >> np.uint32(16))
    h = h * np.uint32(0x85EBCA6B)
    h = h ^ (h >> np.uint32(13))
    h = h * np.uint32(0xC2B2AE35)
    h = h ^ (h >> np.uint32(16))
    return h


def murmur3_32_matrix(data: np.ndarray, seed: int = 0) -> np.ndarray:
    """MurmurHash3 x86_32 of every row of an ``(m, L)`` uint8 matrix.

    Row ``i`` hashes exactly like ``murmur3_32(bytes(data[i]), seed)``.
    """
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if data.ndim != 2:
        raise ValueError(f"expected an (m, L) byte matrix, got {data.ndim}-D")
    m, nbytes = data.shape
    h1 = np.full(m, seed & _MASK32, dtype=np.uint32)

    c1 = np.uint32(0xCC9E2D51)
    c2 = np.uint32(0x1B873593)

    # Byte columns widen lazily at their use sites (like the 64-bit
    # kernel's _load64) — an eager data.astype(np.uint32) would allocate a
    # 4x-size temporary of the whole matrix.
    u = data
    nblocks = nbytes // 4
    for i in range(nblocks):
        b = 4 * i
        k1 = (
            u[:, b].astype(np.uint32)
            | (u[:, b + 1].astype(np.uint32) << np.uint32(8))
            | (u[:, b + 2].astype(np.uint32) << np.uint32(16))
            | (u[:, b + 3].astype(np.uint32) << np.uint32(24))
        )
        k1 = k1 * c1
        k1 = _rotl32v(k1, 15)
        k1 = k1 * c2

        h1 = h1 ^ k1
        h1 = _rotl32v(h1, 13)
        h1 = h1 * np.uint32(5) + np.uint32(0xE6546B64)

    tail = nbytes % 4
    if tail:
        b = nblocks * 4
        k1 = np.zeros(m, dtype=np.uint32)
        if tail >= 3:
            k1 = k1 ^ (u[:, b + 2].astype(np.uint32) << np.uint32(16))
        if tail >= 2:
            k1 = k1 ^ (u[:, b + 1].astype(np.uint32) << np.uint32(8))
        k1 = k1 ^ u[:, b].astype(np.uint32)
        k1 = k1 * c1
        k1 = _rotl32v(k1, 15)
        k1 = k1 * c2
        h1 = h1 ^ k1

    h1 = h1 ^ np.uint32(nbytes)
    return _fmix32v(h1)


# -- 64-bit kernel ----------------------------------------------------------


def _rotl64v(x: np.ndarray, r: int) -> np.ndarray:
    return (x << np.uint64(r)) | (x >> np.uint64(64 - r))


def _fmix64v(k: np.ndarray) -> np.ndarray:
    k = k ^ (k >> np.uint64(33))
    k = k * np.uint64(0xFF51AFD7ED558CCD)
    k = k ^ (k >> np.uint64(33))
    k = k * np.uint64(0xC4CEB9FE1A85EC53)
    k = k ^ (k >> np.uint64(33))
    return k


def _load64(u: np.ndarray, base: int, count: int) -> np.ndarray:
    """Little-endian load of ``count`` byte columns starting at ``base``."""
    k = u[:, base].astype(np.uint64)
    for j in range(1, count):
        k = k | (u[:, base + j].astype(np.uint64) << np.uint64(8 * j))
    return k


def murmur3_x64_128_matrix(
    data: np.ndarray, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """MurmurHash3 x64_128 of every row; returns the two 64-bit halves."""
    data = np.ascontiguousarray(data, dtype=np.uint8)
    if data.ndim != 2:
        raise ValueError(f"expected an (m, L) byte matrix, got {data.ndim}-D")
    m, nbytes = data.shape
    h1 = np.full(m, seed & _MASK64, dtype=np.uint64)
    h2 = h1.copy()

    c1 = np.uint64(0x87C37B91114253D5)
    c2 = np.uint64(0x4CF5AD432745937F)

    u = data  # byte columns are widened lazily in _load64
    nblocks = nbytes // 16
    for i in range(nblocks):
        b = 16 * i
        k1 = _load64(u, b, 8)
        k2 = _load64(u, b + 8, 8)

        k1 = k1 * c1
        k1 = _rotl64v(k1, 31)
        k1 = k1 * c2
        h1 = h1 ^ k1

        h1 = _rotl64v(h1, 27)
        h1 = h1 + h2
        h1 = h1 * np.uint64(5) + np.uint64(0x52DCE729)

        k2 = k2 * c2
        k2 = _rotl64v(k2, 33)
        k2 = k2 * c1
        h2 = h2 ^ k2

        h2 = _rotl64v(h2, 31)
        h2 = h2 + h1
        h2 = h2 * np.uint64(5) + np.uint64(0x38495AB5)

    tlen = nbytes % 16
    base = nblocks * 16
    if tlen >= 9:
        k2 = _load64(u, base + 8, tlen - 8)
        k2 = k2 * c2
        k2 = _rotl64v(k2, 33)
        k2 = k2 * c1
        h2 = h2 ^ k2
    if tlen >= 1:
        k1 = _load64(u, base, min(tlen, 8))
        k1 = k1 * c1
        k1 = _rotl64v(k1, 31)
        k1 = k1 * c2
        h1 = h1 ^ k1

    h1 = h1 ^ np.uint64(nbytes)
    h2 = h2 ^ np.uint64(nbytes)

    h1 = h1 + h2
    h2 = h2 + h1

    h1 = _fmix64v(h1)
    h2 = _fmix64v(h2)

    h1 = h1 + h2
    h2 = h2 + h1
    return h1, h2


def murmur3_x64_64_matrix(data: np.ndarray, seed: int = 0) -> np.ndarray:
    """First 64 bits of the x64 128-bit hash of every matrix row."""
    return murmur3_x64_128_matrix(data, seed)[0]


# -- length bucketing over pre-encoded byte strings -------------------------


def _bytes_batch(
    encoded: Sequence[bytes], seed: int, kernel, out_dtype
) -> np.ndarray:
    m = len(encoded)
    out = np.empty(m, dtype=out_dtype)
    if m == 0:
        return out
    lengths = np.fromiter((len(b) for b in encoded), dtype=np.int64, count=m)
    for length in np.unique(lengths):
        idx = np.nonzero(lengths == length)[0]
        if length == 0:
            mat = np.empty((idx.size, 0), dtype=np.uint8)
        else:
            blob = b"".join(encoded[i] for i in idx.tolist())
            mat = np.frombuffer(blob, dtype=np.uint8).reshape(idx.size, length)
        out[idx] = kernel(mat, seed)
    return out


def murmur3_32_bytes_batch(encoded: Sequence[bytes], seed: int = 0) -> np.ndarray:
    """32-bit hash of each byte string; equals ``murmur3_32(b, seed)``."""
    return _bytes_batch(encoded, seed, murmur3_32_matrix, np.uint32)


def murmur3_x64_64_bytes_batch(
    encoded: Sequence[bytes], seed: int = 0
) -> np.ndarray:
    """64-bit hash of each byte string; equals ``murmur3_x64_64(b, seed)``."""
    return _bytes_batch(encoded, seed, murmur3_x64_64_matrix, np.uint64)


# -- native-dtype fast paths ------------------------------------------------
#
# Integer, float and bool arrays never round-trip through Python objects:
# their canonical `_to_bytes` encodings are reproduced with array ops and
# fed straight to the fixed-length kernels.


def _int_encoding_lengths(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray, bool]:
    """Per-element minimal signed-LE byte length, mirroring `_to_bytes`.

    Returns ``(widened_values, lengths, signed)``. Python encodes an int in
    ``max(1, (bit_length + 8) // 8)`` bytes; ``bit_length`` of magnitude
    ``a`` reaches ``8j`` exactly when ``a >= 2**(8j - 1)``.
    """
    signed = arr.dtype.kind == "i"
    if signed:
        wide = arr.astype(np.int64)
        u = wide.astype(np.uint64)
        mag = np.where(wide >= 0, u, np.uint64(0) - u)
    else:
        wide = arr.astype(np.uint64)
        mag = wide
    lengths = np.ones(arr.shape[0], dtype=np.int64)
    for j in range(1, 9):
        lengths += mag >= np.uint64(1 << (8 * j - 1))
    return wide, lengths, signed


def _int_byte_matrix(sub: np.ndarray, length: int, signed: bool) -> np.ndarray:
    """Pack integers into their minimal two's-complement LE byte rows."""
    mat = np.empty((sub.shape[0], length), dtype=np.uint8)
    scalar = sub.dtype.type
    for j in range(min(length, 8)):
        # Arithmetic shift on the signed path reproduces sign extension.
        mat[:, j] = ((sub >> scalar(8 * j)) & scalar(0xFF)).astype(np.uint8)
    if length == 9:
        # Only |k| >= 2**63 needs a ninth byte: the explicit sign byte.
        mat[:, 8] = np.where(sub < 0, 0xFF, 0) if signed else 0
    return mat


def _int_batch(arr: np.ndarray, seed: int, kernel, out_dtype) -> np.ndarray:
    out = np.empty(arr.shape[0], dtype=out_dtype)
    if arr.shape[0] == 0:
        return out
    wide, lengths, signed = _int_encoding_lengths(arr)
    for length in np.unique(lengths):
        idx = np.nonzero(lengths == length)[0]
        mat = _int_byte_matrix(wide[idx], int(length), signed)
        out[idx] = kernel(mat, seed)
    return out


def _float_byte_matrix(arr: np.ndarray) -> np.ndarray:
    """Big-endian IEEE-754 rows, mirroring ``struct.pack(">d", x)``."""
    be = np.ascontiguousarray(arr, dtype=">f8")
    return be.view(np.uint8).reshape(arr.shape[0], 8)


def _bool_byte_matrix(arr: np.ndarray) -> np.ndarray:
    """The 3-byte tagged encodings ``b"\\xfe\\xfd\\x01"`` / ``...\\x00``."""
    mat = np.empty((arr.shape[0], 3), dtype=np.uint8)
    mat[:, 0] = 0xFE
    mat[:, 1] = 0xFD
    mat[:, 2] = arr.astype(np.uint8)
    return mat


def _dispatch_batch(keys, seed: int, kernel, bytes_batch, out_dtype) -> np.ndarray:
    if isinstance(keys, np.ndarray) and keys.ndim == 1:
        kind = keys.dtype.kind
        if kind in "iu":
            return _int_batch(keys, seed, kernel, out_dtype)
        if kind == "f":
            # float16/32 keys widen to float64 first, exactly like the
            # scalar path's float(key) conversion.
            return kernel(_float_byte_matrix(keys.astype(np.float64)), seed)
        if kind == "b":
            return kernel(_bool_byte_matrix(keys), seed)
    encoded = [_to_bytes(k) for k in keys]
    return bytes_batch(encoded, seed)


def murmur3_32_batch(keys, seed: int = 0) -> np.ndarray:
    """Vectorized ``murmur3_32`` over a key array/sequence.

    Elementwise identical to the scalar function for every key type the
    scalar ``_to_bytes`` canonicalization supports. Numeric/bool NumPy
    arrays take a fully vectorized path; other sequences (strings, bytes,
    mixed objects) are encoded per element and hashed in length buckets.
    """
    return _dispatch_batch(
        keys, seed, murmur3_32_matrix, murmur3_32_bytes_batch, np.uint32
    )


def murmur3_x64_64_batch(keys, seed: int = 0) -> np.ndarray:
    """Vectorized ``murmur3_x64_64`` over a key array/sequence."""
    return _dispatch_batch(
        keys, seed, murmur3_x64_64_matrix, murmur3_x64_64_bytes_batch, np.uint64
    )


# -- one-permutation MinHash bucketing ---------------------------------------
#
# The LSH retrieval backend (repro/index/lsh.py) buckets the ``2**bits``
# key-hash space into ``n_slots`` equal ranges and keeps the minimum hash
# per range. These kernels vectorize that bucketing; like the hash
# kernels above, each is elementwise identical to its scalar reference
# (``MinHashSignature.from_key_hashes``).

#: Placeholder value of slots no hash fell into; always paired with a
#: boolean ``filled`` mask, so a genuine key hash of the same value is
#: still distinguished from an empty slot.
_SLOT_EMPTY = np.uint64(0xFFFFFFFFFFFFFFFF)


def minhash_slot_index_batch(
    key_hashes: np.ndarray, n_slots: int, bits: int
) -> np.ndarray:
    """Slot index ``min(n_slots - 1, kh * n_slots // 2**bits)`` per hash.

    Exact for both hash widths: the 32-bit product fits ``uint64``
    directly; the 64-bit path emulates the 128-bit product with two
    32-bit halves (``kh = hi·2³² + lo`` gives
    ``⌊kh·n / 2⁶⁴⌋ = ⌊(hi·n + ⌊lo·n / 2³²⌋) / 2³²⌋``, every intermediate
    below ``2⁶⁴`` for any realistic slot count).
    """
    if n_slots <= 0:
        raise ValueError(f"n_slots must be positive, got {n_slots}")
    kh = np.asarray(key_hashes, dtype=np.uint64)
    ns = np.uint64(n_slots)
    if bits <= 32:
        idx = (kh * ns) >> np.uint64(bits)
    else:
        lo = kh & np.uint64(0xFFFFFFFF)
        hi = kh >> np.uint64(32)
        idx = (hi * ns + ((lo * ns) >> np.uint64(32))) >> np.uint64(32)
    return np.minimum(idx, np.uint64(n_slots - 1)).astype(np.int64)


def one_permutation_signature(
    key_hashes: np.ndarray, n_slots: int, bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """One-permutation MinHash signature of one key-hash set.

    Returns ``(slots, filled)``: the minimum hash per slot (``uint64``)
    and a boolean mask marking slots at least one hash fell into.
    Unfilled slots hold a placeholder value; consumers must honor the
    mask rather than compare against it.
    """
    kh = np.asarray(key_hashes, dtype=np.uint64).ravel()
    slots = np.full(n_slots, _SLOT_EMPTY, dtype=np.uint64)
    filled = np.zeros(n_slots, dtype=bool)
    if kh.size:
        idx = minhash_slot_index_batch(kh, n_slots, bits)
        np.minimum.at(slots, idx, kh)
        filled[idx] = True
    return slots, filled


def one_permutation_signatures_batch(
    concat_hashes: np.ndarray, indptr: np.ndarray, n_slots: int, bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """CSR-batched :func:`one_permutation_signature` over many key sets.

    ``indptr`` delimits each set's slice of ``concat_hashes`` (length
    ``n_sets + 1``). All signatures are bucketed with a single
    ``np.minimum.at`` scatter into one flat ``(n_sets · n_slots)``
    buffer; row ``i`` of the returned ``(n_sets, n_slots)`` matrices
    equals ``one_permutation_signature(concat_hashes[indptr[i]:indptr[i+1]], …)``.
    """
    indptr = np.asarray(indptr, dtype=np.int64)
    n_sets = indptr.shape[0] - 1
    slots = np.full(n_sets * n_slots, _SLOT_EMPTY, dtype=np.uint64)
    filled = np.zeros(n_sets * n_slots, dtype=bool)
    kh = np.asarray(concat_hashes, dtype=np.uint64).ravel()
    if kh.size:
        rows = np.repeat(np.arange(n_sets, dtype=np.int64), np.diff(indptr))
        idx = rows * n_slots + minhash_slot_index_batch(kh, n_slots, bits)
        np.minimum.at(slots, idx, kh)
        filled[idx] = True
    return slots.reshape(n_sets, n_slots), filled.reshape(n_sets, n_slots)
