"""Experiment harness shared by the benchmark suite.

One module per experiment family:

* :mod:`repro.evalharness.accuracy` — estimate-vs-truth sweeps (Figure 3);
* :mod:`repro.evalharness.rmse` — RMSE by sketch-intersection size
  (Figure 4);
* :mod:`repro.evalharness.ranking_eval` — MAP/nDCG ranking comparison
  (Table 1, Figure 5);
* :mod:`repro.evalharness.timing` — running-time percentiles (Table 2)
  and query-latency distributions (Section 5.5).
"""

from repro.evalharness.accuracy import (
    AccuracyRecord,
    AccuracySummary,
    evaluate_pair_refs,
    evaluate_sbn_pairs,
)
from repro.evalharness.ranking_eval import (
    QueryEvaluation,
    RankingEvalReport,
    build_catalog,
    evaluate_query,
    evaluate_ranking,
    score_histogram,
)
from repro.evalharness.rmse import (
    DEFAULT_BUCKETS,
    RMSEBucket,
    format_rmse_table,
    overall_rmse,
    rmse_by_sample_size,
)
from repro.evalharness.timing import LatencyReport, TimingSample, TimingTable, timed

__all__ = [
    "AccuracyRecord",
    "AccuracySummary",
    "DEFAULT_BUCKETS",
    "LatencyReport",
    "QueryEvaluation",
    "RMSEBucket",
    "RankingEvalReport",
    "TimingSample",
    "TimingTable",
    "build_catalog",
    "evaluate_pair_refs",
    "evaluate_query",
    "evaluate_ranking",
    "evaluate_sbn_pairs",
    "format_rmse_table",
    "overall_rmse",
    "rmse_by_sample_size",
    "score_histogram",
    "timed",
]
