"""Estimate-vs-truth accuracy sweeps (Figures 3a–3d).

For each sampled combination of column pairs the harness:

1. builds both correlation sketches (size ``sketch_size``),
2. estimates the after-join correlation from the sketch join,
3. computes the *actual* after-join correlation with a full join,
4. records both plus the sketch-join sample size.

The resulting :class:`AccuracyRecord` stream is what the paper scatters in
Figure 3 (estimate on y, truth on x) and aggregates into RMSE curves in
Figure 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.joined_sample import join_sketches
from repro.core.sketch import CorrelationSketch
from repro.correlation.estimators import get_estimator, population_reference
from repro.data.sbn import SBNPair
from repro.data.workloads import PairRef
from repro.table.join import join_tables, true_correlation


@dataclass(frozen=True)
class AccuracyRecord:
    """One estimate/truth observation.

    Attributes:
        pair_id: identifier of the column-pair combination.
        estimate: sketch-based correlation estimate.
        truth: full-join correlation (the paper's "actual" value).
        sample_size: sketch-join sample size (NaN-filtered).
        join_size: full-join row count (after aggregation).
    """

    pair_id: str
    estimate: float
    truth: float
    sample_size: int
    join_size: int

    @property
    def error(self) -> float:
        return self.estimate - self.truth

    def is_valid(self) -> bool:
        """True when both estimate and truth are defined."""
        return not (math.isnan(self.estimate) or math.isnan(self.truth))


def evaluate_pair_refs(
    combinations: Iterable[tuple[PairRef, PairRef]],
    *,
    sketch_size: int,
    estimator: str = "pearson",
    aggregate: str = "mean",
    min_sample: int = 3,
) -> Iterator[AccuracyRecord]:
    """Run the accuracy protocol over column-pair combinations.

    Records with sketch-join samples smaller than ``min_sample`` (the
    paper plots ``n ≥ 3``) or undefined truth are skipped.
    """
    fn = get_estimator(estimator)
    reference = population_reference(estimator)
    for left_ref, right_ref in combinations:
        left = CorrelationSketch.from_columns(
            [k for k in left_ref.table.categorical(left_ref.pair.key).values],
            left_ref.table.numeric(left_ref.pair.value).values,
            sketch_size,
            aggregate=aggregate,
        )
        right = CorrelationSketch.from_columns(
            [k for k in right_ref.table.categorical(right_ref.pair.key).values],
            right_ref.table.numeric(right_ref.pair.value).values,
            sketch_size,
            aggregate=aggregate,
        )
        sample = join_sketches(left, right).drop_nan()
        if sample.size < min_sample:
            continue
        estimate = fn(sample.x, sample.y)

        join = join_tables(
            left_ref.table, left_ref.pair, right_ref.table, right_ref.pair,
            aggregate=aggregate,
        )
        truth = true_correlation(join, reference)
        record = AccuracyRecord(
            pair_id=f"{left_ref.pair_id}|{right_ref.pair_id}",
            estimate=estimate,
            truth=truth,
            sample_size=sample.size,
            join_size=join.drop_nan().size,
        )
        if record.is_valid():
            yield record


def evaluate_sbn_pairs(
    pairs: Iterable[SBNPair],
    *,
    sketch_size: int,
    estimator: str = "pearson",
    min_sample: int = 3,
) -> Iterator[AccuracyRecord]:
    """Accuracy protocol over SBN table pairs (keys are never repeated)."""
    fn = get_estimator(estimator)
    reference = population_reference(estimator)
    for i, pair in enumerate(pairs):
        x_pair = pair.table_x.column_pairs()[0]
        y_pair = pair.table_y.column_pairs()[0]
        left = CorrelationSketch.from_columns(
            pair.table_x.categorical(x_pair.key).values,
            pair.table_x.numeric(x_pair.value).values,
            sketch_size,
        )
        right = CorrelationSketch.from_columns(
            pair.table_y.categorical(y_pair.key).values,
            pair.table_y.numeric(y_pair.value).values,
            sketch_size,
        )
        sample = join_sketches(left, right).drop_nan()
        if sample.size < min_sample:
            continue
        estimate = fn(sample.x, sample.y)
        join = join_tables(pair.table_x, x_pair, pair.table_y, y_pair)
        truth = true_correlation(join, reference)
        record = AccuracyRecord(
            pair_id=f"sbn_{i}",
            estimate=estimate,
            truth=truth,
            sample_size=sample.size,
            join_size=join.drop_nan().size,
        )
        if record.is_valid():
            yield record


@dataclass(frozen=True)
class AccuracySummary:
    """Aggregate statistics of an accuracy sweep (one Figure 3 panel)."""

    count: int
    rmse: float
    mean_abs_error: float
    max_abs_error: float
    overestimates_at_zero: int

    @classmethod
    def from_records(
        cls, records: list[AccuracyRecord], *, zero_band: float = 0.1
    ) -> "AccuracySummary":
        """Summarize records; also counts the Figure 3 'vertical line'
        artifact (|truth| < ``zero_band`` but |estimate| > 0.5)."""
        valid = [r for r in records if r.is_valid()]
        if not valid:
            return cls(0, math.nan, math.nan, math.nan, 0)
        errors = [r.error for r in valid]
        sq = sum(e * e for e in errors) / len(errors)
        overs = sum(
            1
            for r in valid
            if abs(r.truth) < zero_band and abs(r.estimate) > 0.5
        )
        return cls(
            count=len(valid),
            rmse=math.sqrt(sq),
            mean_abs_error=sum(abs(e) for e in errors) / len(errors),
            max_abs_error=max(abs(e) for e in errors),
            overestimates_at_zero=overs,
        )
