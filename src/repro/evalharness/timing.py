"""Running-time measurement harness (Table 2 and Section 5.5).

Table 2 compares, over many table pairs, the wall time of

* full-data join + Pearson + Spearman computation, against
* sketch join + the same estimators on the reconstructed sample,

reporting mean, standard deviation and tail percentiles. The point is the
*shape*: sketch times are orders of magnitude smaller and nearly constant
(fixed sketch size), while full-data times have heavy tails driven by
table sizes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np


@dataclass
class TimingSample:
    """Wall times (seconds) for one table-pair measurement."""

    full_join: float
    full_pearson: float
    full_spearman: float
    sketch_join: float
    sketch_pearson: float
    sketch_spearman: float


@dataclass
class TimingTable:
    """Percentile summary of a timing sweep — the rows of Table 2."""

    samples: list[TimingSample] = field(default_factory=list)

    #: The percentile rows the paper reports.
    PERCENTILES = (75.0, 90.0, 99.0, 99.9)

    def add(self, sample: TimingSample) -> None:
        self.samples.append(sample)

    def column(self, name: str) -> np.ndarray:
        return np.asarray([getattr(s, name) for s in self.samples])

    def summarize(self) -> dict[str, dict[str, float]]:
        """Return ``{row: {column: milliseconds}}`` for the paper's rows."""
        columns = (
            "full_join",
            "full_spearman",
            "full_pearson",
            "sketch_join",
            "sketch_pearson",
            "sketch_spearman",
        )
        out: dict[str, dict[str, float]] = {}
        if not self.samples:
            return out
        data = {c: self.column(c) * 1000.0 for c in columns}  # to ms
        out["mean"] = {c: float(v.mean()) for c, v in data.items()}
        out["std. dev."] = {
            c: float(v.std(ddof=1)) if len(v) > 1 else math.nan
            for c, v in data.items()
        }
        for p in self.PERCENTILES:
            out[f"{p:g}%"] = {
                c: float(np.percentile(v, p)) for c, v in data.items()
            }
        return out

    def format(self) -> str:
        """Render the summary in the layout of the paper's Table 2."""
        summary = self.summarize()
        if not summary:
            return "(no samples)"
        headers = (
            ("full_join", "join"),
            ("full_spearman", "r_s"),
            ("full_pearson", "r_p"),
            ("sketch_join", "join"),
            ("sketch_pearson", "r_p"),
            ("sketch_spearman", "r_s"),
        )
        lines = [
            "            |           Full data            |             Sketch",
            "percentile  " + "".join(h[1].rjust(11) for h in headers),
        ]
        for row, values in summary.items():
            line = row.ljust(12)
            for key, _label in headers:
                line += f"{values[key]:.3f}".rjust(11)
            lines.append(line)
        return "\n".join(lines)


def timed(fn: Callable[[], object]) -> float:
    """Wall-time one call of ``fn`` in seconds."""
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@dataclass
class LatencyReport:
    """Query-latency distribution (Section 5.5's interactive-use claim)."""

    latencies_seconds: list[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.latencies_seconds.append(seconds)

    def fraction_under(self, threshold_ms: float) -> float:
        """Fraction of queries completing under ``threshold_ms``."""
        if not self.latencies_seconds:
            return math.nan
        hits = sum(
            1 for s in self.latencies_seconds if s * 1000.0 < threshold_ms
        )
        return hits / len(self.latencies_seconds)

    def percentile_ms(self, p: float) -> float:
        if not self.latencies_seconds:
            return math.nan
        return float(
            np.percentile(np.asarray(self.latencies_seconds) * 1000.0, p)
        )

    def format(self, thresholds_ms: Sequence[float] = (100.0, 200.0)) -> str:
        lines = [f"queries: {len(self.latencies_seconds)}"]
        for t in thresholds_ms:
            lines.append(
                f"under {t:g} ms: {self.fraction_under(t) * 100.0:.1f}%"
            )
        for p in (50.0, 90.0, 99.0):
            lines.append(f"p{p:g}: {self.percentile_ms(p):.2f} ms")
        return "\n".join(lines)
