"""Ranking-quality evaluation (Table 1 and Figure 5).

The protocol of Section 5.4: for each query column pair in the collection,
retrieve all other joinable column pairs, rank them with each scoring
function, and measure MAP (binary relevance via |r| thresholds) and
nDCG@k (graded relevance = |r|) against ground truth computed on the
complete data.

The expensive part — the per-(query, candidate) sketch statistics and
full-join ground truth — is computed once per query and shared by all
scoring functions, exactly as the paper compares rankers on the same
retrieved lists.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.joined_sample import join_sketches
from repro.core.sketch import CorrelationSketch
from repro.data.workloads import PairRef
from repro.index.catalog import SketchCatalog
from repro.index.engine import _containment_estimate
from repro.ranking.metrics import average_precision, ndcg_at
from repro.ranking.ranker import rank_candidates, relevance_flags, relevance_gains
from repro.ranking.scoring import CandidateScores, candidate_scores
from repro.table.join import jaccard_containment, join_tables, true_correlation
from repro.correlation.pearson import pearson


@dataclass
class QueryEvaluation:
    """Per-query candidate statistics shared across scoring functions."""

    query_id: str
    candidate_ids: list[str]
    stats: list[CandidateScores]
    truths: list[float]


@dataclass
class RankingEvalReport:
    """Aggregated ranking metrics per scorer (the four Table 1 panels).

    ``per_query`` holds the raw per-query metric values per scorer, from
    which Figure 5's histograms are drawn.
    """

    map_75: dict[str, float] = field(default_factory=dict)
    map_50: dict[str, float] = field(default_factory=dict)
    ndcg_5: dict[str, float] = field(default_factory=dict)
    ndcg_10: dict[str, float] = field(default_factory=dict)
    per_query: dict[str, dict[str, list[float]]] = field(default_factory=dict)
    queries_evaluated: int = 0

    def relative_improvement(self, table: dict[str, float], baseline: str = "jc") -> dict[str, float]:
        """Per-scorer relative improvement over ``baseline`` (Table 1's %)."""
        base = table.get(baseline)
        if base is None or base == 0:
            return {}
        return {name: (score - base) / base for name, score in table.items()}


def build_catalog(
    refs: list[PairRef], sketch_size: int, *, aggregate: str = "mean"
) -> tuple[SketchCatalog, dict[str, PairRef]]:
    """Sketch every column pair and index it; returns catalog + id map."""
    catalog = SketchCatalog(sketch_size=sketch_size, aggregate=aggregate)
    by_id: dict[str, PairRef] = {}
    for ref in refs:
        sid = ref.pair_id
        if sid in catalog:
            continue
        catalog.add_column_pair(ref.table, ref.pair, sketch_id=sid)
        by_id[sid] = ref
    return catalog, by_id


def evaluate_query(
    query_ref: PairRef,
    query_sketch: CorrelationSketch,
    catalog: SketchCatalog,
    by_id: dict[str, PairRef],
    *,
    aggregate: str = "mean",
    retrieval_depth: int = 100,
    rng: np.random.Generator | None = None,
) -> QueryEvaluation:
    """Retrieve and fully evaluate all joinable candidates for one query.

    Candidate statistics come from sketches; ground-truth correlation and
    exact containment come from complete-data joins.
    """
    if rng is None:
        rng = np.random.default_rng(13)
    hits = catalog.index.top_overlap(
        query_sketch.key_hashes(), retrieval_depth, exclude=query_ref.pair_id
    )
    query_keys = list(query_ref.table.categorical(query_ref.pair.key).values)

    ids: list[str] = []
    stats: list[CandidateScores] = []
    truths: list[float] = []
    for sid, overlap in hits:
        cand_ref = by_id[sid]
        # Never rank another column of the very same table: trivially
        # joinable and not a discovery.
        if cand_ref.table.name == query_ref.table.name:
            continue
        candidate = catalog.get(sid)
        sample = join_sketches(query_sketch, candidate).drop_nan()
        containment_est = _containment_estimate(query_sketch, candidate, overlap)
        containment_true = jaccard_containment(
            query_keys, list(cand_ref.table.categorical(cand_ref.pair.key).values)
        )
        stat = candidate_scores(
            sample,
            containment_est=containment_est,
            containment_true=containment_true,
            rng=rng,
        )
        join = join_tables(
            query_ref.table, query_ref.pair, cand_ref.table, cand_ref.pair,
            aggregate=aggregate,
        )
        truth = true_correlation(join, pearson)
        ids.append(sid)
        stats.append(stat)
        truths.append(truth)
    return QueryEvaluation(
        query_id=query_ref.pair_id, candidate_ids=ids, stats=stats, truths=truths
    )


def evaluate_ranking(
    refs: list[PairRef],
    *,
    sketch_size: int = 256,
    scorers: tuple[str, ...] = ("rp", "rp_sez", "rb_cib", "rp_cih", "jc", "jc_est", "random"),
    max_queries: int | None = None,
    min_candidates: int = 3,
    retrieval_depth: int = 100,
    aggregate: str = "mean",
    seed: int = 0,
) -> RankingEvalReport:
    """Run the full Table 1 / Figure 5 protocol over a collection.

    Args:
        refs: all column pairs in the collection (each also acts as a
            query, as in the paper).
        sketch_size: bottom-``n`` size (paper: 256 for ranking quality).
        scorers: scoring functions to compare.
        max_queries: cap on the number of query pairs (None = all).
        min_candidates: skip queries retrieving fewer joinable candidates.
        retrieval_depth: overlap-retrieval depth per query.
        aggregate: aggregate function for repeated keys.
        seed: seed for bootstrap/random-scorer randomness.
    """
    catalog, by_id = build_catalog(refs, sketch_size, aggregate=aggregate)
    rng = np.random.default_rng(seed)

    report = RankingEvalReport()
    report.per_query = {s: {"map75": [], "map50": [], "ndcg5": [], "ndcg10": []} for s in scorers}

    queries = refs if max_queries is None else refs[:max_queries]
    for query_ref in queries:
        query_sketch = catalog.get(query_ref.pair_id)
        evaluation = evaluate_query(
            query_ref, query_sketch, catalog, by_id,
            aggregate=aggregate, retrieval_depth=retrieval_depth, rng=rng,
        )
        if len(evaluation.candidate_ids) < min_candidates:
            continue
        # A query teaches nothing if no candidate is even weakly relevant.
        if not any(
            (not math.isnan(t)) and abs(t) > 0.5 for t in evaluation.truths
        ):
            continue
        report.queries_evaluated += 1
        for scorer in scorers:
            ranked = rank_candidates(
                evaluation.candidate_ids,
                evaluation.stats,
                scorer,
                true_correlations=evaluation.truths,
                rng=rng,
            )
            flags75 = relevance_flags(ranked, 0.75)
            flags50 = relevance_flags(ranked, 0.50)
            gains = relevance_gains(ranked)
            pq = report.per_query[scorer]
            if any(flags75):
                pq["map75"].append(average_precision(flags75))
            if any(flags50):
                pq["map50"].append(average_precision(flags50))
            pq["ndcg5"].append(ndcg_at(gains, 5))
            pq["ndcg10"].append(ndcg_at(gains, 10))

    def _mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else math.nan

    for scorer in scorers:
        pq = report.per_query[scorer]
        report.map_75[scorer] = _mean(pq["map75"])
        report.map_50[scorer] = _mean(pq["map50"])
        report.ndcg_5[scorer] = _mean(pq["ndcg5"])
        report.ndcg_10[scorer] = _mean(pq["ndcg10"])
    return report


def score_histogram(
    values: list[float], *, bins: int = 10
) -> list[tuple[float, float, int]]:
    """Bucket metric values into [0,1] slices of width 1/bins (Figure 5)."""
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    counts = [0] * bins
    width = 1.0 / bins
    for v in values:
        if math.isnan(v):
            continue
        idx = min(bins - 1, int(v / width))
        counts[idx] += 1
    return [(i * width, (i + 1) * width, c) for i, c in enumerate(counts)]
