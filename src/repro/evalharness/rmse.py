"""RMSE-by-intersection-size aggregation (Figure 4).

Figure 4 plots, per correlation estimator and per maximum sketch size, the
RMSE of the estimates as a function of the sketch-intersection (sample)
size. This module groups :class:`AccuracyRecord` streams into log-spaced
sample-size buckets and reports per-bucket RMSE, reproducing the figure's
series as printable rows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.evalharness.accuracy import AccuracyRecord

#: Default sample-size bucket edges (log-ish spacing like the figure's axis).
DEFAULT_BUCKETS = (3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610, 1024)


@dataclass(frozen=True)
class RMSEBucket:
    """RMSE of estimates whose sample size fell in [low, high)."""

    low: int
    high: int
    count: int
    rmse: float

    @property
    def label(self) -> str:
        return f"[{self.low},{self.high})"


def rmse_by_sample_size(
    records: list[AccuracyRecord],
    buckets: tuple[int, ...] = DEFAULT_BUCKETS,
) -> list[RMSEBucket]:
    """Group records into sample-size buckets and compute per-bucket RMSE.

    Empty buckets are omitted (they carry no signal and would plot as
    gaps, exactly as in the paper's figure).
    """
    edges = list(buckets) + [max(buckets[-1] + 1, max((r.sample_size for r in records), default=0) + 1)]
    out: list[RMSEBucket] = []
    for low, high in zip(edges, edges[1:]):
        errs = [
            r.error
            for r in records
            if low <= r.sample_size < high and r.is_valid()
        ]
        if not errs:
            continue
        rmse = math.sqrt(sum(e * e for e in errs) / len(errs))
        out.append(RMSEBucket(low=low, high=high, count=len(errs), rmse=rmse))
    return out


def overall_rmse(records: list[AccuracyRecord]) -> float:
    """RMSE over all valid records (NaN when empty)."""
    errs = [r.error for r in records if r.is_valid()]
    if not errs:
        return math.nan
    return math.sqrt(sum(e * e for e in errs) / len(errs))


def format_rmse_table(
    series: dict[str, list[RMSEBucket]], *, title: str = ""
) -> str:
    """Render named RMSE series as an aligned text table.

    Rows are bucket labels, columns are series (estimators); the format
    matches what the benchmark harness prints for Figure 4.
    """
    labels: list[str] = []
    for buckets in series.values():
        for b in buckets:
            if b.label not in labels:
                labels.append(b.label)
    labels.sort(key=lambda s: int(s[1:].split(",")[0]))

    names = list(series)
    col_w = max(12, max((len(n) for n in names), default=12) + 2)
    lines = []
    if title:
        lines.append(title)
    header = "sample_size".ljust(14) + "".join(n.rjust(col_w) for n in names)
    lines.append(header)
    by_label = {
        name: {b.label: b for b in buckets} for name, buckets in series.items()
    }
    for label in labels:
        row = label.ljust(14)
        for name in names:
            bucket = by_label[name].get(label)
            row += (f"{bucket.rmse:.4f}" if bucket else "-").rjust(col_w)
        lines.append(row)
    return "\n".join(lines)
