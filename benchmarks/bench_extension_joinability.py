"""Extension — the KMV statistics a correlation sketch keeps for free.

Section 3.3: the sketch "retains all information contained in a KMV
sketch", so besides correlations it estimates distinct counts per key
column, the containment of one key set in another, and the size of the
joined table. This benchmark validates those estimates against exact
values across the NYC-like corpus — the numbers a data-discovery system
would surface next to each ranked result.
"""

from __future__ import annotations

import numpy as np

from conftest import write_result
from repro.core.estimation import estimate
from repro.data.workloads import sample_combinations
from repro.evalharness.ranking_eval import build_catalog
from repro.table.join import jaccard_containment, join_tables

N_COMBOS = 120


def _run(nyc_refs) -> dict:
    catalog, _by_id = build_catalog(nyc_refs, sketch_size=256)
    combos = sample_combinations(nyc_refs, N_COMBOS, seed=21)

    card_errors, join_errors, containment_errors = [], [], []
    for left_ref, right_ref in combos:
        left = catalog.get(left_ref.pair_id)
        right = catalog.get(right_ref.pair_id)

        true_left_keys = {
            k
            for k in left_ref.table.categorical(left_ref.pair.key).values
            if k is not None
        }
        card_est = left.distinct_keys()
        card_errors.append(abs(card_est - len(true_left_keys)) / max(1, len(true_left_keys)))

        result = estimate(left, right)
        join = join_tables(left_ref.table, left_ref.pair, right_ref.table, right_ref.pair)
        true_join = join.size
        if true_join > 0:
            join_errors.append(abs(result.join_size_est - true_join) / true_join)

        true_containment = jaccard_containment(
            list(left_ref.table.categorical(left_ref.pair.key).values),
            list(right_ref.table.categorical(right_ref.pair.key).values),
        )
        containment_errors.append(abs(result.containment_est - true_containment))

    return {
        "pairs": len(combos),
        "cardinality_mean_rel_err": float(np.mean(card_errors)),
        "join_size_mean_rel_err": float(np.mean(join_errors)),
        "join_size_p90_rel_err": float(np.percentile(join_errors, 90)),
        "containment_mean_abs_err": float(np.mean(containment_errors)),
        "containment_p90_abs_err": float(np.percentile(containment_errors, 90)),
    }


def test_extension_joinability_statistics(benchmark, nyc_refs):
    stats = benchmark.pedantic(lambda: _run(nyc_refs), rounds=1, iterations=1)
    lines = [f"{k:<28}: {v:.4f}" if isinstance(v, float) else f"{k:<28}: {v}"
             for k, v in stats.items()]
    write_result("extension_joinability.txt", "\n".join(lines))

    assert stats["pairs"] >= 60
    # Cardinality: KMV unbiased estimator, k = 256 -> ~6% std error.
    assert stats["cardinality_mean_rel_err"] < 0.15
    # Join size (Eq. 1 applied to the sketch pair).
    assert stats["join_size_mean_rel_err"] < 0.35
    # Containment: the jc-hat the ranking baselines use.
    assert stats["containment_mean_abs_err"] < 0.15
