"""Ablation — candidate retrieval: exact ScanCount vs MinHash-LSH.

Section 4 lists the set-overlap search methods that can serve the
candidate-retrieval phase. This ablation compares the two implemented
backends on the NYC-like corpus:

* **exact inverted index** (ScanCount): scans every posting list of the
  query's key hashes — exact overlaps, cost grows with postings;
* **MinHash-LSH** (``retrieval_backend="lsh"``): probes ``b`` buckets —
  cost independent of posting lengths, but recall < 1 for low-overlap
  candidates.

The LSH index is the catalog-managed one (vectorized batch build) and —
matching the serving deployment — is round-tripped through a binary
``.npz`` snapshot before being probed, so the reported numbers cover the
persisted index a cold-started server would use. Reported per query:
retrieval latency, recall@10 and recall@25 of the LSH hits against the
exact top-k by overlap, and recall restricted to ≥50%-overlap
candidates (the joinable ones that matter). Results land in
``benchmarks/results/ablation_retrieval.txt``.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import write_result
from repro.evalharness.ranking_eval import build_catalog
from repro.index.catalog import SketchCatalog

TOP_K = 25
RECALL_KS = (10, 25)
BANDS = 32
ROWS = 2


def _snapshot_round_trip(catalog, tmp_dir) -> SketchCatalog:
    """Persist catalog + LSH index to npz and reload (the serving path)."""
    catalog.lsh_index(bands=BANDS, rows=ROWS)
    path = tmp_dir / "ablation_catalog.npz"
    catalog.save(path)
    loaded = SketchCatalog.load(path)
    assert loaded.lsh_params == (BANDS, ROWS)  # came back warm
    return loaded

def _run(nyc_refs, tmp_dir) -> dict:
    catalog, _by_id = build_catalog(nyc_refs, sketch_size=256)
    serving = _snapshot_round_trip(catalog, tmp_dir)
    lsh = serving.lsh_index(bands=BANDS, rows=ROWS)
    frozen = serving.frozen_postings()

    rng = np.random.default_rng(1)
    query_ids = list(serving)
    rng.shuffle(query_ids)
    query_ids = query_ids[:60]

    exact_times, lsh_times = [], []
    recalls = {k: [] for k in RECALL_KS}
    for qid in query_ids:
        hashes = serving.sketch_columns(qid).key_hashes

        t0 = time.perf_counter()
        exact = frozen.top_overlap(hashes, TOP_K, exclude=qid)
        t1 = time.perf_counter()
        approx = lsh.top_candidates(hashes, TOP_K, exclude=qid)
        t2 = time.perf_counter()

        exact_times.append(t1 - t0)
        lsh_times.append(t2 - t1)
        got = {sid for sid, _ in approx}
        for k in RECALL_KS:
            exact_set = {sid for sid, _ in exact[:k]}
            if exact_set:
                recalls[k].append(len(exact_set & got) / len(exact_set))

    return {
        "queries": len(query_ids),
        "exact_mean_ms": float(np.mean(exact_times)) * 1000,
        "lsh_mean_ms": float(np.mean(lsh_times)) * 1000,
        "recall": {
            k: {
                "mean": float(np.mean(v)),
                "min": float(np.min(v)),
            }
            for k, v in recalls.items()
        },
        "high_overlap_recall": None,  # filled below
    }


def _high_overlap_recall(nyc_refs) -> float:
    """Recall restricted to candidates sharing >= 50% of the query's
    retained keys — the joinable candidates that actually matter."""
    catalog, _by_id = build_catalog(nyc_refs, sketch_size=256)
    lsh = catalog.lsh_index(bands=BANDS, rows=ROWS)

    hits = 0
    total = 0
    for qid in list(catalog)[:60]:
        hashes = catalog.get(qid).key_hashes()
        if not hashes:
            continue
        exact = catalog.index.top_overlap(hashes, 100, exclude=qid)
        strong = {sid for sid, ov in exact if ov >= 0.5 * len(hashes)}
        if not strong:
            continue
        got = set(lsh.candidates(hashes, exclude=qid))
        hits += len(strong & got)
        total += len(strong)
    return hits / total if total else float("nan")


def test_ablation_retrieval_methods(benchmark, nyc_refs, tmp_path_factory):
    tmp_dir = tmp_path_factory.mktemp("ablation_retrieval")
    stats = benchmark.pedantic(
        lambda: {
            **_run(nyc_refs, tmp_dir),
            "high_overlap_recall": _high_overlap_recall(nyc_refs),
        },
        rounds=1,
        iterations=1,
    )
    lines = [
        f"queries              : {stats['queries']}",
        f"banding              : {BANDS} bands x {ROWS} rows "
        "(catalog-managed, npz snapshot round trip)",
        f"exact retrieval mean : {stats['exact_mean_ms']:.3f} ms",
        f"LSH retrieval mean   : {stats['lsh_mean_ms']:.3f} ms",
    ]
    for k in RECALL_KS:
        r = stats["recall"][k]
        lines.append(
            f"LSH recall@{k:<2} (mean)  : {r['mean']:.3f}  (min {r['min']:.3f})"
        )
    lines.append(
        f"recall on >=50%-overlap candidates: {stats['high_overlap_recall']:.3f}"
    )
    write_result("ablation_retrieval.txt", "\n".join(lines))

    # High-overlap candidates — the ones join-correlation queries need —
    # must be found nearly always.
    assert stats["high_overlap_recall"] > 0.9
    # Overall recall includes marginal-overlap candidates and may dip,
    # but must stay useful.
    assert stats["recall"][10]["mean"] > 0.5
    assert stats["recall"][25]["mean"] > 0.5
