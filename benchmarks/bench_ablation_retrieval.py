"""Ablation — candidate retrieval: exact ScanCount vs MinHash-LSH.

Section 4 lists the set-overlap search methods that can serve the
candidate-retrieval phase. This ablation compares the two implemented
ones on the NYC-like corpus:

* **exact inverted index** (ScanCount): scans every posting list of the
  query's key hashes — exact overlaps, cost grows with postings;
* **MinHash-LSH**: probes ``b`` buckets — cost independent of posting
  lengths, but recall < 1 for low-overlap candidates.

Reported per query: retrieval latency and recall@25 of the LSH hits
against the exact top-25 by overlap.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import write_result
from repro.evalharness.ranking_eval import build_catalog
from repro.index.lsh import LshIndex

TOP_K = 25


def _run(nyc_refs) -> dict:
    catalog, _by_id = build_catalog(nyc_refs, sketch_size=256)

    lsh = LshIndex(bands=32, rows=2, bits=catalog.hasher.bits)
    for sid in catalog:
        lsh.add(sid, catalog.get(sid).key_hashes())

    rng = np.random.default_rng(1)
    query_ids = list(catalog)
    rng.shuffle(query_ids)
    query_ids = query_ids[:60]

    exact_times, lsh_times, recalls = [], [], []
    for qid in query_ids:
        hashes = catalog.get(qid).key_hashes()

        t0 = time.perf_counter()
        exact = catalog.index.top_overlap(hashes, TOP_K, exclude=qid)
        t1 = time.perf_counter()
        approx = lsh.top_candidates(hashes, TOP_K, exclude=qid)
        t2 = time.perf_counter()

        exact_times.append(t1 - t0)
        lsh_times.append(t2 - t1)
        if exact:
            exact_set = {sid for sid, _ in exact}
            got = {sid for sid, _ in approx}
            recalls.append(len(exact_set & got) / len(exact_set))

    return {
        "queries": len(query_ids),
        "exact_mean_ms": float(np.mean(exact_times)) * 1000,
        "lsh_mean_ms": float(np.mean(lsh_times)) * 1000,
        "mean_recall": float(np.mean(recalls)),
        "min_recall": float(np.min(recalls)),
        "high_overlap_recall": None,  # filled below
    }


def _high_overlap_recall(nyc_refs) -> float:
    """Recall restricted to candidates sharing >= 50% of the query's
    retained keys — the joinable candidates that actually matter."""
    catalog, _by_id = build_catalog(nyc_refs, sketch_size=256)
    lsh = LshIndex(bands=32, rows=2, bits=catalog.hasher.bits)
    for sid in catalog:
        lsh.add(sid, catalog.get(sid).key_hashes())

    hits = 0
    total = 0
    for qid in list(catalog)[:60]:
        hashes = catalog.get(qid).key_hashes()
        if not hashes:
            continue
        exact = catalog.index.top_overlap(hashes, 100, exclude=qid)
        strong = {sid for sid, ov in exact if ov >= 0.5 * len(hashes)}
        if not strong:
            continue
        got = set(lsh.candidates(hashes, exclude=qid))
        hits += len(strong & got)
        total += len(strong)
    return hits / total if total else float("nan")


def test_ablation_retrieval_methods(benchmark, nyc_refs):
    stats = benchmark.pedantic(
        lambda: {**_run(nyc_refs), "high_overlap_recall": _high_overlap_recall(nyc_refs)},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"queries              : {stats['queries']}",
        f"exact retrieval mean : {stats['exact_mean_ms']:.3f} ms",
        f"LSH retrieval mean   : {stats['lsh_mean_ms']:.3f} ms",
        f"LSH recall@{TOP_K} (mean) : {stats['mean_recall']:.3f}",
        f"LSH recall@{TOP_K} (min)  : {stats['min_recall']:.3f}",
        f"recall on >=50%-overlap candidates: {stats['high_overlap_recall']:.3f}",
    ]
    write_result("ablation_retrieval.txt", "\n".join(lines))

    # High-overlap candidates — the ones join-correlation queries need —
    # must be found nearly always.
    assert stats["high_overlap_recall"] > 0.9
    # Overall recall@25 includes marginal-overlap candidates and may dip,
    # but must stay useful.
    assert stats["mean_recall"] > 0.5
