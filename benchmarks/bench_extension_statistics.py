"""Extension — estimating statistics beyond correlation (Section 3.3).

The paper claims the sketches "can handle any statistic that can be
estimated from random samples (e.g., entropy and mutual information)".
This benchmark exercises the claim end to end:

1. **accuracy** — sketch-sample MI tracks full-data MI across a sweep of
   dependence strengths;
2. **discovery power** — on a planted *quadratic* relationship (y = x²),
   Pearson-based ranking misses the candidate entirely while MI-based
   re-ranking surfaces it first — the concrete payoff of flexibility.
"""

from __future__ import annotations

import math

import numpy as np

from conftest import write_result
from repro.core.estimation import estimate_statistics
from repro.core.sketch import CorrelationSketch
from repro.core.statistics import sample_mutual_information

SKETCH_SIZE = 1024
N_ROWS = 30_000


def _mi_accuracy_sweep() -> list[dict]:
    rng = np.random.default_rng(10)
    keys = [f"k{i}" for i in range(N_ROWS)]
    rows = []
    for rho in (0.0, 0.3, 0.6, 0.9):
        x = rng.standard_normal(N_ROWS)
        y = rho * x + math.sqrt(1 - rho**2) * rng.standard_normal(N_ROWS)
        full_mi = sample_mutual_information(x, y, bins=8)
        left = CorrelationSketch.from_columns(keys, x, SKETCH_SIZE)
        right = CorrelationSketch.from_columns(keys, y, SKETCH_SIZE)
        stats = estimate_statistics(left, right, bins=8)
        rows.append({"rho": rho, "full_mi": full_mi, "sketch_mi": stats.mutual_information})
    return rows


def _nonlinear_discovery() -> dict:
    rng = np.random.default_rng(11)
    keys = [f"k{i}" for i in range(N_ROWS)]
    q = rng.standard_normal(N_ROWS)

    candidates = {
        "quadratic": q * q + 0.1 * rng.standard_normal(N_ROWS),
        "weak_linear": 0.3 * q + 0.95 * rng.standard_normal(N_ROWS),
        "noise": rng.standard_normal(N_ROWS),
    }
    query = CorrelationSketch.from_columns(keys, q, SKETCH_SIZE)
    scores = {}
    for name, values in candidates.items():
        sketch = CorrelationSketch.from_columns(keys, values, SKETCH_SIZE)
        stats = estimate_statistics(query, sketch, bins=8)
        scores[name] = {
            "pearson": abs(stats.pearson),
            "mi": stats.mutual_information,
        }
    return scores


def test_extension_mi_estimation(benchmark):
    mi_rows, discovery = benchmark.pedantic(
        lambda: (_mi_accuracy_sweep(), _nonlinear_discovery()), rounds=1, iterations=1
    )
    lines = [f"{'rho':>6}{'full MI':>10}{'sketch MI':>11}"]
    for row in mi_rows:
        lines.append(f"{row['rho']:>6.1f}{row['full_mi']:>10.4f}{row['sketch_mi']:>11.4f}")
    lines.append("")
    lines.append(f"{'candidate':<14}{'|pearson|':>10}{'MI':>8}")
    for name, s in discovery.items():
        lines.append(f"{name:<14}{s['pearson']:>10.3f}{s['mi']:>8.3f}")
    write_result("extension_statistics.txt", "\n".join(lines))

    # MI must increase with dependence strength, both full and sketched.
    sketch_mis = [r["sketch_mi"] for r in mi_rows]
    assert sketch_mis == sorted(sketch_mis)
    # And track the full-data value within a plug-in bias band.
    for row in mi_rows[1:]:
        assert 0.3 * row["full_mi"] < row["sketch_mi"] < 3.0 * row["full_mi"] + 0.1

    # Discovery: Pearson ranks the quadratic candidate below weak-linear;
    # MI puts it first by a wide margin.
    assert discovery["quadratic"]["pearson"] < discovery["weak_linear"]["pearson"] + 0.1
    assert discovery["quadratic"]["mi"] > 2 * discovery["weak_linear"]["mi"]
    assert discovery["quadratic"]["mi"] > 2 * discovery["noise"]["mi"]
