"""Multi-query batch serving: ``query_batch`` vs looped single queries.

The "heavy traffic" serving scenario: many concurrent top-k queries
against one stable catalog. ``JoinCorrelationEngine.query_batch``
amortizes the pipeline across the batch — one stacked CSR retrieval
probe over the concatenated query hashes, one shared scoring tensor
pass over every candidate join sample — with results bit-identical to a
plain loop (the parity suite pins this; the benchmark re-asserts it on
its own workload).

``test_batch_query_speedup`` measures both at the acceptance scale
(≥1024 catalog sketches) and records the throughput ratio plus the
per-phase split; results land in
``benchmarks/results/batch_query.txt``. ``--quick`` shrinks to a
CI-sized smoke (no speedup assertion).
"""

from __future__ import annotations

import time

import numpy as np

from conftest import write_result
from repro.core.sketch import CorrelationSketch
from repro.index.catalog import SketchCatalog
from repro.index.engine import JoinCorrelationEngine

#: Acceptance scale: the batch speedup must hold at >=1024 sketches.
#: Tables are modest (400 rows, the "many small open-data tables"
#: regime) — that is where per-query overhead is the largest fraction
#: of the pipeline and batch amortization pays most; bigger sketches
#: shift time into per-candidate join math both paths share.
CATALOG_SKETCHES = 1024
QUICK_SKETCHES = 128
SKETCH_SIZE = 256
ROWS_PER_SKETCH = 400
KEY_UNIVERSE = 6_000
RETRIEVAL_DEPTH = 100

BATCH_QUERIES = 32
QUICK_QUERIES = 4
#: Best-of-N timing per side filters scheduler noise out of the ratio.
REPEATS = 5


def _build_world(n_sketches: int, n_queries: int, seed: int = 2):
    """One shared key universe so every query retrieves a full candidate
    page (the serving regime batch amortization targets)."""
    rng = np.random.default_rng(seed)
    catalog = SketchCatalog(sketch_size=SKETCH_SIZE)
    batch = []
    for i in range(n_sketches):
        keys = rng.choice(KEY_UNIVERSE, ROWS_PER_SKETCH, replace=False)
        sid = f"pair{i:05d}"
        batch.append(
            (
                sid,
                CorrelationSketch.from_columns(
                    keys,
                    rng.standard_normal(ROWS_PER_SKETCH),
                    SKETCH_SIZE,
                    hasher=catalog.hasher,
                    name=sid,
                ),
            )
        )
    catalog.add_sketches(batch)
    queries = []
    for q in range(n_queries):
        keys = rng.choice(KEY_UNIVERSE, ROWS_PER_SKETCH, replace=False)
        queries.append(
            CorrelationSketch.from_columns(
                keys,
                rng.standard_normal(ROWS_PER_SKETCH),
                SKETCH_SIZE,
                hasher=catalog.hasher,
                name=f"query{q}",
            )
        )
    return catalog, queries


def test_batch_query_speedup(quick):
    n_sketches = QUICK_SKETCHES if quick else CATALOG_SKETCHES
    n_queries = QUICK_QUERIES if quick else BATCH_QUERIES
    repeats = 1 if quick else REPEATS
    catalog, queries = _build_world(n_sketches, n_queries)
    engine = JoinCorrelationEngine(catalog, retrieval_depth=RETRIEVAL_DEPTH)

    # Steady-state serving: the frozen postings and per-sketch columnar
    # views are one-time catalog-load costs shared by both sides —
    # prewarm them (and both code paths) so the ratio compares per-query
    # work, not amortized setup.
    catalog.frozen_postings()
    for sid in catalog:
        catalog.sketch_columns(sid)
    engine.query(queries[0], k=10, scorer="rp_cih")
    engine.query_batch(queries[:2], k=10, scorer="rp_cih")

    looped_best = np.inf
    batched_best = np.inf
    looped_results = batched_results = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        looped_results = [engine.query(q, k=10, scorer="rp_cih") for q in queries]
        looped = time.perf_counter() - t0
        t0 = time.perf_counter()
        batched_results = engine.query_batch(queries, k=10, scorer="rp_cih")
        batched = time.perf_counter() - t0
        looped_best = min(looped_best, looped)
        batched_best = min(batched_best, batched)

    # The speedup is only meaningful if both paths did the same work.
    candidates = 0
    for a, b in zip(looped_results, batched_results):
        assert a.candidates_considered == b.candidates_considered
        assert [(e.candidate_id, e.score) for e in a.ranked] == [
            (e.candidate_id, e.score) for e in b.ranked
        ]
        candidates += a.candidates_considered

    speedup = looped_best / batched_best
    loop_retrieval = sum(r.retrieval_seconds for r in looped_results)
    batch_retrieval = sum(r.retrieval_seconds for r in batched_results)
    lines = [
        f"catalog sketches       : {len(catalog)}",
        f"sketch size            : {SKETCH_SIZE}",
        f"queries per batch      : {len(queries)} "
        f"({candidates} candidates re-ranked; best of {repeats} runs)",
        "(frozen postings + sketch-column views prewarmed: one-time",
        " catalog-load costs, excluded from both sides)",
        f"looped single queries  : {looped_best * 1000:9.2f} ms "
        f"({looped_best * 1000 / len(queries):6.2f} ms/query)",
        f"query_batch            : {batched_best * 1000:9.2f} ms "
        f"({batched_best * 1000 / len(queries):6.2f} ms/query)",
        f"batch throughput gain  : {speedup:9.2f}x",
        f"retrieval, looped      : {loop_retrieval * 1000:9.2f} ms "
        "(one probe per query)",
        f"retrieval, stacked     : {batch_retrieval * 1000:9.2f} ms "
        "(single concatenated CSR probe)",
        "rankings               : bit-identical to the loop (asserted)",
    ]
    if quick:
        lines.append("(quick mode: CI smoke scale, speedup assertion skipped)")
    write_result("batch_query.txt", "\n".join(lines))

    if quick:
        return
    # Acceptance bar: a real throughput gain at >=1024 catalog sketches.
    # The batch amortizes retrieval, membership/union tensor passes and
    # the scoring call; the per-candidate join math itself is shared
    # work, so the end-to-end ratio is modest but must stay above 1.
    assert len(catalog) >= 1024
    assert speedup >= 1.05
