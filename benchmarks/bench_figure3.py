"""Figure 3 — correlation estimation accuracy (estimate vs truth).

Regenerates the four panels of Figure 3 as summary statistics of the
estimate-vs-truth scatter (count, RMSE, mean/max |error|, and the count
of near-zero-truth points that the sketch grossly overestimates — the
"vertical line at x≈0" artifact the paper discusses):

* 3a — SBN (bivariate normal), sketch 256, join samples n ≥ 3;
* 3b — WBF-like collection, n ≥ 3;
* 3c — NYC-like collection, n ≥ 3;
* 3d — NYC-like collection, n ≥ 20 (the filter that tightens the cloud).

Paper-scale: 3000 SBN pairs with up to 500k rows; ~10M column-pair
combinations for NYC. Bench-scale: 120 SBN pairs up to 20k rows, a few
hundred sampled combinations — the qualitative shape is preserved (see
EXPERIMENTS.md for measured-vs-paper).
"""

from __future__ import annotations

import pytest

from conftest import write_result
from repro.data.sbn import generate_sbn_collection
from repro.data.workloads import sample_combinations
from repro.evalharness.accuracy import (
    AccuracySummary,
    evaluate_pair_refs,
    evaluate_sbn_pairs,
)

SKETCH_SIZE = 256


def _summary_text(title: str, summary: AccuracySummary) -> str:
    return (
        f"{title}\n"
        f"  pairs evaluated : {summary.count}\n"
        f"  RMSE            : {summary.rmse:.4f}\n"
        f"  mean |error|    : {summary.mean_abs_error:.4f}\n"
        f"  max |error|     : {summary.max_abs_error:.4f}\n"
        f"  overestimates at truth~0 (|est|>0.5): {summary.overestimates_at_zero}"
    )


@pytest.fixture(scope="module")
def nyc_records(nyc_refs):
    combos = sample_combinations(nyc_refs, 250, seed=1)
    return list(evaluate_pair_refs(combos, sketch_size=SKETCH_SIZE, min_sample=3))


def test_figure3a_sbn(benchmark):
    def run():
        pairs = generate_sbn_collection(
            pairs=120, max_rows=20_000, seed=0, min_rows=64
        )
        return list(evaluate_sbn_pairs(pairs, sketch_size=SKETCH_SIZE, min_sample=3))

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = AccuracySummary.from_records(records)
    write_result("figure3a_sbn.txt", _summary_text("Figure 3a (SBN, n>=3)", summary))
    assert summary.count >= 50
    # Normal data: the cloud hugs the diagonal.
    assert summary.rmse < 0.3


def test_figure3b_wbf(benchmark, wbf_refs):
    def run():
        combos = sample_combinations(wbf_refs, 200, seed=2)
        return list(
            evaluate_pair_refs(combos, sketch_size=SKETCH_SIZE, min_sample=3)
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    summary = AccuracySummary.from_records(records)
    write_result("figure3b_wbf.txt", _summary_text("Figure 3b (WBF-like, n>=3)", summary))
    assert summary.count >= 30
    # Real-world-shaped data: accuracy degrades vs SBN but stays usable.
    assert summary.rmse < 0.6


def test_figure3c_nyc(benchmark, nyc_records):
    records = benchmark.pedantic(lambda: nyc_records, rounds=1, iterations=1)
    summary = AccuracySummary.from_records(records)
    write_result("figure3c_nyc.txt", _summary_text("Figure 3c (NYC-like, n>=3)", summary))
    assert summary.count >= 50
    assert summary.rmse < 0.6


def test_figure3d_nyc_min20(benchmark, nyc_records):
    def run():
        return [r for r in nyc_records if r.sample_size >= 20]

    filtered = benchmark.pedantic(run, rounds=1, iterations=1)
    all_summary = AccuracySummary.from_records(nyc_records)
    flt_summary = AccuracySummary.from_records(filtered)
    write_result(
        "figure3d_nyc_min20.txt",
        _summary_text("Figure 3d (NYC-like, n>=20)", flt_summary)
        + f"\n  (unfiltered RMSE for comparison: {all_summary.rmse:.4f})",
    )
    assert flt_summary.count >= 20
    # The paper's point: filtering tiny join samples tightens the cloud.
    assert flt_summary.rmse < all_summary.rmse
