"""Section 5.5 — end-to-end query-evaluation latency.

Reproduces the paper's query-evaluation experiment: split the collection's
column pairs into a corpus set (indexed, sketch size 1024) and a query
set; evaluate every query through the full engine path — inverted-index
overlap retrieval of the top-100 candidates, sketch joins, correlation
estimation, risk-penalized re-ranking — and report the latency
distribution.

The paper reports 94% of queries under 100 ms and ~98.5% under 200 ms on
their corpus; the expected *shape* here is the same: a large majority of
queries at interactive latency, with a short tail.
"""

from __future__ import annotations

from conftest import write_result
from repro.data.workloads import split_query_workload
from repro.evalharness.ranking_eval import build_catalog
from repro.evalharness.timing import LatencyReport
from repro.index.engine import JoinCorrelationEngine

SKETCH_SIZE = 1024
RETRIEVAL_DEPTH = 100


def _run_queries(nyc_refs) -> tuple[LatencyReport, int]:
    workload = split_query_workload(nyc_refs, query_fraction=0.3, seed=9)
    catalog, _by_id = build_catalog(workload.corpus, SKETCH_SIZE)
    engine = JoinCorrelationEngine(catalog, retrieval_depth=RETRIEVAL_DEPTH)

    from repro.core.sketch import CorrelationSketch

    report = LatencyReport()
    answered = 0
    for query_ref in workload.queries:
        sketch = CorrelationSketch(
            SKETCH_SIZE, hasher=catalog.hasher, name=query_ref.pair_id
        )
        sketch.update_all(query_ref.table.pair_rows(query_ref.pair))
        result = engine.query(sketch, k=10, scorer="rp_cih")
        report.add(result.total_seconds)
        if result.ranked:
            answered += 1
    return report, answered


def test_query_evaluation_latency(benchmark, nyc_refs):
    report, answered = benchmark.pedantic(
        lambda: _run_queries(nyc_refs), rounds=1, iterations=1
    )
    write_result(
        "query_eval_latency.txt",
        report.format(thresholds_ms=(10.0, 50.0, 100.0, 200.0))
        + f"\nqueries with non-empty results: {answered}",
    )
    assert len(report.latencies_seconds) >= 20
    # Interactive-latency claim: the overwhelming majority under 200 ms.
    assert report.fraction_under(200.0) > 0.9
    assert report.fraction_under(100.0) > 0.5
