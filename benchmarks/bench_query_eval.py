"""Section 5.5 — end-to-end query-evaluation latency and executor speedup.

Two benchmarks cover the online path:

* ``test_query_evaluation_latency`` reproduces the paper's
  query-evaluation experiment: split the collection's column pairs into
  a corpus set (indexed, sketch size 1024) and a query set; evaluate
  every query through the full engine path — overlap retrieval of the
  top-100 candidates, sketch joins, correlation estimation,
  risk-penalized re-ranking — and report the latency distribution,
  now broken down into the retrieval and re-rank phases.

  The paper reports 94% of queries under 100 ms and ~98.5% under 200 ms
  on their corpus; the expected *shape* here is the same: a large
  majority of queries at interactive latency, with a short tail.

* ``test_query_executor_speedup`` measures the columnar executor
  against the scalar reference on a ≥2k-sketch catalog (the scale the
  tentpole targets), asserting identical rankings and a ≥5x re-rank
  phase speedup, and records the per-phase split of both executors.

* ``test_bootstrap_rerank_speedup`` measures the ``rb_cib`` scorer — the
  paper's most expensive, most accurate ranking — on the same 2048-sketch
  catalog under both bootstrap contracts: ``rng_mode="compat"`` (one
  599-replicate PM1 run per candidate) vs ``rng_mode="batched"`` (the
  cross-candidate engine: shared draws per stopping round, adaptive
  early stopping, chunked tensor arithmetic), asserting the batched
  engine re-ranks ≥5x faster.

All write their tables into ``benchmarks/results/`` and shrink to a
CI-sized smoke run under ``--quick`` (absolute-performance assertions
are skipped there).
"""

from __future__ import annotations

import numpy as np

from conftest import write_result
from repro.core.sketch import CorrelationSketch
from repro.data.workloads import split_query_workload
from repro.evalharness.ranking_eval import build_catalog
from repro.evalharness.timing import LatencyReport
from repro.index.catalog import SketchCatalog
from repro.index.engine import JoinCorrelationEngine

SKETCH_SIZE = 1024
RETRIEVAL_DEPTH = 100

#: Synthetic catalog scale for the executor comparison (the tentpole's
#: acceptance bar is >=5x re-rank throughput at >=2k sketches).
SPEEDUP_CATALOG_SKETCHES = 2048
SPEEDUP_QUERIES = 5
SPEEDUP_QUICK_SKETCHES = 160
SPEEDUP_QUICK_QUERIES = 2


def _run_queries(nyc_refs, max_queries=None):
    workload = split_query_workload(nyc_refs, query_fraction=0.3, seed=9)
    catalog, _by_id = build_catalog(workload.corpus, SKETCH_SIZE)
    engine = JoinCorrelationEngine(catalog, retrieval_depth=RETRIEVAL_DEPTH)

    total = LatencyReport()
    retrieval = LatencyReport()
    rerank = LatencyReport()
    answered = 0
    queries = workload.queries
    if max_queries is not None:
        queries = queries[:max_queries]
    for query_ref in queries:
        sketch = CorrelationSketch(
            SKETCH_SIZE, hasher=catalog.hasher, name=query_ref.pair_id
        )
        sketch.update_all(query_ref.table.pair_rows(query_ref.pair))
        result = engine.query(sketch, k=10, scorer="rp_cih")
        total.add(result.total_seconds)
        retrieval.add(result.retrieval_seconds)
        rerank.add(result.rerank_seconds)
        if result.ranked:
            answered += 1
    return total, retrieval, rerank, answered


def test_query_evaluation_latency(benchmark, nyc_refs, quick):
    max_queries = 8 if quick else None
    total, retrieval, rerank, answered = benchmark.pedantic(
        lambda: _run_queries(nyc_refs, max_queries=max_queries),
        rounds=1,
        iterations=1,
    )
    phase_split = "\n".join(
        [
            "",
            "-- phase split (columnar executor) --",
            "retrieval:",
            retrieval.format(thresholds_ms=(1.0, 10.0)),
            "re-rank:",
            rerank.format(thresholds_ms=(10.0, 50.0)),
        ]
    )
    write_result(
        "query_eval_latency.txt",
        total.format(thresholds_ms=(10.0, 50.0, 100.0, 200.0))
        + f"\nqueries with non-empty results: {answered}"
        + phase_split,
    )
    if quick:
        return
    assert len(total.latencies_seconds) >= 20
    # Interactive-latency claim: the overwhelming majority under 200 ms.
    assert total.fraction_under(200.0) > 0.9
    assert total.fraction_under(100.0) > 0.5


def _build_speedup_catalog(n_sketches: int, seed: int = 1):
    """A catalog of ``n_sketches`` column-pair sketches over one shared
    key universe, so overlap retrieval always finds a full candidate
    page (the paper's serving regime, not the sparse-join edge case)."""
    rng = np.random.default_rng(seed)
    universe = np.array([f"key{i:06d}" for i in range(12_000)])
    catalog = SketchCatalog(sketch_size=SKETCH_SIZE)
    for i in range(n_sketches):
        m = int(rng.integers(1_200, 2_500))
        idx = rng.choice(universe.shape[0], m, replace=False)
        catalog.add_sketch(
            f"pair{i:05d}",
            CorrelationSketch.from_columns(
                universe[idx], rng.standard_normal(m), SKETCH_SIZE,
                hasher=catalog.hasher, name=f"pair{i:05d}",
            ),
        )
    queries = []
    for q in range(max(SPEEDUP_QUERIES, SPEEDUP_QUICK_QUERIES)):
        m = int(rng.integers(1_800, 2_500))
        idx = rng.choice(universe.shape[0], m, replace=False)
        queries.append(
            CorrelationSketch.from_columns(
                universe[idx], rng.standard_normal(m), SKETCH_SIZE,
                hasher=catalog.hasher, name=f"query{q}",
            )
        )
    return catalog, queries


def test_query_executor_speedup(quick):
    n_sketches = SPEEDUP_QUICK_SKETCHES if quick else SPEEDUP_CATALOG_SKETCHES
    n_queries = SPEEDUP_QUICK_QUERIES if quick else SPEEDUP_QUERIES
    catalog, queries = _build_speedup_catalog(n_sketches)
    queries = queries[:n_queries]

    scalar = JoinCorrelationEngine(catalog, retrieval_depth=RETRIEVAL_DEPTH,
                                   vectorized=False)
    columnar = JoinCorrelationEngine(catalog, retrieval_depth=RETRIEVAL_DEPTH)

    # Steady-state serving regime: the frozen postings snapshot and the
    # per-sketch columnar views are one-time costs paid at catalog load
    # (each sketch is lowered at most once, ever) — prewarm them so the
    # measured phases compare per-query work, not amortized setup. The
    # scalar path has no equivalent caches; its per-candidate dict builds
    # are inherent to the reference design.
    catalog.frozen_postings()
    for sid in catalog:
        catalog.sketch_columns(sid)
    scalar.query(queries[0], k=10, scorer="rp_cih")
    columnar.query(queries[0], k=10, scorer="rp_cih")

    phases = {"scalar": [0.0, 0.0], "columnar": [0.0, 0.0]}
    candidates = 0
    for query in queries:
        a = scalar.query(query, k=10, scorer="rp_cih")
        b = columnar.query(query, k=10, scorer="rp_cih")
        # The speedup is only meaningful if both executors do the same
        # work: identical candidates, identical rankings.
        assert a.candidates_considered == b.candidates_considered
        assert [e.candidate_id for e in a.ranked] == [e.candidate_id for e in b.ranked]
        candidates += a.candidates_considered
        phases["scalar"][0] += a.retrieval_seconds
        phases["scalar"][1] += a.rerank_seconds
        phases["columnar"][0] += b.retrieval_seconds
        phases["columnar"][1] += b.rerank_seconds

    retrieval_speedup = phases["scalar"][0] / phases["columnar"][0]
    rerank_speedup = phases["scalar"][1] / phases["columnar"][1]
    total_scalar = sum(phases["scalar"])
    total_columnar = sum(phases["columnar"])

    lines = [
        f"catalog sketches        : {len(catalog)}",
        f"sketch size             : {SKETCH_SIZE}",
        "(frozen postings + sketch-column views prewarmed: one-time",
        " catalog-load costs, excluded from per-query phases)",
        f"queries                 : {len(queries)} "
        f"({candidates} candidates re-ranked)",
        f"scalar   retrieval      : {phases['scalar'][0] * 1000:9.2f} ms",
        f"scalar   re-rank        : {phases['scalar'][1] * 1000:9.2f} ms",
        f"columnar retrieval      : {phases['columnar'][0] * 1000:9.2f} ms",
        f"columnar re-rank        : {phases['columnar'][1] * 1000:9.2f} ms",
        f"retrieval speedup       : {retrieval_speedup:9.2f}x",
        f"re-rank speedup         : {rerank_speedup:9.2f}x",
        f"end-to-end speedup      : {total_scalar / total_columnar:9.2f}x",
    ]
    if quick:
        lines.append("(quick mode: CI smoke scale, speedup assertion skipped)")
    write_result("query_executor_speedup.txt", "\n".join(lines))

    if quick:
        return
    # The tentpole's acceptance bar: >=5x re-rank throughput at >=2k sketches.
    assert len(catalog) >= 2000
    assert rerank_speedup >= 5.0


#: Queries for the bootstrap-contract comparison (each costs hundreds of
#: milliseconds on the compat path — 599 resamples x ~100 candidates) and
#: repetitions per (query, mode): the best-of-N re-rank time filters
#: scheduler/throttling noise out of a sustained-CPU comparison.
BOOTSTRAP_QUERIES = 3
BOOTSTRAP_QUICK_QUERIES = 1
BOOTSTRAP_REPEATS = 3


def test_bootstrap_rerank_speedup(quick):
    """rb_cib re-rank: per-candidate PM1 (compat) vs the batched engine."""
    n_sketches = SPEEDUP_QUICK_SKETCHES if quick else SPEEDUP_CATALOG_SKETCHES
    n_queries = BOOTSTRAP_QUICK_QUERIES if quick else BOOTSTRAP_QUERIES
    repeats = 1 if quick else BOOTSTRAP_REPEATS
    catalog, queries = _build_speedup_catalog(n_sketches)
    queries = queries[:n_queries]

    compat = JoinCorrelationEngine(
        catalog, retrieval_depth=RETRIEVAL_DEPTH, rng_mode="compat"
    )
    batched = JoinCorrelationEngine(
        catalog, retrieval_depth=RETRIEVAL_DEPTH, rng_mode="batched"
    )

    # Same steady-state prewarm as the executor comparison: catalog-load
    # costs are one-time, both engines share the columnar executor.
    catalog.frozen_postings()
    for sid in catalog:
        catalog.sketch_columns(sid)
    compat.query(queries[0], k=10, scorer="rb_cib")
    batched.query(queries[0], k=10, scorer="rb_cib")

    rerank = {"compat": 0.0, "batched": 0.0}
    candidates = 0
    for query in queries:
        a = compat.query(query, k=10, scorer="rb_cib")
        b = batched.query(query, k=10, scorer="rb_cib")
        # Both contracts must re-rank the identical candidate page; the
        # rankings themselves are equivalent-but-not-identical on this
        # near-tied synthetic corpus (different rng streams), which the
        # parity suite covers on separated candidates.
        assert a.candidates_considered == b.candidates_considered
        candidates += a.candidates_considered
        for name, engine, first in (("compat", compat, a), ("batched", batched, b)):
            best = first.rerank_seconds
            for _ in range(repeats - 1):
                best = min(
                    best,
                    engine.query(query, k=10, scorer="rb_cib").rerank_seconds,
                )
            rerank[name] += best

    rerank_speedup = rerank["compat"] / rerank["batched"]
    lines = [
        f"catalog sketches        : {len(catalog)}",
        f"sketch size             : {SKETCH_SIZE}",
        f"scorer                  : rb_cib (PM1 bootstrap + CI penalty)",
        f"queries                 : {len(queries)} "
        f"({candidates} candidates re-ranked, best of {repeats} runs each)",
        f"compat   re-rank        : {rerank['compat'] * 1000:9.2f} ms "
        "(per-candidate PM1, 599 replicates each)",
        f"batched  re-rank        : {rerank['batched'] * 1000:9.2f} ms "
        "(cross-candidate engine, adaptive stopping)",
        f"re-rank speedup         : {rerank_speedup:9.2f}x",
        f"compat   ms/candidate   : {rerank['compat'] * 1000 / candidates:9.3f}",
        f"batched  ms/candidate   : {rerank['batched'] * 1000 / candidates:9.3f}",
    ]
    if quick:
        lines.append("(quick mode: CI smoke scale, speedup assertion skipped)")
    write_result("bootstrap_rerank_speedup.txt", "\n".join(lines))

    if quick:
        return
    # Acceptance bar: >=5x rb_cib re-rank throughput at the 2048-sketch scale.
    assert len(catalog) >= 2000
    assert rerank_speedup >= 5.0
