"""Sketch-construction microbenchmarks (the one-pass, bounded-memory claim).

Section 3.4: sketches are built with a single pass while maintaining the
``n`` minimum-hash tuples in a tree-like structure. These benchmarks
quantify both construction paths:

* **streaming** — the reference row-at-a-time ``update_all`` loop (one
  scalar MurmurHash3 + one bounded-structure offer per row); throughput
  should be nearly flat in sketch size;
* **vectorized** — the columnar ``update_array`` fast path (batch hashing,
  grouped NumPy reductions, argpartition bottom-``n``), which produces a
  bit-identical sketch; ``test_vectorized_speedup`` reports and asserts
  the streaming-vs-vectorized throughput ratio;
* the streaming-CSV path versus load-then-sketch at equal output.

Run ``--quick`` for a CI-sized smoke pass (smaller workload, ratio
reported but not asserted).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import write_result
from repro.core.sketch import CorrelationSketch
from repro.table.streaming import stream_sketch_csv

N_ROWS = 200_000
N_ROWS_QUICK = 20_000


@pytest.fixture(scope="module")
def rows(quick):
    n = N_ROWS_QUICK if quick else N_ROWS
    rng = np.random.default_rng(0)
    keys = [f"key-{i}" for i in range(n)]
    values = rng.standard_normal(n)
    return keys, values


@pytest.mark.parametrize("sketch_size", [64, 1024, 16_384])
def test_construction_throughput(benchmark, rows, sketch_size):
    keys, values = rows

    def build():
        return CorrelationSketch.from_columns(
            keys, values, sketch_size, vectorized=False
        )

    sketch = benchmark(build)
    assert len(sketch) == min(sketch_size, len(keys))
    rate = len(keys) / benchmark.stats["mean"]
    write_result(
        f"construction_n{sketch_size}.txt",
        f"sketch size {sketch_size}: {rate:,.0f} rows/s "
        f"(mean {benchmark.stats['mean'] * 1000:.1f} ms for {len(keys):,} rows)",
    )


@pytest.mark.parametrize("sketch_size", [64, 1024, 16_384])
def test_construction_throughput_vectorized(benchmark, rows, sketch_size):
    keys, values = rows

    def build():
        return CorrelationSketch.from_columns(
            keys, values, sketch_size, vectorized=True
        )

    sketch = benchmark(build)
    assert len(sketch) == min(sketch_size, len(keys))
    rate = len(keys) / benchmark.stats["mean"]
    write_result(
        f"construction_vectorized_n{sketch_size}.txt",
        f"sketch size {sketch_size} (vectorized): {rate:,.0f} rows/s "
        f"(mean {benchmark.stats['mean'] * 1000:.1f} ms for {len(keys):,} rows)",
    )


def test_vectorized_speedup(rows, quick):
    """Head-to-head at the paper's query sketch size (n = 1024).

    Asserts the acceptance bar for the columnar path — at least 5x the
    streaming throughput — and that both paths produce the same sketch.
    """
    keys, values = rows
    n = 1024

    def best_of(build, reps=3):
        times = []
        for _ in range(reps):
            t0 = time.perf_counter()
            sketch = build()
            times.append(time.perf_counter() - t0)
        return sketch, min(times)

    streamed, t_stream = best_of(
        lambda: CorrelationSketch.from_columns(keys, values, n, vectorized=False)
    )
    vectored, t_vec = best_of(
        lambda: CorrelationSketch.from_columns(keys, values, n, vectorized=True)
    )

    assert streamed.entries() == vectored.entries()
    assert streamed.rows_seen == vectored.rows_seen

    ratio = t_stream / t_vec
    write_result(
        "construction_vectorized_speedup.txt",
        f"n={n}, {len(keys):,} rows: streaming {len(keys) / t_stream:,.0f} rows/s, "
        f"vectorized {len(keys) / t_vec:,.0f} rows/s -> {ratio:.1f}x speedup",
    )
    if not quick:
        assert ratio >= 5.0, f"vectorized path only {ratio:.1f}x faster"


def test_streaming_csv_construction(benchmark, tmp_path_factory, rows):
    keys, values = rows
    path = tmp_path_factory.mktemp("bench") / "big.csv"
    lines = ["k,v"] + [f"{k},{v:.5f}" for k, v in zip(keys, values)]
    path.write_text("\n".join(lines) + "\n")

    sketches = benchmark.pedantic(
        lambda: stream_sketch_csv(path, 1024), rounds=1, iterations=1
    )
    assert len(sketches) == 1
    (sketch,) = sketches.values()
    assert len(sketch) == 1024
    assert sketch.rows_seen == len(keys)
