"""Sketch-construction microbenchmarks (the one-pass, bounded-memory claim).

Section 3.4: sketches are built with a single pass while maintaining the
``n`` minimum-hash tuples in a tree-like structure. These benchmarks
quantify the construction path:

* throughput in rows/second as a function of sketch size (should be
  nearly flat — per-row cost is one hash plus an O(log n) bounded-
  structure offer, independent of table size);
* the streaming-CSV path versus load-then-sketch at equal output.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import write_result
from repro.core.sketch import CorrelationSketch
from repro.table.streaming import stream_sketch_csv

N_ROWS = 200_000


@pytest.fixture(scope="module")
def rows():
    rng = np.random.default_rng(0)
    keys = [f"key-{i}" for i in range(N_ROWS)]
    values = rng.standard_normal(N_ROWS)
    return keys, values


@pytest.mark.parametrize("sketch_size", [64, 1024, 16_384])
def test_construction_throughput(benchmark, rows, sketch_size):
    keys, values = rows

    def build():
        return CorrelationSketch.from_columns(keys, values, sketch_size)

    sketch = benchmark(build)
    assert len(sketch) == sketch_size
    rate = N_ROWS / benchmark.stats["mean"]
    write_result(
        f"construction_n{sketch_size}.txt",
        f"sketch size {sketch_size}: {rate:,.0f} rows/s "
        f"(mean {benchmark.stats['mean'] * 1000:.1f} ms for {N_ROWS:,} rows)",
    )


def test_streaming_csv_construction(benchmark, tmp_path_factory, rows):
    keys, values = rows
    path = tmp_path_factory.mktemp("bench") / "big.csv"
    lines = ["k,v"] + [f"{k},{v:.5f}" for k, v in zip(keys, values)]
    path.write_text("\n".join(lines) + "\n")

    sketches = benchmark.pedantic(
        lambda: stream_sketch_csv(path, 1024), rounds=1, iterations=1
    )
    assert len(sketches) == 1
    (sketch,) = sketches.values()
    assert len(sketch) == 1024
    assert sketch.rows_seen == N_ROWS
