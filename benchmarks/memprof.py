"""Process-memory readings for the benchmarks (no dependencies).

Everything reads Linux's ``/proc/self`` accounting, with a
``resource.getrusage`` fallback where one exists, and returns ``None``
where the platform offers nothing — callers degrade to reporting "n/a"
instead of failing.

Three measures, because shared mappings make "memory use" ambiguous:

* :func:`current_rss_bytes` / :func:`peak_rss_bytes` — resident set
  size (``VmRSS`` / ``VmHWM``): every resident page counts fully, so
  pages of a file-backed arena mapping shared by N processes are
  counted N times. Right for "how big is this one process".
* :func:`pss_bytes` — proportional set size (``Pss`` from
  ``smaps_rollup``): each shared page counts 1/N per sharing process,
  so summing PSS across processes measures actual physical memory.
  This is the number the zero-copy serving claims are asserted on —
  plain RSS would double-count the whole point of the arena.
"""

from __future__ import annotations

import os


def _status_kb(field: str) -> int | None:
    """A ``VmXXX`` field of ``/proc/self/status``, in bytes."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith(field + ":"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return None


def current_rss_bytes() -> int | None:
    """Resident set size right now (``VmRSS``)."""
    return _status_kb("VmRSS")


def peak_rss_bytes() -> int | None:
    """Peak resident set size of this process (``VmHWM``, the
    high-water mark; falls back to ``getrusage`` where /proc is absent)."""
    peak = _status_kb("VmHWM")
    if peak is not None:
        return peak
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # Linux reports ru_maxrss in KiB (macOS in bytes; /proc exists
        # on every Linux, so reaching here implies the KiB unit rarely
        # matters — kept for completeness).
        return int(usage.ru_maxrss) * 1024
    except (ImportError, ValueError, OSError):
        return None


def pss_bytes() -> int | None:
    """Proportional set size (``Pss`` from ``smaps_rollup``), or None
    when the kernel doesn't expose it."""
    try:
        with open(f"/proc/{os.getpid()}/smaps_rollup") as handle:
            for line in handle:
                if line.startswith("Pss:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    return None


def trim_heap() -> bool:
    """Return freed allocator pages to the OS (``malloc_trim``).

    glibc retains pages of freed allocations for reuse, so a benchmark
    loop that loads and drops a 30MB catalog per cycle stops paying
    page faults after the first cycle — unlike the fresh process the
    cycle stands in for. Trimming between cycles restores first-load
    cost. True when a trim ran; False (and harmless) off glibc.
    """
    try:
        import ctypes

        return bool(ctypes.CDLL("libc.so.6").malloc_trim(0))
    except (OSError, AttributeError):
        return False


def fmt_bytes(n: int | None) -> str:
    """Human-readable MiB rendering (``"n/a"`` for missing readings)."""
    if n is None:
        return "      n/a"
    return f"{n / (1024 * 1024):7.1f}MB"
