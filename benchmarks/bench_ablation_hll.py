"""Ablation — HyperLogLog vs KMV: accuracy per byte vs capability.

Section 6 of the paper explains the choice of the KMV family over
HLL-style sketches: HLL gives better cardinality accuracy per bit, but
keeps no sample identifiers, so numeric values can never be aligned on
join keys — the operation join-correlation estimation is built on. This
ablation quantifies both halves of the argument:

1. cardinality relative error at matched storage budgets (HLL should
   win, often by a lot);
2. the capability gap: from the same stream, the KMV-family correlation
   sketch reconstructs a joined sample and estimates the correlation; HLL
   structurally cannot (it exposes no keys at all).
"""

from __future__ import annotations

import math

import numpy as np

from conftest import write_result
from repro.core.joined_sample import join_sketches
from repro.core.sketch import CorrelationSketch
from repro.correlation.pearson import pearson
from repro.kmv.hll import HyperLogLog
from repro.kmv.synopsis import KMVSynopsis

TRUE_D = 150_000
#: Matched storage budgets in bytes. A KMV entry stores a 32-bit hash
#: (4 bytes); an HLL register is 1 byte.
BUDGETS = (256, 1024, 4096, 16_384)


def _cardinality_comparison() -> list[dict]:
    rows = []
    keys = [f"key-{i}" for i in range(TRUE_D)]
    for budget in BUDGETS:
        kmv_k = budget // 4
        hll_p = int(math.log2(budget))
        kmv = KMVSynopsis.from_keys(keys, k=kmv_k)
        hll = HyperLogLog.from_keys(keys, precision=hll_p)
        rows.append(
            {
                "budget": budget,
                "kmv_error": abs(kmv.distinct_values() - TRUE_D) / TRUE_D,
                "hll_error": abs(hll.cardinality() - TRUE_D) / TRUE_D,
                "kmv_theoretical": 1.0 / math.sqrt(kmv_k),
                "hll_theoretical": hll.standard_error,
            }
        )
    return rows


def _capability_gap() -> dict:
    rng = np.random.default_rng(8)
    n = 50_000
    keys = [f"k{i}" for i in range(n)]
    x = rng.standard_normal(n)
    y = 0.8 * x + 0.6 * rng.standard_normal(n)

    left = CorrelationSketch.from_columns(keys, x, 1024)
    right = CorrelationSketch.from_columns(keys, y, 1024)
    sample = join_sketches(left, right).drop_nan()
    estimate = pearson(sample.x, sample.y)

    hll = HyperLogLog.from_keys(keys, precision=12)
    return {
        "kmv_correlation_estimate": estimate,
        "kmv_sample_size": sample.size,
        "hll_supports_alignment": hasattr(hll, "key_hashes"),
    }


def test_ablation_hll_vs_kmv(benchmark):
    card_rows, capability = benchmark.pedantic(
        lambda: (_cardinality_comparison(), _capability_gap()),
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'bytes':>8}{'KMV rel err':>14}{'HLL rel err':>14}"
        f"{'KMV theor.':>12}{'HLL theor.':>12}"
    ]
    for row in card_rows:
        lines.append(
            f"{row['budget']:>8}{row['kmv_error']:>14.4f}{row['hll_error']:>14.4f}"
            f"{row['kmv_theoretical']:>12.4f}{row['hll_theoretical']:>12.4f}"
        )
    lines.append("")
    lines.append(
        f"KMV-family correlation estimate: {capability['kmv_correlation_estimate']:.4f} "
        f"(true 0.80, sample {capability['kmv_sample_size']})"
    )
    lines.append(
        f"HLL supports value alignment:    {capability['hll_supports_alignment']}"
    )
    write_result("ablation_hll.txt", "\n".join(lines))

    # HLL wins cardinality accuracy per byte at every matched budget
    # (compare theoretical errors; measured ones are single draws).
    for row in card_rows:
        assert row["hll_theoretical"] < row["kmv_theoretical"]
    # Both estimators land within ~5x their theoretical standard error.
    for row in card_rows:
        assert row["kmv_error"] < 5 * row["kmv_theoretical"]
        assert row["hll_error"] < 5 * row["hll_theoretical"]
    # The capability gap: only the KMV-family sketch estimates correlation.
    assert abs(capability["kmv_correlation_estimate"] - 0.8) < 0.1
    assert not capability["hll_supports_alignment"]
