"""Table 1 — ranking quality of the scoring functions (MAP and nDCG).

Regenerates the four panels of Table 1 on the NYC-like collection:

* (a) MAP with relevance threshold |r| > 0.75
* (b) MAP with relevance threshold |r| > 0.50
* (c) nDCG@5
* (d) nDCG@10

for the seven rankers: ``rp·cih``, ``rb·cib``, ``rp``, ``rp·sez`` (the
paper's scoring functions) and ``jc``, ``ĵc``, ``random`` (baselines).
The "%" column is the relative improvement over the exact-containment
baseline ``jc``, as in the paper.

Expected shape: every correlation-based ranker far above the containment
baselines; ``jc`` ≈ ``ĵc`` ≈ random; the risk-penalized rankers at or
near the top for the strict MAP(r > .75) panel.
"""

from __future__ import annotations

import math

from conftest import write_result

PAPER_LABELS = {
    "rp_cih": "rp*cih",
    "rb_cib": "rb*cib",
    "rp": "rp",
    "rp_sez": "rp*sez",
    "jc": "jc",
    "jc_est": "jc_est",
    "random": "random",
}


def _panel_text(title: str, table: dict[str, float]) -> str:
    base = table.get("jc", math.nan)
    rows = sorted(table.items(), key=lambda kv: -(kv[1] if kv[1] == kv[1] else -1))
    lines = [title, f"{'ranker':<10}{'score':>8}{'%':>10}"]
    for name, score in rows:
        if math.isnan(score):
            continue
        pct = (score - base) / base * 100.0 if base and not math.isnan(base) else math.nan
        lines.append(f"{PAPER_LABELS.get(name, name):<10}{score:>8.3f}{pct:>9.1f}%")
    return "\n".join(lines)


def _correlation_rankers_beat_baselines(table: dict[str, float]) -> None:
    correlation = [table["rp"], table["rp_sez"], table["rb_cib"], table["rp_cih"]]
    baselines = [table["jc"], table["jc_est"], table["random"]]
    assert min(correlation) > max(baselines), (
        f"expected all correlation rankers above all baselines: "
        f"{correlation} vs {baselines}"
    )


def test_table1a_map75(benchmark, ranking_report):
    table = benchmark.pedantic(lambda: ranking_report.map_75, rounds=1, iterations=1)
    write_result("table1a_map75.txt", _panel_text("Table 1a: MAP (r > .75)", table))
    _correlation_rankers_beat_baselines(table)


def test_table1b_map50(benchmark, ranking_report):
    table = benchmark.pedantic(lambda: ranking_report.map_50, rounds=1, iterations=1)
    write_result("table1b_map50.txt", _panel_text("Table 1b: MAP (r > .50)", table))
    _correlation_rankers_beat_baselines(table)


def test_table1c_ndcg5(benchmark, ranking_report):
    table = benchmark.pedantic(lambda: ranking_report.ndcg_5, rounds=1, iterations=1)
    write_result("table1c_ndcg5.txt", _panel_text("Table 1c: nDCG@5", table))
    _correlation_rankers_beat_baselines(table)


def test_table1d_ndcg10(benchmark, ranking_report):
    table = benchmark.pedantic(lambda: ranking_report.ndcg_10, rounds=1, iterations=1)
    write_result("table1d_ndcg10.txt", _panel_text("Table 1d: nDCG@10", table))
    _correlation_rankers_beat_baselines(table)


def test_table1_queries_evaluated(benchmark, ranking_report):
    count = benchmark.pedantic(
        lambda: ranking_report.queries_evaluated, rounds=1, iterations=1
    )
    assert count >= 10, "too few informative queries for a stable Table 1"
