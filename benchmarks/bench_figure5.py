"""Figure 5 — distribution of per-query metric scores, jc vs rp·cih.

The paper's histograms show, for each evaluation metric, how many queries
fall into each 0.1-wide slice of the metric range: the containment
baseline (jc) piles up on the left (bad scores) and the Hoeffding-based
scorer (rp·cih) shifts the mass to the right (good scores).

Regenerated from the same per-query records as Table 1.
"""

from __future__ import annotations

from conftest import write_result
from repro.evalharness.ranking_eval import score_histogram

METRICS = ("map75", "map50", "ndcg5", "ndcg10")


def _histogram_text(scorer: str, per_query: dict[str, list[float]]) -> str:
    lines = [f"scorer: {scorer}"]
    for metric in METRICS:
        values = per_query[metric]
        hist = score_histogram(values, bins=10)
        bar = " ".join(f"{count:>3d}" for _lo, _hi, count in hist)
        lines.append(f"  {metric:<7} [{bar}]  (n={len(values)})")
    lines.append("  slices:  [0,.1) [.1,.2) ... [.9,1.0]")
    return "\n".join(lines)


def _mass_center(values: list[float]) -> float:
    clean = [v for v in values if v == v]
    return sum(clean) / len(clean) if clean else 0.0


def test_figure5_score_distributions(benchmark, ranking_report):
    def run():
        return (
            ranking_report.per_query["jc"],
            ranking_report.per_query["rp_cih"],
        )

    jc, rp_cih = benchmark.pedantic(run, rounds=1, iterations=1)
    text = _histogram_text("jc", jc) + "\n\n" + _histogram_text("rp*cih", rp_cih)
    write_result("figure5_histograms.txt", text)

    # Shape: for every metric the rp*cih mass must sit to the right of jc.
    for metric in METRICS:
        assert _mass_center(rp_cih[metric]) > _mass_center(jc[metric]), metric


def test_figure5_top_slice_gains(benchmark, ranking_report):
    """The paper highlights nDCG: most rp·cih queries land near optimal."""

    def run():
        values = ranking_report.per_query["rp_cih"]["ndcg10"]
        top = sum(1 for v in values if v >= 0.7)
        return top, len(values)

    top, total = benchmark.pedantic(run, rounds=1, iterations=1)
    assert total > 0
    assert top / total > 0.5
