"""Shared fixtures for the benchmark suite.

Collections are generated once per session; every benchmark derives its
workload from these so the whole suite stays laptop-sized while keeping
the distributional shape of the paper's datasets (see DESIGN.md for the
paper-scale vs bench-scale parameters).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.data.opendata import make_nyc_like_collection, make_wbf_like_collection
from repro.data.workloads import collection_column_pairs

#: Where benchmarks write their regenerated tables/figures.
RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="shrink benchmark workloads to a CI-sized smoke run "
        "(skips absolute-performance assertions)",
    )


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """True when the suite runs as a --quick smoke (CI) invocation."""
    return request.config.getoption("--quick")


def write_result(name: str, text: str) -> None:
    """Persist a regenerated table/figure and echo it to stdout."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


@pytest.fixture(scope="session")
def nyc_collection():
    """NYC-Open-Data-shaped collection (paper: 1,505 tables; here 80).

    The wide key-fraction range produces a realistic mix of join sizes —
    many tiny sketch-join samples (the false-positive regime of Figure 3)
    alongside large ones.
    """
    return make_nyc_like_collection(
        n_tables=80, seed=42, key_universe=4000, key_fraction_range=(0.02, 0.7)
    )


@pytest.fixture(scope="session")
def wbf_collection():
    """WBF-shaped collection (paper and here: 64 tables)."""
    return make_wbf_like_collection(
        n_tables=64, seed=7, key_universe=800, key_fraction_range=(0.03, 0.8)
    )


@pytest.fixture(scope="session")
def nyc_refs(nyc_collection):
    return collection_column_pairs(nyc_collection)


@pytest.fixture(scope="session")
def ranking_report(nyc_refs):
    """Shared Table 1 / Figure 5 evaluation (computed once per session).

    Paper protocol (Section 5.4): every column pair in the NYC collection
    acts as a query retrieving all other joinable column pairs; rankings
    from all scoring functions are compared on the same retrieved lists
    against full-join ground truth.
    """
    from repro.evalharness.ranking_eval import evaluate_ranking

    return evaluate_ranking(
        nyc_refs,
        sketch_size=256,
        max_queries=80,
        min_candidates=3,
        retrieval_depth=100,
        seed=0,
    )


@pytest.fixture(scope="session")
def wbf_refs(wbf_collection):
    return collection_column_pairs(wbf_collection)
