"""Ablation — 32-bit vs 64-bit key hashing.

The paper uses 32-bit MurmurHash3 for the tuple identifiers (Section
3.4). A 32-bit space risks identifier collisions once collections hold
many distinct keys (birthday bound ~2^16 keys for a 50% chance of *some*
collision); a collision merges two unrelated keys, corrupting both
joinability and value alignment. The library therefore also offers a
64-bit scheme. This ablation measures:

* estimation accuracy under both widths (should be indistinguishable at
  bench scale — collisions are rare events);
* construction cost of the wider hash;
* the collision count itself across a large key universe, directly.
"""

from __future__ import annotations

import math
import time

import numpy as np

from conftest import write_result
from repro.core.joined_sample import join_sketches
from repro.core.sketch import CorrelationSketch
from repro.correlation.pearson import pearson
from repro.hashing import KeyHasher

N_ROWS = 30_000
N_PAIRS = 15
COLLISION_PROBE_KEYS = 300_000


def _accuracy_and_cost() -> dict:
    rng = np.random.default_rng(12)
    results: dict[int, dict[str, list[float]]] = {
        32: {"errors": [], "seconds": []},
        64: {"errors": [], "seconds": []},
    }
    for i in range(N_PAIRS):
        keys = [f"pair{i}-key{j}" for j in range(N_ROWS)]
        rho = float(rng.uniform(-0.95, 0.95))
        x = rng.standard_normal(N_ROWS)
        y = rho * x + math.sqrt(1 - rho**2) * rng.standard_normal(N_ROWS)
        truth = pearson(x, y)
        for bits in (32, 64):
            hasher = KeyHasher(bits=bits, seed=i)
            t0 = time.perf_counter()
            left = CorrelationSketch.from_columns(keys, x, 256, hasher=hasher)
            right = CorrelationSketch.from_columns(keys, y, 256, hasher=hasher)
            elapsed = time.perf_counter() - t0
            sample = join_sketches(left, right).drop_nan()
            est = pearson(sample.x, sample.y)
            if not math.isnan(est):
                results[bits]["errors"].append(est - truth)
            results[bits]["seconds"].append(elapsed)

    def _rmse(errors):
        return math.sqrt(sum(e * e for e in errors) / len(errors))

    return {
        bits: {
            "rmse": _rmse(r["errors"]),
            "build_seconds_mean": float(np.mean(r["seconds"])),
        }
        for bits, r in results.items()
    }


def _collision_counts() -> dict[int, int]:
    out = {}
    for bits in (32, 64):
        hasher = KeyHasher(bits=bits, seed=0)
        seen: set[int] = set()
        collisions = 0
        for j in range(COLLISION_PROBE_KEYS):
            kh = hasher.key_hash(f"probe-{j}")
            if kh in seen:
                collisions += 1
            else:
                seen.add(kh)
        out[bits] = collisions
    return out


def test_ablation_hash_width(benchmark):
    accuracy, collisions = benchmark.pedantic(
        lambda: (_accuracy_and_cost(), _collision_counts()), rounds=1, iterations=1
    )
    lines = [f"{'bits':>6}{'RMSE':>10}{'build s':>10}{'collisions/300k keys':>22}"]
    for bits in (32, 64):
        lines.append(
            f"{bits:>6}{accuracy[bits]['rmse']:>10.4f}"
            f"{accuracy[bits]['build_seconds_mean']:>10.3f}"
            f"{collisions[bits]:>22}"
        )
    write_result("ablation_hashwidth.txt", "\n".join(lines))

    # Accuracy is width-independent at this scale (collisions are rare).
    assert abs(accuracy[32]["rmse"] - accuracy[64]["rmse"]) < 0.05
    # Birthday bound: 300k keys in 2^32 expect ~ C(300k,2)/2^32 ~ 10
    # collisions; in 2^64, essentially zero.
    assert collisions[64] == 0
    assert collisions[32] < 100
