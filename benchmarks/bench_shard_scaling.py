"""Sharded serving: throughput and latency vs shard / worker count.

The sharding tentpole's acceptance benchmark, at the 4096-sketch scale
the catalog-io bench established:

* **single-query p50 latency** across shard counts {1, 2, 4} — the
  scatter-gather merge must not tax latency relative to the monolithic
  engine (per-shard probes shrink as shards multiply; the merge is a
  ``heapq`` pass over ≤ depth·shards pairs);
* **multi-query throughput** for a 64-query batch: the sequential
  :class:`~repro.serving.router.ShardRouter` baseline vs
  :class:`~repro.serving.workers.QueryWorkerPool` process workers
  (forked, persistent, inheriting the catalog copy-on-write) at 2 and 4
  workers. Results are checked for exact ranking parity with the
  sequential path before any timing is trusted.

Acceptance bar (full run): ≥ 1.5x batch throughput at 4 workers vs 1 on
≥ 4096 sketches. Process workers can only multiply throughput when the
host exposes multiple cores, so the bar is asserted when ≥ 4 cores are
schedulable (a relaxed ≥ 1.2x on 2–3 cores); on a single-core host the
parallel numbers are still measured and recorded — with the core count,
so the result file is interpretable — but the speedup assertion is
skipped, exactly like ``--quick`` skips it in CI. Results land in
``benchmarks/results/shard_scaling.txt``; ``--quick`` shrinks to a CI
smoke (256 sketches, no assertions).
"""

from __future__ import annotations

import os
import statistics
import time

import numpy as np

from conftest import write_result
from memprof import fmt_bytes, peak_rss_bytes
from repro.core.sketch import CorrelationSketch
from repro.serving import QueryWorkerPool, ShardRouter, ShardedCatalog

CATALOG_SKETCHES = 4096
QUICK_SKETCHES = 256
SKETCH_SIZE = 256
ROWS_PER_SKETCH = 600
KEY_UNIVERSE = 20_000
N_QUERIES = 64
QUICK_QUERIES = 8
LATENCY_PROBES = 12
SHARD_COUNTS = (1, 2, 4)
WORKER_COUNTS = (2, 4)
DEPTH = 100


def _build(n_sketches: int, n_shards: int, seed: int = 3):
    """The bench corpus, hash-partitioned across ``n_shards`` shards."""
    rng = np.random.default_rng(seed)
    catalog = ShardedCatalog(n_shards, sketch_size=SKETCH_SIZE)
    batch = []
    for i in range(n_sketches):
        keys = rng.choice(KEY_UNIVERSE, ROWS_PER_SKETCH, replace=False)
        sid = f"pair{i:05d}"
        batch.append(
            (
                sid,
                CorrelationSketch.from_columns(
                    keys,
                    rng.standard_normal(ROWS_PER_SKETCH),
                    SKETCH_SIZE,
                    hasher=catalog.hasher,
                    name=sid,
                ),
            )
        )
    catalog.add_sketches(batch)
    return catalog


def _queries(catalog, n_queries: int, seed: int = 17):
    rng = np.random.default_rng(seed)
    out = []
    for j in range(n_queries):
        keys = rng.choice(KEY_UNIVERSE, 2 * ROWS_PER_SKETCH, replace=False)
        out.append(
            CorrelationSketch.from_columns(
                keys,
                rng.standard_normal(keys.shape[0]),
                SKETCH_SIZE,
                hasher=catalog.hasher,
                name=f"query{j}",
            )
        )
    return out


def _ranking_key(results):
    return [[(e.candidate_id, e.score) for e in r.ranked] for r in results]


def _best_batch_seconds(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _schedulable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux fallback
        return os.cpu_count() or 1


def test_shard_scaling(quick):
    n_sketches = QUICK_SKETCHES if quick else CATALOG_SKETCHES
    n_queries = QUICK_QUERIES if quick else N_QUERIES
    cores = _schedulable_cores()

    lines = [
        f"sketches                  : {n_sketches} "
        f"(size {SKETCH_SIZE}, {ROWS_PER_SKETCH} rows each)",
        f"queries                   : {n_queries} (retrieval depth {DEPTH})",
        f"schedulable cores         : {cores}",
    ]

    # -- p50 latency vs shard count (sequential scatter) -------------------
    latency_queries = None
    for n_shards in SHARD_COUNTS:
        catalog = _build(n_sketches, n_shards)
        if latency_queries is None:
            latency_queries = _queries(catalog, n_queries)
        router = ShardRouter(catalog, retrieval_depth=DEPTH)
        router.query(latency_queries[0], k=10)  # warm postings everywhere
        samples = []
        for query in latency_queries[:LATENCY_PROBES]:
            t0 = time.perf_counter()
            router.query(query, k=10)
            samples.append((time.perf_counter() - t0) * 1000)
        p50 = statistics.median(samples)
        lines.append(
            f"p50 latency, {n_shards} shard(s)   : {p50:9.2f} ms "
            "(sequential scatter-gather)"
        )
        if n_shards == SHARD_COUNTS[-1]:
            scaling_catalog = catalog

    # -- batch throughput vs worker count ----------------------------------
    router = ShardRouter(scaling_catalog, retrieval_depth=DEPTH)
    baseline = router.query_batch(latency_queries, k=10)
    seq_seconds = _best_batch_seconds(
        lambda: router.query_batch(latency_queries, k=10)
    )
    seq_qps = n_queries / seq_seconds
    lines.append(
        f"batch, 1 worker           : {seq_seconds * 1000:9.1f} ms "
        f"({seq_qps:8.1f} q/s, sequential router)"
    )

    speedups = {}
    for workers in WORKER_COUNTS:
        with QueryWorkerPool(router, workers=workers) as pool:
            parallel = pool.query_batch(latency_queries, k=10)
            # Exact-parity sanity before trusting any timing.
            assert _ranking_key(parallel) == _ranking_key(baseline)
            if not pool.parallel:
                lines.append(
                    f"batch, {workers} workers          :   (fork unavailable; "
                    "sequential fallback)"
                )
                continue
            par_seconds = _best_batch_seconds(
                lambda: pool.query_batch(latency_queries, k=10)
            )
        qps = n_queries / par_seconds
        speedups[workers] = seq_seconds / par_seconds
        lines.append(
            f"batch, {workers} workers          : {par_seconds * 1000:9.1f} ms "
            f"({qps:8.1f} q/s, {speedups[workers]:4.2f}x, forked workers)"
        )

    lines.append(
        f"router peak RSS           : {fmt_bytes(peak_rss_bytes())} "
        "(parent process; forked workers inherit the catalog "
        "copy-on-write — per-process numbers are in mmap_serving.txt)"
    )
    if quick:
        lines.append("(quick mode: CI smoke scale, speedup assertion skipped)")
    elif cores < 2:
        lines.append(
            "(single-core host: forked workers time-slice one core, so the "
            "parallel speedup bar is unmeasurable here; run on >=4 cores "
            "for the 1.5x assertion)"
        )
    write_result("shard_scaling.txt", "\n".join(lines))

    if quick or cores < 2 or 4 not in speedups:
        return
    # Acceptance bar: >=1.5x batch throughput at 4 workers on >=4096
    # sketches (rankings pinned identical above). Throughput scales with
    # schedulable cores, so 2-3-core hosts assert a proportionally
    # relaxed bar.
    assert n_sketches >= 4096
    assert speedups[4] >= (1.5 if cores >= 4 else 1.2)
