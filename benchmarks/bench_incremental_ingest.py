"""Incremental ingest: the delta layer vs rebuild-per-batch.

The LSM maintenance contract (docs/ARCHITECTURE.md "Incremental
maintenance") only earns its complexity if appending to a served catalog
is *cheap*: an append lands in the mutable delta index in O(sketch)
time, while the pre-delta maintenance story — re-freezing the monolithic
CSR after every ingest batch — pays O(corpus) per batch, i.e. O(n²)
over a sustained ingest stream.

``test_incremental_ingest_throughput`` replays the same ingest stream
(batches of sketches appended to a pre-loaded catalog, one probe after
every batch to keep the index serving-warm, exactly what a freshness-
sensitive deployment does) under two maintenance strategies:

* **delta** — appends land in the delta layer; a threshold compaction
  folds them in occasionally; probes are layered (frozen + delta);
* **rebuild** — appends go straight to the live index and every batch
  re-freezes the full monolithic CSR before serving (the only way to
  keep frozen-path probes fresh without a delta layer).

Acceptance: amortized per-append cost under the delta strategy is
sublinear in corpus size — the last ingest batch may not cost more than
``SUBLINEAR_FACTOR`` × the first (rebuild-per-batch grows linearly, and
the bench asserts the strategies' end-state answers match bit for bit).
Results land in ``benchmarks/results/incremental_ingest.txt``;
``--quick`` shrinks the stream to a CI smoke with no timing assertions.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import write_result
from repro.core.sketch import CorrelationSketch
from repro.index.catalog import SketchCatalog
from repro.index.engine import JoinCorrelationEngine

SKETCH_SIZE = 128
ROWS_PER_SKETCH = 400
KEY_UNIVERSE = 8_000

BASE_SKETCHES, N_BATCHES, BATCH_SIZE = 512, 16, 64
QUICK_BASE, QUICK_BATCHES, QUICK_SIZE = 64, 4, 16

#: Delta appends are O(sketch); allow generous noise headroom while
#: still refusing anything resembling O(corpus) growth (rebuild-per-
#: batch shows ~linear growth, a factor ≈ final/initial corpus ratio).
SUBLINEAR_FACTOR = 3.0

#: Fold the delta every FOLD_EVERY ingest batches: appends stay O(sketch)
#: and the occasional fold amortizes across the batches since the last
#: one (folding every batch would just be rebuild-per-batch in disguise).
FOLD_EVERY = 4


def _sketch_stream(n, rng, hasher, prefix):
    batch = []
    for i in range(n):
        keys = rng.choice(KEY_UNIVERSE, ROWS_PER_SKETCH, replace=False)
        sid = f"{prefix}{i:05d}"
        batch.append(
            (
                sid,
                CorrelationSketch.from_columns(
                    keys,
                    rng.standard_normal(ROWS_PER_SKETCH),
                    SKETCH_SIZE,
                    hasher=hasher,
                    name=sid,
                ),
            )
        )
    return batch


def _replay(catalog, batches, query, *, rebuild_per_batch):
    """Ingest every batch, probing once per batch; returns per-batch ms."""
    engine = JoinCorrelationEngine(catalog, retrieval_depth=50)
    timings = []
    for batch in batches:
        t0 = time.perf_counter()
        catalog.add_sketches(batch)
        if rebuild_per_batch:
            # The pre-delta maintenance story: fold everything into a
            # fresh monolithic CSR so the frozen probe path stays fresh.
            catalog.compact()
        engine.query(query, k=10, scorer="rp")
        timings.append((time.perf_counter() - t0) * 1000)
    return timings


def test_incremental_ingest_throughput(quick):
    n_base = QUICK_BASE if quick else BASE_SKETCHES
    n_batches = QUICK_BATCHES if quick else N_BATCHES
    batch_size = QUICK_SIZE if quick else BATCH_SIZE

    rng = np.random.default_rng(17)
    base = SketchCatalog(sketch_size=SKETCH_SIZE)
    base_batch = _sketch_stream(n_base, rng, base.hasher, "base")
    stream = [
        _sketch_stream(batch_size, rng, base.hasher, f"b{b:02d}x")
        for b in range(n_batches)
    ]
    query_keys = rng.choice(KEY_UNIVERSE, 2 * ROWS_PER_SKETCH, replace=False)
    query = CorrelationSketch.from_columns(
        query_keys,
        rng.standard_normal(query_keys.shape[0]),
        SKETCH_SIZE,
        hasher=base.hasher,
        name="query",
    )

    def fresh(compact_threshold=None):
        catalog = SketchCatalog(
            sketch_size=SKETCH_SIZE,
            hasher=base.hasher,
            compact_threshold=compact_threshold,
        )
        catalog.add_sketches(base_batch)
        catalog.frozen_postings()  # the pre-loaded, already-compacted state
        return catalog

    delta_catalog = fresh(compact_threshold=FOLD_EVERY * batch_size)
    delta_ms = _replay(delta_catalog, stream, query, rebuild_per_batch=False)
    rebuild_catalog = fresh()
    rebuild_ms = _replay(rebuild_catalog, stream, query, rebuild_per_batch=True)

    # Same stream, same answers: the maintenance strategy is invisible.
    a = JoinCorrelationEngine(delta_catalog).query(query, k=10, scorer="rp")
    b = JoinCorrelationEngine(rebuild_catalog).query(query, k=10, scorer="rp")
    assert [(e.candidate_id, e.score) for e in a.ranked] == [
        (e.candidate_id, e.score) for e in b.ranked
    ]

    per_append_delta = sum(delta_ms) / (n_batches * batch_size)
    per_append_rebuild = sum(rebuild_ms) / (n_batches * batch_size)
    # Window means aligned to the fold cadence (each window spans one
    # full fold cycle), so the sublinearity check compares like with
    # like instead of a fold batch against a delta-only batch.
    head = sum(delta_ms[:FOLD_EVERY]) / FOLD_EVERY
    tail = sum(delta_ms[-FOLD_EVERY:]) / FOLD_EVERY
    lines = [
        "incremental ingest: delta layer vs rebuild-per-batch",
        f"  base corpus {n_base} sketches, {n_batches} batches x "
        f"{batch_size} appends, one probe per batch",
        f"  {'batch':>5} {'corpus':>7} {'delta ms':>9} {'rebuild ms':>11}",
    ]
    corpus = n_base
    for i, (d, r) in enumerate(zip(delta_ms, rebuild_ms)):
        corpus += batch_size
        lines.append(f"  {i:>5} {corpus:>7} {d:>9.2f} {r:>11.2f}")
    lines += [
        f"  amortized per append: delta {per_append_delta:.3f} ms, "
        f"rebuild {per_append_rebuild:.3f} ms "
        f"({per_append_rebuild / max(per_append_delta, 1e-9):.1f}x)",
        f"  fold-cycle cost growth (last/first window): delta "
        f"{tail / max(head, 1e-9):.2f}x, rebuild "
        f"{(sum(rebuild_ms[-FOLD_EVERY:]) / max(sum(rebuild_ms[:FOLD_EVERY]), 1e-9)):.2f}x",
    ]
    write_result("incremental_ingest.txt", "\n".join(lines))

    if not quick:
        # Sublinear amortized appends: a fold cycle at ~3x the corpus
        # size may not cost more than SUBLINEAR_FACTOR x the first one.
        assert tail <= SUBLINEAR_FACTOR * max(head, 0.1)
        # And the delta strategy beats rebuild-per-batch outright.
        assert per_append_delta < per_append_rebuild
