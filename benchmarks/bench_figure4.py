"""Figure 4 — RMSE vs sketch-intersection size per estimator and size.

For each sampled column-pair combination from the NYC-like collection,
builds sketches at several maximum sizes (the figure's ``k`` rows),
reconstructs the joined sample once per size, applies every correlation
estimator from Section 5.3, and compares against the population value of
the statistic that estimator targets (Pearson for pearson/qn/pm1, the
transformed correlation for spearman/rin). Records are bucketed by
intersection size and reported as RMSE series.

Expected shape: RMSE decreases as the intersection grows, stabilising
near ~0.1, for every estimator and every maximum sketch size; Qn is the
least stable line.
"""

from __future__ import annotations

import math

import pytest

from conftest import write_result
from repro.core.joined_sample import join_sketches
from repro.core.sketch import CorrelationSketch
from repro.correlation.estimators import ESTIMATORS, get_estimator, population_reference
from repro.data.workloads import sample_combinations
from repro.evalharness.accuracy import AccuracyRecord
from repro.evalharness.rmse import format_rmse_table, overall_rmse, rmse_by_sample_size

SKETCH_SIZES = (64, 256, 1024)
ESTIMATOR_NAMES = tuple(sorted(ESTIMATORS))
N_COMBOS = 150


def _collect_records(refs):
    """records[(sketch_size, estimator)] -> list[AccuracyRecord]."""
    from repro.table.join import join_tables

    combos = sample_combinations(refs, N_COMBOS, seed=11)
    records: dict[tuple[int, str], list[AccuracyRecord]] = {
        (size, name): [] for size in SKETCH_SIZES for name in ESTIMATOR_NAMES
    }
    for idx, (left_ref, right_ref) in enumerate(combos):
        join = join_tables(
            left_ref.table, left_ref.pair, right_ref.table, right_ref.pair
        )
        clean = join.drop_nan()
        if clean.size < 3:
            continue
        truths = {
            name: population_reference(name)(clean.x, clean.y)
            for name in ("pearson", "spearman", "rin")
        }
        truths["qn"] = truths["pearson"]
        truths["pm1"] = truths["pearson"]

        left_keys = left_ref.table.categorical(left_ref.pair.key).values
        left_vals = left_ref.table.numeric(left_ref.pair.value).values
        right_keys = right_ref.table.categorical(right_ref.pair.key).values
        right_vals = right_ref.table.numeric(right_ref.pair.value).values

        for size in SKETCH_SIZES:
            left = CorrelationSketch.from_columns(left_keys, left_vals, size)
            right = CorrelationSketch.from_columns(right_keys, right_vals, size)
            if left.saw_all_keys and right.saw_all_keys:
                # Both tables fit inside the sketch: the "estimate" is the
                # exact full-join correlation. No estimation is happening,
                # so the pair carries no signal for the RMSE figure (the
                # paper's tables are always much larger than the sketch).
                continue
            sample = join_sketches(left, right).drop_nan()
            if sample.size < 3:
                continue
            for name in ESTIMATOR_NAMES:
                estimate = get_estimator(name)(sample.x, sample.y)
                truth = truths[name]
                if math.isnan(estimate) or math.isnan(truth):
                    continue
                records[(size, name)].append(
                    AccuracyRecord(
                        pair_id=f"combo{idx}",
                        estimate=estimate,
                        truth=truth,
                        sample_size=sample.size,
                        join_size=clean.size,
                    )
                )
    return records


@pytest.fixture(scope="module")
def figure4_records(nyc_refs):
    return _collect_records(nyc_refs)


def test_figure4_rmse_by_intersection_size(benchmark, nyc_refs):
    records = benchmark.pedantic(
        lambda: _collect_records(nyc_refs), rounds=1, iterations=1
    )
    sections = []
    for size in SKETCH_SIZES:
        series = {
            name: rmse_by_sample_size(records[(size, name)])
            for name in ESTIMATOR_NAMES
        }
        sections.append(
            format_rmse_table(series, title=f"max sketch size k = {size}")
        )
    write_result("figure4_rmse.txt", "\n\n".join(sections))

    # Shape assertion: small-intersection buckets must average worse RMSE
    # than large-intersection buckets, for every sketch size that has both
    # regimes populated.
    for size in SKETCH_SIZES:
        buckets = rmse_by_sample_size(records[(size, "pearson")])
        small = [b.rmse for b in buckets if b.high <= 21]
        large = [b.rmse for b in buckets if b.low >= 34]
        if not small or not large:
            continue
        assert (
            sum(large) / len(large) < sum(small) / len(small)
        ), f"RMSE did not decrease with intersection size at k={size}"


def test_figure4_every_estimator_converges(benchmark, figure4_records):
    """Every estimator's overall RMSE at large samples lands near ~0.1."""

    def check():
        out = {}
        for name in ESTIMATOR_NAMES:
            big_sample = [
                r for r in figure4_records[(1024, name)] if r.sample_size >= 89
            ]
            if big_sample:
                out[name] = overall_rmse(big_sample)
        return out

    rmses = benchmark.pedantic(check, rounds=1, iterations=1)
    assert rmses
    for name, rmse in rmses.items():
        assert rmse < 0.25, name


def test_figure4_qn_least_stable(benchmark, figure4_records):
    """Qn is the spiky line: its overall RMSE should not beat Pearson's."""

    def check():
        return (
            overall_rmse(figure4_records[(256, "qn")]),
            overall_rmse(figure4_records[(256, "pearson")]),
        )

    qn, pearson = benchmark.pedantic(check, rounds=1, iterations=1)
    assert qn >= pearson * 0.8  # allow noise, but Qn must not dominate
