"""Table 2 — running times: full-data joins vs sketches (milliseconds).

For a stream of table pairs with heavily skewed sizes (mirroring open
data), measures wall time of

* full data: hash equi-join with aggregation, then Pearson (r_p) and
  Spearman (r_s) on the joined columns;
* sketches: joining two *pre-built* sketches (the index scenario — sketch
  construction is offline) and the same estimators on the reconstructed
  sample.

Reported rows match the paper: mean, std. dev., and the 75/90/99/99.9th
percentiles. Expected shape: sketch columns orders of magnitude smaller
and nearly constant; full-data columns heavy-tailed.
"""

from __future__ import annotations

import numpy as np

from conftest import write_result
from repro.core.joined_sample import join_sketches
from repro.core.sketch import CorrelationSketch
from repro.correlation.pearson import pearson
from repro.correlation.spearman import spearman
from repro.data.sbn import generate_sbn_pair
from repro.evalharness.timing import TimingSample, TimingTable, timed
from repro.table.join import join_columns

SKETCH_SIZE = 1024
N_PAIRS = 60


def _measure() -> TimingTable:
    rng = np.random.default_rng(0)
    table = TimingTable()
    # Log-uniform row counts: mostly small tables, occasional huge ones —
    # the skew that produces the paper's heavy full-data tail.
    sizes = np.exp(rng.uniform(np.log(500), np.log(120_000), size=N_PAIRS)).astype(int)
    for i, rows in enumerate(sizes):
        pair = generate_sbn_pair(
            rng,
            rows=int(rows),
            correlation=float(rng.uniform(-1, 1)),
            join_fraction=float(rng.uniform(0.2, 1.0)),
            pair_id=i,
        )
        left_keys = pair.table_x.categorical("k").values
        left_vals = pair.table_x.numeric("x").values
        right_keys = pair.table_y.categorical("k").values
        right_vals = pair.table_y.numeric("y").values

        # Full-data path.
        holder = {}
        t_join = timed(
            lambda: holder.setdefault(
                "join", join_columns(left_keys, left_vals, right_keys, right_vals)
            )
        )
        join = holder["join"].drop_nan()
        t_rp = timed(lambda: pearson(join.x, join.y))
        t_rs = timed(lambda: spearman(join.x, join.y))

        # Sketch path: sketches are pre-built (offline indexing).
        left_sketch = CorrelationSketch.from_columns(left_keys, left_vals, SKETCH_SIZE)
        right_sketch = CorrelationSketch.from_columns(right_keys, right_vals, SKETCH_SIZE)
        sk_holder = {}
        t_sjoin = timed(
            lambda: sk_holder.setdefault(
                "s", join_sketches(left_sketch, right_sketch).drop_nan()
            )
        )
        sample = sk_holder["s"]
        t_srp = timed(lambda: pearson(sample.x, sample.y))
        t_srs = timed(lambda: spearman(sample.x, sample.y))

        table.add(
            TimingSample(
                full_join=t_join,
                full_pearson=t_rp,
                full_spearman=t_rs,
                sketch_join=t_sjoin,
                sketch_pearson=t_srp,
                sketch_spearman=t_srs,
            )
        )
    return table


def test_table2_running_times(benchmark):
    table = benchmark.pedantic(_measure, rounds=1, iterations=1)
    write_result("table2_running_times.txt", table.format())
    summary = table.summarize()

    # Shape: sketch join at least 10x faster on average, and the gap
    # widens in the tail (the paper reports orders of magnitude).
    assert summary["mean"]["sketch_join"] * 10 < summary["mean"]["full_join"]
    assert summary["99%"]["sketch_join"] * 20 < summary["99%"]["full_join"]

    # Predictability: the sketch join's spread is far smaller than the
    # full join's (fixed-size input -> near-constant cost).
    assert summary["std. dev."]["sketch_join"] < summary["std. dev."]["full_join"]

    # Estimators on fixed-size samples are likewise faster than on the
    # arbitrarily large joined columns, in the tail where it matters.
    assert summary["99%"]["sketch_spearman"] < summary["99%"]["full_spearman"]
