"""Ablation — effect of the aggregate function on repeated-key data.

Section 3.1 ("Handling Repeated Keys") makes two claims this ablation
verifies experimentally:

1. the sketch's streaming aggregation matches offline join-then-aggregate
   semantics for every supported aggregate, so the estimate targets the
   right population value regardless of the chosen function;
2. the choice of aggregate changes the *semantics* (and hence the true
   correlation), so downstream applications must pick it deliberately.
"""

from __future__ import annotations

import math

import numpy as np

from conftest import write_result
from repro.core.aggregators import AGGREGATORS
from repro.core.joined_sample import join_sketches
from repro.core.sketch import CorrelationSketch
from repro.correlation.pearson import pearson
from repro.data.keygen import random_string_keys, zipf_multiplicities
from repro.table.join import join_columns

N_KEYS = 4000
AGG_NAMES = tuple(sorted(AGGREGATORS))


def _repeated_key_tables(seed: int):
    """Two tables over the same keys with Zipf-repeated rows."""
    rng = np.random.default_rng(seed)
    keys = random_string_keys(N_KEYS, rng)
    latent = rng.standard_normal(N_KEYS)

    def expand(loading):
        mult = zipf_multiplicities(N_KEYS, rng, max_repeat=8)
        out_keys, out_vals = [], []
        for k, z, m in zip(keys, latent, mult):
            for _ in range(int(m)):
                noise = rng.standard_normal()
                out_keys.append(k)
                out_vals.append(loading * z + math.sqrt(1 - loading**2) * noise)
        return out_keys, np.asarray(out_vals)

    return expand(0.9), expand(0.9)


def _run() -> list[dict]:
    (lk, lv), (rk, rv) = _repeated_key_tables(seed=5)
    rows = []
    for agg in AGG_NAMES:
        join = join_columns(lk, lv, rk, rv, aggregate=agg).drop_nan()
        truth = pearson(join.x, join.y)
        left = CorrelationSketch.from_columns(lk, lv, 256, aggregate=agg)
        right = CorrelationSketch.from_columns(rk, rv, 256, aggregate=agg)
        sample = join_sketches(left, right).drop_nan()
        est = pearson(sample.x, sample.y)
        rows.append(
            {"aggregate": agg, "truth": truth, "estimate": est,
             "sample": sample.size}
        )
    return rows


def test_ablation_aggregate_functions(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    lines = [f"{'aggregate':<10}{'true r':>10}{'estimate':>10}{'sample':>8}"]
    for row in rows:
        lines.append(
            f"{row['aggregate']:<10}{row['truth']:>10.4f}"
            f"{row['estimate']:>10.4f}{row['sample']:>8}"
        )
    write_result("ablation_aggregates.txt", "\n".join(lines))

    by_agg = {r["aggregate"]: r for r in rows}
    # Claim 1: the sketch estimate tracks the aggregate-specific truth.
    for agg, row in by_agg.items():
        if math.isnan(row["truth"]):
            continue
        assert abs(row["estimate"] - row["truth"]) < 0.15, agg

    # Claim 2: semantics differ across aggregates — `count` correlates the
    # key frequencies (independent Zipf draws), not the latent values, so
    # its true correlation must be far from the value aggregates'.
    assert abs(by_agg["mean"]["truth"]) > 0.5
    assert abs(by_agg["count"]["truth"]) < 0.4
